#include "service/worker_pool.h"

#include "common/logging.h"

namespace bperf {
namespace service {

WorkerPool::WorkerPool(std::size_t num_threads,
                       std::function<void(SessionId)> process)
    : process_(std::move(process))
{
    bp_assert(num_threads > 0, "worker pool needs at least one thread");
    bp_assert(process_ != nullptr, "worker pool needs a process callback");
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::submit(SessionId id)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(id);
    }
    cv_.notify_one();
}

void
WorkerPool::quiesce()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && active_ == 0; });
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_)
            return;
        const SessionId id = queue_.front();
        queue_.pop_front();
        ++active_;
        lock.unlock();
        process_(id);
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idleCv_.notify_all();
    }
}

} // namespace service
} // namespace bperf
