/**
 * @file
 * Ablation B: inference accuracy and cost vs EP sweeps, moment
 * method (quadrature vs MCMC), and MCMC samples per site; plus the
 * accelerator-projected latency for each setting.
 */

#include <iostream>

#include "accel/accelerator.h"
#include "baselines/bayesperf_estimator.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/bayesperf.h"
#include "workloads/hibench.h"

using namespace bperf;

namespace {

double
errorWith(const sim::MicroarchDescriptor &uarch,
          const core::InferenceConfig &inference, double *seconds)
{
    const auto workload = wl::makeHibench("Sort");
    const sim::GroundTruthGenerator generator(uarch, workload);
    const auto truth = generator.generate(bench::defaultSlices(), 991);

    core::BayesPerfConfig cfg;
    cfg.inference = inference;
    cfg.perf.seed = 33;
    core::BayesPerfSession session(uarch, cfg);
    session.open(bench::evaluationEventSet(uarch));
    auto run = session.measure(truth);
    *seconds = run.posterior.wallSeconds;

    sim::PerfSessionConfig poll_cfg;
    poll_cfg.seed = 7;
    sim::PerfSession poll(uarch, poll_cfg);
    const auto polled = poll.runPolling(truth, session.monitored());
    auto ref = [&](sim::EventId e) {
        return polled.traceFor(e).estimateSeries();
    };
    auto est = [&](sim::EventId e) { return run.estimate(e); };
    return ana::derivedErrorPercent(uarch, core::standardDerivedMetrics(),
                                    truth.numSlices(), est, ref);
}

} // namespace

int
main()
{
    const auto uarch = sim::makeX86Skylake();
    accel::Accelerator accelerator;

    std::cout << "# Ablation B: EP sweeps / moment method vs accuracy "
                 "and cost (Sort workload)\n";
    TablePrinter t({"method", "sweeps", "samples", "err %", "CPU s",
                    "accel window us"});

    struct Case
    {
        core::MomentMethod method;
        std::size_t sweeps;
        std::size_t samples;
    };
    const Case cases[] = {
        {core::MomentMethod::Quadrature, 1, 0},
        {core::MomentMethod::Quadrature, 2, 0},
        {core::MomentMethod::Quadrature, 4, 0},
        {core::MomentMethod::Quadrature, 8, 0},
        {core::MomentMethod::Mcmc, 4, 100},
        {core::MomentMethod::Mcmc, 4, 400},
        {core::MomentMethod::Mcmc, 4, 1000},
    };

    for (const auto &c : cases) {
        core::InferenceConfig inference;
        inference.ep.method = c.method;
        inference.ep.maxSweeps = c.sweeps;
        if (c.samples)
            inference.ep.mcmcSamples = c.samples;
        double seconds = 0.0;
        const double err = errorWith(uarch, inference, &seconds);

        accel::InferenceJob job;
        job.numVariables = 8 * 32;
        job.numSites = 8 * 9;
        job.numSweeps = c.sweeps;
        job.samplesPerSite = c.samples ? c.samples : 129;
        const auto timing = accelerator.simulate(job);

        t.addRow({c.method == core::MomentMethod::Quadrature ? "quadrature"
                                                             : "mcmc",
                  std::to_string(c.sweeps), std::to_string(c.samples),
                  formatDouble(err, 1), formatDouble(seconds, 2),
                  formatDouble(timing.totalSeconds * 1e6, 1)});
    }
    t.print(std::cout);
    return 0;
}
