/**
 * @file
 * Construction of the BayesPerf factor graph for a window of slices.
 *
 * Variables are (event, slice) pairs.  Three factor families:
 *   - invariant factors per slice, instantiated from the
 *     microarchitecture's invariant catalog ("→" edges in the paper's
 *     Fig. 2);
 *   - temporal random-walk factors linking the same event across
 *     consecutive slices ("⇝" edges, the overlap relationship);
 *   - Student-t measurement factors for slices where the event was
 *     scheduled on a counter (section 4.2).
 * A weak Gaussian prior anchors every variable.
 *
 * The model is rebuilt once per sliding window, so it recycles like
 * the graph beneath it: rebuild() re-enters construction for the next
 * window reusing every buffer (the graph's slots, the name formatting
 * buffer, term scratch), and bufferGrows() counts the growth events —
 * zero per window in steady state.
 */

#ifndef BPERF_CORE_MODEL_BUILDER_H
#define BPERF_CORE_MODEL_BUILDER_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/measurement.h"
#include "graph/factor_graph.h"
#include "sim/microarch.h"
#include "sim/perf_session.h"

namespace bperf {
namespace core {

/** Knobs of the window model. */
struct ModelConfig
{
    /** Relative sigma of the per-slice random walk on each event. */
    double temporalSigmaRel = 0.12;

    /** Relative sigma of the weak prior (vs. the event scale hint). */
    double priorSigmaRel = 4.0;

    /** Extra relative scale added to every measurement (see 4.2). */
    double measurementExtraRel = 0.005;

    /**
     * Floor on a multiplexed measurement's scale as a fraction of the
     * event's current level.  Counters extrapolated from a small duty
     * cycle cannot be trusted below this no matter how well their PMI
     * windows happen to agree.
     */
    double measurementFloorRel = 0.45;

    /**
     * Relative (of the location) scale floor for multiplexed
     * measurements.  Models the multiplicative nature of the
     * extrapolation noise: large readings are proportionally as
     * uncertain as small ones.
     */
    double measurementMuxRel = 0.02;

    /**
     * When true and a normalizer series is supplied, temporal factors
     * additionally constrain per-instruction *ratios*:
     * x_t / N_t - x_{t-1} / N_{t-1} ~ N(0, sigma).  Event-per-
     * instruction ratios (instruction mix, miss ratios) are far more
     * stable than raw rates, and the normalizer (the fixed
     * instruction counter) is measured exactly every slice, so this
     * stays a linear-Gaussian factor.
     */
    bool ratioWalk = true;

    /** Relative sigma of the ratio walk. */
    double ratioSigmaRel = 0.03;

    /**
     * When true, events never scheduled (latent) still get variables
     * so their posterior can be polled, as the BayesPerf API allows.
     */
    bool includeLatent = false;
};

/** Carry-in prior for the oldest slice of a sliding window. */
struct CarryPrior
{
    sim::EventId event = sim::kNoEvent;
    double mean = 0.0;
    double stddev = 1.0;
};

/**
 * Builds the window factor graph and maps (event, slice) to VarIds.
 */
class WindowModel
{
  public:
    /**
     * @param uarch       Architecture (invariants + scale hints).
     * @param events      Events modeled (fixed events included).
     * @param num_slices  Number of slices in the window.
     * @param config      Model knobs.
     * @param levels      Optional per-event current-magnitude hints
     *                    (aligned with `events`); the random-walk and
     *                    prior factors scale with these instead of
     *                    the catalog's typical magnitudes, keeping
     *                    the walk informative when the workload runs
     *                    far from typical intensity.  Ignored when
     *                    includeLatent is set.
     */
    /**
     * `normalizer`, when given, holds the per-window-slice measured
     * values of the normalizing fixed counter (instructions) and
     * enables the ratio walk; size num_slices.
     */
    WindowModel(const sim::MicroarchDescriptor &uarch,
                const std::vector<sim::EventId> &events,
                std::size_t num_slices, ModelConfig config,
                const std::vector<double> *levels = nullptr,
                const std::vector<double> *normalizer = nullptr);

    /**
     * Rebuild the model for the next window of the same event set:
     * resets the graph (keeping its buffers) and reconstructs every
     * structural factor with the new window length, level hints and
     * normalizer.  Allocation-free once every buffer has warmed up.
     */
    void rebuild(std::size_t num_slices,
                 const std::vector<double> *levels = nullptr,
                 const std::vector<double> *normalizer = nullptr);

    /** Variable for an event at a window-relative slice; kNoVar if
     * the event is not modeled. */
    graph::VarId var(sim::EventId event, std::size_t slice) const;

    /** Attach a measurement to (event, slice). */
    void addMeasurement(sim::EventId event, std::size_t slice,
                        const MeasurementModel &m);

    /** Attach carry-in priors (posterior of the slice that just left
     * the window) to window slice 0. */
    void addCarryPriors(const std::vector<CarryPrior> &priors);

    const graph::FactorGraph &graph() const { return graph_; }
    graph::FactorGraph &graph() { return graph_; }

    std::size_t numSlices() const { return numSlices_; }
    const std::vector<sim::EventId> &events() const { return events_; }

    /**
     * Cumulative buffer-growth events across this model and its
     * graph.  Constant across steady-state rebuild() cycles (the
     * zero-allocation invariant the window engine asserts).
     */
    std::size_t bufferGrows() const
    {
        return grows_ + graph_.bufferGrows();
    }

  private:
    void build();
    /** Format "<prefix><base>" or "<prefix><base>@<slice>" into the
     * reused name buffer. */
    std::string_view fmtName(std::string_view prefix,
                             std::string_view base,
                             std::ptrdiff_t slice = -1);
    /** Capacity-aware copy into a reused vector. */
    template <typename T>
    void assignReuse(std::vector<T> &dst, const std::vector<T> &src)
    {
        if (dst.capacity() < src.size())
            ++grows_;
        dst.assign(src.begin(), src.end());
    }

    const sim::MicroarchDescriptor &uarch_;
    std::vector<sim::EventId> events_;
    std::size_t numSlices_;
    ModelConfig config_;
    std::vector<double> levels_;
    std::vector<double> normalizer_;
    graph::FactorGraph graph_;
    // varOf_[slice * events_.size() + eventIndex]
    std::vector<graph::VarId> varOf_;
    std::vector<std::size_t> eventIndex_; // by EventId, SIZE_MAX if absent

    /** Reused scratch: name formatting + linear-factor terms. */
    std::string nameBuf_;
    std::vector<graph::VarId> termVars_;
    std::vector<double> termCoeffs_;
    std::size_t grows_ = 0;
};

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_MODEL_BUILDER_H
