file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_invariants.dir/bench/bench_ablation_invariants.cpp.o"
  "CMakeFiles/bench_ablation_invariants.dir/bench/bench_ablation_invariants.cpp.o.d"
  "bench_ablation_invariants"
  "bench_ablation_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
