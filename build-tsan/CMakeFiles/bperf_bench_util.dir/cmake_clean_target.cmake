file(REMOVE_RECURSE
  "libbperf_bench_util.a"
)
