/**
 * @file
 * Exact inference for the Gaussian part of a factor graph.
 *
 * Builds the joint information form (precision matrix J, information
 * vector h) from all LinearGaussian and GaussianPrior factors plus an
 * optional set of per-variable Gaussian "site" approximations (as EP
 * maintains for the non-Gaussian factors), and solves for the joint
 * mean and covariance.  Variables are internally rescaled by their
 * scale hints so the solve stays well conditioned even though event
 * magnitudes span five orders of magnitude.
 *
 * When every factor in the graph is Gaussian this *is* the exact
 * posterior, which the tests use to validate EP.
 */

#ifndef BPERF_GRAPH_EXACT_H
#define BPERF_GRAPH_EXACT_H

#include <vector>

#include "common/matrix.h"
#include "graph/factor_graph.h"
#include "graph/gaussian.h"

namespace bperf {
namespace graph {

/** Joint Gaussian over all variables of a graph. */
struct GaussianJoint
{
    std::vector<double> mean;
    Matrix covariance; // full covariance, natural units

    double marginalMean(VarId v) const { return mean[v]; }
    double marginalVariance(VarId v) const { return covariance(v, v); }
};

/**
 * Solver for the Gaussian sub-model of a factor graph.
 */
class GaussianSolver
{
  public:
    explicit GaussianSolver(const FactorGraph &graph);

    /**
     * Compute the joint implied by all Gaussian factors plus
     * per-variable sites (sites may be flat).  `sites` must be empty
     * or one entry per variable.  Dies if the model is improper
     * (unconstrained variables with no prior/site).
     */
    GaussianJoint solve(const std::vector<Gaussian> &sites = {}) const;

    /**
     * True iff the graph contains non-Gaussian factors (so solve()
     * alone is not the full posterior).
     */
    bool hasNonGaussianFactors() const;

  private:
    const FactorGraph &graph_;
};

} // namespace graph
} // namespace bperf

#endif // BPERF_GRAPH_EXACT_H
