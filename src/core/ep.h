/**
 * @file
 * Expectation Propagation for BayesPerf factor graphs (paper Alg. 1).
 *
 * Gaussian factors (invariants, random walks, priors) form the exact
 * Gaussian backbone.  Each Student-t measurement factor gets a 1-D
 * Gaussian site approximation; EP iterates:
 *   cavity  = joint marginal / site              (Alg. 1 line 3)
 *   tilted  = likelihood x cavity, moments via   (Alg. 1 line 4)
 *             quadrature or MCMC
 *   site'   = tilted / cavity, damped            (Alg. 1 lines 5-7)
 * All sites are refreshed against one joint per sweep, which is the
 * parallel-update form the hardware accelerator exploits (one EP
 * engine per partition, MCMC samplers under each).
 */

#ifndef BPERF_CORE_EP_H
#define BPERF_CORE_EP_H

#include <cstdint>
#include <vector>

#include "graph/exact.h"
#include "graph/factor_graph.h"

namespace bperf {
namespace core {

/** How tilted moments are computed (Alg. 1 line 4). */
enum class MomentMethod {
    /** Deterministic grid quadrature (fast, reproducible). */
    Quadrature,
    /** Metropolis MCMC, as the paper's accelerator does. */
    Mcmc,
};

/** EP configuration. */
struct EpConfig
{
    std::size_t maxSweeps = 8;
    /** Convergence threshold on relative site-mean change. */
    double tolerance = 1e-4;
    /** Damping of site updates in natural parameters. */
    double damping = 0.7;
    MomentMethod method = MomentMethod::Quadrature;
    std::size_t quadraturePoints = 129;
    std::size_t mcmcSamples = 400;
    std::size_t mcmcBurnin = 100;
    std::uint64_t seed = 7;
};

/** Result of EP inference. */
struct EpResult
{
    std::vector<double> mean;   // per variable
    std::vector<double> stddev; // per variable
    std::size_t sweeps = 0;
    bool converged = false;
    /** Count of site updates skipped due to improper cavities. */
    std::size_t skippedUpdates = 0;
    /** Total tilted-moment evaluations (accelerator cost model). */
    std::size_t momentEvaluations = 0;
};

/**
 * Runs EP over a factor graph.
 */
class ExpectationPropagation
{
  public:
    explicit ExpectationPropagation(EpConfig config = {});

    EpResult run(const graph::FactorGraph &graph) const;

  private:
    EpConfig config_;
};

/**
 * Moments of the 1-D tilted density
 *   p(x) ∝ N(x; cavity_mean, cavity_var) * St(x; loc, scale, nu)
 * computed by grid quadrature.  Exposed for tests.
 */
void tiltedMomentsQuadrature(double cavity_mean, double cavity_var,
                             double loc, double scale, double nu,
                             std::size_t points, double &mean_out,
                             double &var_out);

/** Same moments estimated by Metropolis MCMC.  Exposed for tests. */
void tiltedMomentsMcmc(double cavity_mean, double cavity_var, double loc,
                       double scale, double nu, std::size_t samples,
                       std::size_t burnin, std::uint64_t seed,
                       double &mean_out, double &var_out);

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_EP_H
