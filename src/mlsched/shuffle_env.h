/**
 * @file
 * The section 6.3 scheduling environment: a Spark executor must pick
 * which NIC carries a distributed shuffle while two GPUs on socket 0
 * run a halo exchange.  NIC0 shares the switch uplink with the GPU
 * traffic (contention); NIC1 avoids it but crosses the socket link.
 *
 * The scheduler observes HPC-derived features (write types, demand
 * and MMIO reads, DRAM/membus bandwidth, shuffle size, NUMA node —
 * the paper's input list) as reported by a CounterFeed: either the
 * synthetic noise profile of EnvConfig.noise, or a live
 * ShimCounterFeed polling a running daemon's posterior snapshot
 * table (see mlsched/counter_feed.h).
 */

#ifndef BPERF_MLSCHED_SHUFFLE_ENV_H
#define BPERF_MLSCHED_SHUFFLE_ENV_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "mlsched/counter_feed.h"
#include "mlsched/pcie.h"

namespace bperf {
namespace ml {

/** Number of scheduler input features (paper: 36-input network). */
constexpr std::size_t kNumFeatures = 36;

/** One scheduling situation. */
struct Episode
{
    double gpuTrafficGBps = 0.0; // halo-exchange offered load
    double shuffleGB = 0.0;      // bytes to move
    double messageBytes = 0.0;   // shuffle message size
    int numaNode = 0;            // where the shuffle data lives
    std::vector<double> features; // noisy HPC-derived observation
};

/** Environment configuration. */
struct EnvConfig
{
    /** Noise profile of the default (synthetic) feed. */
    FeatureNoise noise;
    PcieConfig pcie;
    std::uint64_t seed = 21;

    /**
     * Observation source override, non-owning (the caller keeps it
     * alive for the environment's lifetime).  Null builds a
     * SyntheticCounterFeed from `noise`; a ShimCounterFeed here makes
     * every sampled episode a live read of the snapshot shim.
     */
    CounterFeed *feed = nullptr;
};

/**
 * Episode generator and completion-time oracle.  Move-only: it owns
 * its default feed.
 */
class ShuffleEnv
{
  public:
    explicit ShuffleEnv(EnvConfig config);

    /** Draw the next scheduling situation. */
    Episode sample();

    /** Shuffle completion time (s) when routed through `nic` (0/1). */
    double completionTime(const Episode &episode, int nic) const;

    /** Completion time on an idle fabric (normalization). */
    double isolatedTime(const Episode &episode) const;

    /** Ground-truth best NIC for an episode. */
    int optimalNic(const Episode &episode) const;

    const PcieFabric &fabric() const { return fabric_; }

    /** The active observation source (synthetic or external). */
    CounterFeed &feed() { return *feed_; }
    const CounterFeed &feed() const { return *feed_; }

  private:
    std::vector<double> makeFeatures(const Episode &episode);

    EnvConfig config_;
    PcieFabric fabric_;
    Rng rng_;
    /** Default synthetic feed (null when config_.feed overrides). */
    std::unique_ptr<CounterFeed> ownedFeed_;
    CounterFeed *feed_ = nullptr;
};

} // namespace ml
} // namespace bperf

#endif // BPERF_MLSCHED_SHUFFLE_ENV_H
