#include "shim/snapshot_region.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <new>

#include "common/logging.h"

namespace bperf {
namespace shim {

namespace {

/** Identity of a created shm inode (guards the destructor's unlink
 * against removing a successor daemon's segment of the same name). */
struct SegmentIdentity
{
    dev_t dev = 0;
    ino_t ino = 0;
    bool valid = false;
};

/** mmap a zero-filled segment: anonymous, or named POSIX shm. */
std::byte *
mapSegment(const std::string &shm_name, std::size_t bytes,
           SegmentIdentity *identity)
{
    if (shm_name.empty()) {
        void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        bp_assert(mem != MAP_FAILED,
                  "snapshot region: anonymous mmap of " << bytes
                                                        << " bytes failed");
        return static_cast<std::byte *>(mem);
    }
    // O_EXCL: never adopt an existing segment — a leftover from a
    // crashed daemon (aborts skip the destructor's shm_unlink) or a
    // live daemon using the same name.  Adopting one would make two
    // processes concurrent writers of the same slots, which the
    // single-writer seqlock protocol cannot survive, and the init
    // below would non-atomically stomp words an attached reader is
    // loading.  Instead, unlink the stale name and create a fresh
    // segment: the name now resolves to this daemon (last writer
    // wins), while readers still mapped to the old inode keep their
    // old, frozen table.  (If the old writer died *mid-publish*, the
    // interrupted slot's sequence stays odd forever and reads of it
    // report Torn — detected, never served as data; the other slots
    // stay readable.)
    // Bounded unlink-and-retry: a concurrent creator can slip its
    // own segment in between our unlink and create, so one retry is
    // not enough for the advertised last-writer-wins semantics.
    int fd = -1;
    for (int attempt = 0; attempt < 16 && fd < 0; ++attempt) {
        fd = ::shm_open(shm_name.c_str(), O_CREAT | O_EXCL | O_RDWR,
                        0600);
        if (fd < 0 && errno == EEXIST)
            ::shm_unlink(shm_name.c_str());
        else if (fd < 0)
            break; // not a name collision; report it
    }
    bp_assert(fd >= 0, "snapshot region: shm_open(\"" << shm_name
                                                      << "\") failed");
    const int trunc = ::ftruncate(fd, static_cast<off_t>(bytes));
    bp_assert(trunc == 0, "snapshot region: ftruncate(\""
                              << shm_name << "\", " << bytes
                              << ") failed");
    struct stat st;
    if (::fstat(fd, &st) == 0) {
        identity->dev = st.st_dev;
        identity->ino = st.st_ino;
        identity->valid = true;
    }
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd, 0);
    ::close(fd);
    bp_assert(mem != MAP_FAILED, "snapshot region: mmap of \""
                                     << shm_name << "\" failed");
    return static_cast<std::byte *>(mem);
}

} // namespace

SnapshotRegion::SnapshotRegion(SnapshotRegionConfig config,
                               const std::string &shm_name)
    : config_(config), shmName_(shm_name),
      layout_(RegionLayout::compute(config.slots, config.maxEvents))
{
    bp_assert(config_.slots > 0, "snapshot region needs >= 1 slot");
    bp_assert(config_.maxEvents > 0,
              "snapshot region needs >= 1 event per slot");
    SegmentIdentity identity;
    base_ = mapSegment(shmName_, layout_.totalBytes, &identity);
    shmDev_ = static_cast<std::uint64_t>(identity.dev);
    shmIno_ = static_cast<std::uint64_t>(identity.ino);
    shmIdentityValid_ = identity.valid;

    // The segment is all 64-bit words; formally begin each one's
    // lifetime as an atomic (zero-initialised — mmap pages are
    // zero-filled, and Word{0} stores nothing readers could tear on).
    const std::size_t words = layout_.totalBytes / sizeof(Word);
    for (std::size_t i = 0; i < words; ++i)
        new (base_ + i * sizeof(Word)) Word{0};

    auto *header = reinterpret_cast<RegionHeader *>(base_);
    header->layoutVersion.store(kSnapshotLayoutVersion,
                                std::memory_order_relaxed);
    header->slotCount.store(config_.slots, std::memory_order_relaxed);
    header->maxEvents.store(config_.maxEvents, std::memory_order_relaxed);
    header->slotStride.store(layout_.slotStride,
                             std::memory_order_relaxed);
    header->publishes.store(0, std::memory_order_relaxed);
    // Magic last, with release: an attacher that sees it sees the
    // whole geometry.
    header->magic.store(kSnapshotMagic, std::memory_order_release);
}

SnapshotRegion::~SnapshotRegion()
{
    if (base_ != nullptr)
        ::munmap(base_, layout_.totalBytes);
    if (shmName_.empty())
        return;
    // Only unlink the name if it still resolves to the inode we
    // created: a successor daemon may have replaced the segment
    // (last writer wins), and its live table must survive our exit.
    bool ours = true;
    if (shmIdentityValid_) {
        const int fd = ::shm_open(shmName_.c_str(), O_RDONLY, 0);
        if (fd < 0)
            return; // already gone
        struct stat st;
        ours = ::fstat(fd, &st) == 0 &&
               static_cast<std::uint64_t>(st.st_dev) == shmDev_ &&
               static_cast<std::uint64_t>(st.st_ino) == shmIno_;
        ::close(fd);
    }
    if (ours)
        ::shm_unlink(shmName_.c_str());
}

std::uint64_t
SnapshotRegion::publishes() const
{
    return reinterpret_cast<const RegionHeader *>(base_)->publishes.load(
        std::memory_order_relaxed);
}

void
SnapshotRegion::write(std::size_t slot, std::uint64_t session_id,
                      std::uint64_t window_index, std::size_t end_slice,
                      const core::WindowExecution &execution,
                      const std::vector<sim::EventId> &events,
                      const std::vector<core::PosteriorPoint> &posterior,
                      std::uint64_t publish_nanos)
{
    bp_assert(slot < config_.slots, "snapshot write to slot "
                                        << slot << " of "
                                        << config_.slots);
    bp_assert(events.size() == posterior.size(),
              "snapshot write: " << events.size() << " events vs "
                                 << posterior.size() << " posteriors");
    SlotHeader *s = slotAt(base_, layout_, slot);
    const std::size_t n = std::min(events.size(), config_.maxEvents);

    // Seqlock write: odd sequence -> payload -> even sequence.  The
    // release fence keeps the payload stores after the odd store; the
    // final release store keeps them before the even store.
    const std::uint64_t s0 = s->seq.load(std::memory_order_relaxed);
    s->seq.store(s0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);

    s->active.store(1, std::memory_order_relaxed);
    s->sessionId.store(session_id, std::memory_order_relaxed);
    s->windowIndex.store(window_index, std::memory_order_relaxed);
    s->endSlice.store(end_slice, std::memory_order_relaxed);
    s->eventCount.store(n, std::memory_order_relaxed);
    s->publishNanos.store(publish_nanos, std::memory_order_relaxed);
    s->engineId.store(execution.engineId, std::memory_order_relaxed);
    s->queueWaitBits.store(doubleBits(execution.queueWaitSeconds),
                           std::memory_order_relaxed);
    s->serviceBits.store(doubleBits(execution.serviceSeconds),
                         std::memory_order_relaxed);
    s->transferBits.store(doubleBits(execution.transferSeconds),
                          std::memory_order_relaxed);
    s->modeledBits.store(doubleBits(execution.modeledSeconds),
                         std::memory_order_relaxed);
    SlotEvent *entries = s->events();
    for (std::size_t i = 0; i < n; ++i) {
        entries[i].event.store(events[i], std::memory_order_relaxed);
        entries[i].meanBits.store(doubleBits(posterior[i].mean),
                                  std::memory_order_relaxed);
        entries[i].stddevBits.store(doubleBits(posterior[i].stddev),
                                    std::memory_order_relaxed);
    }

    s->seq.store(s0 + 2, std::memory_order_release);
    reinterpret_cast<RegionHeader *>(base_)->publishes.fetch_add(
        1, std::memory_order_relaxed);
}

void
SnapshotRegion::invalidate(std::size_t slot)
{
    bp_assert(slot < config_.slots, "snapshot invalidate of slot "
                                        << slot << " of "
                                        << config_.slots);
    SlotHeader *s = slotAt(base_, layout_, slot);
    const std::uint64_t s0 = s->seq.load(std::memory_order_relaxed);
    s->seq.store(s0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s->active.store(0, std::memory_order_relaxed);
    s->sessionId.store(0, std::memory_order_relaxed);
    s->seq.store(s0 + 2, std::memory_order_release);
}

} // namespace shim
} // namespace bperf
