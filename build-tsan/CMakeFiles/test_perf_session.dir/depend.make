# Empty dependencies file for test_perf_session.
# This may be replaced when dependencies are built.
