/**
 * @file
 * Execution backends for completed inference windows.
 *
 * The windowed EP engine always computes posteriors on the host — the
 * numerics are backend-independent.  What a backend decides is *where
 * the window would have executed* and what that execution costs: the
 * host backend stamps the measured wall time of the EP run it just
 * watched, while the accelerator backend (accel/accel_backend.h)
 * schedules the window onto a pool of simulated FPGA EP engines and
 * stamps the modeled transfer + queue + compute latency.  This is how
 * the accelerator timing model of src/accel/ gets driven by the real
 * software pipeline (service sessions, window traffic, contention)
 * instead of synthetic job shapes.
 *
 * Thread contract: execute() may be called concurrently from many
 * workers (one per session being drained); implementations serialize
 * internally.
 */

#ifndef BPERF_CORE_BACKEND_H
#define BPERF_CORE_BACKEND_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace bperf {
namespace core {

/**
 * Shape and provenance of one completed inference window, as handed
 * to a backend the moment the host EP run finishes.
 */
struct WindowJob
{
    /** Owning session (0 for engines outside the service). */
    std::uint64_t sessionKey = 0;
    /** Absolute index of the slice whose arrival completed the
     * window: the window's modeled release time is endSlice ticks of
     * the stream clock. */
    std::size_t endSlice = 0;
    /** Window length in slices. */
    std::size_t windowSlices = 0;
    /** Joint size of the window's factor graph. */
    std::size_t numVariables = 0;
    /** Student-t measurement sites EP refreshed. */
    std::size_t numSites = 0;
    /**
     * Sites of the most loaded partition when the host engine ran a
     * partitioned sweep (graph/partition.h): accelerator backends
     * spread the window over engines along the same plan, so their
     * per-engine critical path matches the host's.  0 = the window
     * ran unpartitioned; backends fall back to an even ceil-division
     * split.
     */
    std::size_t maxPartitionSites = 0;
    /** EP sweeps until convergence. */
    std::size_t numSweeps = 0;
    /** Measurement + g(theta) bytes streamed into the engine. */
    std::size_t inputBytes = 0;
    /** Measured wall time of the host EP run (seconds). */
    double hostSeconds = 0.0;
};

/**
 * Wall-clock phase stamps of one window's trip through the pipeline
 * (telemetry::nowNanos() time base, which is also the shim's).  A
 * zero stamp means "phase not observed" — telemetry was disabled, or
 * the window was flushed at stream end with no triggering record
 * (the finish() tail leaves ingest/assemble unstamped).  Consumers
 * must treat 0 as absent, never as t=0.
 */
struct WindowSpan
{
    /** Process-unique id tying this window's phases together. */
    std::uint64_t traceId = 0;
    /** The triggering record entered the ring (producer side). */
    std::uint64_t ingestNanos = 0;
    /** The triggering record was drained into the slice assembler. */
    std::uint64_t assembleNanos = 0;
    /** Host EP solve started. */
    std::uint64_t epStartNanos = 0;
    /** Host EP solve finished (backend modeling follows). */
    std::uint64_t epEndNanos = 0;
    /** The window update entered fan-out (sinks, shim, hub). */
    std::uint64_t publishNanos = 0;
};

/** Where and at what modeled cost one window executed. */
struct WindowExecution
{
    /** Engine that served the window (always 0 on the host path). */
    std::size_t engineId = 0;
    /** Slice whose arrival completed the window (copied from the
     * WindowJob so window-completion consumers can place the window
     * on the stream clock). */
    std::size_t endSlice = 0;
    /** Modeled wait for a free engine (0 on the host path). */
    double queueWaitSeconds = 0.0;
    /** Modeled service time: transfer + compute. */
    double serviceSeconds = 0.0;
    /** Host-interface share of the service time. */
    double transferSeconds = 0.0;
    /** End-to-end modeled window latency: queue wait + service. */
    double modeledSeconds = 0.0;
    /** 1-based position of this window in its engine's run order —
     * the stable per-session window id (WindowUpdate.windowId).
     * 0 only for executions that never went through runWindow. */
    std::uint64_t windowOrdinal = 0;
    /** Observed phase stamps (engine-side fields; backends leave
     * this default — the engine stamps it after execute()). */
    WindowSpan span;
};

/** Aggregate accounting of one backend across every window it ran. */
struct BackendStats
{
    std::uint64_t windowsExecuted = 0;
    RunningStats queueWaitSeconds;
    RunningStats serviceSeconds;
    RunningStats modeledSeconds;
};

/**
 * Live modeled queue-depth snapshot of a backend's engine pool, on
 * the stream clock (seconds).  This is the latency signal the
 * service's admission controller feeds back into open()/push()
 * decisions: a window released "now" would wait `queueSeconds` for
 * the earliest engine to free up.
 */
struct BackendQueueDepth
{
    /** Engines in the pool (1 on the host path). */
    std::size_t engines = 1;
    /** Latest window release time the backend has seen. */
    double nowSeconds = 0.0;
    /** Stream time the earliest engine becomes free. */
    double earliestFreeSeconds = 0.0;
    /** Stream time the busiest engine becomes free. */
    double latestFreeSeconds = 0.0;
    /** max(0, earliestFree - now): the wait a window released at
     * nowSeconds would experience.  Always 0 on the host path. */
    double queueSeconds = 0.0;
    /** Sum over engines of their backlog beyond nowSeconds. */
    double totalBacklogSeconds = 0.0;

    /** Wait a window released at `atSeconds` would experience. */
    double queueSecondsAt(double atSeconds) const
    {
        const double wait = earliestFreeSeconds - atSeconds;
        return wait > 0.0 ? wait : 0.0;
    }
};

/**
 * A place completed windows execute.  Implementations must be safe to
 * share across sessions and worker threads.
 */
class InferenceBackend
{
  public:
    virtual ~InferenceBackend() = default;

    /** Short identifier ("host", "accel-capi", "accel-pcie"). */
    virtual const std::string &name() const = 0;

    /** Account one completed window; returns its modeled execution. */
    virtual WindowExecution execute(const WindowJob &job) = 0;

    /** Aggregate statistics snapshot. */
    virtual BackendStats stats() const = 0;

    /**
     * Live queue-depth snapshot.  The host path never queues, so the
     * default is an all-zero snapshot; pooled backends report their
     * modeled backlog for admission-control feedback.
     *
     * `nowSeconds` is the caller's stream clock ("now" on the release
     * timeline).  Pooled backends clamp their internal release clock
     * up to it, so backlog drains across idle gaps instead of staying
     * frozen at the last release (a stale "now" used to report
     * phantom queue depth to the admission controller).  Pass 0 to
     * read at the backend's own last-release clock.
     */
    virtual BackendQueueDepth queueDepth(double nowSeconds = 0.0) const
    {
        (void)nowSeconds;
        return BackendQueueDepth{};
    }

    /** Forget all queue state and statistics (bench reruns). */
    virtual void reset() = 0;
};

/**
 * The host CPU path: windows execute where they always did, so the
 * modeled latency is the measured EP wall time and nothing queues.
 */
class HostBackend : public InferenceBackend
{
  public:
    const std::string &name() const override { return name_; }
    WindowExecution execute(const WindowJob &job) override;
    BackendStats stats() const override;
    void reset() override;

  private:
    const std::string name_ = "host";
    mutable std::mutex mutex_;
    BackendStats stats_;
};

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_BACKEND_H
