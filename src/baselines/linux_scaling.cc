#include "baselines/linux_scaling.h"

namespace bperf {
namespace baselines {

std::vector<double>
LinuxEstimator::series(const sim::PerfResult &run, sim::EventId event) const
{
    return run.traceFor(event).estimateSeries(policy_);
}

} // namespace baselines
} // namespace bperf
