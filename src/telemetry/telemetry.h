/**
 * @file
 * Pipeline-wide metrics: monotonic counters and log2-bucketed latency
 * histograms, cheap enough to leave on in production.
 *
 * Design for the hot path (ring offer, worker dispatch, EP solve):
 *   - every instrument is sharded across a small fixed set of
 *     cache-line-aligned atomic cells; a thread picks its shard once
 *     (thread-local round-robin) and then every update is a single
 *     relaxed fetch_add with no false sharing between workers;
 *   - one global atomic enable flag gates all updates, so the
 *     disabled path is a relaxed load and a branch (~1 ns);
 *   - shards are merged only on scrape(), which walks every cell —
 *     scraping is the slow path by construction.
 *
 * Counters and histograms are owned by a MetricsRegistry keyed by
 * name ("ring.drops", "ep.window_ns", ...).  Lookup takes a mutex, so
 * call sites resolve their instrument once into a static reference
 * and keep only the fetch_add on the hot path.
 *
 * Histograms are fixed log2 buckets: bucket 0 holds the value 0,
 * bucket b >= 1 holds [2^(b-1), 2^b).  Percentiles come back as the
 * geometric midpoint of the bucket the rank lands in — at most
 * sqrt(2)x off the true value, which is plenty for latency
 * attribution (values are nanoseconds unless the name says
 * otherwise).
 *
 * Thread contract: every member of Counter/Histogram is safe from any
 * thread concurrently with any other, including scrape.  reset() is
 * the exception: it tolerates concurrent writers but may lose their
 * in-flight updates, so only quiescent callers (benches between runs,
 * tests) should use it.
 */

#ifndef BPERF_TELEMETRY_TELEMETRY_H
#define BPERF_TELEMETRY_TELEMETRY_H

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bperf {
namespace telemetry {

namespace detail {

/** The one global enable flag (defined in telemetry.cc; on by
 * default — the whole point is always-on observability). */
extern std::atomic<bool> g_enabled;

/** Shards per instrument: enough to keep a handful of workers off
 * each other's cache lines without bloating scrape. */
inline constexpr std::size_t kShards = 16;

/** This thread's shard: round-robin assignment on first use. */
std::size_t shardIndex();

} // namespace detail

/** Is telemetry collection enabled?  Relaxed load; hot-path safe. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Toggle collection process-wide (tests, benches, ops). */
void setEnabled(bool on);

/** Steady-clock nanoseconds — deliberately the same time base as
 * shim::steadyNowNanos(), so span stamps and shim publish stamps are
 * directly comparable. */
std::uint64_t nowNanos();

/** Process-unique nonzero id for a new window span. */
std::uint64_t nextTraceId();

/** Monotonic event counter, sharded per thread. */
class Counter
{
  public:
    /** Count n events; a relaxed load + branch when disabled. */
    void add(std::uint64_t n = 1)
    {
        if (enabled())
            addAlways(n);
    }

    /** Count regardless of the enable flag — for instruments that
     * must never miss (log.warnings / log.errors). */
    void addAlways(std::uint64_t n = 1)
    {
        shards_[detail::shardIndex()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Merged total across shards. */
    std::uint64_t value() const
    {
        std::uint64_t total = 0;
        for (const Shard &s : shards_)
            total += s.value.load(std::memory_order_relaxed);
        return total;
    }

    /** Zero all shards (quiescent callers only; see file header). */
    void reset()
    {
        for (Shard &s : shards_)
            s.value.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, detail::kShards> shards_{};
};

/** Fixed log2-bucket latency histogram, sharded per thread. */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    /** Bucket of value v: 0 -> 0, else bit_width(v) capped at the
     * last bucket, i.e. bucket b >= 1 covers [2^(b-1), 2^b). */
    static std::size_t bucketIndex(std::uint64_t v)
    {
        const std::size_t w =
            static_cast<std::size_t>(std::bit_width(v));
        return w < kBuckets ? w : kBuckets - 1;
    }

    /** Smallest value bucket b holds (0 for bucket 0). */
    static std::uint64_t bucketFloor(std::size_t b)
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    /** Record one sample; a relaxed load + branch when disabled. */
    void record(std::uint64_t v)
    {
        if (!enabled())
            return;
        Shard &shard = shards_[detail::shardIndex()];
        shard.buckets[bucketIndex(v)].fetch_add(
            1, std::memory_order_relaxed);
        // Track the largest observed value so percentiles can clamp
        // their bucket representative to something actually recorded.
        std::uint64_t seen =
            shard.maxValue.load(std::memory_order_relaxed);
        while (v > seen && !shard.maxValue.compare_exchange_weak(
                               seen, v, std::memory_order_relaxed))
            ;
    }

    /** Merged view of the histogram at one scrape. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        /** Largest value recorded (0 when empty). */
        std::uint64_t maxValue = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        /**
         * Approximate percentile; NaN when the histogram is empty.
         * The reported value is the geometric midpoint of the bucket
         * the rank lands in, clamped to maxValue — without the clamp
         * a top-bucket midpoint can exceed every recorded value by up
         * to sqrt(2)x, which turned tail latencies into values the
         * pipeline never produced.
         */
        double percentile(double p) const;
    };

    Snapshot snapshot() const;

    /** Zero all shards (quiescent callers only; see file header). */
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        /** Largest value this shard has recorded. */
        std::atomic<std::uint64_t> maxValue{0};
    };
    std::array<Shard, detail::kShards> shards_{};
};

/** One counter at scrape time. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/** One histogram at scrape time (percentiles precomputed). */
struct HistogramSample
{
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Everything the registry knows, merged at one instant per
 * instrument (instruments are not mutually coherent — each is
 * scraped independently while writers keep running). */
struct MetricsSnapshot
{
    std::vector<CounterSample> counters;
    std::vector<HistogramSample> histograms;
};

/**
 * Name-keyed home of every instrument.  Instruments live forever at
 * stable addresses once created, so call sites cache references:
 *
 *   static telemetry::Counter &drops =
 *       telemetry::MetricsRegistry::global().counter("ring.drops");
 *   drops.add();
 */
class MetricsRegistry
{
  public:
    /** Find-or-create (mutex; resolve once, not per event). */
    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Merged value of a counter; 0 when it was never created. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Snapshot of a histogram; empty when it was never created. */
    Histogram::Snapshot histogramSnapshot(const std::string &name) const;

    /** Merge every instrument (names come back sorted). */
    MetricsSnapshot scrape() const;

    /** Zero every instrument (quiescent callers only). */
    void reset();

    /** The process-wide registry all pipeline instruments live in. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mutex_;
    /** Node-based maps: element addresses are stable forever. */
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace telemetry
} // namespace bperf

#endif // BPERF_TELEMETRY_TELEMETRY_H
