# Empty dependencies file for test_dtw.
# This may be replaced when dependencies are built.
