/**
 * @file
 * Example: the section 6.3 feedback loop end to end.
 *
 * Synthetic mode (no --shm) trains the RL-based NIC scheduler twice —
 * once on Linux-quality counter inputs and once on BayesPerf-quality
 * inputs — then compares average shuffle completion against the
 * static local-NIC policy.
 *
 * Live mode closes the paper's loop across processes: with --shm the
 * scheduler's observations come from a ShimCounterFeed attached to a
 * running daemon's posterior snapshot table, so observation quality
 * (relative error from posterior uncertainty, staleness from snapshot
 * age) is whatever the estimator achieves *right now*.  Pair it with
 * the daemon exporting a segment:
 *
 *   ./perf_daemon capi 4 --shm=/bperf-demo --linger-ms=10000 &
 *   ./pcie_scheduler --shm=/bperf-demo --iters=250 --episodes=150
 *
 * Usage: pcie_scheduler [--shm=/name] [--iters=N] [--episodes=N]
 *                       [--seed=N] [--attach-timeout-ms=N]
 *
 * In live mode the final "feed stats:" line reports the typed poll
 * verdicts (ok/not-found/torn/writer-dead/corrupt/stale) and how the
 * observations were served (live/last-good/fallback).  Exits 0 only
 * if at least one poll served a live posterior — which is what the CI
 * cross-process smoke checks.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/table.h"
#include "example_args.h"
#include "mlsched/counter_feed.h"
#include "mlsched/rl_scheduler.h"

using namespace bperf;
using examples::parseCount;
using examples::validShmName;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--shm=/name] [--iters=N] [--episodes=N]\n"
                 "          [--seed=N] [--attach-timeout-ms=N]\n",
                 argv0);
}

/** Static baseline: always the NIC local to the data. */
double
staticBaseline(std::size_t episodes, std::uint64_t seed)
{
    ml::EnvConfig cfg;
    cfg.noise = ml::FeatureNoise{38.0, 0.5};
    cfg.seed = seed * 2 + 15;
    ml::ShuffleEnv env(cfg);
    double total = 0.0;
    for (std::size_t i = 0; i < episodes; ++i) {
        const ml::Episode ep = env.sample();
        total += env.completionTime(ep, ep.numaNode) /
                 env.isolatedTime(ep);
    }
    return total / static_cast<double>(episodes);
}

void
printFeedStats(const ml::FeedStats &stats)
{
    std::printf("feed stats: observations=%llu ok-polls=%llu "
                "not-found=%llu torn=%llu writer-dead=%llu "
                "corrupt=%llu stale=%llu live=%llu last-good=%llu "
                "fallback=%llu\n",
                static_cast<unsigned long long>(stats.observations),
                static_cast<unsigned long long>(stats.okPolls),
                static_cast<unsigned long long>(stats.notFoundPolls),
                static_cast<unsigned long long>(stats.tornPolls),
                static_cast<unsigned long long>(stats.writerDeadPolls),
                static_cast<unsigned long long>(stats.corruptPolls),
                static_cast<unsigned long long>(stats.stalePolls),
                static_cast<unsigned long long>(stats.liveObservations),
                static_cast<unsigned long long>(
                    stats.lastGoodObservations),
                static_cast<unsigned long long>(
                    stats.fallbackObservations));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string shm_name;
    std::size_t train_iters = 4000;
    std::size_t eval_episodes = 800;
    std::size_t seed = 31;
    std::size_t attach_timeout_ms = 5000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::size_t nval = 0;
        if (arg.rfind("--shm=", 0) == 0) {
            shm_name = arg.substr(6);
            if (!validShmName(shm_name)) {
                std::fprintf(stderr, "%s: bad shm name %s\n", argv[0],
                             shm_name.c_str());
                return 2;
            }
        } else if (arg.rfind("--iters=", 0) == 0) {
            if (!parseCount(arg.c_str() + 8, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            train_iters = nval;
        } else if (arg.rfind("--episodes=", 0) == 0) {
            if (!parseCount(arg.c_str() + 11, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            eval_episodes = nval;
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseCount(arg.c_str() + 7, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            seed = nval;
        } else if (arg.rfind("--attach-timeout-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 20, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            attach_timeout_ms = nval;
        } else {
            std::fprintf(stderr, "%s: unknown argument %s\n", argv[0],
                         argv[i]);
            usage(argv[0]);
            return 2;
        }
    }

    const double static_time = staticBaseline(eval_episodes, seed);

    if (shm_name.empty()) {
        // Synthetic mode: Linux-grade (noisy + stale, the raw
        // multiplexed-counter profile) vs BayesPerf-grade inputs.
        auto trained_eval = [&](ml::FeatureNoise noise) {
            ml::EnvConfig env;
            env.noise = noise;
            env.seed = seed;
            ml::RlConfig rl;
            rl.iterations = train_iters;
            ml::RlScheduler scheduler(env, rl);
            const auto curve = scheduler.train();
            std::printf(
                "  noise %4.1f%% stale %0.2f: loss %0.3f -> %0.3f "
                "over %zu iters\n",
                noise.errorPct, noise.staleness, curve.loss.front(),
                curve.loss.back(), curve.loss.size());
            return scheduler.evaluate(eval_episodes);
        };

        std::puts("training the PCIe-aware RL scheduler...");
        const double rl_linux = trained_eval(ml::FeatureNoise{38.0, 0.5});
        const double rl_bp = trained_eval(ml::FeatureNoise{10.0, 0.0});

        std::cout << "\n";
        TablePrinter t({"policy", "avg normalized makespan",
                        "vs static %"});
        t.addRow({"static (local NIC)", formatDouble(static_time, 3),
                  "0.0"});
        t.addRow({"RL + Linux counters", formatDouble(rl_linux, 3),
                  formatDouble(
                      100.0 * (static_time - rl_linux) / static_time,
                      1)});
        t.addRow({"RL + BayesPerf counters", formatDouble(rl_bp, 3),
                  formatDouble(
                      100.0 * (static_time - rl_bp) / static_time, 1)});
        t.print(std::cout);
        return 0;
    }

    // Live mode: attach to the daemon's segment (retrying only the
    // typed retryable outcomes — segment not created / not ready yet).
    std::printf("attaching to %s...\n", shm_name.c_str());
    const auto attach_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(attach_timeout_ms);
    ml::ShimFeedConfig feed_config;
    feed_config.seed = seed * 31 + 4;
    ml::ShimFeedAttach attached =
        ml::ShimCounterFeed::attach(shm_name, feed_config);
    while (!attached && attached.retryable() &&
           std::chrono::steady_clock::now() < attach_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        attached = ml::ShimCounterFeed::attach(shm_name, feed_config);
    }
    if (!attached) {
        std::fprintf(stderr, "%s: attach failed: %s\n", argv[0],
                     shim::attachStatusName(attached.status));
        return 1;
    }
    std::printf("attached; polling posteriors per observation\n");

    ml::EnvConfig env;
    env.seed = seed;
    env.feed = &*attached.feed;
    ml::RlConfig rl;
    rl.iterations = train_iters;
    ml::RlScheduler scheduler(env, rl);
    const auto curve = scheduler.train();
    std::printf("  live feed: loss %0.3f -> %0.3f over %zu iters\n",
                curve.loss.front(), curve.loss.back(),
                curve.loss.size());
    const double rl_live = scheduler.evaluate(eval_episodes);

    std::cout << "\n";
    TablePrinter t({"policy", "avg normalized makespan", "vs static %"});
    t.addRow({"static (local NIC)", formatDouble(static_time, 3),
              "0.0"});
    t.addRow({"RL + live shim posteriors", formatDouble(rl_live, 3),
              formatDouble(100.0 * (static_time - rl_live) / static_time,
                           1)});
    t.print(std::cout);

    const ml::FeedStats stats = attached.feed->stats();
    printFeedStats(stats);
    if (stats.okPolls == 0) {
        std::fprintf(stderr,
                     "%s: no live posterior was ever served\n",
                     argv[0]);
        return 1;
    }
    return 0;
}
