#include "baselines/bayesperf_estimator.h"

namespace bperf {
namespace baselines {

void
BayesPerfEstimator::ensureRun(const sim::PerfResult &run) const
{
    if (cachedKey_ == &run)
        return;
    cached_ = engine_.infer(run);
    cachedKey_ = &run;
}

std::vector<double>
BayesPerfEstimator::series(const sim::PerfResult &run,
                           sim::EventId event) const
{
    ensureRun(run);
    return cached_.meanSeries(event);
}

std::vector<double>
BayesPerfEstimator::uncertainty(const sim::PerfResult &run,
                                sim::EventId event) const
{
    ensureRun(run);
    return cached_.stddevSeries(event);
}

} // namespace baselines
} // namespace bperf
