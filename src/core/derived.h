/**
 * @file
 * Derived events: metrics computed from groups of HPCs via a
 * mathematical expression (paper section 2, "Errors in Derived
 * Events").
 *
 * Each metric is a ratio of two linear combinations of events, which
 * covers the paper's examples (Backend_Bound, Memory_Bound, DRAM
 * bandwidth utilization, MPKI-style rates).  The evaluation section
 * measures 10 derived events per architecture; standardDerivedMetrics
 * provides that set.
 */

#ifndef BPERF_CORE_DERIVED_H
#define BPERF_CORE_DERIVED_H

#include <functional>
#include <string>
#include <vector>

#include "sim/microarch.h"

namespace bperf {
namespace core {

/** A derived metric: scale * (num . e) / (den . e). */
struct DerivedMetric
{
    std::string name;
    std::vector<std::pair<sim::Role, double>> numerator;
    /** Empty denominator means "divide by 1". */
    std::vector<std::pair<sim::Role, double>> denominator;
    double scale = 1.0;
};

/** The 10 derived events measured in the paper's evaluation. */
const std::vector<DerivedMetric> &standardDerivedMetrics();

/** Distinct roles used across a metric set. */
std::vector<sim::Role>
rolesUsed(const std::vector<DerivedMetric> &metrics);

/** Distinct event ids for a metric set on an architecture. */
std::vector<sim::EventId>
eventsUsed(const sim::MicroarchDescriptor &uarch,
           const std::vector<DerivedMetric> &metrics);

/**
 * Evaluate a metric given a per-event value lookup.  Returns 0 when
 * the denominator vanishes.
 */
double evalDerived(const DerivedMetric &metric,
                   const sim::MicroarchDescriptor &uarch,
                   const std::function<double(sim::EventId)> &value);

/**
 * Evaluate a metric per slice from per-event series.  `series(e)`
 * must return the per-slice values of event e.
 */
std::vector<double> derivedSeries(
    const DerivedMetric &metric, const sim::MicroarchDescriptor &uarch,
    std::size_t num_slices,
    const std::function<std::vector<double>(sim::EventId)> &series);

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_DERIVED_H
