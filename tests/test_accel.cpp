/** @file Tests for the accelerator timing, area/power, and latency
 * models. */

#include <cmath>

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "accel/latency.h"
#include "accel/noc.h"
#include "accel/power.h"

namespace bperf {
namespace accel {
namespace {

TEST(Noc, ButterflyStagesAreLog2Ports)
{
    EXPECT_EQ(ButterflyNoc({.ports = 16}).stages(), 4u);
    EXPECT_EQ(ButterflyNoc({.ports = 8}).stages(), 3u);
}

TEST(Noc, LatencyCoversAllStages)
{
    NocConfig cfg;
    ButterflyNoc noc(cfg);
    const auto lat = noc.messageLatency(0, 9);
    EXPECT_EQ(lat, 4 * cfg.cyclesPerHop +
                       cfg.flitsPerMessage * cfg.cyclesPerFlit);
    // Local delivery is just serialization.
    EXPECT_EQ(noc.messageLatency(3, 3),
              cfg.flitsPerMessage * cfg.cyclesPerFlit);
}

TEST(Noc, LoadInflatesLatency)
{
    ButterflyNoc noc;
    EXPECT_GT(noc.messageLatencyLoaded(0, 5, 0.8),
              noc.messageLatencyLoaded(0, 5, 0.0));
}

TEST(Accelerator, MoreSweepsCostMoreCycles)
{
    Accelerator acc;
    InferenceJob job;
    job.numSites = 64;
    job.numSweeps = 2;
    const auto t2 = acc.simulate(job);
    job.numSweeps = 8;
    const auto t8 = acc.simulate(job);
    EXPECT_GT(t8.totalCycles, 3 * t2.totalCycles);
}

TEST(Accelerator, MoreEnginesAreFaster)
{
    AcceleratorConfig cfg;
    cfg.epEngines = 1;
    Accelerator slow(cfg);
    cfg.epEngines = 4;
    Accelerator fast(cfg);
    InferenceJob job;
    job.numSites = 96;
    EXPECT_LT(fast.simulate(job).totalCycles,
              slow.simulate(job).totalCycles);
}

TEST(Accelerator, CapiTransferCheaperThanPcieDma)
{
    AcceleratorConfig cfg;
    cfg.hostInterface = HostInterface::Capi;
    Accelerator capi(cfg);
    cfg.hostInterface = HostInterface::PcieDma;
    Accelerator pcie(cfg);
    InferenceJob job;
    job.numSites = 64;
    EXPECT_LT(capi.simulate(job).hostTransferCycles,
              pcie.simulate(job).hostTransferCycles);
}

TEST(Accelerator, PollLatencyWithinTwoPercentOnCapi)
{
    Accelerator acc;
    const std::uint64_t native = 3450;
    const auto poll = acc.pollLatencyHostCycles(2.6, native);
    EXPECT_LT(static_cast<double>(poll),
              1.02 * static_cast<double>(native));
    EXPECT_GT(poll, native);
}

TEST(Accelerator, UtilizationsAreFractions)
{
    Accelerator acc;
    InferenceJob job;
    job.numSites = 72;
    job.numSweeps = 4;
    const auto t = acc.simulate(job);
    EXPECT_GT(t.samplerUtilization, 0.0);
    EXPECT_LE(t.samplerUtilization, 1.0);
    EXPECT_GT(t.epEngineUtilization, 0.0);
    EXPECT_LE(t.epEngineUtilization, 1.0);
}

TEST(Power, Table1UtilizationMatchesPaper)
{
    const auto x86 = buildAreaPowerReport(BoardConfig::X86Pcie);
    EXPECT_EQ(std::lround(x86.utilBramPct), 62);
    EXPECT_EQ(std::lround(x86.utilDspPct), 78);
    EXPECT_EQ(std::lround(x86.utilFfPct), 52);
    EXPECT_EQ(std::lround(x86.utilLutPct), 81);
    EXPECT_EQ(std::lround(x86.utilUramPct), 58);
    EXPECT_NEAR(x86.vivadoWatts, 11.2, 0.05);
    EXPECT_NEAR(x86.measuredWatts, 17.2, 0.1);

    const auto ppc = buildAreaPowerReport(BoardConfig::Ppc64Capi);
    EXPECT_EQ(std::lround(ppc.utilBramPct), 71);
    EXPECT_EQ(std::lround(ppc.utilDspPct), 66);
    EXPECT_EQ(std::lround(ppc.utilFfPct), 49);
    EXPECT_EQ(std::lround(ppc.utilLutPct), 79);
    EXPECT_EQ(std::lround(ppc.utilUramPct), 58);
    EXPECT_NEAR(ppc.vivadoWatts, 10.5, 0.05);
    EXPECT_NEAR(ppc.measuredWatts, 16.1, 0.1);
}

TEST(Power, EfficiencyRatiosMatchPaper)
{
    const auto x86 = buildAreaPowerReport(BoardConfig::X86Pcie);
    const auto ppc = buildAreaPowerReport(BoardConfig::Ppc64Capi);
    EXPECT_NEAR(hostTdpWatts(BoardConfig::X86Pcie) / x86.measuredWatts,
                5.8, 0.1);
    EXPECT_NEAR(hostTdpWatts(BoardConfig::Ppc64Capi) / ppc.measuredWatts,
                11.8, 0.1);
}

TEST(Power, DesignFitsTheVu3p)
{
    for (auto cfg : {BoardConfig::X86Pcie, BoardConfig::Ppc64Capi}) {
        const auto r = buildAreaPowerReport(cfg);
        EXPECT_LE(r.utilLutPct, 100.0);
        EXPECT_LE(r.utilBramPct, 100.0);
        EXPECT_LE(r.utilDspPct, 100.0);
    }
}

TEST(Latency, OrderingMatchesFig3)
{
    ReadLatencyModel model;
    Accelerator acc;
    const auto report = model.report(acc);
    ASSERT_EQ(report.size(), 5u);
    const auto linux_c = report[0].cycles;
    const auto rdpmc = report[1].cycles;
    const auto bp_cpu = report[2].cycles;
    const auto bp_acc = report[3].cycles;
    const auto cm = report[4].cycles;

    EXPECT_LT(rdpmc, linux_c);
    EXPECT_GT(bp_cpu, 2 * linux_c);   // software inference is costly
    EXPECT_LT(bp_acc, linux_c + linux_c / 10); // near-native
    EXPECT_GT(cm, linux_c);           // online mining is costly
}

TEST(Latency, AccelReadBeatsCpuReadByOrderOfMagnitude)
{
    ReadLatencyModel model;
    Accelerator acc;
    EXPECT_GT(model.bayesPerfCpuCycles(),
              2 * model.bayesPerfAccelCycles(acc));
}

} // namespace
} // namespace accel
} // namespace bperf
