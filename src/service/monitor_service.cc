#include "service/monitor_service.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/logging.h"
#include "core/bayesperf.h"
#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

namespace {

std::unique_ptr<core::InferenceBackend>
makeBackend(const MonitorServiceConfig &config)
{
    if (config.backend == BackendKind::Accel)
        return std::make_unique<accel::AccelBackend>(config.accel);
    return std::make_unique<core::HostBackend>();
}

/** Admission config with its stream clock aligned to the pool's. */
AdmissionConfig
alignedAdmission(const MonitorServiceConfig &config)
{
    AdmissionConfig admission = config.admission;
    if (config.backend == BackendKind::Accel)
        admission.slicePeriodSeconds = config.accel.slicePeriodSeconds;
    return admission;
}

} // namespace

MonitorService::MonitorService(const sim::MicroarchDescriptor &uarch,
                               MonitorServiceConfig config)
    : uarch_(uarch), config_(config), backend_(makeBackend(config)),
      admission_(alignedAdmission(config), backend_.get()),
      registry_(config.numShards),
      snapshot_(config.snapshot.enabled
                    ? std::make_unique<SnapshotPublisher>(config.snapshot)
                    : nullptr),
      hub_(config.subscriberQueueCapacity),
      pool_(config.numWorkers, [this](SessionId id) { processSession(id); })
{
}

MonitorService::~MonitorService() = default;

SessionId
MonitorService::open(const std::vector<sim::EventId> &events,
                     const SessionConfig *overrides)
{
    const OpenResult result = open(std::string{}, events, overrides);
    bp_assert(result.admitted(),
              "admission rejected an untargeted open ("
                  << admissionErrorName(result.error)
                  << "); use the tenant overload under admission control");
    return *result.id;
}

OpenResult
MonitorService::open(const std::string &tenant,
                     const std::vector<sim::EventId> &events,
                     const SessionConfig *overrides)
{
    const AdmissionError verdict = admission_.admitSession(tenant);
    if (verdict != AdmissionError::None)
        return OpenResult{std::nullopt, verdict};

    std::vector<sim::EventId> monitored =
        core::resolveMonitoredSet(uarch_, events);

    SessionConfig cfg =
        overrides != nullptr ? *overrides : config_.sessionDefaults;
    const SessionId id = registry_.allocateId();
    // Wire the shared execution backend into the session unless the
    // caller overrode it with its own.
    if (cfg.streaming.inference.backend == nullptr)
        cfg.streaming.inference.backend = backend_.get();
    cfg.streaming.inference.backendSessionKey = id;
    // A session is exported through the snapshot shim only if a slot
    // is free and its event set fits one; otherwise it still runs,
    // un-exported, and its windows count as snapshot drops.
    std::optional<std::size_t> snapshot_slot;
    if (snapshot_)
        snapshot_slot = snapshot_->allocate(id, monitored.size());
    // Every completed window flows to the snapshot table (freshest
    // posterior first, so a shim poll never lags the push path), the
    // subscription hub, and the tenant's in-flight window accounting.
    Session::WindowSink sink = [this, tenant,
                                snapshot_slot](const WindowUpdate &u) {
        admission_.windowExecuted(tenant, u.execution);
        if (snapshot_) {
            if (snapshot_slot)
                snapshot_->publish(*snapshot_slot, u);
            else
                snapshot_->countDrop();
        }
        hub_.publish(u);
        if (config_.trace != nullptr)
            config_.trace->addWindow(u.sessionId, u.windowId, u.execution);
    };
    registry_.insert(std::make_shared<Session>(
        id, uarch_, std::move(monitored), cfg, tenant, std::move(sink)));
    {
        std::lock_guard<std::mutex> lock(closedMutex_);
        ++sessionsOpened_;
    }
    return OpenResult{id, AdmissionError::None};
}

void
MonitorService::notifyWork(Session &session)
{
    for (;;) {
        SessionState state = session.state.load(std::memory_order_acquire);
        switch (state) {
          case SessionState::Idle:
            if (session.state.compare_exchange_weak(state,
                                                    SessionState::Queued)) {
                pool_.submit(session.id());
                return;
            }
            break;
          case SessionState::Running:
            if (session.state.compare_exchange_weak(
                    state, SessionState::RunningDirty))
                return;
            break;
          case SessionState::Queued:
          case SessionState::RunningDirty:
            // A visit is already guaranteed to see this record: the
            // claiming worker drains after clearing the dirty flag.
            return;
        }
    }
}

void
MonitorService::processSession(SessionId id)
{
    const std::shared_ptr<Session> session = registry_.find(id);
    if (!session)
        return; // closed between submit and pop
    SessionState expected = SessionState::Queued;
    if (!session->state.compare_exchange_strong(expected,
                                                SessionState::Running))
        return; // a closer claimed the session first
    for (;;) {
        session->drain();
        expected = SessionState::Running;
        if (session->state.compare_exchange_strong(expected,
                                                   SessionState::Idle))
            return;
        // RunningDirty: records arrived mid-drain; loop.
        bp_assert(expected == SessionState::RunningDirty,
                  "unexpected session state " << static_cast<int>(expected));
        session->state.store(SessionState::Running,
                             std::memory_order_release);
    }
}

bool
MonitorService::ingest(SessionId id, const sim::PerfRecord &rec)
{
    const std::shared_ptr<Session> session = registry_.find(id);
    if (!session)
        return false;
    if (admission_.enabled() &&
        admission_.admitRecord(session->tenant(), streamSeconds(rec)) !=
            AdmissionError::None)
        return false;
    const bool accepted = session->offer(rec);
    if (accepted)
        notifyWork(*session);
    return accepted;
}

std::size_t
MonitorService::ingestBatch(SessionId id,
                            const std::vector<sim::PerfRecord> &records)
{
    const std::shared_ptr<Session> session = registry_.find(id);
    if (!session)
        return 0;
    const bool gated = admission_.enabled();
    std::size_t accepted = 0;
    for (const auto &rec : records) {
        if (gated && admission_.admitRecord(session->tenant(),
                                            streamSeconds(rec)) !=
                         AdmissionError::None)
            continue;
        if (session->offer(rec) && ++accepted == 1) {
            // Wake a worker on the first accepted record so a batch
            // larger than the ring drains concurrently instead of
            // guaranteeing overflow drops.
            notifyWork(*session);
        }
    }
    if (accepted > 0) {
        // Re-notify after the last push: the worker may have gone
        // Idle between our offers, missing the tail of the batch.
        notifyWork(*session);
    }
    return accepted;
}

std::optional<SessionReport>
MonitorService::close(SessionId id)
{
    std::shared_ptr<Session> session = registry_.find(id);
    if (!session)
        return std::nullopt;

    // Keep the session visible to stats() through every step of the
    // close: it joins closing_ BEFORE leaving the registry (stats()
    // dedups by id), and leaves closing_ in the same critical
    // section that merges it into the closed totals — so aggregate
    // counters never transiently lose a session.
    {
        std::lock_guard<std::mutex> lock(closedMutex_);
        closing_.push_back(session);
    }
    if (!registry_.erase(id)) {
        // A concurrent close() of the same id won the race.
        std::lock_guard<std::mutex> lock(closedMutex_);
        closing_.erase(std::find(closing_.begin(), closing_.end(), session));
        return std::nullopt;
    }

    // Claim the session away from the workers.  After the erase no
    // new visits can be scheduled; a worker still holding the session
    // finishes its drain and parks it Idle (or leaves it Queued in
    // the pool queue, where the visit will miss the registry lookup).
    for (;;) {
        SessionState state = SessionState::Idle;
        if (session->state.compare_exchange_strong(state,
                                                   SessionState::Running))
            break;
        state = SessionState::Queued;
        if (session->state.compare_exchange_strong(state,
                                                   SessionState::Running))
            break;
        std::this_thread::yield();
    }

    session->drain();
    session->finishStream();

    SessionReport report;
    report.id = id;
    report.events = session->events();
    report.stats = session->statsSnapshot();
    report.posterior = session->takeResult();
    {
        std::lock_guard<std::mutex> lock(closedMutex_);
        ++sessionsClosed_;
        closedTotals_.merge(report.stats);
        closing_.erase(std::find(closing_.begin(), closing_.end(), session));
    }
    admission_.sessionClosed(session->tenant());
    if (snapshot_)
        snapshot_->release(id); // after the tail windows published
    return report;
}

std::optional<SubscriptionId>
MonitorService::subscribe(SessionId id, WindowCallback callback)
{
    if (!registry_.find(id))
        return std::nullopt;
    return hub_.subscribe(id, std::move(callback));
}

bool
MonitorService::unsubscribe(SubscriptionId id)
{
    return hub_.unsubscribe(id);
}

std::optional<SubscriptionStats>
MonitorService::subscriptionStats(SubscriptionId id) const
{
    return hub_.stats(id);
}

std::vector<sim::EventId>
MonitorService::monitoredEvents(SessionId id) const
{
    const std::shared_ptr<Session> session = registry_.find(id);
    return session ? session->events() : std::vector<sim::EventId>{};
}

std::optional<core::PosteriorPoint>
MonitorService::latest(SessionId id, sim::EventId event) const
{
    const std::shared_ptr<Session> session = registry_.find(id);
    return session ? session->latest(event) : std::nullopt;
}

ServiceStats
MonitorService::stats() const
{
    ServiceStats out;
    // Hold closedMutex_ across the whole aggregation: every session
    // membership transition (closing_ push -> registry erase ->
    // closed-totals merge) begins by acquiring it, so the
    // closing_/registry/closedTotals_ topology is frozen while we sum
    // and no session can fall between the buckets mid-scan.  Lock
    // order closedMutex_ -> registry shard -> session stats is
    // acyclic with close()'s strictly sequential acquisitions.
    std::lock_guard<std::mutex> lock(closedMutex_);
    out.sessionsOpened = sessionsOpened_;
    out.sessionsClosed = sessionsClosed_;
    out.totals = closedTotals_;
    out.backendName = backend_->name();
    out.backend = backend_->stats();
    // Read the backlog at the controller's stream clock so an idle
    // service reports a drained queue, not the last-release snapshot.
    out.backendQueue = admission_.backendQueue();
    out.admission = admission_.stats();
    if (snapshot_)
        out.snapshot = snapshot_->stats();
    {
        auto &registry = telemetry::MetricsRegistry::global();
        out.logWarnings = registry.counterValue("log.warnings");
        out.logErrors = registry.counterValue("log.errors");
    }
    std::unordered_set<SessionId> closing_ids;
    for (const auto &session : closing_) {
        // Racing closers can list a session twice; count it once.
        if (closing_ids.insert(session->id()).second)
            out.totals.merge(session->statsSnapshot());
    }
    out.sessionsLive = 0;
    registry_.forEach([&out, &closing_ids](const Session &session) {
        // A closing session may still be in the registry for an
        // instant; it was already counted through closing_.
        if (closing_ids.count(session.id()))
            return;
        ++out.sessionsLive;
        out.totals.merge(session.statsSnapshot());
    });
    return out;
}

bool
MonitorService::publishSelfMetrics()
{
    if (!snapshot_)
        return false;
    const ServiceStats s = stats();
    auto &registry = telemetry::MetricsRegistry::global();
    const telemetry::Histogram::Snapshot ep_window =
        registry.histogramSnapshot("ep.window_ns");
    const double ep_p99 =
        ep_window.count > 0 ? ep_window.percentile(99.0) : 0.0;
    const std::vector<SnapshotPublisher::SelfMetric> metrics = {
        {SelfSessionsLive, static_cast<double>(s.sessionsLive)},
        {SelfWindowsRun, static_cast<double>(s.totals.windowsRun)},
        {SelfRecordsIngested,
         static_cast<double>(s.totals.recordsIngested)},
        {SelfRecordsDropped, static_cast<double>(s.totals.recordsDropped)},
        {SelfEpSweeps, static_cast<double>(s.totals.epSweeps)},
        {SelfLogWarnings, static_cast<double>(s.logWarnings)},
        {SelfLogErrors, static_cast<double>(s.logErrors)},
        {SelfShimPublishes, static_cast<double>(s.snapshot.publishes)},
        {SelfEpWindowP99Nanos, ep_p99},
    };
    return snapshot_->publishSelfMetrics(metrics);
}

void
MonitorService::heartbeatSnapshot()
{
    if (snapshot_)
        snapshot_->heartbeat();
}

} // namespace service
} // namespace bperf
