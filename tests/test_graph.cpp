/** @file Tests for the factor graph, Gaussians, and exact inference. */

#include <cmath>

#include <gtest/gtest.h>

#include "graph/exact.h"
#include "graph/factor_graph.h"
#include "graph/gaussian.h"

namespace bperf {
namespace graph {
namespace {

TEST(Gaussian, MomentRoundTrip)
{
    const Gaussian g = Gaussian::fromMeanVar(3.0, 4.0);
    EXPECT_DOUBLE_EQ(g.mean(), 3.0);
    EXPECT_DOUBLE_EQ(g.variance(), 4.0);
}

TEST(Gaussian, ProductIsPrecisionWeighted)
{
    const Gaussian a = Gaussian::fromMeanVar(0.0, 1.0);
    const Gaussian b = Gaussian::fromMeanVar(10.0, 1.0);
    const Gaussian p = a * b;
    EXPECT_DOUBLE_EQ(p.mean(), 5.0);
    EXPECT_DOUBLE_EQ(p.variance(), 0.5);
}

TEST(Gaussian, DivisionInvertsProduct)
{
    const Gaussian a = Gaussian::fromMeanVar(2.0, 3.0);
    const Gaussian b = Gaussian::fromMeanVar(-1.0, 5.0);
    const Gaussian back = (a * b) / b;
    EXPECT_NEAR(back.mean(), a.mean(), 1e-12);
    EXPECT_NEAR(back.variance(), a.variance(), 1e-12);
}

TEST(Gaussian, FlatIsIdentity)
{
    const Gaussian a = Gaussian::fromMeanVar(2.0, 3.0);
    const Gaussian p = a * Gaussian::flat();
    EXPECT_DOUBLE_EQ(p.mean(), 2.0);
    EXPECT_FALSE(Gaussian::flat().isProper());
}

FactorGraph
chainGraph()
{
    // a - f1 - b - f2 - c, plus d isolated-ish via f3(d, a).
    FactorGraph g;
    const auto a = g.addVariable("a", 1.0);
    const auto b = g.addVariable("b", 1.0);
    const auto c = g.addVariable("c", 1.0);
    const auto d = g.addVariable("d", 1.0);
    g.addLinearGaussian("f1", {{a, 1.0}, {b, -1.0}}, 0.0, 1.0);
    g.addLinearGaussian("f2", {{b, 1.0}, {c, -1.0}}, 0.0, 1.0);
    g.addLinearGaussian("f3", {{d, 1.0}, {a, -1.0}}, 0.0, 1.0);
    return g;
}

TEST(FactorGraph, MarkovBlanketIsFactorNeighbours)
{
    const FactorGraph g = chainGraph();
    EXPECT_EQ(g.markovBlanket(0), (std::set<VarId>{1, 3})); // a: b, d
    EXPECT_EQ(g.markovBlanket(1), (std::set<VarId>{0, 2})); // b: a, c
    EXPECT_EQ(g.markovBlanket(3), (std::set<VarId>{0}));    // d: a
}

TEST(FactorGraph, BlanketOfSetExcludesSet)
{
    const FactorGraph g = chainGraph();
    const auto blanket = g.markovBlanketOfSet({0, 1});
    EXPECT_EQ(blanket, (std::set<VarId>{2, 3}));
}

TEST(FactorGraph, ShortestPathFollowsChain)
{
    const FactorGraph g = chainGraph();
    EXPECT_EQ(g.shortestPath(3, 2), (std::vector<VarId>{3, 0, 1, 2}));
    EXPECT_EQ(g.shortestPath(1, 1), (std::vector<VarId>{1}));
}

TEST(FactorGraph, DisconnectedPathIsEmpty)
{
    FactorGraph g;
    g.addVariable("a", 1.0);
    g.addVariable("b", 1.0);
    EXPECT_TRUE(g.shortestPath(0, 1).empty());
}

TEST(GaussianSolver, SingleVariablePosterior)
{
    // Prior N(0, 1), Gaussian observation N(4, 1) -> posterior N(2, 0.5).
    FactorGraph g;
    const auto x = g.addVariable("x", 1.0);
    g.addGaussianPrior("p", x, 0.0, 1.0);
    g.addGaussianPrior("m", x, 4.0, 1.0);
    const auto joint = GaussianSolver(g).solve();
    EXPECT_NEAR(joint.mean[0], 2.0, 1e-9);
    EXPECT_NEAR(joint.covariance(0, 0), 0.5, 1e-9);
}

TEST(GaussianSolver, LinearConstraintCouplesVariables)
{
    // x ~ N(0, 1), y ~ N(10, 1), constraint x = y (tight):
    // both posteriors -> 5 with strong correlation.
    FactorGraph g;
    const auto x = g.addVariable("x", 1.0);
    const auto y = g.addVariable("y", 1.0);
    g.addGaussianPrior("px", x, 0.0, 1.0);
    g.addGaussianPrior("py", y, 10.0, 1.0);
    g.addLinearGaussian("eq", {{x, 1.0}, {y, -1.0}}, 0.0, 1e-4);
    const auto joint = GaussianSolver(g).solve();
    EXPECT_NEAR(joint.mean[0], 5.0, 1e-3);
    EXPECT_NEAR(joint.mean[1], 5.0, 1e-3);
    const double corr =
        joint.covariance(0, 1) /
        std::sqrt(joint.covariance(0, 0) * joint.covariance(1, 1));
    EXPECT_GT(corr, 0.99);
}

TEST(GaussianSolver, ScaleHintsDoNotChangeAnswer)
{
    // The same model expressed with very different scale hints must
    // produce identical posteriors (hints only precondition).
    auto build = [](double hint) {
        FactorGraph g;
        const auto x = g.addVariable("x", hint);
        const auto y = g.addVariable("y", hint * 100.0);
        g.addGaussianPrior("px", x, 1.0e6, 1.0e6);
        g.addGaussianPrior("py", y, 2.0e6, 1.0e6);
        g.addLinearGaussian("f", {{x, 1.0}, {y, -0.5}}, 0.0, 1e3);
        return GaussianSolver(g).solve();
    };
    const auto a = build(4.0e5);
    const auto b = build(2.0e6);
    EXPECT_NEAR(a.mean[0], b.mean[0], 1e-3 * std::abs(a.mean[0]));
    EXPECT_NEAR(a.covariance(0, 0), b.covariance(0, 0),
                1e-3 * a.covariance(0, 0));
}

TEST(GaussianSolver, SitesActAsExtraPriors)
{
    FactorGraph g;
    const auto x = g.addVariable("x", 1.0);
    g.addGaussianPrior("p", x, 0.0, 1.0);
    std::vector<Gaussian> sites{Gaussian::fromMeanVar(4.0, 1.0)};
    const auto joint = GaussianSolver(g).solve(sites);
    EXPECT_NEAR(joint.mean[0], 2.0, 1e-9);
}

TEST(GaussianSolver, OffsetShiftsSolution)
{
    // x - 3 ~ N(0, small) -> x = 3.
    FactorGraph g;
    const auto x = g.addVariable("x", 1.0);
    g.addGaussianPrior("p", x, 0.0, 100.0);
    g.addLinearGaussian("obs", {{x, 1.0}}, -3.0, 1e-3);
    const auto joint = GaussianSolver(g).solve();
    EXPECT_NEAR(joint.mean[0], 3.0, 1e-3);
}

TEST(GaussianSolver, DetectsNonGaussianFactors)
{
    FactorGraph g;
    const auto x = g.addVariable("x", 1.0);
    g.addGaussianPrior("p", x, 0.0, 1.0);
    GaussianSolver s1(g);
    EXPECT_FALSE(s1.hasNonGaussianFactors());
    g.addStudentT("m", x, 1.0, 1.0, 3.0);
    GaussianSolver s2(g);
    EXPECT_TRUE(s2.hasNonGaussianFactors());
}

TEST(FactorGraph, FactorsOfKindTracksInsertionOrder)
{
    FactorGraph g;
    const VarId a = g.addVariable("a", 1.0);
    const VarId b = g.addVariable("b", 1.0);
    const FactorId p = g.addGaussianPrior("p", a, 0.0, 1.0);
    const FactorId m = g.addStudentT("m", a, 0.0, 1.0, 3.0);
    const FactorId l =
        g.addLinearGaussian("l", {{a, 1.0}, {b, -1.0}}, 0.0, 1.0);
    const FactorId m2 = g.addStudentT("m2", b, 1.0, 1.0, 3.0);

    EXPECT_EQ(g.factorsOfKind(FactorKind::GaussianPrior),
              std::vector<FactorId>{p});
    EXPECT_EQ(g.factorsOfKind(FactorKind::LinearGaussian),
              std::vector<FactorId>{l});
    EXPECT_EQ(g.factorsOfKind(FactorKind::StudentT),
              (std::vector<FactorId>{m, m2}));
}

TEST(GaussianSolver, SolveIntoReusesBuffersAcrossSolves)
{
    FactorGraph g;
    const VarId a = g.addVariable("a", 10.0);
    const VarId b = g.addVariable("b", 10.0);
    g.addGaussianPrior("pa", a, 5.0, 2.0);
    g.addGaussianPrior("pb", b, 7.0, 2.0);
    g.addLinearGaussian("tie", {{a, 1.0}, {b, -1.0}}, 0.0, 1.0);

    GaussianSolver solver(g);
    GaussianJoint joint;
    SolverScratch scratch;
    solver.solveInto({}, joint, scratch);
    const std::size_t grows = scratch.grows + solver.bufferGrows();
    EXPECT_GT(grows, 0u);

    const GaussianJoint fresh = solver.solve();
    for (int i = 0; i < 3; ++i)
        solver.solveInto({}, joint, scratch);
    EXPECT_EQ(scratch.grows + solver.bufferGrows(), grows);
    for (std::size_t v = 0; v < 2; ++v) {
        EXPECT_DOUBLE_EQ(joint.mean[v], fresh.mean[v]);
        EXPECT_DOUBLE_EQ(joint.covariance(v, v),
                         fresh.covariance(v, v));
    }
}

TEST(GaussianSolver, Rank1SiteUpdateMatchesFullResolve)
{
    FactorGraph g;
    const VarId a = g.addVariable("a", 10.0);
    const VarId b = g.addVariable("b", 1000.0);
    const VarId c = g.addVariable("c", 0.1);
    g.addGaussianPrior("pa", a, 12.0, 4.0);
    g.addGaussianPrior("pb", b, 900.0, 300.0);
    g.addGaussianPrior("pc", c, 0.09, 0.05);
    g.addLinearGaussian("ab", {{a, 100.0}, {b, -1.0}}, 0.0, 50.0);
    g.addLinearGaussian("bc", {{b, 1.0}, {c, -1e4}}, 0.0, 80.0);

    GaussianSolver solver(g);
    SolverScratch scratch;

    std::vector<Gaussian> sites(3, Gaussian::flat());
    sites[a] = Gaussian::fromMeanVar(11.0, 9.0);
    sites[c] = Gaussian::fromMeanVar(0.1, 0.01);

    GaussianJoint joint;
    solver.solveInto(sites, joint, scratch);

    // Apply a chain of site changes (updates and downdates) via
    // rank-1; re-solving from the final site values must agree.
    struct Change
    {
        VarId v;
        double mean, var;
    } changes[] = {
        {a, 10.0, 4.0}, {b, 950.0, 1e4}, {c, 0.11, 0.004},
        {a, 12.5, 16.0}, // downdate on a
    };
    for (const Change &ch : changes) {
        const Gaussian next = Gaussian::fromMeanVar(ch.mean, ch.var);
        const Gaussian delta = next / sites[ch.v];
        ASSERT_TRUE(GaussianSolver::rank1SiteUpdate(
            joint, ch.v, delta.lambda, delta.eta, scratch));
        sites[ch.v] = next;
    }

    GaussianJoint resolved;
    solver.solveInto(sites, resolved, scratch);
    for (std::size_t v = 0; v < 3; ++v) {
        EXPECT_NEAR(joint.mean[v], resolved.mean[v],
                    1e-9 * std::abs(resolved.mean[v]))
            << "var " << v;
        // Rank-1 updates maintain the lower triangle (see header).
        for (std::size_t u = 0; u <= v; ++u)
            EXPECT_NEAR(joint.covariance(v, u),
                        resolved.covariance(v, u),
                        1e-9 * std::sqrt(resolved.covariance(v, v) *
                                         resolved.covariance(u, u)))
                << "cov(" << v << ", " << u << ")";
    }
}

TEST(GaussianSolver, Rank1RefusesIllConditionedDowndate)
{
    FactorGraph g;
    const VarId a = g.addVariable("a", 1.0);
    g.addGaussianPrior("pa", a, 0.0, 1.0);

    GaussianSolver solver(g);
    SolverScratch scratch;
    std::vector<Gaussian> sites(1, Gaussian::fromMeanVar(0.0, 1e-4));
    GaussianJoint joint;
    solver.solveInto(sites, joint, scratch);

    // Removing (almost) the entire site precision would amplify the
    // joint ~1e4x: the guard must refuse and leave the joint intact.
    const double before = joint.covariance(a, a);
    EXPECT_FALSE(GaussianSolver::rank1SiteUpdate(
        joint, a, -sites[a].lambda * 0.9999, 0.0, scratch));
    EXPECT_DOUBLE_EQ(joint.covariance(a, a), before);

    // A huge precision *increase* is refused too (cancellation guard).
    EXPECT_FALSE(GaussianSolver::rank1SiteUpdate(
        joint, a, 1e9 / before, 0.0, scratch));
}

} // namespace
} // namespace graph
} // namespace bperf
