/**
 * @file
 * Shared harness used by the benchmark binaries that regenerate the
 * paper's tables and figures: monitored-set construction, estimator
 * comparison runs, and paper-style reporting.
 */

#ifndef BPERF_BENCH_BENCH_UTIL_H
#define BPERF_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/error_metrics.h"
#include "common/stats.h"
#include "common/logging.h"
#include "sim/ground_truth.h"
#include "sim/microarch.h"
#include "sim/workload_profile.h"

namespace bperf {
namespace bench {

/**
 * Minimal streaming writer for the BENCH_*.json artifacts, shared by
 * every bench binary so the schema (nesting, comma placement, number
 * formatting) is produced by exactly one piece of code instead of
 * per-bench printf JSON.
 *
 * Usage: begin/end calls must nest properly; value() / field() emit
 * scalars into the current array / object.  str() returns the
 * document, writeFile() dumps it with a trailing newline.
 */
class JsonWriter
{
  public:
    JsonWriter() { out_ << std::boolalpha; }

    JsonWriter &beginObject(const std::string &key = "")
    {
        open(key);
        out_ << '{';
        stack_.push_back(Scope::Object);
        first_ = true;
        return *this;
    }

    JsonWriter &endObject()
    {
        bp_assert(!stack_.empty() && stack_.back() == Scope::Object,
                  "endObject() outside an object");
        stack_.pop_back();
        out_ << '}';
        first_ = false;
        return *this;
    }

    JsonWriter &beginArray(const std::string &key = "")
    {
        open(key);
        out_ << '[';
        stack_.push_back(Scope::Array);
        first_ = true;
        return *this;
    }

    JsonWriter &endArray()
    {
        bp_assert(!stack_.empty() && stack_.back() == Scope::Array,
                  "endArray() outside an array");
        stack_.pop_back();
        out_ << ']';
        first_ = false;
        return *this;
    }

    template <typename T>
    JsonWriter &field(const std::string &key, const T &value)
    {
        open(key);
        scalar(value);
        return *this;
    }

    template <typename T> JsonWriter &value(const T &value)
    {
        open("");
        scalar(value);
        return *this;
    }

    /** The finished document; all scopes must be closed. */
    std::string str() const
    {
        bp_assert(stack_.empty(), "unclosed JSON scope");
        return out_.str();
    }

    /** Write the document (plus trailing newline) to `path`. */
    bool writeFile(const std::string &path) const
    {
        std::ofstream file(path);
        if (!file)
            return false;
        file << str() << '\n';
        return static_cast<bool>(file);
    }

  private:
    enum class Scope { Object, Array };

    void open(const std::string &key)
    {
        if (!first_ && !stack_.empty())
            out_ << ", ";
        first_ = false;
        if (!stack_.empty() && stack_.back() == Scope::Object) {
            bp_assert(!key.empty(), "object member needs a key");
            scalar(key);
            out_ << ": ";
        } else {
            bp_assert(key.empty(), "key given outside an object");
        }
    }

    void scalar(const std::string &v)
    {
        out_ << '"';
        for (char c : v) {
            switch (c) {
              case '"': out_ << "\\\""; break;
              case '\\': out_ << "\\\\"; break;
              case '\n': out_ << "\\n"; break;
              case '\t': out_ << "\\t"; break;
              default: out_ << c; break;
            }
        }
        out_ << '"';
    }
    void scalar(const char *v) { scalar(std::string(v)); }
    void scalar(bool v) { out_ << (v ? "true" : "false"); }
    void scalar(double v)
    {
        // JSON has no nan/inf literals; a percentile over an empty
        // sample set (0-window run) must come out as null, not as a
        // bare token that breaks every consumer of the artifact.
        if (std::isfinite(v))
            out_ << v;
        else
            out_ << "null";
    }
    void scalar(float v) { scalar(static_cast<double>(v)); }
    template <typename T> void scalar(const T &v) { out_ << v; }

    std::ostringstream out_;
    std::vector<Scope> stack_;
    bool first_ = true;
};

/** One estimator's error on one run. */
struct EstimatorErrors
{
    std::string name;
    /** Average error across the 10 standard derived metrics (%). */
    double derivedErrorPct = 0.0;
    /** Average per-event trace error (%). */
    double eventErrorPct = 0.0;
};

/** Knobs for a comparison run. */
struct ComparisonConfig
{
    std::size_t numSlices = 96;
    std::uint64_t truthSeed = 1234;
    std::uint64_t samplingSeed = 77;
    std::uint64_t pollSeed = 991;
    bool useOverlapSchedule = true;
    bool includeWmPin = false;
    bool includeBayesPerf = true;
};

/**
 * The monitored event set of the paper's evaluation: the HPCs behind
 * the 10 standard derived metrics plus their invariant-related
 * neighbours — 29 distinct programmable events, as in section 2's
 * derived-event example.
 */
std::vector<sim::EventId>
evaluationEventSet(const sim::MicroarchDescriptor &uarch);

/** First `n` events of a deterministic padded monitoring order. */
std::vector<sim::EventId>
paddedEventSet(const sim::MicroarchDescriptor &uarch, std::size_t n);

/**
 * Run one workload under sampling, score Linux / CounterMiner /
 * (optionally WM+Pin) / BayesPerf against a polled reference run of
 * the same execution.
 */
std::vector<EstimatorErrors>
compareEstimators(const sim::MicroarchDescriptor &uarch,
                  const sim::WorkloadProfile &workload,
                  const std::vector<sim::EventId> &monitored,
                  const ComparisonConfig &config);

/**
 * percentile() for bench reporting paths: an empty sample set (e.g. a
 * 0-window run) yields NaN instead of dying, which the JsonWriter
 * serializes as null.  Inline so test binaries that only include the
 * header get it without linking the bench-util library.
 */
inline double
percentileOrNan(const std::vector<double> &xs, double p)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return percentile(xs, p);
}

/** True when the BP_QUICK environment variable asks for short runs. */
bool quickMode();

/** numSlices, honoring quick mode. */
std::size_t defaultSlices();

} // namespace bench
} // namespace bperf

#endif // BPERF_BENCH_BENCH_UTIL_H
