/**
 * @file
 * Counter-feed tests (mlsched/counter_feed.h): the synthetic feed's
 * bit-reproducibility and corruption arithmetic, the shim feed's
 * live quality derivation from posterior snapshots, its typed
 * degrade-to-last-good/fallback policy under injected writer faults,
 * bit-identity between what the feed serves and what the service's
 * subscription stream saw, and a forked-writer test where the parent
 * attaches a ShimCounterFeed to a child daemon's named segment and
 * rides through the child's death mid-publish.  The fork tests are
 * skipped under TSan (fork + TSan runtime do not mix).
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mlsched/counter_feed.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "shim/snapshot_layout.h"
#include "shim/snapshot_reader.h"
#include "shim/snapshot_region.h"
#include "sim/ground_truth.h"
#include "workloads/hibench.h"

#if defined(__SANITIZE_THREAD__)
#define BPERF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BPERF_TSAN 1
#endif
#endif

namespace bperf {
namespace ml {
namespace {

/** Unique POSIX shm name per test process (parallel ctest runs). */
std::string
uniqueShmName(const char *tag)
{
    return std::string("/bperf-test-") + tag + "-" +
           std::to_string(::getpid());
}

core::WindowExecution
sampleExecution()
{
    core::WindowExecution exec;
    exec.engineId = 1;
    exec.endSlice = 12;
    exec.queueWaitSeconds = 1e-4;
    exec.serviceSeconds = 2e-4;
    exec.transferSeconds = 0.5e-4;
    exec.modeledSeconds = 3.5e-4;
    return exec;
}

TEST(FeedServedName, CoversEveryEnumerator)
{
    for (FeedServed served :
         {FeedServed::Live, FeedServed::LastGood, FeedServed::Fallback}) {
        const char *name = feedServedName(served);
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
        EXPECT_STRNE(name, "?");
    }
    EXPECT_STREQ(feedServedName(FeedServed::Live), "live");
}

TEST(SyntheticFeed, SeededRunsAreBitIdentical)
{
    const FeatureNoise noise{25.0, 0.3};
    SyntheticCounterFeed a(noise, 77);
    SyntheticCounterFeed b(noise, 77);
    SyntheticCounterFeed other(noise, 78);

    bool any_diff = false;
    for (int step = 0; step < 20; ++step) {
        std::vector<double> sa = {10.0 + step, 20.0, 30.0, 4.0};
        std::vector<double> sb = sa;
        std::vector<double> sc = sa;
        const FeedQuality qa = a.observe(sa, 3);
        const FeedQuality qb = b.observe(sb, 3);
        other.observe(sc, 3);
        EXPECT_EQ(qa.errorPct, qb.errorPct);
        EXPECT_EQ(qa.served, FeedServed::Live);
        for (std::size_t i = 0; i < sa.size(); ++i)
            ASSERT_EQ(shim::doubleBits(sa[i]), shim::doubleBits(sb[i]))
                << "step " << step << " signal " << i;
        for (std::size_t i = 0; i < sa.size(); ++i)
            any_diff |= shim::doubleBits(sa[i]) != shim::doubleBits(sc[i]);
    }
    EXPECT_TRUE(any_diff) << "different seeds produced the same stream";
    EXPECT_EQ(a.stats().observations, 20u);
    EXPECT_EQ(a.stats().liveObservations, 20u);
    EXPECT_EQ(a.stats().degradedPolls(), 0u);
}

TEST(SyntheticFeed, ZeroNoiseIsIdentityAndTailPassesThrough)
{
    SyntheticCounterFeed clean(FeatureNoise{0.0, 0.0}, 5);
    std::vector<double> sig = {1.5, -0.0, 2.75, 8.0};
    const std::vector<double> orig = sig;
    clean.observe(sig, 2);
    for (std::size_t i = 0; i < sig.size(); ++i)
        EXPECT_EQ(shim::doubleBits(sig[i]), shim::doubleBits(orig[i]));

    // Heavy noise still never touches the non-HPC tail.
    SyntheticCounterFeed noisy(FeatureNoise{80.0, 0.4}, 5);
    for (int step = 0; step < 10; ++step) {
        std::vector<double> s = {3.0, 4.0, 5.5, 6.25};
        noisy.observe(s, 2);
        EXPECT_EQ(shim::doubleBits(s[2]), shim::doubleBits(5.5));
        EXPECT_EQ(shim::doubleBits(s[3]), shim::doubleBits(6.25));
    }
}

TEST(SyntheticFeed, StalenessMixesThePreviousTruth)
{
    // Pure staleness (no error): the second observation must be the
    // exact convex mix of the previous and current true signals.
    SyntheticCounterFeed feed(FeatureNoise{0.0, 0.25}, 9);
    std::vector<double> first = {100.0, 200.0, 7.0};
    feed.observe(first, 2);
    EXPECT_EQ(first[0], 100.0); // no previous truth yet
    EXPECT_EQ(first[1], 200.0);

    std::vector<double> second = {40.0, 120.0, 7.0};
    feed.observe(second, 2);
    EXPECT_DOUBLE_EQ(second[0], 0.75 * 40.0 + 0.25 * 100.0);
    EXPECT_DOUBLE_EQ(second[1], 0.75 * 120.0 + 0.25 * 200.0);
    EXPECT_EQ(second[2], 7.0);
}

/** Shim feed config used by the in-process tests: watch session 42,
 * short last-good hold so the fallback transition is testable. */
ShimFeedConfig
watchedConfig(std::size_t hold = 2)
{
    ShimFeedConfig cfg;
    cfg.watchedSessions = {42};
    cfg.holdLastGoodObservations = hold;
    cfg.fallback = FeatureNoise{38.0, 0.5};
    return cfg;
}

TEST(ShimFeed, DerivesLiveQualityFromThePosterior)
{
    shim::SnapshotRegion region(shim::SnapshotRegionConfig{4, 8});
    const std::vector<sim::EventId> events = {3, 9};
    // Relative stddevs 5% and 5% -> errorPct exactly 5.0.
    const std::vector<core::PosteriorPoint> posterior = {{100.0, 5.0},
                                                         {200.0, 10.0}};
    region.write(0, 42, 1, 6, sampleExecution(), events, posterior,
                 shim::steadyNowNanos());

    ShimCounterFeed feed(shim::SnapshotReader(region), watchedConfig());
    std::vector<double> sig = {50.0, 60.0, 70.0};
    const FeedQuality quality = feed.observe(sig, 2);

    EXPECT_EQ(quality.served, FeedServed::Live);
    EXPECT_NEAR(quality.errorPct, 5.0, 1e-9);
    EXPECT_LT(quality.staleness, 0.1); // just-published snapshot
    ASSERT_TRUE(feed.lastSnapshot().has_value());
    const shim::PosteriorSnapshot &snap = *feed.lastSnapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    for (std::size_t i = 0; i < posterior.size(); ++i) {
        EXPECT_EQ(snap.counters[i].event, events[i]);
        EXPECT_EQ(shim::doubleBits(snap.counters[i].posterior.mean),
                  shim::doubleBits(posterior[i].mean));
        EXPECT_EQ(shim::doubleBits(snap.counters[i].posterior.stddev),
                  shim::doubleBits(posterior[i].stddev));
    }
    EXPECT_EQ(feed.stats().okPolls, 1u);
    EXPECT_EQ(feed.stats().liveObservations, 1u);
    EXPECT_EQ(feed.stats().degradedPolls(), 0u);
}

TEST(ShimFeed, SkipsTheSelfMetricsPseudoSession)
{
    shim::SnapshotRegion region(shim::SnapshotRegionConfig{4, 8});
    // Session 0 (the daemon's self-metrics) with absurd uncertainty:
    // if it were polled, the clamp would push errorPct to the ceiling.
    region.write(0, 0, 1, 1, sampleExecution(), {1},
                 {core::PosteriorPoint{1.0, 100.0}},
                 shim::steadyNowNanos());
    region.write(1, 7, 1, 1, sampleExecution(), {2},
                 {core::PosteriorPoint{100.0, 5.0}},
                 shim::steadyNowNanos());

    ShimFeedConfig cfg; // empty watch list: scan everything but 0
    ShimCounterFeed feed(shim::SnapshotReader(region), cfg);
    std::vector<double> sig = {1.0, 2.0};
    const FeedQuality quality = feed.observe(sig, 1);
    EXPECT_EQ(quality.served, FeedServed::Live);
    EXPECT_NEAR(quality.errorPct, 5.0, 1e-9);
    EXPECT_EQ(feed.stats().okPolls, 1u);
}

TEST(ShimFeed, FallsBackBeforeTheFirstSuccessfulPoll)
{
    shim::SnapshotRegion region(shim::SnapshotRegionConfig{2, 4});
    ShimCounterFeed feed(shim::SnapshotReader(region), watchedConfig());
    std::vector<double> sig = {10.0, 20.0};
    const FeedQuality quality = feed.observe(sig, 1);
    EXPECT_EQ(quality.served, FeedServed::Fallback);
    EXPECT_EQ(quality.errorPct, 38.0);
    EXPECT_EQ(quality.staleness, 0.5);
    EXPECT_EQ(feed.stats().notFoundPolls, 1u);
    EXPECT_EQ(feed.stats().fallbackObservations, 1u);
}

TEST(ShimFeed, DegradesToLastGoodThenFallbackOnWriterDeath)
{
    shim::SnapshotRegion region(shim::SnapshotRegionConfig{4, 8});
    const std::vector<sim::EventId> events = {3};
    region.write(0, 42, 1, 6, sampleExecution(), events,
                 {core::PosteriorPoint{100.0, 5.0}},
                 shim::steadyNowNanos());

    ShimCounterFeed feed(shim::SnapshotReader(region),
                         watchedConfig(/*hold=*/2));
    std::vector<double> sig = {50.0, 60.0};
    const FeedQuality live = feed.observe(sig, 1);
    ASSERT_EQ(live.served, FeedServed::Live);

    // The writer "dies" mid-publish: the next write leaves the slot's
    // sequence odd forever, exactly what a crashed daemon leaves.
    shim::WriterFaultInjection faults;
    faults.armed = true;
    faults.skipFinalEvenStoreAtPublish = 2;
    region.setFaultInjection(faults);
    region.write(0, 42, 2, 12, sampleExecution(), events,
                 {core::PosteriorPoint{101.0, 5.0}},
                 shim::steadyNowNanos());

    // Two observations ride on the last-good quality...
    for (int i = 0; i < 2; ++i) {
        std::vector<double> s = {50.0, 60.0};
        const FeedQuality q = feed.observe(s, 1);
        EXPECT_EQ(q.served, FeedServed::LastGood) << i;
        EXPECT_EQ(q.errorPct, live.errorPct) << i;
        EXPECT_EQ(q.staleness, live.staleness) << i;
    }
    // ...then the hold budget expires and the fallback profile serves.
    std::vector<double> s = {50.0, 60.0};
    const FeedQuality q = feed.observe(s, 1);
    EXPECT_EQ(q.served, FeedServed::Fallback);
    EXPECT_EQ(q.errorPct, 38.0);
    EXPECT_EQ(q.staleness, 0.5);

    const FeedStats stats = feed.stats();
    EXPECT_EQ(stats.writerDeadPolls, 3u);
    EXPECT_EQ(stats.lastGoodObservations, 2u);
    EXPECT_EQ(stats.fallbackObservations, 1u);
    EXPECT_EQ(stats.observations, 4u);
    // The last consistent snapshot is still the pre-death one.
    ASSERT_TRUE(feed.lastSnapshot().has_value());
    EXPECT_EQ(feed.lastSnapshot()->windowIndex, 1u);
}

TEST(ShimFeed, AttachToMissingSegmentIsTypedAndRetryable)
{
    const ShimFeedAttach attached =
        ShimCounterFeed::attach(uniqueShmName("feed-missing"));
    EXPECT_FALSE(attached);
    EXPECT_EQ(attached.status, shim::AttachStatus::NoSegment);
    EXPECT_TRUE(attached.retryable());
}

} // namespace
} // namespace ml

// ---------------------------------------------------------------- service
// Bit-identity between the feed's snapshot and the subscription
// stream requires the full daemon; same namespace layout as
// test_shim.cpp's service section.

namespace service {
namespace {

const sim::MicroarchDescriptor &
uarch()
{
    static const sim::MicroarchDescriptor u = sim::makeX86Skylake();
    return u;
}

std::vector<sim::EventId>
monitoredSet()
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch().fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch().idForRole(r));
    return events;
}

TEST(ShimFeedService, ObservationQualityMatchesSubscriptionStream)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;
    cfg.snapshot.enabled = true;
    cfg.snapshot.slots = 8;
    cfg.snapshot.maxEvents = 32;
    MonitorService daemon(uarch(), cfg);
    ASSERT_NE(daemon.snapshotRegion(), nullptr);
    const SessionId id = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(id);

    std::mutex mutex;
    std::vector<WindowUpdate> updates;
    const auto sub = daemon.subscribe(id, [&](const WindowUpdate &u) {
        std::lock_guard<std::mutex> lock(mutex);
        updates.push_back(u);
    });
    ASSERT_TRUE(sub.has_value());

    const sim::GroundTruthGenerator generator(
        uarch(), wl::makeHibench("KMeans"));
    const sim::TruthTrace truth = generator.generate(24, 6101);
    sim::PerfSessionConfig session_cfg;
    session_cfg.seed = 6101 * 3 + 1;
    sim::PerfSession session(uarch(), session_cfg);
    const auto run = session.runRoundRobin(truth, monitored);
    daemon.ingestBatch(id, recordStream(run));
    daemon.quiesce();
    daemon.flushSubscriptions();

    ml::ShimFeedConfig feed_cfg;
    feed_cfg.watchedSessions = {id};
    ml::ShimCounterFeed feed(
        shim::SnapshotReader(*daemon.snapshotRegion()), feed_cfg);
    std::vector<double> sig = {1.0, 2.0, 3.0};
    const ml::FeedQuality quality = feed.observe(sig, 2);
    ASSERT_EQ(quality.served, ml::FeedServed::Live);

    // The feed's snapshot is the subscription stream's last window,
    // bit for bit — a live consumer sees exactly what a subscriber
    // would, just through shared memory.
    ASSERT_TRUE(feed.lastSnapshot().has_value());
    const shim::PosteriorSnapshot &snap = *feed.lastSnapshot();
    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_FALSE(updates.empty());
        const WindowUpdate &last = updates.back();
        EXPECT_EQ(snap.sessionId, last.sessionId);
        EXPECT_EQ(snap.windowIndex, last.windowIndex);
        EXPECT_EQ(snap.endSlice, last.endSlice);
        ASSERT_EQ(snap.counters.size(), last.posterior.size());
        double rel_sum = 0.0;
        for (std::size_t i = 0; i < snap.counters.size(); ++i) {
            EXPECT_EQ(snap.counters[i].event, last.events[i]);
            EXPECT_EQ(shim::doubleBits(snap.counters[i].posterior.mean),
                      shim::doubleBits(last.posterior[i].mean));
            EXPECT_EQ(
                shim::doubleBits(snap.counters[i].posterior.stddev),
                shim::doubleBits(last.posterior[i].stddev));
            rel_sum += last.posterior[i].stddev /
                       std::max(std::abs(last.posterior[i].mean), 1e-9);
        }
        // And the quality stamp is the clamp of exactly that mean
        // relative posterior uncertainty.
        const double expected =
            std::clamp(100.0 * rel_sum /
                           static_cast<double>(snap.counters.size()),
                       feed_cfg.minErrorPct, feed_cfg.maxErrorPct);
        EXPECT_NEAR(quality.errorPct, expected, 1e-9);
    }
    daemon.close(id);
    daemon.flushSubscriptions();
}

} // namespace
} // namespace service

// ------------------------------------------------------------ cross-process
#ifndef BPERF_TSAN

namespace ml {
namespace {

/** One-byte pipe handshake. */
bool
sendByte(int fd, char c)
{
    return ::write(fd, &c, 1) == 1;
}
bool
recvByte(int fd, char expected)
{
    char c = 0;
    return ::read(fd, &c, 1) == 1 && c == expected;
}

TEST(ShimFeedCrossProcess, ChildWriterFeedsParentThenDiesMidPublish)
{
    const std::string name = uniqueShmName("feed-fork");
    const std::vector<core::PosteriorPoint> posterior = {{320.0, 16.0}};

    int c2p[2], p2c[2];
    ASSERT_EQ(::pipe(c2p), 0);
    ASSERT_EQ(::pipe(p2c), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: a perf_daemon-style writer on a named segment.
        ::close(c2p[0]);
        ::close(p2c[1]);
        shim::SnapshotRegion region(shim::SnapshotRegionConfig{4, 8},
                                    name);
        region.write(0, /*session_id=*/9, /*window_index=*/1,
                     /*end_slice=*/6, sampleExecution(), {3}, posterior,
                     shim::steadyNowNanos());
        if (!sendByte(c2p[1], 'a') || !recvByte(p2c[0], 'g'))
            ::_exit(4);
        // Freeze the slot odd — the mid-publish state a crash leaves.
        shim::WriterFaultInjection faults;
        faults.armed = true;
        faults.skipFinalEvenStoreAtPublish = 2;
        region.setFaultInjection(faults);
        region.write(0, 9, 2, 12, sampleExecution(), {3}, posterior,
                     shim::steadyNowNanos());
        if (!sendByte(c2p[1], 'b'))
            ::_exit(4);
        for (;;) // parent SIGKILLs us; never run the destructor
            ::pause();
    }
    ::close(c2p[1]);
    ::close(p2c[0]);
    ASSERT_TRUE(recvByte(c2p[0], 'a'));

    // Attach with retry — only retryable statuses keep us looping.
    ShimFeedConfig cfg;
    cfg.watchedSessions = {9};
    cfg.holdLastGoodObservations = 1;
    std::optional<ShimCounterFeed> feed;
    for (int i = 0; i < 500 && !feed; ++i) {
        ShimFeedAttach attached = ShimCounterFeed::attach(name, cfg);
        if (attached) {
            feed = std::move(attached.feed);
            break;
        }
        ASSERT_TRUE(attached.retryable())
            << shim::attachStatusName(attached.status);
        ::usleep(2000);
    }
    ASSERT_TRUE(feed.has_value());

    std::vector<double> sig = {5.0, 7.0};
    const FeedQuality live = feed->observe(sig, 1);
    EXPECT_EQ(live.served, FeedServed::Live);
    EXPECT_NEAR(live.errorPct, 5.0, 1e-9); // 16/320 = 5%
    ASSERT_TRUE(feed->lastSnapshot().has_value());
    ASSERT_EQ(feed->lastSnapshot()->counters.size(), 1u);
    EXPECT_EQ(
        shim::doubleBits(feed->lastSnapshot()->counters[0].posterior.mean),
        shim::doubleBits(posterior[0].mean));
    EXPECT_EQ(shim::doubleBits(
                  feed->lastSnapshot()->counters[0].posterior.stddev),
              shim::doubleBits(posterior[0].stddev));

    ASSERT_TRUE(sendByte(p2c[1], 'g'));
    ASSERT_TRUE(recvByte(c2p[0], 'b'));

    // The writer is wedged mid-publish: the poll verdict is
    // WriterDead and the feed degrades, first to last-good...
    std::vector<double> s1 = {5.0, 7.0};
    const FeedQuality held = feed->observe(s1, 1);
    EXPECT_EQ(held.served, FeedServed::LastGood);
    EXPECT_EQ(held.errorPct, live.errorPct);
    // ...then to the fallback profile once the hold budget expires.
    std::vector<double> s2 = {5.0, 7.0};
    const FeedQuality fallen = feed->observe(s2, 1);
    EXPECT_EQ(fallen.served, FeedServed::Fallback);
    const FeedStats stats = feed->stats();
    EXPECT_EQ(stats.okPolls, 1u);
    EXPECT_EQ(stats.writerDeadPolls, 2u);
    EXPECT_EQ(stats.lastGoodObservations, 1u);
    EXPECT_EQ(stats.fallbackObservations, 1u);

    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ::close(c2p[0]);
    ::close(p2c[1]);
    // The SIGKILLed child never unlinked its segment.
    ::shm_unlink(name.c_str());
}

} // namespace
} // namespace ml

#endif // !BPERF_TSAN

} // namespace bperf
