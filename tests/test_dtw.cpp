/** @file Tests for dynamic time warping and the paper's error metric. */

#include <gtest/gtest.h>

#include "analysis/dtw.h"
#include "analysis/error_metrics.h"

namespace bperf {
namespace ana {
namespace {

TEST(Dtw, IdenticalSeriesHaveZeroDistance)
{
    const std::vector<double> a = {1, 2, 3, 2, 1};
    const auto r = dtw(a, a);
    EXPECT_DOUBLE_EQ(r.distance, 0.0);
    // Path is the diagonal.
    for (const auto &[i, j] : r.path)
        EXPECT_EQ(i, j);
}

TEST(Dtw, AlignsShiftedSeries)
{
    // A one-step shift should cost almost nothing under DTW but a lot
    // element-wise.
    const std::vector<double> a = {0, 0, 10, 0, 0, 0};
    const std::vector<double> b = {0, 0, 0, 10, 0, 0};
    EXPECT_LT(dtw(a, b).distance, 1e-9);
}

TEST(Dtw, PathIsMonotoneAndComplete)
{
    const std::vector<double> a = {3, 1, 4, 1, 5};
    const std::vector<double> b = {2, 7, 1, 8};
    const auto r = dtw(a, b);
    ASSERT_FALSE(r.path.empty());
    EXPECT_EQ(r.path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
    EXPECT_EQ(r.path.back(),
              (std::pair<std::size_t, std::size_t>{4, 3}));
    for (std::size_t k = 1; k < r.path.size(); ++k) {
        EXPECT_GE(r.path[k].first, r.path[k - 1].first);
        EXPECT_GE(r.path[k].second, r.path[k - 1].second);
        EXPECT_LE(r.path[k].first - r.path[k - 1].first, 1u);
        EXPECT_LE(r.path[k].second - r.path[k - 1].second, 1u);
    }
}

TEST(Dtw, BandLimitsWarping)
{
    const std::vector<double> a = {0, 0, 0, 0, 10, 0, 0, 0, 0, 0};
    std::vector<double> b = a;
    std::rotate(b.begin(), b.begin() + 3, b.end()); // shift by 3
    // A wide band absorbs the shift; a band of 1 cannot.
    EXPECT_LT(dtwBanded(a, b, 5).distance, 1e-9);
    EXPECT_GT(dtwBanded(a, b, 1).distance, 10.0);
}

TEST(Dtw, DistanceIsSymmetric)
{
    const std::vector<double> a = {1, 5, 2, 8, 3};
    const std::vector<double> b = {2, 4, 4, 6};
    EXPECT_NEAR(dtw(a, b).distance, dtw(b, a).distance, 1e-9);
}

TEST(ErrorMetric, ZeroForIdenticalTraces)
{
    const std::vector<double> ref = {10, 20, 30, 20, 10, 15, 25, 30};
    EXPECT_NEAR(traceErrorPercent(ref, ref), 0.0, 1e-9);
}

TEST(ErrorMetric, ScalesWithRelativeDeviation)
{
    std::vector<double> ref(32, 100.0);
    std::vector<double> est(32, 110.0);
    EXPECT_NEAR(traceErrorPercent(est, ref), 10.0, 0.5);
    std::vector<double> worse(32, 150.0);
    EXPECT_NEAR(traceErrorPercent(worse, ref), 50.0, 2.0);
}

TEST(ErrorMetric, FloorPreventsDivisionBlowup)
{
    // Near-zero reference points must not dominate.
    std::vector<double> ref(16, 100.0);
    ref[3] = 1e-9;
    std::vector<double> est(16, 100.0);
    est[3] = 1.0;
    EXPECT_LT(traceErrorPercent(est, ref), 5.0);
}

TEST(ErrorMetric, ElementWiseModeRequiresEqualLength)
{
    const std::vector<double> a = {1, 2, 3};
    const std::vector<double> b = {1, 2};
    EXPECT_DEATH((void)traceErrorPercent(a, b, false), "equal lengths");
}

TEST(ErrorMetric, NormalizedImprovement)
{
    EXPECT_DOUBLE_EQ(normalizedImprovement(40.0, 8.0), 5.0);
    EXPECT_DOUBLE_EQ(normalizedImprovement(40.0, 0.0), 1.0);
}

} // namespace
} // namespace ana
} // namespace bperf
