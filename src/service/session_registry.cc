#include "service/session_registry.h"

#include "common/logging.h"

namespace bperf {
namespace service {

SessionRegistry::SessionRegistry(std::size_t num_shards)
{
    bp_assert(num_shards > 0, "registry needs at least one shard");
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

SessionId
SessionRegistry::allocateId()
{
    return nextId_.fetch_add(1, std::memory_order_relaxed);
}

void
SessionRegistry::insert(std::shared_ptr<Session> session)
{
    bp_assert(session != nullptr, "null session");
    Shard &shard = shardFor(session->id());
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] =
        shard.sessions.emplace(session->id(), std::move(session));
    (void)it;
    bp_assert(inserted, "duplicate session id");
}

std::shared_ptr<Session>
SessionRegistry::find(SessionId id) const
{
    const Shard &shard = shardFor(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.sessions.find(id);
    return it == shard.sessions.end() ? nullptr : it->second;
}

std::shared_ptr<Session>
SessionRegistry::erase(SessionId id)
{
    Shard &shard = shardFor(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end())
        return nullptr;
    std::shared_ptr<Session> session = std::move(it->second);
    shard.sessions.erase(it);
    return session;
}

std::size_t
SessionRegistry::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->sessions.size();
    }
    return total;
}

void
SessionRegistry::forEach(
    const std::function<void(const Session &)> &fn) const
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[id, session] : shard->sessions) {
            (void)id;
            fn(*session);
        }
    }
}

} // namespace service
} // namespace bperf
