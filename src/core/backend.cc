#include "core/backend.h"

#include "telemetry/telemetry.h"

namespace bperf {
namespace core {

WindowExecution
HostBackend::execute(const WindowJob &job)
{
    WindowExecution exec;
    exec.engineId = 0;
    exec.endSlice = job.endSlice;
    exec.queueWaitSeconds = 0.0;
    exec.serviceSeconds = job.hostSeconds;
    exec.transferSeconds = 0.0;
    exec.modeledSeconds = job.hostSeconds;

    static telemetry::Counter &windows =
        telemetry::MetricsRegistry::global().counter("backend.host.windows");
    static telemetry::Histogram &service_ns =
        telemetry::MetricsRegistry::global().histogram(
            "backend.host.service_ns");
    windows.add();
    service_ns.record(
        static_cast<std::uint64_t>(exec.serviceSeconds * 1e9));

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.windowsExecuted;
    stats_.queueWaitSeconds.push(exec.queueWaitSeconds);
    stats_.serviceSeconds.push(exec.serviceSeconds);
    stats_.modeledSeconds.push(exec.modeledSeconds);
    return exec;
}

BackendStats
HostBackend::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
HostBackend::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = BackendStats{};
}

} // namespace core
} // namespace bperf
