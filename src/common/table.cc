#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace bperf {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    bp_assert(!header_.empty(), "table requires a header");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    bp_assert(row.size() == header_.size(), "table row arity mismatch");
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRow(const std::string &label,
                     const std::vector<double> &values, int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, precision));
    addRow(std::move(row));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c])) << row[c]
               << " |";
        os << "\n";
    };

    print_row(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
printSeries(std::ostream &os, const std::string &title,
            const std::string &x_label, const std::vector<double> &xs,
            const std::vector<std::string> &series_names,
            const std::vector<std::vector<double>> &series, int precision)
{
    bp_assert(series_names.size() == series.size(),
              "series name/data mismatch");
    for (const auto &s : series)
        bp_assert(s.size() == xs.size(), "series length mismatch");

    os << "# " << title << "\n";
    std::vector<std::string> header{x_label};
    for (const auto &name : series_names)
        header.push_back(name);
    TablePrinter t(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<double> vals;
        vals.reserve(series.size());
        for (const auto &s : series)
            vals.push_back(s[i]);
        t.addRow(formatDouble(xs[i], 0), vals, precision);
    }
    t.print(os);
}

} // namespace bperf
