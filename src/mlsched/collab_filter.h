/**
 * @file
 * Collaborative-filtering scheduler (paper section 6.3, first model,
 * after Paragon): impute the performance of (system-state, placement)
 * pairs from sparse observations via low-rank matrix factorization,
 * then place the shuffle on the NIC with the best predicted
 * completion time.
 */

#ifndef BPERF_MLSCHED_COLLAB_FILTER_H
#define BPERF_MLSCHED_COLLAB_FILTER_H

#include <cstdint>
#include <vector>

#include "mlsched/shuffle_env.h"

namespace bperf {
namespace ml {

/** Matrix-factorization settings. */
struct CfConfig
{
    std::size_t rank = 4;
    std::size_t epochs = 200;
    double learningRate = 0.03;
    double regularization = 0.05;
    /** Fraction of (row, col) cells left unobserved during training
     * (the paper sweeps sparsity 30-80% and settles on 75%). */
    double sparsity = 0.75;
    std::uint64_t seed = 11;
};

/** One observed cell. */
struct CfObservation
{
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/**
 * SGD matrix factorization with biases.
 */
class MatrixFactorization
{
  public:
    MatrixFactorization(std::size_t rows, std::size_t cols,
                        CfConfig config);

    /** Fit to the observed cells. */
    void fit(const std::vector<CfObservation> &observations);

    /** Predicted value of any cell. */
    double predict(std::size_t row, std::size_t col) const;

    /** RMSE over a set of cells. */
    double rmse(const std::vector<CfObservation> &cells) const;

  private:
    std::size_t rows_, cols_;
    CfConfig config_;
    std::vector<double> rowFactors_, colFactors_;
    std::vector<double> rowBias_, colBias_;
    double globalBias_ = 0.0;
};

/**
 * CF-based NIC scheduler: buckets the (noisy) observed system state,
 * learns the (state-bucket x NIC) completion-time matrix from
 * training episodes, and serves argmin-predicted placements.
 */
class CfScheduler
{
  public:
    CfScheduler(EnvConfig env_config, CfConfig cf_config);

    /** Collect training episodes and factorize. */
    void train(std::size_t episodes);

    /** NIC choice for an episode's features. */
    int chooseNic(const std::vector<double> &features) const;

    /** Normalized average completion time over fresh episodes. */
    double evaluate(std::size_t episodes);

    /** State bucket of a feature vector (exposed for tests). */
    std::size_t bucketOf(const std::vector<double> &features) const;

    std::size_t numBuckets() const;

    /** The environment (and thus the feed) this scheduler trains
     * against — lets callers inspect live-feed statistics. */
    ShuffleEnv &environment() { return env_; }
    const ShuffleEnv &environment() const { return env_; }

  private:
    EnvConfig envConfig_;
    CfConfig cfConfig_;
    ShuffleEnv env_;
    MatrixFactorization model_;
};

} // namespace ml
} // namespace bperf

#endif // BPERF_MLSCHED_COLLAB_FILTER_H
