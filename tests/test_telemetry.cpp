/** @file Tests for the telemetry layer: histogram bucket boundaries
 * and percentiles, sharded counters/histograms merged under
 * concurrent writers (run under TSan in CI), the enable flag
 * mid-stream, registry identity, window-span phase monotonicity
 * through the live service, Chrome trace export, and the log-level
 * mirror counters. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "json_checker.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "sim/ground_truth.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "workloads/hibench.h"

namespace bperf {
namespace telemetry {
namespace {

/** RAII guard: telemetry is globally on by default; every test that
 * flips the flag must leave it the way it found it. */
struct EnabledGuard
{
    bool saved = enabled();
    ~EnabledGuard() { setEnabled(saved); }
};

TEST(Histogram, BucketBoundariesAreLog2)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketIndex((1ull << 62) - 1), 62u);
    // The last bucket absorbs everything out of range.
    EXPECT_EQ(Histogram::bucketIndex(1ull << 62), 63u);
    EXPECT_EQ(Histogram::bucketIndex(
                  std::numeric_limits<std::uint64_t>::max()),
              63u);

    EXPECT_EQ(Histogram::bucketFloor(0), 0u);
    EXPECT_EQ(Histogram::bucketFloor(1), 1u);
    EXPECT_EQ(Histogram::bucketFloor(2), 2u);
    EXPECT_EQ(Histogram::bucketFloor(3), 4u);
    EXPECT_EQ(Histogram::bucketFloor(10), 512u);
    // Every value lands in the bucket whose floor bounds it.
    for (std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 65535ull,
                            (1ull << 40) + 17}) {
        const std::size_t b = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketFloor(b)) << v;
        if (b < Histogram::kBuckets - 1) {
            EXPECT_LT(v, Histogram::bucketFloor(b + 1)) << v;
        }
    }
}

TEST(Histogram, PercentilesStayInsideTheirBucket)
{
    EnabledGuard guard;
    setEnabled(true);
    Histogram h;
    EXPECT_TRUE(std::isnan(h.snapshot().percentile(50.0)));

    // A single sample of 1 reports exactly 1 (bucket 1 is {1}).
    h.record(1);
    EXPECT_DOUBLE_EQ(h.snapshot().percentile(50.0), 1.0);

    // 100 samples around 1000 ns: every percentile must land inside
    // bucket [512, 1024) x sqrt(2) bounds, i.e. within sqrt(2) of
    // the true value.
    Histogram spread;
    for (int i = 0; i < 100; ++i)
        spread.record(1000);
    const Histogram::Snapshot snap = spread.snapshot();
    EXPECT_EQ(snap.count, 100u);
    for (double p : {1.0, 50.0, 95.0, 99.0, 100.0}) {
        const double v = snap.percentile(p);
        EXPECT_GE(v, 512.0) << p;
        EXPECT_LT(v, 1024.0) << p;
    }

    // Mixed magnitudes order correctly: p50 over {64 x 100ns,
    // 36 x 10000ns} sits in 100's bucket, p99 in 10000's.
    Histogram mixed;
    for (int i = 0; i < 64; ++i)
        mixed.record(100);
    for (int i = 0; i < 36; ++i)
        mixed.record(10000);
    const Histogram::Snapshot m = mixed.snapshot();
    EXPECT_GE(m.percentile(50.0), 64.0);
    EXPECT_LT(m.percentile(50.0), 128.0);
    EXPECT_GE(m.percentile(99.0), 8192.0);
    EXPECT_LT(m.percentile(99.0), 16384.0);
}

TEST(Histogram, PercentilesNeverExceedRecordedMax)
{
    EnabledGuard guard;
    setEnabled(true);

    // Regression: a value just past a power of two lands in a bucket
    // whose geometric midpoint overshoots it — 8200 sits in
    // [8192, 16384) with midpoint ~11585, so the old code reported a
    // p99 ~41% above anything ever recorded.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(8200);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.maxValue, 8200u);
    for (double p : {1.0, 50.0, 99.0, 100.0}) {
        const double v = snap.percentile(p);
        EXPECT_GE(v, 8192.0) << p;
        EXPECT_LE(v, 8200.0) << p;
    }

    // Mixed magnitudes: the clamp binds only to the overall max, so
    // mid-distribution percentiles keep their bucket midpoints while
    // the tail stays at or below the largest sample.
    Histogram mixed;
    for (int i = 0; i < 90; ++i)
        mixed.record(100);
    mixed.record(1 << 20);
    const Histogram::Snapshot m = mixed.snapshot();
    EXPECT_EQ(m.maxValue, std::uint64_t{1} << 20);
    EXPECT_LT(m.percentile(50.0), 128.0);
    EXPECT_LE(m.percentile(100.0),
              static_cast<double>(std::uint64_t{1} << 20));

    // reset() clears the tracked max along with the buckets.
    mixed.reset();
    EXPECT_EQ(mixed.snapshot().maxValue, 0u);
    EXPECT_EQ(mixed.snapshot().count, 0u);
}

TEST(Telemetry, ShardsMergeUnderConcurrentWriters)
{
    EnabledGuard guard;
    setEnabled(true);
    Counter counter;
    Histogram histogram;
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;

    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                counter.add();
                histogram.record((t + 1) * 100);
            }
            counter.add(2); // n > 1 merges too
        });
    }
    for (auto &w : writers)
        w.join();

    EXPECT_EQ(counter.value(), kThreads * kPerThread + 2 * kThreads);
    const Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, kThreads * kPerThread);
    // The max merges across shards, not just within one writer's.
    EXPECT_EQ(snap.maxValue, kThreads * 100u);

    counter.reset();
    histogram.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST(Telemetry, EnableFlagGatesCollectionMidStream)
{
    EnabledGuard guard;
    Counter counter;
    Histogram histogram;

    setEnabled(true);
    counter.add();
    histogram.record(5);
    EXPECT_EQ(counter.value(), 1u);
    EXPECT_EQ(histogram.snapshot().count, 1u);

    setEnabled(false);
    EXPECT_FALSE(enabled());
    counter.add(100);
    histogram.record(5);
    EXPECT_EQ(counter.value(), 1u);
    EXPECT_EQ(histogram.snapshot().count, 1u);
    // addAlways bypasses the gate (the log.* contract).
    counter.addAlways(3);
    EXPECT_EQ(counter.value(), 4u);

    setEnabled(true);
    counter.add();
    histogram.record(5);
    EXPECT_EQ(counter.value(), 5u);
    EXPECT_EQ(histogram.snapshot().count, 2u);
}

TEST(MetricsRegistry, SameNameIsSameInstrument)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    Histogram &ha = registry.histogram("y");
    Histogram &hb = registry.histogram("y");
    EXPECT_EQ(&ha, &hb);

    EnabledGuard guard;
    setEnabled(true);
    a.add(7);
    EXPECT_EQ(registry.counterValue("x"), 7u);
    EXPECT_EQ(registry.counterValue("never-created"), 0u);
    EXPECT_EQ(registry.histogramSnapshot("never-created").count, 0u);

    ha.record(9);
    const MetricsSnapshot snap = registry.scrape();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "x");
    EXPECT_EQ(snap.counters[0].value, 7u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].name, "y");
    EXPECT_EQ(snap.histograms[0].count, 1u);

    registry.reset();
    EXPECT_EQ(registry.counterValue("x"), 0u);

    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(Telemetry, TraceIdsAreUniqueAndNonzero)
{
    const std::uint64_t a = nextTraceId();
    const std::uint64_t b = nextTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- spans

std::vector<sim::EventId>
monitoredSet(const sim::MicroarchDescriptor &uarch)
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch.fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch.idForRole(r));
    return events;
}

sim::PerfResult
measuredRun(const sim::MicroarchDescriptor &uarch,
            const std::vector<sim::EventId> &monitored,
            std::size_t num_slices, std::uint64_t seed)
{
    const sim::GroundTruthGenerator generator(uarch,
                                              wl::makeHibench("KMeans"));
    const sim::TruthTrace truth = generator.generate(num_slices, seed);
    sim::PerfSessionConfig cfg;
    cfg.seed = seed * 3 + 1;
    sim::PerfSession session(uarch, cfg);
    return session.runRoundRobin(truth, monitored);
}

TEST(WindowSpans, PhasesAreMonotoneThroughTheService)
{
    EnabledGuard guard;
    setEnabled(true);
    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();

    service::MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;
    telemetry::TraceCollector trace;
    cfg.trace = &trace;
    service::MonitorService daemon(uarch, cfg);

    const service::SessionId id = daemon.open(monitoredSet(uarch));
    const auto monitored = daemon.monitoredEvents(id);
    const auto run = measuredRun(uarch, monitored, 24, 321);

    std::mutex mutex;
    std::vector<service::WindowUpdate> updates;
    const auto sub =
        daemon.subscribe(id, [&](const service::WindowUpdate &u) {
            std::lock_guard<std::mutex> lock(mutex);
            updates.push_back(u);
        });
    ASSERT_TRUE(sub.has_value());

    daemon.ingestBatch(id, service::recordStream(run));
    daemon.quiesce();
    daemon.flushSubscriptions();
    const auto report = daemon.close(id);
    ASSERT_TRUE(report.has_value());
    daemon.flushSubscriptions();

    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(updates.size(), report->stats.windowsRun);
    ASSERT_GE(updates.size(), 2u);
    std::size_t streamed = 0;
    for (std::size_t i = 0; i < updates.size(); ++i) {
        const core::WindowSpan &span = updates[i].execution.span;
        EXPECT_NE(span.traceId, 0u) << i;
        EXPECT_EQ(updates[i].windowId, i + 1);
        ASSERT_NE(span.epStartNanos, 0u) << i;
        EXPECT_LE(span.epStartNanos, span.epEndNanos) << i;
        EXPECT_LE(span.epEndNanos, span.publishNanos) << i;
        // Streamed windows carry the record stamps; the close() tail
        // windows deliberately run without them (zero = unobserved).
        if (span.ingestNanos != 0) {
            ++streamed;
            EXPECT_LE(span.ingestNanos, span.assembleNanos) << i;
            EXPECT_LE(span.assembleNanos, span.epStartNanos) << i;
        }
    }
    EXPECT_GE(streamed, 1u);

    // Every spanned window produced trace slices, and the collector's
    // export is valid Chrome trace-event JSON with the span phases.
    EXPECT_GT(trace.eventCount(), 0u);
    const std::string json = trace.chromeTraceJson();
    EXPECT_TRUE(testutil::JsonChecker(json).valid());
    for (const char *phase :
         {"ingest-wait", "dispatch-wait", "ep-compute", "publish",
          "traceEvents", "displayTimeUnit"})
        EXPECT_NE(json.find(phase), std::string::npos) << phase;
}

TEST(TraceCollector, ExportsModeledBackendPhasesAndCountsDrops)
{
    TraceCollector trace(/*max_events=*/8);

    core::WindowExecution exec;
    exec.serviceSeconds = 2e-3;
    exec.transferSeconds = 0.5e-3;
    exec.queueWaitSeconds = 1e-3;
    exec.engineId = 3;
    exec.span.traceId = 42;
    exec.span.epStartNanos = nowNanos();
    exec.span.epEndNanos = exec.span.epStartNanos + 1000000;
    trace.addWindow(/*session_id=*/5, /*window_id=*/1, exec);

    EXPECT_GT(trace.eventCount(), 0u);
    const std::string json = trace.chromeTraceJson();
    EXPECT_TRUE(testutil::JsonChecker(json).valid());
    for (const char *phase : {"ep-compute", "backend-queue",
                              "backend-xfer", "backend-compute"})
        EXPECT_NE(json.find(phase), std::string::npos) << phase;
    EXPECT_NE(json.find("\"modeled\""), std::string::npos);

    // A window that ran with telemetry disabled (no EP stamp) is a
    // counted drop, not a zero-length slice.
    const std::uint64_t drops_before = trace.dropped();
    trace.addWindow(5, 2, core::WindowExecution{});
    EXPECT_EQ(trace.dropped(), drops_before + 1);

    // The cap bounds memory: overflow counts as dropped too.
    for (int i = 0; i < 16; ++i)
        trace.addWindow(5, 3 + i, exec);
    EXPECT_LE(trace.eventCount(), 8u);
    EXPECT_GT(trace.dropped(), drops_before + 1);
}

TEST(Logging, WarnAndErrorMirrorIntoCounters)
{
    EnabledGuard guard;
    auto &registry = MetricsRegistry::global();
    const std::uint64_t warns = registry.counterValue("log.warnings");
    const std::uint64_t errors = registry.counterValue("log.errors");

    // Counted even with collection disabled — "how many times did
    // something go wrong" must never depend on the enable flag (and
    // with verbosity off, neither line reaches stderr).
    setEnabled(false);
    bp_warn("telemetry test warning (ignore)");
    EXPECT_EQ(registry.counterValue("log.warnings"), warns + 1);
    setEnabled(true);
    bp_warn("telemetry test warning (ignore)");
    EXPECT_EQ(registry.counterValue("log.warnings"), warns + 2);
    EXPECT_EQ(registry.counterValue("log.errors"), errors);

    // bp_error counts as an error (it prints; keep the message
    // obviously intentional).
    bp_error("telemetry test error (intentional, ignore)");
    EXPECT_EQ(registry.counterValue("log.errors"), errors + 1);
    EXPECT_EQ(registry.counterValue("log.warnings"), warns + 2);

    // The service surfaces the same counters in its stats.
    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();
    service::MonitorService daemon(uarch, {});
    const service::ServiceStats stats = daemon.stats();
    EXPECT_EQ(stats.logWarnings, registry.counterValue("log.warnings"));
    EXPECT_EQ(stats.logErrors, registry.counterValue("log.errors"));
}

} // namespace
} // namespace telemetry
} // namespace bperf
