file(REMOVE_RECURSE
  "CMakeFiles/bperf_bench_util.dir/bench/bench_util.cc.o"
  "CMakeFiles/bperf_bench_util.dir/bench/bench_util.cc.o.d"
  "libbperf_bench_util.a"
  "libbperf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bperf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
