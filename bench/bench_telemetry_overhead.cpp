/**
 * @file
 * Cost of the telemetry layer itself — the observability tentpole's
 * acceptance gate: enabled telemetry must stay under 5% on the
 * per-window EP hot path, and disabled telemetry must be ~free.
 *
 * Two views:
 *   1. Primitive micro-costs: one counter add and one histogram
 *      record with collection enabled vs disabled (the disabled path
 *      is a single relaxed atomic load), one steady-clock stamp, and
 *      one full registry scrape.
 *   2. End-to-end: µs per window of the bench_ep_window streaming
 *      workload (13 events, k = 6) with telemetry enabled vs
 *      disabled, interleaved best-of so the two configurations see
 *      the same thermal/frequency conditions.
 *
 * Writes BENCH_telemetry.json into the working directory (the CI
 * bench smoke step uploads it).  BP_QUICK=1 shrinks repetitions.
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/inference.h"
#include "sim/ground_truth.h"
#include "sim/perf_session.h"
#include "telemetry/telemetry.h"
#include "workloads/hibench.h"

using namespace bperf;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Same realistic multiplexed run as bench_ep_window (13 events). */
sim::PerfResult
makeRun(const sim::MicroarchDescriptor &uarch,
        std::vector<sim::EventId> &monitored, std::size_t num_slices)
{
    for (sim::EventId e : uarch.fixedEvents())
        monitored.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem,
          sim::Role::StallTotal, sim::Role::DramBytes})
        monitored.push_back(uarch.idForRole(r));
    const auto workload = wl::makeHibench("KMeans");
    const sim::GroundTruthGenerator generator(uarch, workload);
    const sim::TruthTrace truth = generator.generate(num_slices, 9000);
    sim::PerfSessionConfig cfg;
    cfg.seed = 77;
    sim::PerfSession session(uarch, cfg);
    return session.runRoundRobin(truth, monitored);
}

/** Best-of-reps µs per window of one engine.infer() pass. */
double
timeWindows(const core::InferenceEngine &engine,
            const sim::PerfResult &run, std::size_t reps)
{
    double best = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const core::InferenceResult r = engine.infer(run);
        best = std::min(best,
                        1e6 * r.wallSeconds /
                            static_cast<double>(r.windowsRun));
    }
    return best;
}

} // namespace

int
main()
{
    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();
    const std::size_t reps = bench::quickMode() ? 2 : 7;
    const std::size_t num_slices = bench::quickMode() ? 24 : 96;

    auto &registry = telemetry::MetricsRegistry::global();
    telemetry::Counter &counter = registry.counter("bench.counter");
    telemetry::Histogram &histogram =
        registry.histogram("bench.histogram");

    // ------------------------------------------------ primitive costs
    const std::size_t iters = bench::quickMode() ? 400000 : 4000000;

    auto time_ns = [iters](auto &&fn) {
        const double t0 = now();
        for (std::size_t i = 0; i < iters; ++i)
            fn(i);
        return 1e9 * (now() - t0) / static_cast<double>(iters);
    };

    telemetry::setEnabled(true);
    const double counter_on_ns =
        time_ns([&](std::size_t) { counter.add(); });
    const double histogram_on_ns =
        time_ns([&](std::size_t i) { histogram.record(i | 1); });
    telemetry::setEnabled(false);
    const double counter_off_ns =
        time_ns([&](std::size_t) { counter.add(); });
    const double histogram_off_ns =
        time_ns([&](std::size_t i) { histogram.record(i | 1); });
    telemetry::setEnabled(true);

    std::uint64_t clock_sink = 0;
    const double clock_ns =
        time_ns([&](std::size_t) { clock_sink += telemetry::nowNanos(); });

    const std::size_t scrape_reps = bench::quickMode() ? 200 : 2000;
    std::size_t scrape_sink = 0;
    double t0 = now();
    for (std::size_t i = 0; i < scrape_reps; ++i)
        scrape_sink += registry.scrape().counters.size();
    const double scrape_us =
        1e6 * (now() - t0) / static_cast<double>(scrape_reps);

    TablePrinter micro({"primitive", "ns/op"});
    micro.addRow("counter add (enabled)", {counter_on_ns});
    micro.addRow("counter add (disabled)", {counter_off_ns});
    micro.addRow("histogram record (enabled)", {histogram_on_ns});
    micro.addRow("histogram record (disabled)", {histogram_off_ns});
    micro.addRow("steady-clock stamp", {clock_ns});
    std::cout << "Telemetry primitive costs (" << iters
              << " iterations):\n";
    micro.print(std::cout);
    std::cout << "  registry scrape: " << scrape_us << " us ("
              << scrape_sink / scrape_reps << " counters)\n";

    // ------------------------------------------------ hot-path overhead
    std::vector<sim::EventId> monitored;
    const sim::PerfResult run = makeRun(uarch, monitored, num_slices);
    core::InferenceConfig cfg;
    cfg.windowSlices = 6;
    const core::InferenceEngine engine(uarch, cfg);

    // Interleave enabled/disabled reps and keep each side's best, so
    // neither configuration systematically sees a warmer machine.
    double on_us = 1e300, off_us = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        telemetry::setEnabled(false);
        off_us = std::min(off_us, timeWindows(engine, run, 1));
        telemetry::setEnabled(true);
        on_us = std::min(on_us, timeWindows(engine, run, 1));
    }
    const double overhead_pct = 100.0 * (on_us - off_us) / off_us;

    TablePrinter table({"config", "us/window"});
    table.addRow("telemetry disabled", {off_us});
    table.addRow("telemetry enabled", {on_us});
    std::cout << "\nPer-window EP latency (" << monitored.size()
              << " events, k=6, " << num_slices << " slices):\n";
    table.print(std::cout);
    std::cout << "  enabled overhead: " << overhead_pct << " %\n";

    // ------------------------------------------------------ JSON output
    bench::JsonWriter json;
    json.beginObject()
        .field("events", monitored.size())
        .field("window_slices", 6)
        .field("us_per_window_disabled", off_us)
        .field("us_per_window_enabled", on_us)
        .field("overhead_pct", overhead_pct)
        .field("counter_add_ns_enabled", counter_on_ns)
        .field("counter_add_ns_disabled", counter_off_ns)
        .field("histogram_record_ns_enabled", histogram_on_ns)
        .field("histogram_record_ns_disabled", histogram_off_ns)
        .field("clock_stamp_ns", clock_ns)
        .field("scrape_us", scrape_us)
        .endObject();
    if (!json.writeFile("BENCH_telemetry.json")) {
        std::cerr << "failed to write BENCH_telemetry.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_telemetry.json\n";
    return 0;
}
