/**
 * @file
 * Reproduces Fig. 1: average HPC measurement error under Linux's
 * default multiplexing, as the number of multiplexed events grows
 * from 10 to 35, averaged over ten application runs.
 *
 * Paper shape: ~30% at 10 events rising to 58 +/- 9.3% at 35 events.
 */

#include <iostream>

#include "baselines/linux_scaling.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/perf_session.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    const auto uarch = sim::makeX86Skylake();
    const auto workload = wl::makeHibench("TeraSort");
    const sim::GroundTruthGenerator generator(uarch, workload);
    const std::size_t slices = bench::defaultSlices();
    const std::size_t runs = bench::quickMode() ? 4 : 10;

    const std::vector<double> counter_counts = {10, 15, 20, 25, 30, 35};
    std::vector<double> avg_error, stddev_error;

    for (double n : counter_counts) {
        const auto monitored =
            bench::paddedEventSet(uarch, static_cast<std::size_t>(n));
        RunningStats stats;
        for (std::size_t run = 0; run < runs; ++run) {
            const auto truth = generator.generate(slices, 1000 + run);

            sim::PerfSessionConfig cfg;
            cfg.seed = 7000 + run;
            sim::PerfSession session(uarch, cfg);
            std::vector<sim::EventId> with_fixed = uarch.fixedEvents();
            with_fixed.insert(with_fixed.end(), monitored.begin(),
                              monitored.end());
            const auto sampled = session.runRoundRobin(truth, with_fixed);

            sim::PerfSessionConfig poll_cfg;
            poll_cfg.seed = 9000 + run;
            sim::PerfSession poll(uarch, poll_cfg);
            const auto polled = poll.runPolling(truth, with_fixed);

            baselines::LinuxEstimator linux_est;
            RunningStats per_event;
            for (sim::EventId e : monitored)
                per_event.push(ana::traceErrorPercent(
                    linux_est.series(sampled, e),
                    polled.traceFor(e).estimateSeries()));
            stats.push(per_event.mean());
        }
        avg_error.push_back(stats.mean());
        stddev_error.push_back(stats.stddev());
    }

    printSeries(std::cout,
                "Fig. 1: error due to event multiplexing (Linux, x86)",
                "events", counter_counts, {"avg_error_pct", "stddev_pct"},
                {avg_error, stddev_error});
    std::cout << "# paper: ~30% at 10 events -> 58 +/- 9.3% at 35 events\n";
    return 0;
}
