/**
 * @file
 * Ablation A: overlap-aware scheduling vs plain round-robin packing.
 *
 * The overlap schedule reserves a counter slot to repeat one event
 * across consecutive configurations (the paper's Fig. 2 design),
 * which lengthens the rotation but chains statistical relationships
 * across slices.  This bench quantifies what that buys BayesPerf.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    const auto uarch = sim::makeX86Skylake();
    const auto monitored = bench::evaluationEventSet(uarch);

    std::cout << "# Ablation A: overlap-aware schedule vs round-robin "
                 "(BayesPerf error, KMeans + TeraSort)\n";
    TablePrinter t({"workload", "schedule", "configs", "BayesPerf err %",
                    "Linux err %"});

    std::uint64_t seed = 61000;
    for (const char *name : {"KMeans", "TeraSort", "PageRank"}) {
        const auto workload = wl::makeHibench(name);
        for (bool overlap : {true, false}) {
            bench::ComparisonConfig cfg;
            cfg.numSlices = bench::defaultSlices();
            cfg.truthSeed = ++seed;
            cfg.samplingSeed = seed * 13;
            cfg.pollSeed = seed * 57;
            cfg.useOverlapSchedule = overlap;
            const auto errs =
                bench::compareEstimators(uarch, workload, monitored, cfg);

            core::OverlapScheduler scheduler(
                uarch, {.reserveOverlapSlot = overlap});
            std::vector<sim::EventId> with_fixed = uarch.fixedEvents();
            with_fixed.insert(with_fixed.end(), monitored.begin(),
                              monitored.end());
            const auto schedule = scheduler.build(with_fixed);

            t.addRow({name, overlap ? "overlap" : "round-robin",
                      std::to_string(schedule.configs.size()),
                      formatDouble(errs[2].derivedErrorPct, 1),
                      formatDouble(errs[0].derivedErrorPct, 1)});
        }
    }
    t.print(std::cout);
    return 0;
}
