# Empty compiler generated dependencies file for test_ground_truth.
# This may be replaced when dependencies are built.
