#include "service/streaming_inference.h"

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

StreamingInference::StreamingInference(const sim::MicroarchDescriptor &uarch,
                                       std::vector<sim::EventId> events,
                                       StreamingConfig config)
    : assembler_(events, config.alignToFirstRecord),
      engine_(uarch, std::move(events), config.inference,
              config.schedulePeriod)
{
}

std::size_t
StreamingInference::consume(const sim::PerfRecord &rec)
{
    ready_.clear();
    assembler_.feed(rec, ready_);
    // A session attached mid-stream starts at its first record's
    // slice; hand that offset to the engine so backend release times
    // stay on the producer's absolute slice clock.  The record also
    // floors release times: windows it completes (including catch-up
    // windows over shed/stalled stretches) dispatch now, not in the
    // past.
    engine_.setSliceOrigin(assembler_.originSlice());
    engine_.setReleaseFloor(rec.slice);
    // Windows completed by this record carry its ring-to-drain phase
    // stamps in their WindowSpan (finish()-tail windows stay
    // unstamped: no record drives them).
    engine_.setRecordStamps(rec.ingestNanos, telemetry::enabled()
                                                 ? telemetry::nowNanos()
                                                 : 0);
    std::size_t windows = 0;
    for (const auto &slice : ready_)
        windows += engine_.push(slice);
    return windows;
}

std::size_t
StreamingInference::finish()
{
    ready_.clear();
    assembler_.flush(ready_);
    // Tail windows have no triggering record: leave spans unstamped
    // rather than inheriting the last consumed record's stamps.
    engine_.setRecordStamps(0, 0);
    std::size_t windows = 0;
    for (const auto &slice : ready_)
        windows += engine_.push(slice);
    windows += engine_.finish();
    return windows;
}

core::PosteriorPoint
StreamingInference::latest(sim::EventId event) const
{
    const auto &events = engine_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event)
            return engine_.latest(i);
    }
    bp_panic("event not monitored by this session: id " << event);
}

} // namespace service
} // namespace bperf
