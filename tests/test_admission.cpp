/** @file Tests for latency-aware admission control: static quotas,
 * token-bucket refill on an explicit (fake) clock, latency feedback
 * against the modeled backend queue, and the service integration
 * (typed open denials, per-tenant stats, numerics untouched). */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "accel/accel_backend.h"
#include "core/inference.h"
#include "service/admission.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "sim/ground_truth.h"
#include "workloads/hibench.h"

namespace bperf {
namespace service {
namespace {

const sim::MicroarchDescriptor &
uarch()
{
    static const sim::MicroarchDescriptor u = sim::makeX86Skylake();
    return u;
}

std::vector<sim::EventId>
monitoredSet()
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch().fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch().idForRole(r));
    return events;
}

sim::PerfResult
measuredRun(const std::vector<sim::EventId> &monitored,
            std::size_t num_slices, std::uint64_t seed)
{
    const sim::GroundTruthGenerator generator(
        uarch(), wl::makeHibench("KMeans"));
    const sim::TruthTrace truth = generator.generate(num_slices, seed);
    sim::PerfSessionConfig cfg;
    cfg.seed = seed * 3 + 1;
    sim::PerfSession session(uarch(), cfg);
    return session.runRoundRobin(truth, monitored);
}

TEST(AdmissionController, DisabledAdmitsEverything)
{
    AdmissionConfig cfg; // enabled = false
    cfg.defaultQuota.maxSessions = 1;
    cfg.defaultQuota.recordsPerSecond = 1.0;
    AdmissionController admission(cfg);

    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(admission.admitSession("t"), AdmissionError::None);
        EXPECT_EQ(admission.admitRecord("t", 0.0), AdmissionError::None);
    }
}

TEST(AdmissionController, SessionQuotaGivesTypedError)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.defaultQuota.maxSessions = 2;
    AdmissionController admission(cfg);

    EXPECT_EQ(admission.admitSession("a"), AdmissionError::None);
    EXPECT_EQ(admission.admitSession("a"), AdmissionError::None);
    EXPECT_EQ(admission.admitSession("a"), AdmissionError::SessionQuota);
    // Quotas are per tenant: another tenant is unaffected.
    EXPECT_EQ(admission.admitSession("b"), AdmissionError::None);

    // Closing one of the tenant's sessions frees a slot.
    admission.sessionClosed("a");
    EXPECT_EQ(admission.admitSession("a"), AdmissionError::None);

    const TenantAdmissionStats stats = admission.tenantStats("a");
    EXPECT_EQ(stats.stats.sessionsAdmitted, 3u);
    EXPECT_EQ(stats.stats.sessionsRejected, 1u);
    EXPECT_EQ(stats.liveSessions, 2u);
}

TEST(AdmissionController, TokenBucketRefillsOnTheGivenClock)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.defaultQuota.recordsPerSecond = 10.0;
    cfg.defaultQuota.burstRecords = 5.0;
    AdmissionController admission(cfg);

    // The bucket starts full: exactly burstRecords at t=0.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(admission.admitRecord("t", 0.0), AdmissionError::None)
            << "record " << i;
    EXPECT_EQ(admission.admitRecord("t", 0.0),
              AdmissionError::RateLimited);

    // 0.05 s refills half a token: still limited.
    EXPECT_EQ(admission.admitRecord("t", 0.05),
              AdmissionError::RateLimited);
    // 0.1 s after start the earlier refill already banked 0.5; the
    // next 0.05 s adds the other half: exactly one token.
    EXPECT_EQ(admission.admitRecord("t", 0.1), AdmissionError::None);
    EXPECT_EQ(admission.admitRecord("t", 0.1),
              AdmissionError::RateLimited);

    // A long gap caps at the burst depth, not elapsed x rate.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(admission.admitRecord("t", 10.0), AdmissionError::None)
            << "record " << i;
    EXPECT_EQ(admission.admitRecord("t", 10.0),
              AdmissionError::RateLimited);

    const AdmissionStats stats = admission.tenantStats("t").stats;
    EXPECT_EQ(stats.recordsAdmitted, 11u);
    EXPECT_EQ(stats.recordsThrottled, 4u);
    EXPECT_EQ(stats.recordsShed, 0u);
}

TEST(AdmissionController, InFlightWindowQuotaThrottles)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.slicePeriodSeconds = 1e-3;
    cfg.defaultQuota.maxInFlightWindows = 2;
    AdmissionController admission(cfg);

    // Two windows complete at stream times 10 ms + 5 ms modeled.
    core::WindowExecution exec;
    exec.endSlice = 10;
    exec.modeledSeconds = 5e-3;
    admission.windowExecuted("t", exec);
    admission.windowExecuted("t", exec);

    // Inside the windows' modeled lifetime the quota is exhausted...
    EXPECT_EQ(admission.admitRecord("t", 12e-3),
              AdmissionError::WindowQuota);
    // ...and once they modeled-complete (15 ms) records flow again.
    EXPECT_EQ(admission.admitRecord("t", 15.1e-3), AdmissionError::None);
}

/**
 * Latency feedback must flip exactly at the configured threshold of
 * the backend's modeled queue: a pool backlogged by `backlog` seconds
 * sheds a record released now iff backlog > threshold.
 */
TEST(AdmissionController, LatencyFeedbackFlipsAtThreshold)
{
    accel::AccelBackendConfig pool;
    pool.numEngines = 1;
    pool.slicePeriodSeconds = 1e-3;
    accel::AccelBackend backend(pool);

    // Occupy the single engine with a job released at slice 0; its
    // service time is the backlog a slice-0 arrival would wait.
    core::WindowJob job;
    job.endSlice = 0;
    job.windowSlices = 6;
    job.numVariables = 20;
    job.numSites = 30;
    job.numSweeps = 6;
    job.inputBytes = 1024;
    const double service = backend.execute(job).serviceSeconds;
    ASSERT_GT(service, 0.0);
    ASSERT_DOUBLE_EQ(backend.queueDepth().queueSeconds, service);

    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.slicePeriodSeconds = pool.slicePeriodSeconds;
    cfg.throttleQueueSeconds = service / 2.0;
    AdmissionController admission(cfg, &backend);

    // At stream time 0 the wait is the full service time: above the
    // half-service threshold, so the record is shed.
    EXPECT_EQ(admission.admitRecord("t", 0.0),
              AdmissionError::BackendSaturated);

    // The wait decays as stream time advances.  Just before the
    // crossing (wait still > threshold) the record is shed; just
    // after (wait < threshold) it is admitted — the flip happens
    // exactly when the modeled queue crosses the threshold.
    const double crossing = service - cfg.throttleQueueSeconds;
    EXPECT_EQ(admission.admitRecord("t", crossing - 1e-9),
              AdmissionError::BackendSaturated);
    EXPECT_EQ(admission.admitRecord("t", crossing + 1e-9),
              AdmissionError::None);

    const AdmissionStats stats = admission.tenantStats("t").stats;
    EXPECT_EQ(stats.recordsShed, 2u);
    EXPECT_EQ(stats.recordsAdmitted, 1u);
}

TEST(AdmissionController, SessionShedWhenPoolSaturated)
{
    accel::AccelBackendConfig pool;
    pool.numEngines = 1;
    pool.slicePeriodSeconds = 1e-3;
    accel::AccelBackend backend(pool);

    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.shedQueueSeconds = 1e-6;
    AdmissionController admission(cfg, &backend);

    // Empty pool: opens flow.
    EXPECT_EQ(admission.admitSession("t"), AdmissionError::None);

    // Saturate the engine far past the shed threshold.
    core::WindowJob job;
    job.endSlice = 0;
    job.windowSlices = 6;
    job.numVariables = 20;
    job.numSites = 30;
    job.numSweeps = 6;
    job.inputBytes = 1024;
    for (int i = 0; i < 4; ++i)
        backend.execute(job);
    const double backlog = backend.queueDepth().queueSeconds;
    ASSERT_GT(backlog, cfg.shedQueueSeconds);

    EXPECT_EQ(admission.admitSession("t"),
              AdmissionError::BackendSaturated);

    // The backend's own clock freezes when nothing executes, but the
    // record stream keeps moving: once records have advanced past the
    // backlog, opens must flow again (no permanent-shed livelock).
    EXPECT_EQ(admission.admitRecord("t", backlog + 1e-6),
              AdmissionError::None);
    EXPECT_EQ(admission.admitSession("t"), AdmissionError::None);
    admission.sessionClosed("t");

    // Rebuild a queue deeper than the stream time reached above, so
    // the saturation check would still shed...
    backend.reset();
    for (int i = 0; i < 12; ++i)
        backend.execute(job);
    ASSERT_GT(backend.queueDepth().queueSeconds - (backlog + 1e-6),
              cfg.shedQueueSeconds);
    EXPECT_EQ(admission.admitSession("t"),
              AdmissionError::BackendSaturated);
    // ...until every live session closes: a backlog nobody feeds is
    // stale, so a fresh tenant's open is admitted rather than shed
    // forever.
    admission.sessionClosed("t");
    EXPECT_EQ(admission.admitSession("u"), AdmissionError::None);
}

/**
 * Regression: queueDepth() used to evaluate the backlog at the pool's
 * own *last release* clock, so a pool left idle reported a phantom
 * queue forever — records arriving after a long gap in the stream
 * were shed against work that had long since drained.  The query now
 * takes the caller's stream clock, clamped against the release clock.
 */
TEST(AdmissionController, IdleGapDrainsPhantomQueueDepth)
{
    accel::AccelBackendConfig pool;
    pool.numEngines = 1;
    pool.slicePeriodSeconds = 1e-3;
    accel::AccelBackend backend(pool);

    core::WindowJob job;
    job.endSlice = 0;
    job.windowSlices = 6;
    job.numVariables = 20;
    job.numSites = 30;
    job.numSweeps = 6;
    job.inputBytes = 1024;
    for (int i = 0; i < 4; ++i)
        backend.execute(job);

    // At the release clock the backlog is real...
    const double backlog = backend.queueDepth().queueSeconds;
    ASSERT_GT(backlog, 0.0);
    ASSERT_LT(backlog, 50.0);
    // ...but a query from a stream clock far past it must see it
    // drained, not frozen at the moment of the last release.
    EXPECT_DOUBLE_EQ(backend.queueDepth(50.0).queueSeconds, 0.0);
    EXPECT_DOUBLE_EQ(backend.queueDepth(50.0).totalBacklogSeconds, 0.0);
    // The release clock still wins for queries from the past: a
    // caller clock behind the pool's own never resurrects capacity.
    EXPECT_DOUBLE_EQ(backend.queueDepth(0.0).queueSeconds, backlog);

    // End to end through admission: the saturated pool sheds at the
    // time of the burst, and the same tenant's records flow again
    // once the stream clock has moved past the drained backlog.
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.slicePeriodSeconds = pool.slicePeriodSeconds;
    cfg.throttleQueueSeconds = backlog / 2.0;
    AdmissionController admission(cfg, &backend);
    EXPECT_EQ(admission.admitRecord("t", 0.0),
              AdmissionError::BackendSaturated);
    EXPECT_EQ(admission.admitRecord("t", 50.0), AdmissionError::None);
}

TEST(MonitorService, QuotaExceededOpenReturnsTypedError)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.admission.enabled = true;
    cfg.admission.defaultQuota.maxSessions = 1;
    MonitorService daemon(uarch(), cfg);

    const OpenResult first = daemon.open("alice", monitoredSet());
    ASSERT_TRUE(first.admitted());
    const OpenResult second = daemon.open("alice", monitoredSet());
    EXPECT_FALSE(second.admitted());
    EXPECT_EQ(second.error, AdmissionError::SessionQuota);
    // Another tenant still fits.
    const OpenResult other = daemon.open("bob", monitoredSet());
    EXPECT_TRUE(other.admitted());

    // The denial shows up in the service-level stats, per tenant.
    const ServiceStats stats = daemon.stats();
    ASSERT_EQ(stats.admission.size(), 2u);
    EXPECT_EQ(stats.admission[0].tenant, "alice");
    EXPECT_EQ(stats.admission[0].stats.sessionsRejected, 1u);
    EXPECT_EQ(stats.admission[1].tenant, "bob");
    EXPECT_EQ(stats.admission[1].stats.sessionsRejected, 0u);

    // Closing the tenant's session frees its quota slot.
    EXPECT_TRUE(daemon.close(*first.id).has_value());
    EXPECT_TRUE(daemon.open("alice", monitoredSet()).admitted());
}

TEST(MonitorService, RateQuotaThrottlesIngestByStreamTime)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 1;
    cfg.admission.enabled = true;
    cfg.admission.slicePeriodSeconds = 1e-3;
    // 2000 records per stream second = 2 per 1 ms slice, burst 2.
    cfg.admission.defaultQuota.recordsPerSecond = 2000.0;
    cfg.admission.defaultQuota.burstRecords = 2.0;
    MonitorService daemon(uarch(), cfg);

    const OpenResult open = daemon.open("t", monitoredSet());
    ASSERT_TRUE(open.admitted());
    const auto monitored = daemon.monitoredEvents(*open.id);

    sim::PerfRecord rec;
    rec.event = monitored.front();
    rec.value = 1.0;
    rec.timeEnabled = 1.0;
    rec.timeRunning = 1.0;

    // Slice 0: two records fit the burst, the third is throttled.
    rec.slice = 0;
    EXPECT_TRUE(daemon.ingest(*open.id, rec));
    EXPECT_TRUE(daemon.ingest(*open.id, rec));
    EXPECT_FALSE(daemon.ingest(*open.id, rec));

    // One slice later the bucket has refilled two tokens.
    rec.slice = 1;
    EXPECT_TRUE(daemon.ingest(*open.id, rec));
    EXPECT_TRUE(daemon.ingest(*open.id, rec));
    EXPECT_FALSE(daemon.ingest(*open.id, rec));

    const TenantAdmissionStats tstats = daemon.admission().tenantStats("t");
    EXPECT_EQ(tstats.stats.recordsAdmitted, 4u);
    EXPECT_EQ(tstats.stats.recordsThrottled, 2u);
}

/**
 * Admission control must not perturb the numerics of admitted work:
 * the same record stream through a generously-quota'd controller
 * produces bit-identical posteriors to the no-admission host path.
 */
TEST(MonitorService, AdmittedPosteriorsBitIdenticalToNoAdmission)
{
    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 24, 7070);

    const auto replay = [&](MonitorServiceConfig cfg) {
        cfg.numWorkers = 2;
        cfg.sessionDefaults.streaming.inference.windowSlices = 6;
        MonitorService daemon(uarch(), cfg);
        const OpenResult open = daemon.open("t", monitored);
        EXPECT_TRUE(open.admitted());
        daemon.ingestBatch(*open.id, recordStream(run));
        auto report = daemon.close(*open.id);
        EXPECT_TRUE(report.has_value());
        EXPECT_EQ(report->stats.recordsDropped, 0u);
        return std::move(report->posterior.series);
    };

    MonitorServiceConfig plain; // host backend, admission off

    MonitorServiceConfig gated;
    gated.backend = BackendKind::Accel;
    gated.accel.numEngines = 2;
    gated.admission.enabled = true;
    gated.admission.defaultQuota.maxSessions = 4;
    gated.admission.defaultQuota.recordsPerSecond = 1e9;
    gated.admission.throttleQueueSeconds = 10.0;
    gated.admission.shedQueueSeconds = 10.0;

    const auto a = replay(plain);
    const auto b = replay(gated);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size());
        for (std::size_t t = 0; t < a[i].size(); ++t) {
            EXPECT_EQ(a[i][t].mean, b[i][t].mean);
            EXPECT_EQ(a[i][t].stddev, b[i][t].stddev);
        }
    }
}

TEST(MonitorService, BackendQueueDepthSurfacedInStats)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;
    cfg.backend = BackendKind::Accel;
    cfg.accel.numEngines = 2;
    MonitorService daemon(uarch(), cfg);

    const auto stats_before = daemon.stats();
    EXPECT_EQ(stats_before.backendQueue.engines, 2u);
    EXPECT_DOUBLE_EQ(stats_before.backendQueue.queueSeconds, 0.0);

    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 24, 99);
    const SessionId id = daemon.open(monitored);
    daemon.ingestBatch(id, recordStream(run));
    daemon.quiesce();

    const auto stats_after = daemon.stats();
    // A batch replay releases every window at once: the pool backlog
    // must be visible live through ServiceStats.
    EXPECT_GT(stats_after.backendQueue.latestFreeSeconds, 0.0);
    EXPECT_GE(stats_after.backendQueue.totalBacklogSeconds, 0.0);
    daemon.close(id);
}

} // namespace
} // namespace service
} // namespace bperf
