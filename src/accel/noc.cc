#include "accel/noc.h"

#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace accel {

ButterflyNoc::ButterflyNoc(NocConfig config) : config_(config)
{
    bp_assert(config_.ports >= 2, "NoC needs at least two ports");
    bp_assert((config_.ports & (config_.ports - 1)) == 0,
              "butterfly needs a power-of-two port count");
    stages_ = 0;
    for (std::size_t p = config_.ports; p > 1; p >>= 1)
        ++stages_;
}

std::uint64_t
ButterflyNoc::messageLatency(std::size_t src, std::size_t dst) const
{
    bp_assert(src < config_.ports && dst < config_.ports,
              "NoC port out of range");
    if (src == dst)
        return config_.cyclesPerFlit * config_.flitsPerMessage;
    return static_cast<std::uint64_t>(stages_) * config_.cyclesPerHop +
           config_.flitsPerMessage * config_.cyclesPerFlit;
}

std::uint64_t
ButterflyNoc::messageLatencyLoaded(std::size_t src, std::size_t dst,
                                   double utilization) const
{
    bp_assert(utilization >= 0.0 && utilization < 1.0,
              "NoC utilization must be in [0, 1)");
    const double base = static_cast<double>(messageLatency(src, dst));
    // M/D/1 mean waiting factor: 1 + u / (2 (1 - u)).
    const double factor = 1.0 + utilization / (2.0 * (1.0 - utilization));
    return static_cast<std::uint64_t>(std::llround(base * factor));
}

double
ButterflyNoc::bisectionFlitsPerCycle() const
{
    return static_cast<double>(config_.ports) / 2.0 /
           static_cast<double>(config_.cyclesPerFlit);
}

void
ButterflyNoc::recordMessage()
{
    ++messages_;
}

} // namespace accel
} // namespace bperf
