/** @file Tests for the kernel-to-user sample ring buffer. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/ring_buffer.h"

namespace bperf {
namespace sim {
namespace {

PerfRecord
rec(std::uint32_t slice, double value)
{
    PerfRecord r;
    r.slice = slice;
    r.value = value;
    return r;
}

TEST(RingBuffer, FifoOrder)
{
    RingBuffer rb(4);
    rb.push(rec(0, 1.0));
    rb.push(rec(1, 2.0));
    rb.push(rec(2, 3.0));
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_DOUBLE_EQ(rb.pop()->value, 1.0);
    EXPECT_DOUBLE_EQ(rb.pop()->value, 2.0);
    EXPECT_DOUBLE_EQ(rb.pop()->value, 3.0);
    EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, DropsWhenFull)
{
    RingBuffer rb(2);
    EXPECT_TRUE(rb.push(rec(0, 1.0)));
    EXPECT_TRUE(rb.push(rec(1, 2.0)));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(rec(2, 3.0)));
    EXPECT_EQ(rb.dropped(), 1u);
    EXPECT_EQ(rb.pushed(), 2u);
    // The oldest record is preserved (new data dropped, not old).
    EXPECT_EQ(rb.pop()->slice, 0u);
}

TEST(RingBuffer, WrapsAround)
{
    RingBuffer rb(3);
    for (std::uint32_t i = 0; i < 3; ++i)
        rb.push(rec(i, i));
    rb.pop();
    rb.pop();
    rb.push(rec(3, 3.0));
    rb.push(rec(4, 4.0));
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.pop()->slice, 2u);
    EXPECT_EQ(rb.pop()->slice, 3u);
    EXPECT_EQ(rb.pop()->slice, 4u);
}

TEST(RingBuffer, StressConsistency)
{
    RingBuffer rb(16);
    std::uint32_t next_push = 0, next_pop = 0;
    for (int round = 0; round < 1000; ++round) {
        if (round % 3 != 2) {
            if (rb.push(rec(next_push, next_push)))
                ++next_push;
        } else {
            const auto r = rb.pop();
            if (r) {
                EXPECT_EQ(r->slice, next_pop);
                ++next_pop;
            }
        }
    }
    while (auto r = rb.pop()) {
        EXPECT_EQ(r->slice, next_pop);
        ++next_pop;
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(RingBuffer, SpscConcurrentOrderPreserved)
{
    // One producer, one consumer, tiny ring: every accepted record
    // must come out exactly once, in order, and accepted + dropped
    // must account for every push attempt.
    RingBuffer rb(8);
    constexpr std::uint32_t kAttempts = 50000;

    std::thread producer([&rb] {
        for (std::uint32_t i = 0; i < kAttempts; ++i)
            rb.push(rec(i, i));
    });

    std::uint32_t popped = 0;
    std::uint32_t last = 0;
    bool seen_any = false;
    while (popped + rb.dropped() < kAttempts || !rb.empty()) {
        const auto r = rb.pop();
        if (!r)
            continue;
        if (seen_any)
            EXPECT_GT(r->slice, last);
        last = r->slice;
        seen_any = true;
        ++popped;
    }
    producer.join();

    EXPECT_EQ(popped, rb.pushed());
    EXPECT_EQ(rb.pushed() + rb.dropped(), kAttempts);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, SizeStaysSaneUnderConcurrentProducerConsumer)
{
    // Regression: size() used to load tail then head as independent
    // acquires, so a consumer advancing head between the two loads
    // made (tail - head) wrap to a huge value.  Hammer size() from a
    // third thread while a producer/consumer pair runs: every
    // observation must stay within [0, capacity].
    RingBuffer rb(8);
    constexpr std::uint32_t kAttempts = 200000;
    std::atomic<bool> done{false};

    std::thread producer([&] {
        for (std::uint32_t i = 0; i < kAttempts; ++i)
            rb.push(rec(i, i));
        done.store(true);
    });
    std::thread consumer([&] {
        while (!done.load() || !rb.empty())
            rb.pop();
    });

    // On a loaded single-core host the producer may finish before
    // this loop is scheduled at all, so the observation count itself
    // is not asserted — every observation that does happen must be
    // sane, and the post-join state is checked unconditionally.
    while (!done.load())
        ASSERT_LE(rb.size(), rb.capacity());
    producer.join();
    consumer.join();
    ASSERT_LE(rb.size(), rb.capacity());
    EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, CounterSnapshotIsCoherentUnderConcurrency)
{
    // counters() must return a (pushed, dropped) pair that coexisted:
    // pushed + dropped never exceeds the offers issued so far and the
    // sum is monotone across snapshots; after the producer finishes
    // it equals the exact attempt count.
    RingBuffer rb(8);
    constexpr std::uint32_t kAttempts = 200000;
    std::atomic<bool> done{false};

    std::thread producer([&] {
        for (std::uint32_t i = 0; i < kAttempts; ++i)
            rb.push(rec(i, i));
        done.store(true);
    });
    std::thread consumer([&] {
        while (!done.load() || !rb.empty())
            rb.pop();
    });

    std::uint64_t last_offered = 0;
    while (!done.load()) {
        const RingBuffer::Counters counters = rb.counters();
        const std::uint64_t offered = counters.pushed + counters.dropped;
        ASSERT_LE(offered, kAttempts);
        ASSERT_GE(offered, last_offered);
        last_offered = offered;
    }
    producer.join();
    consumer.join();

    const RingBuffer::Counters final_counters = rb.counters();
    EXPECT_EQ(final_counters.pushed + final_counters.dropped, kAttempts);
    EXPECT_EQ(final_counters.pushed, rb.pushed());
    EXPECT_EQ(final_counters.dropped, rb.dropped());
}

TEST(RingBufferDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(RingBuffer rb(0), "capacity");
}

} // namespace
} // namespace sim
} // namespace bperf
