#include "telemetry/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "telemetry/telemetry.h"

namespace bperf {
namespace telemetry {

namespace {

std::uint64_t
secondsToNanos(double seconds)
{
    return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9)
                         : 0;
}

} // namespace

TraceCollector::TraceCollector(std::size_t max_events)
    : maxEvents_(max_events), baseNanos_(nowNanos())
{
    slices_.reserve(max_events < 1024 ? max_events : 1024);
}

void
TraceCollector::push(const PhaseSlice &slice)
{
    if (slices_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    slices_.push_back(slice);
}

void
TraceCollector::addWindow(std::uint64_t session_id,
                          std::uint64_t window_id,
                          const core::WindowExecution &execution)
{
    const core::WindowSpan &span = execution.span;
    std::lock_guard<std::mutex> lock(mutex_);
    if (span.epStartNanos == 0) {
        // The window ran with telemetry off: nothing to place.
        ++dropped_;
        return;
    }

    PhaseSlice slice;
    slice.sessionId = session_id;
    slice.traceId = span.traceId;
    slice.windowId = window_id;
    slice.engineId = execution.engineId;
    slice.category = "window";

    // Measured phases at their real positions.  A zero ingest or
    // assemble stamp means the phase was never observed (stream-end
    // flush windows); skip those slices rather than inventing t=0.
    if (span.ingestNanos != 0 && span.assembleNanos >= span.ingestNanos) {
        slice.name = "ingest-wait";
        slice.startNanos = span.ingestNanos;
        slice.durationNanos = span.assembleNanos - span.ingestNanos;
        push(slice);
    }
    if (span.assembleNanos != 0 &&
        span.epStartNanos >= span.assembleNanos) {
        slice.name = "dispatch-wait";
        slice.startNanos = span.assembleNanos;
        slice.durationNanos = span.epStartNanos - span.assembleNanos;
        push(slice);
    }
    if (span.epEndNanos >= span.epStartNanos) {
        slice.name = "ep-compute";
        slice.startNanos = span.epStartNanos;
        slice.durationNanos = span.epEndNanos - span.epStartNanos;
        push(slice);
    }

    // Modeled backend phases exist only on the backend's simulated
    // clock; lay them end-to-end after the EP solve so the viewer
    // shows the queue/transfer/compute split per window.
    slice.category = "modeled";
    std::uint64_t cursor = span.epEndNanos;
    const std::uint64_t queue_ns =
        secondsToNanos(execution.queueWaitSeconds);
    const std::uint64_t xfer_ns =
        secondsToNanos(execution.transferSeconds);
    const std::uint64_t service_ns =
        secondsToNanos(execution.serviceSeconds);
    const std::uint64_t compute_ns =
        service_ns > xfer_ns ? service_ns - xfer_ns : 0;
    slice.name = "backend-queue";
    slice.startNanos = cursor;
    slice.durationNanos = queue_ns;
    push(slice);
    cursor += queue_ns;
    slice.name = "backend-xfer";
    slice.startNanos = cursor;
    slice.durationNanos = xfer_ns;
    push(slice);
    cursor += xfer_ns;
    slice.name = "backend-compute";
    slice.startNanos = cursor;
    slice.durationNanos = compute_ns;
    push(slice);

    if (span.publishNanos != 0) {
        const std::uint64_t now = nowNanos();
        slice.category = "window";
        slice.name = "publish";
        slice.startNanos = span.publishNanos;
        slice.durationNanos =
            now > span.publishNanos ? now - span.publishNanos : 0;
        push(slice);
    }
}

std::size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slices_.size();
}

std::uint64_t
TraceCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::string
TraceCollector::chromeTraceJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    char buf[512];
    bool first = true;
    for (const PhaseSlice &slice : slices_) {
        const std::uint64_t rel = slice.startNanos > baseNanos_
                                      ? slice.startNanos - baseNanos_
                                      : 0;
        std::snprintf(
            buf, sizeof(buf),
            "%s\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
            "\"tid\": %" PRIu64 ", \"args\": {\"trace_id\": %" PRIu64
            ", \"window_id\": %" PRIu64 ", \"engine\": %zu}}",
            first ? "" : ",", slice.name, slice.category,
            static_cast<double>(rel) / 1e3,
            static_cast<double>(slice.durationNanos) / 1e3,
            slice.sessionId, slice.traceId, slice.windowId,
            slice.engineId);
        out += buf;
        first = false;
    }
    out += "\n]}\n";
    return out;
}

bool
TraceCollector::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << chromeTraceJson();
    return static_cast<bool>(out);
}

} // namespace telemetry
} // namespace bperf
