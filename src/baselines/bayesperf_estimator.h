/**
 * @file
 * Adapter exposing BayesPerf inference through the Estimator
 * interface so benches score all estimators uniformly.
 */

#ifndef BPERF_BASELINES_BAYESPERF_ESTIMATOR_H
#define BPERF_BASELINES_BAYESPERF_ESTIMATOR_H

#include <memory>

#include "baselines/estimator.h"
#include "core/inference.h"

namespace bperf {
namespace baselines {

/**
 * Runs (and caches) BayesPerf inference over the measurement run it
 * is queried with, serving posterior-mean series.
 */
class BayesPerfEstimator : public Estimator
{
  public:
    BayesPerfEstimator(const sim::MicroarchDescriptor &uarch,
                       core::InferenceConfig config = {})
        : uarch_(uarch), engine_(uarch, config)
    {
    }

    std::string name() const override { return "BayesPerf"; }

    std::vector<double> series(const sim::PerfResult &run,
                               sim::EventId event) const override;

    /** Posterior standard deviations for the cached run. */
    std::vector<double> uncertainty(const sim::PerfResult &run,
                                    sim::EventId event) const;

    /** Wall-clock inference seconds of the cached run. */
    double lastWallSeconds() const { return cached_.wallSeconds; }

  private:
    void ensureRun(const sim::PerfResult &run) const;

    const sim::MicroarchDescriptor &uarch_;
    core::InferenceEngine engine_;
    mutable const sim::PerfResult *cachedKey_ = nullptr;
    mutable core::InferenceResult cached_;
};

} // namespace baselines
} // namespace bperf

#endif // BPERF_BASELINES_BAYESPERF_ESTIMATOR_H
