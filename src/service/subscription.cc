#include "service/subscription.h"

#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

namespace {

telemetry::Counter &
subscriptionDropsCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("subscription.drops");
    return c;
}

telemetry::Histogram &
queueDepthHistogram()
{
    static telemetry::Histogram &h =
        telemetry::MetricsRegistry::global().histogram(
            "subscription.queue_depth");
    return h;
}

telemetry::Histogram &
deliveryLagHistogram()
{
    static telemetry::Histogram &h =
        telemetry::MetricsRegistry::global().histogram(
            "subscription.delivery_lag_ns");
    return h;
}

} // namespace

SubscriptionHub::SubscriptionHub(std::size_t queue_capacity)
    : queueCapacity_(queue_capacity == 0 ? 1 : queue_capacity),
      dispatcher_([this] { dispatchLoop(); })
{
}

SubscriptionHub::~SubscriptionHub()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    dispatcher_.join();
    // Whatever never got delivered is accounted as dropped, so
    // published == delivered + dropped holds at rest too.
    for (auto &[id, sub] : subscribers_) {
        (void)id;
        sub->stats.dropped += sub->queue.size();
        sub->queue.clear();
    }
    queuedTotal_ = 0;
}

SubscriptionId
SubscriptionHub::subscribe(std::uint64_t session_id,
                           WindowCallback callback)
{
    auto sub = std::make_shared<Subscriber>();
    sub->sessionId = session_id;
    sub->callback = std::move(callback);
    std::lock_guard<std::mutex> lock(mutex_);
    const SubscriptionId id = nextId_++;
    subscribers_.emplace(id, std::move(sub));
    return id;
}

bool
SubscriptionHub::unsubscribe(SubscriptionId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find(id);
    if (it == subscribers_.end() || !it->second->active)
        return false;
    Subscriber &sub = *it->second;
    // Keep the entry so stats(id) stays answerable; just stop
    // delivery and drop whatever was still queued.
    sub.active = false;
    sub.stats.dropped += sub.queue.size();
    queuedTotal_ -= sub.queue.size();
    sub.queue.clear();
    idleCv_.notify_all();
    return true;
}

void
SubscriptionHub::publish(const WindowUpdate &update)
{
    bool notify = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        for (auto &[id, sub] : subscribers_) {
            (void)id;
            if (!sub->active || sub->sessionId != update.sessionId)
                continue;
            ++sub->stats.published;
            if (sub->queue.size() >= queueCapacity_) {
                // Slow consumer: evict the oldest update so the
                // subscriber keeps seeing the freshest windows.
                sub->queue.pop_front();
                ++sub->stats.dropped;
                --queuedTotal_;
                subscriptionDropsCounter().add();
            }
            sub->queue.push_back(update);
            ++queuedTotal_;
            notify = true;
        }
        // Sampled once per publish: hub-wide queued backlog.
        queueDepthHistogram().record(queuedTotal_);
    }
    if (notify)
        workCv_.notify_one();
}

void
SubscriptionHub::dispatchLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    SubscriptionId cursor = 0;
    for (;;) {
        workCv_.wait(lock,
                     [this] { return stopping_ || queuedTotal_ > 0; });
        if (stopping_)
            return;

        // Round-robin across subscribers: first non-empty queue after
        // the cursor, wrapping, so one busy session cannot starve
        // another session's subscribers.
        std::shared_ptr<Subscriber> next;
        auto it = subscribers_.upper_bound(cursor);
        for (std::size_t step = 0; step <= subscribers_.size(); ++step) {
            if (it == subscribers_.end()) {
                it = subscribers_.begin();
                if (it == subscribers_.end())
                    break;
            }
            if (it->second->active && !it->second->queue.empty()) {
                cursor = it->first;
                next = it->second;
                break;
            }
            ++it;
        }
        if (!next)
            continue; // raced with unsubscribe; re-evaluate

        WindowUpdate update = std::move(next->queue.front());
        next->queue.pop_front();
        --queuedTotal_;
        dispatching_ = true;
        lock.unlock();
        // The callback runs without the hub lock: it may take its
        // own locks or be slow without stalling publishers.
        next->callback(update);
        if (update.execution.span.publishNanos != 0 &&
            telemetry::enabled()) {
            const std::uint64_t now = telemetry::nowNanos();
            if (now > update.execution.span.publishNanos)
                deliveryLagHistogram().record(
                    now - update.execution.span.publishNanos);
        }
        lock.lock();
        ++next->stats.delivered;
        dispatching_ = false;
        idleCv_.notify_all();
    }
}

void
SubscriptionHub::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return (queuedTotal_ == 0 && !dispatching_) || stopping_;
    });
}

std::optional<SubscriptionStats>
SubscriptionHub::stats(SubscriptionId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find(id);
    if (it == subscribers_.end())
        return std::nullopt;
    return it->second->stats;
}

std::size_t
SubscriptionHub::subscriberCount(std::uint64_t session_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const auto &[id, sub] : subscribers_) {
        (void)id;
        if (sub->active && sub->sessionId == session_id)
            ++count;
    }
    return count;
}

} // namespace service
} // namespace bperf
