file(REMOVE_RECURSE
  "CMakeFiles/test_ring_buffer.dir/tests/test_ring_buffer.cpp.o"
  "CMakeFiles/test_ring_buffer.dir/tests/test_ring_buffer.cpp.o.d"
  "test_ring_buffer"
  "test_ring_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
