#include "sim/microarch.h"

#include "common/logging.h"
#include "sim/model_constants.h"

namespace bperf {
namespace sim {

const char *
roleName(Role role)
{
    switch (role) {
      case Role::Cycles: return "cycles";
      case Role::Instructions: return "instructions";
      case Role::RefCycles: return "ref_cycles";
      case Role::ActiveCycles: return "active_cycles";
      case Role::StallTotal: return "stall_total";
      case Role::StallMem: return "stall_mem";
      case Role::StallFrontend: return "stall_frontend";
      case Role::StallBranch: return "stall_branch";
      case Role::UopsIssued: return "uops_issued";
      case Role::UopsRetired: return "uops_retired";
      case Role::Loads: return "loads";
      case Role::Stores: return "stores";
      case Role::OtherOps: return "other_ops";
      case Role::Branches: return "branches";
      case Role::BranchTaken: return "branch_taken";
      case Role::BranchNotTaken: return "branch_not_taken";
      case Role::BranchMisses: return "branch_misses";
      case Role::FpOps: return "fp_ops";
      case Role::SimdOps: return "simd_ops";
      case Role::L1DAccess: return "l1d_access";
      case Role::L1DMiss: return "l1d_miss";
      case Role::L1IMiss: return "l1i_miss";
      case Role::L2Access: return "l2_access";
      case Role::L2Miss: return "l2_miss";
      case Role::L2Prefetch: return "l2_prefetch";
      case Role::LlcAccess: return "llc_access";
      case Role::LlcMiss: return "llc_miss";
      case Role::DtlbMiss: return "dtlb_miss";
      case Role::ItlbMiss: return "itlb_miss";
      case Role::OffcoreReads: return "offcore_reads";
      case Role::OffcoreWrites: return "offcore_writes";
      case Role::DramBytes: return "dram_bytes";
      case Role::DramReads: return "dram_reads";
      case Role::DramWrites: return "dram_writes";
      case Role::DmaBytes: return "dma_bytes";
      case Role::PcieReadBytes: return "pcie_read_bytes";
      case Role::PcieWriteBytes: return "pcie_write_bytes";
      case Role::PageFaults: return "page_faults";
      case Role::ContextSwitches: return "context_switches";
      case Role::NumRoles: break;
    }
    return "?";
}

MicroarchDescriptor::MicroarchDescriptor(std::string name, double clock_ghz,
                                         double cache_line_bytes,
                                         std::size_t num_fixed,
                                         std::size_t num_programmable,
                                         std::size_t num_offcore_msrs)
    : name_(std::move(name)), clockGhz_(clock_ghz),
      cacheLineBytes_(cache_line_bytes), numFixed_(num_fixed),
      numProg_(num_programmable), numOffcoreMsrs_(num_offcore_msrs),
      roleToId_(kNumRoles, kNoEvent)
{
    bp_assert(numProg_ > 0 && numProg_ <= 32,
              "programmable counter count out of range");
}

EventId
MicroarchDescriptor::addEvent(Role role, std::string name, bool fixed,
                              std::uint32_t counter_mask, bool needs_msr,
                              double typical_per_slice)
{
    const auto role_idx = static_cast<std::size_t>(role);
    bp_assert(role_idx < kNumRoles, "bad role");
    bp_assert(roleToId_[role_idx] == kNoEvent,
              "role registered twice: " << roleName(role));
    if (!fixed) {
        bp_assert(counter_mask != 0, "programmable event needs counter mask");
        bp_assert((counter_mask >> numProg_) == 0,
                  "counter mask references missing counter");
    }
    EventDef def;
    def.id = static_cast<EventId>(events_.size());
    def.role = role;
    def.name = std::move(name);
    def.fixed = fixed;
    def.counterMask = fixed ? 0 : counter_mask;
    def.needsOffcoreMsr = needs_msr;
    def.typicalPerSlice = typical_per_slice;
    roleToId_[role_idx] = def.id;
    events_.push_back(std::move(def));
    return events_.back().id;
}

void
MicroarchDescriptor::addInvariant(LinearInvariant inv)
{
    bp_assert(inv.terms.size() >= 2, "invariant needs >= 2 terms");
    for (const auto &term : inv.terms) {
        bp_assert(roleToId_[static_cast<std::size_t>(term.role)] != kNoEvent,
                  "invariant references unregistered role "
                      << roleName(term.role));
    }
    invariants_.push_back(std::move(inv));
}

const EventDef &
MicroarchDescriptor::event(EventId id) const
{
    bp_assert(id < events_.size(), "event id out of range");
    return events_[id];
}

const EventDef &
MicroarchDescriptor::eventForRole(Role role) const
{
    return event(idForRole(role));
}

EventId
MicroarchDescriptor::idForRole(Role role) const
{
    const auto idx = static_cast<std::size_t>(role);
    bp_assert(idx < kNumRoles, "bad role");
    const EventId id = roleToId_[idx];
    bp_assert(id != kNoEvent, "role not in catalog: " << roleName(role));
    return id;
}

std::optional<EventId>
MicroarchDescriptor::findByName(const std::string &name) const
{
    for (const auto &e : events_)
        if (e.name == name)
            return e.id;
    return std::nullopt;
}

std::vector<EventId>
MicroarchDescriptor::programmableEvents() const
{
    std::vector<EventId> out;
    for (const auto &e : events_)
        if (!e.fixed)
            out.push_back(e.id);
    return out;
}

std::vector<EventId>
MicroarchDescriptor::fixedEvents() const
{
    std::vector<EventId> out;
    for (const auto &e : events_)
        if (e.fixed)
            out.push_back(e.id);
    return out;
}

namespace {

/**
 * Register the architecture-independent invariant set.  Slack values
 * separate structural identities (which the hardware guarantees) from
 * heuristic performance-model relations.
 */
void
addCommonInvariants(MicroarchDescriptor &uarch)
{
    const double line = uarch.cacheLineBytes();

    // Instruction mix identity.
    uarch.addInvariant({"inst_mix",
                        {{Role::Instructions, 1.0},
                         {Role::Loads, -1.0},
                         {Role::Stores, -1.0},
                         {Role::Branches, -1.0},
                         {Role::OtherOps, -1.0}},
                        1e-4});
    // Branch outcome identity.
    uarch.addInvariant({"branch_outcomes",
                        {{Role::Branches, 1.0},
                         {Role::BranchTaken, -1.0},
                         {Role::BranchNotTaken, -1.0}},
                        1e-4});
    // L1D accesses are loads + stores.
    uarch.addInvariant({"l1d_access",
                        {{Role::L1DAccess, 1.0},
                         {Role::Loads, -1.0},
                         {Role::Stores, -1.0}},
                        1e-4});
    // L2 demand+prefetch traffic comes from L1D/L1I misses + prefetches.
    uarch.addInvariant({"l2_access",
                        {{Role::L2Access, 1.0},
                         {Role::L1DMiss, -1.0},
                         {Role::L1IMiss, -1.0},
                         {Role::L2Prefetch, -1.0}},
                        1e-4});
    // LLC sees exactly the L2 misses.
    uarch.addInvariant(
        {"llc_access", {{Role::LlcAccess, 1.0}, {Role::L2Miss, -1.0}}, 1e-4});
    // Paper's flagship relation: DRAM bytes = line x LLC misses + DMA.
    uarch.addInvariant({"dram_bandwidth",
                        {{Role::DramBytes, 1.0},
                         {Role::LlcMiss, -line},
                         {Role::DmaBytes, -1.0}},
                        2e-3});
    // DRAM bytes decompose into 64 B read/write transactions.
    uarch.addInvariant({"dram_rw",
                        {{Role::DramBytes, 1.0},
                         {Role::DramReads, -kDramGranuleBytes},
                         {Role::DramWrites, -kDramGranuleBytes}},
                        1e-4});
    // Every LLC miss goes offcore, as a read or a write.
    uarch.addInvariant({"offcore_split",
                        {{Role::LlcMiss, 1.0},
                         {Role::OffcoreReads, -1.0},
                         {Role::OffcoreWrites, -1.0}},
                        1e-4});
    // DMA traffic is PCIe reads + writes.
    uarch.addInvariant({"dma_pcie",
                        {{Role::DmaBytes, 1.0},
                         {Role::PcieReadBytes, -1.0},
                         {Role::PcieWriteBytes, -1.0}},
                        1e-4});
    // Cycle accounting (top-down style).
    uarch.addInvariant({"cycle_accounting",
                        {{Role::Cycles, 1.0},
                         {Role::ActiveCycles, -1.0},
                         {Role::StallTotal, -1.0}},
                        1e-4});
    uarch.addInvariant({"stall_split",
                        {{Role::StallTotal, 1.0},
                         {Role::StallMem, -1.0},
                         {Role::StallFrontend, -1.0},
                         {Role::StallBranch, -1.0}},
                        1e-4});
    // Soft (performance-model) relations.
    uarch.addInvariant({"uop_issue_rate",
                        {{Role::UopsIssued, 1.0},
                         {Role::Instructions, -kUopPerInst}},
                        0.05});
    uarch.addInvariant({"uop_retire",
                        {{Role::UopsRetired, 1.0},
                         {Role::UopsIssued, -1.0},
                         {Role::BranchMisses, kUopFlushPerBrMiss}},
                        0.05});
    uarch.addInvariant({"branch_stall_model",
                        {{Role::StallBranch, 1.0},
                         {Role::BranchMisses, -kBrMissPenalty}},
                        0.08});
    uarch.addInvariant({"l2_miss_rate_model",
                        {{Role::L2Miss, 1.0}, {Role::L2Access, -0.4}},
                        0.35});
    uarch.addInvariant({"mem_stall_model",
                        {{Role::StallMem, 1.0},
                         {Role::L2Miss, -kL2MissPenalty},
                         {Role::LlcMiss, -kLlcMissPenalty}},
                        0.10});
    // Reference clock runs at a fixed ratio of the core clock.
    uarch.addInvariant({"ref_clock",
                        {{Role::Cycles, 1.0},
                         {Role::RefCycles, -kRefClockRatio}},
                        0.02});
}

struct RoleSpec
{
    Role role;
    const char *x86Name;
    const char *ppcName;
    double typical; // per 10 ms slice, x86 scale
};

/**
 * Event naming tables.  x86 names follow Intel SDM style; ppc64 names
 * follow the Power9 PMU event list style.
 */
const RoleSpec kFixedSpecs[] = {
    {Role::Cycles, "CPU_CLK_UNHALTED.THREAD", "PM_RUN_CYC", 26.0e6},
    {Role::Instructions, "INST_RETIRED.ANY", "PM_RUN_INST_CMPL", 20.0e6},
    {Role::RefCycles, "CPU_CLK_UNHALTED.REF_TSC", "PM_REF_CYC", 25.0e6},
};

const RoleSpec kCoreSpecs[] = {
    {Role::ActiveCycles, "UOPS_EXECUTED.CORE_CYCLES_GE_1",
     "PM_RUN_CYC_ACTIVE", 16.0e6},
    {Role::StallTotal, "CYCLE_ACTIVITY.STALLS_TOTAL", "PM_CMPLU_STALL",
     10.0e6},
    {Role::StallFrontend, "IDQ_UOPS_NOT_DELIVERED.CORE",
     "PM_ICT_NOSLOT_CYC", 3.0e6},
    {Role::StallBranch, "INT_MISC.RECOVERY_CYCLES",
     "PM_CMPLU_STALL_BRU", 1.0e6},
    {Role::UopsIssued, "UOPS_ISSUED.ANY", "PM_INST_DISP", 26.0e6},
    {Role::UopsRetired, "UOPS_RETIRED.ALL", "PM_INST_FIN", 25.0e6},
    {Role::Loads, "MEM_INST_RETIRED.ALL_LOADS", "PM_LD_CMPL", 5.0e6},
    {Role::Stores, "MEM_INST_RETIRED.ALL_STORES", "PM_ST_FIN", 2.4e6},
    {Role::OtherOps, "ARITH.ANY", "PM_FXU_FIN", 8.6e6},
    {Role::Branches, "BR_INST_RETIRED.ALL_BRANCHES", "PM_BR_CMPL", 4.0e6},
    {Role::BranchTaken, "BR_INST_RETIRED.NEAR_TAKEN", "PM_BR_TAKEN_CMPL",
     2.6e6},
    {Role::BranchNotTaken, "BR_INST_RETIRED.NOT_TAKEN",
     "PM_BR_NOT_TAKEN_CMPL", 1.4e6},
    {Role::BranchMisses, "BR_MISP_RETIRED.ALL_BRANCHES", "PM_BR_MPRED_CMPL",
     8.0e4},
    {Role::FpOps, "FP_ARITH_INST_RETIRED.SCALAR", "PM_FLOP_CMPL", 2.0e6},
    {Role::SimdOps, "FP_ARITH_INST_RETIRED.PACKED", "PM_VECTOR_FLOP_CMPL",
     1.0e6},
    {Role::L1DAccess, "L1D.ALL_REF", "PM_LD_REF_L1", 7.4e6},
    {Role::L1DMiss, "L1D.REPLACEMENT", "PM_LD_MISS_L1", 3.7e5},
    {Role::L1IMiss, "ICACHE_64B.IFTAG_MISS", "PM_INST_FROM_L2", 6.0e4},
    {Role::L2Access, "L2_RQSTS.REFERENCES", "PM_L2_RQST", 5.2e5},
    {Role::L2Miss, "L2_RQSTS.MISS", "PM_L2_MISS", 1.6e5},
    {Role::L2Prefetch, "L2_RQSTS.ALL_PF", "PM_L2_PREF", 9.0e4},
    {Role::LlcAccess, "LONGEST_LAT_CACHE.REFERENCE", "PM_L3_RQST", 1.6e5},
    {Role::LlcMiss, "LONGEST_LAT_CACHE.MISS", "PM_L3_MISS", 4.8e4},
    {Role::DtlbMiss, "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK",
     "PM_DTLB_MISS", 2.0e4},
    {Role::ItlbMiss, "ITLB_MISSES.MISS_CAUSES_A_WALK", "PM_ITLB_MISS",
     4.0e3},
    {Role::PageFaults, "faults", "faults", 2.0e2},
    {Role::ContextSwitches, "cs", "cs", 5.0e1},
};

const RoleSpec kStallMemSpec = {Role::StallMem,
                                "CYCLE_ACTIVITY.STALLS_L2_PENDING",
                                "PM_CMPLU_STALL_DMISS_L2L3", 6.0e6};

const RoleSpec kOffcoreSpecs[] = {
    {Role::OffcoreReads, "OFFCORE_RESPONSE.ALL_READS", "PM_DATA_FROM_MEM",
     3.4e4},
    {Role::OffcoreWrites, "OFFCORE_RESPONSE.ALL_WRITES", "PM_ST_MISS_L3",
     1.4e4},
};

const RoleSpec kUncoreSpecs[] = {
    {Role::DramBytes, "UNC_M_BYTES.ALL", "PM_MEM_BYTES", 4.0e6},
    {Role::DramReads, "UNC_M_CAS_COUNT.RD", "PM_MEM_READ", 4.0e4},
    {Role::DramWrites, "UNC_M_CAS_COUNT.WR", "PM_MEM_WRITE", 2.2e4},
    {Role::DmaBytes, "UNC_IIO_DATA_REQ_OF_CPU.ALL", "PM_DMA_BYTES", 1.0e6},
    {Role::PcieReadBytes, "UNC_IIO_DATA_REQ_OF_CPU.MEM_READ",
     "PM_PCIE_READ_BYTES", 6.0e5},
    {Role::PcieWriteBytes, "UNC_IIO_DATA_REQ_OF_CPU.MEM_WRITE",
     "PM_PCIE_WRITE_BYTES", 4.0e5},
};

} // namespace

MicroarchDescriptor
makeX86Skylake()
{
    // 4 effective core counters (bits 0-3) + 2 uncore counters (bits 4-5).
    MicroarchDescriptor uarch("x86_64-skylake", 2.6, 64.0, 3, 6, 2);
    const std::uint32_t core_mask = 0x0F;
    const std::uint32_t uncore_mask = 0x30;

    for (const auto &s : kFixedSpecs)
        uarch.addEvent(s.role, s.x86Name, true, 0, false, s.typical);
    for (const auto &s : kCoreSpecs) {
        std::uint32_t mask = core_mask;
        // Model per-counter placement restrictions the way Intel does:
        // prefetch events only on counters 0-1.
        if (s.role == Role::L2Prefetch)
            mask = 0x03;
        uarch.addEvent(s.role, s.x86Name, false, mask, false, s.typical);
    }
    // STALLS_L2_PENDING can be counted only on counter 2 on
    // Haswell/Broadwell-class parts (see paper section 4).
    uarch.addEvent(kStallMemSpec.role, kStallMemSpec.x86Name, false, 0x04,
                   false, kStallMemSpec.typical);
    for (const auto &s : kOffcoreSpecs)
        uarch.addEvent(s.role, s.x86Name, false, core_mask, true, s.typical);
    for (const auto &s : kUncoreSpecs)
        uarch.addEvent(s.role, s.x86Name, false, uncore_mask, false,
                       s.typical);

    addCommonInvariants(uarch);
    return uarch;
}

MicroarchDescriptor
makePower9()
{
    // 6 core counters (bits 0-5) + 2 uncore counters (bits 6-7),
    // 128 B cache lines, 3.1 GHz.
    MicroarchDescriptor uarch("ppc64-power9", 3.1, 128.0, 3, 8, 1);
    const std::uint32_t core_mask = 0x3F;
    const std::uint32_t uncore_mask = 0xC0;
    // Power9 events are ~19% denser per slice (higher clock).
    const double scale = 3.1 / 2.6;

    for (const auto &s : kFixedSpecs)
        uarch.addEvent(s.role, s.ppcName, true, 0, false, s.typical * scale);
    for (const auto &s : kCoreSpecs) {
        std::uint32_t mask = core_mask;
        if (s.role == Role::L2Prefetch)
            mask = 0x03;
        uarch.addEvent(s.role, s.ppcName, false, mask, false,
                       s.typical * scale);
    }
    // Power9 restricts the L2/L3 stall event to PMC3/PMC4.
    uarch.addEvent(kStallMemSpec.role, kStallMemSpec.ppcName, false, 0x18,
                   false, kStallMemSpec.typical * scale);
    for (const auto &s : kOffcoreSpecs)
        uarch.addEvent(s.role, s.ppcName, false, core_mask, true,
                       s.typical * scale);
    for (const auto &s : kUncoreSpecs)
        uarch.addEvent(s.role, s.ppcName, false, uncore_mask, false,
                       s.typical * scale);

    addCommonInvariants(uarch);
    return uarch;
}

} // namespace sim
} // namespace bperf
