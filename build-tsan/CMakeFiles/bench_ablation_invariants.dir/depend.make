# Empty dependencies file for bench_ablation_invariants.
# This may be replaced when dependencies are built.
