#include "analysis/error_metrics.h"

#include <cmath>

#include "analysis/dtw.h"
#include "common/logging.h"
#include "common/stats.h"

namespace bperf {
namespace ana {

double
traceErrorPercent(const std::vector<double> &estimate,
                  const std::vector<double> &reference, bool use_dtw)
{
    bp_assert(!estimate.empty() && !reference.empty(),
              "error of empty series");

    // Scale floor: deviations are measured relative to the typical
    // magnitude of the reference so near-zero reference points do not
    // blow the percentage up.
    RunningStats ref_stats;
    for (double r : reference)
        ref_stats.push(std::abs(r));
    const double floor = std::max(0.05 * ref_stats.mean(), 1e-12);

    RunningStats err;
    if (use_dtw) {
        // Band keeps alignments local: counter traces are already
        // time-synchronized, so only small phase slips may be
        // forgiven — a wide band would absorb the very staleness
        // error multiplexing introduces.
        const std::size_t band =
            std::max<std::size_t>(2, reference.size() / 48);
        const DtwResult alignment = dtwBanded(estimate, reference, band);
        for (const auto &[i, j] : alignment.path) {
            const double denom = std::max(std::abs(reference[j]), floor);
            err.push(std::abs(estimate[i] - reference[j]) / denom);
        }
    } else {
        bp_assert(estimate.size() == reference.size(),
                  "element-wise error needs equal lengths");
        for (std::size_t t = 0; t < reference.size(); ++t) {
            const double denom = std::max(std::abs(reference[t]), floor);
            err.push(std::abs(estimate[t] - reference[t]) / denom);
        }
    }
    return 100.0 * err.mean();
}

double
derivedErrorPercent(const sim::MicroarchDescriptor &uarch,
                    const std::vector<core::DerivedMetric> &metrics,
                    std::size_t num_slices, const SeriesFn &estimate,
                    const SeriesFn &reference, bool use_dtw)
{
    bp_assert(!metrics.empty(), "no derived metrics given");
    RunningStats err;
    for (const auto &metric : metrics) {
        const auto est =
            core::derivedSeries(metric, uarch, num_slices, estimate);
        const auto ref =
            core::derivedSeries(metric, uarch, num_slices, reference);
        err.push(traceErrorPercent(est, ref, use_dtw));
    }
    return err.mean();
}

double
normalizedImprovement(double baseline_error_pct, double estimator_error_pct)
{
    if (estimator_error_pct <= 0.0)
        return 1.0;
    return baseline_error_pct / estimator_error_pct;
}

} // namespace ana
} // namespace bperf
