#include "service/snapshot_publisher.h"

namespace bperf {
namespace service {

namespace {

shim::SnapshotRegionConfig
regionConfig(const SnapshotConfig &config)
{
    shim::SnapshotRegionConfig region;
    region.slots = config.slots;
    region.maxEvents = config.maxEvents;
    return region;
}

} // namespace

SnapshotPublisher::SnapshotPublisher(const SnapshotConfig &config)
    : region_(regionConfig(config), config.shmName),
      slotUsed_(config.slots, false)
{
}

std::optional<std::size_t>
SnapshotPublisher::allocate(std::uint64_t session_id,
                            std::size_t event_count)
{
    if (event_count > region_.maxEvents())
        return std::nullopt; // does not fit a slot
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t slot = 0; slot < slotUsed_.size(); ++slot) {
        if (slotUsed_[slot])
            continue;
        slotUsed_[slot] = true;
        slotOf_[session_id] = slot;
        return slot;
    }
    return std::nullopt; // table full
}

void
SnapshotPublisher::release(std::uint64_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slotOf_.find(session_id);
    if (it == slotOf_.end())
        return; // never exported
    const std::size_t slot = it->second;
    // Invalidate before the slot becomes allocatable: a slot must
    // never have two writers, and the next owner's first publish is
    // ordered after this critical section through mutex_.
    region_.invalidate(slot);
    slotOf_.erase(it);
    slotUsed_[slot] = false;
}

void
SnapshotPublisher::publish(std::size_t slot, const WindowUpdate &update)
{
    region_.write(slot, update.sessionId, update.windowIndex,
                  update.endSlice, update.execution, update.events,
                  update.posterior, shim::steadyNowNanos());
}

SnapshotPublisherStats
SnapshotPublisher::stats() const
{
    SnapshotPublisherStats out;
    out.enabled = true;
    // The region header's publish counter is the single source of
    // truth (the same word readers watch for freshness).
    out.publishes = region_.publishes();
    out.publishDrops = drops_.load(std::memory_order_relaxed);
    out.slotCapacity = region_.slots();
    std::lock_guard<std::mutex> lock(mutex_);
    out.slotsLive = slotOf_.size();
    return out;
}

} // namespace service
} // namespace bperf
