/**
 * @file
 * Performance monitoring unit model: placement of events onto
 * programmable counters under per-event counter masks and offcore-MSR
 * budgets.
 *
 * Mirrors the Linux perf_event validity checker the paper relies on
 * (section 4.1): events are placed most-constrained-first, with
 * backtracking, and a configuration is valid iff a complete placement
 * exists.
 */

#ifndef BPERF_SIM_PMU_H
#define BPERF_SIM_PMU_H

#include <optional>
#include <vector>

#include "sim/microarch.h"

namespace bperf {
namespace sim {

/**
 * A concrete placement: slot i holds the event counted on
 * programmable counter i (kNoEvent for idle counters).
 */
struct CounterAssignment
{
    std::vector<EventId> slots;

    /** Number of non-idle slots. */
    std::size_t used() const;
};

/**
 * Counter placement and validity checking for one microarchitecture.
 */
class Pmu
{
  public:
    explicit Pmu(const MicroarchDescriptor &uarch);

    const MicroarchDescriptor &uarch() const { return uarch_; }

    /**
     * Attempt to place `events` (all distinct, all programmable) onto
     * the programmable counters.  Returns the placement, or nullopt
     * when no placement satisfies the counter masks and the offcore
     * MSR budget.
     */
    std::optional<CounterAssignment>
    assign(const std::vector<EventId> &events) const;

    /** True iff assign(events) would succeed. */
    bool validate(const std::vector<EventId> &events) const;

    /**
     * Greedily split `events` into the minimum-size-first sequence of
     * valid configurations, packing each configuration with as many
     * events as the constraints allow.  This reproduces Linux's
     * round-robin group construction.
     */
    std::vector<std::vector<EventId>>
    packIntoConfigs(const std::vector<EventId> &events) const;

  private:
    bool assignRecursive(const std::vector<EventId> &order, std::size_t next,
                         std::vector<EventId> &slots,
                         std::size_t msrs_left) const;

    const MicroarchDescriptor &uarch_;
};

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_PMU_H
