#include "core/quad_kernel.h"

#include <algorithm>

#include "common/logging.h"
#include "core/quad_poly.h"

namespace bperf {
namespace core {

double *
quadLogWeightBuffer()
{
    thread_local double buffer[kMaxQuadPoints];
    return buffer;
}

void
quadMomentsScalar(const QuadParams &p, double &mean_out, double &var_out)
{
    bp_assert(p.points >= 2 && p.points <= kMaxQuadPoints,
              "quadrature grid size out of range");
    double *logw = quadLogWeightBuffer();

    // Pass 1: log-weights and their max.  Every arithmetic step here
    // mirrors one vector instruction of the SIMD kernels (max is
    // exact, so its reduction order is free).
    double max_logw = -1e300;
    for (std::size_t i = 0; i < p.points; ++i) {
        const double x =
            std::fma(p.step, static_cast<double>(i), p.lo);
        const double u = (x - p.cavityMean) * p.invSd;
        const double g = (u * u) * -0.5;
        const double t = (x - p.loc) * p.invScale;
        const double q = (t * t) * p.invNu;
        const double lw = std::fma(-p.halfNup1, quadpoly::polyLog1p(q), g);
        logw[i] = lw;
        max_logw = std::max(max_logw, lw);
    }

    // Pass 2: shifted weights into four interleaved accumulator
    // lanes (lane = i mod 4), reduced in the fixed order the SIMD
    // kernels use — keeping scalar and SIMD sums bit-identical.
    // Moments accumulate in coordinates centered on the cavity mean
    // (the tilted mass always has cavity support), so the final
    // m2/z - mean^2 subtraction cancels O(var) terms instead of
    // O(mean^2) — the variance stays accurate even when it is ten
    // orders of magnitude below mean^2.
    double z[4] = {0.0, 0.0, 0.0, 0.0};
    double m1[4] = {0.0, 0.0, 0.0, 0.0};
    double m2[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < p.points; ++i) {
        const std::size_t lane = i & 3;
        const double x =
            std::fma(p.step, static_cast<double>(i), p.lo);
        const double dx = x - p.cavityMean;
        const double w = quadpoly::polyExp(logw[i] - max_logw);
        z[lane] += w;
        m1[lane] = std::fma(w, dx, m1[lane]);
        const double wdx = w * dx;
        m2[lane] = std::fma(wdx, dx, m2[lane]);
    }
    const double zs = (z[0] + z[1]) + (z[2] + z[3]);
    const double m1s = (m1[0] + m1[1]) + (m1[2] + m1[3]);
    const double m2s = (m2[0] + m2[1]) + (m2[2] + m2[3]);

    bp_assert(zs > 0.0, "tilted density vanished on the grid");
    const double mean_off = m1s / zs;
    mean_out = p.cavityMean + mean_off;
    var_out = std::max(m2s / zs - mean_off * mean_off, 1e-30);
}

QuadKernelFn
activeQuadKernel()
{
#if defined(BPERF_SIMD) && defined(__x86_64__)
    static const bool have_avx2 = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma");
    if (have_avx2)
        return quadMomentsAvx2;
#endif
#if defined(BPERF_SIMD) && defined(__aarch64__)
    return quadMomentsNeon;
#endif
    return quadMomentsScalar;
}

const char *
activeQuadKernelName()
{
#if defined(BPERF_SIMD) && defined(__x86_64__)
    if (activeQuadKernel() == quadMomentsAvx2)
        return "avx2";
#endif
#if defined(BPERF_SIMD) && defined(__aarch64__)
    return "neon";
#endif
    return "scalar";
}

} // namespace core
} // namespace bperf
