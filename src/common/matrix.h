/**
 * @file
 * Small dense matrix with the linear algebra the library needs:
 * Cholesky and partial-pivot LU solves, matrix products, transpose.
 *
 * Used by exact linear-Gaussian inference (graph/exact), collaborative
 * filtering, and the MLP in mlsched.  Not meant for large matrices.
 */

#ifndef BPERF_COMMON_MATRIX_H
#define BPERF_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

namespace bperf {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix filled with `fill`. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(double scalar) const;

    Matrix transpose() const;

    /** Matrix-vector product. Requires v.size() == cols(). */
    std::vector<double> apply(const std::vector<double> &v) const;

    /**
     * Solve A x = b for symmetric positive-definite A via Cholesky.
     * Dies (panic) if the matrix is not SPD within tolerance.
     */
    std::vector<double> solveCholesky(const std::vector<double> &b) const;

    /**
     * Solve A x = b via LU with partial pivoting.
     * Dies (panic) if the matrix is singular within tolerance.
     */
    std::vector<double> solveLU(const std::vector<double> &b) const;

    /** Inverse via LU; requires a square non-singular matrix. */
    Matrix inverse() const;

    /**
     * Inverse of a symmetric positive-definite matrix via a single
     * Cholesky factorization (O(n^3) total, unlike column-by-column
     * solves).  Dies if the matrix is not SPD within tolerance.
     */
    Matrix choleskyInverse() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace bperf

#endif // BPERF_COMMON_MATRIX_H
