/**
 * @file
 * Overlap-aware counter scheduling (paper section 4.1).
 *
 * Linux rotates counter configurations round-robin; BayesPerf instead
 * builds a schedule where consecutive configurations share at least
 * one event (directly, or through overlapping Markov blankets in the
 * event factor graph), so transitive statistical relationships chain
 * across time slices.  When an overlap cannot be placed under the
 * PMU's constraints, the chain breaks and restarts from a valid
 * configuration, exactly as the paper prescribes.
 *
 * The class also implements the bridge-construction path (shortest
 * event-to-event chains via graph search) and the two pruning
 * optimizations: removing common steps (condensing through a shared
 * blanket event) and removing redundant steps (dropping steps whose
 * blanket union does not change).
 */

#ifndef BPERF_CORE_SCHEDULER_H
#define BPERF_CORE_SCHEDULER_H

#include <set>
#include <vector>

#include "graph/factor_graph.h"
#include "sim/microarch.h"
#include "sim/pmu.h"

namespace bperf {
namespace core {

/** Scheduler knobs. */
struct SchedulerConfig
{
    /**
     * Reserve one counter per configuration for the carried overlap
     * event.  Disabling this yields plain round-robin packing (the
     * Linux baseline / ablation).
     */
    bool reserveOverlapSlot = true;
};

/** The produced schedule plus bookkeeping for analysis. */
struct ScheduleResult
{
    /** Configurations, rotated one per time slice. */
    std::vector<std::vector<sim::EventId>> configs;

    /**
     * carried[i] is the event shared between configs[i-1] and
     * configs[i] (kNoEvent for i = 0 or after a chain break).
     */
    std::vector<sim::EventId> carried;

    /** Number of times the overlap chain had to be broken. */
    std::size_t chainBreaks = 0;
};

/**
 * Builds overlap-aware schedules over a microarchitecture's event
 * factor graph.
 */
class OverlapScheduler
{
  public:
    explicit OverlapScheduler(const sim::MicroarchDescriptor &uarch,
                              SchedulerConfig config = {});

    /** Build the schedule for a monitored event set. */
    ScheduleResult build(const std::vector<sim::EventId> &monitored) const;

    /**
     * The event-level factor graph: one variable per catalog event
     * (VarId == EventId), one factor per invariant.
     */
    const graph::FactorGraph &eventGraph() const { return eventGraph_; }

    /** Markov blanket of an event set within the event graph. */
    std::set<sim::EventId>
    blanketOf(const std::vector<sim::EventId> &events) const;

    /**
     * True when two configurations satisfy the transitive-dependency
     * criterion: they share an event, or their Markov blankets
     * intersect.
     */
    bool configsLinked(const std::vector<sim::EventId> &a,
                       const std::vector<sim::EventId> &b) const;

    /** Shortest event chain between two events (unit edge cost). */
    std::vector<sim::EventId> shortestEventPath(sim::EventId from,
                                                sim::EventId to) const;

    /**
     * Build the shortest bridge schedule C'_1..C'_m such that
     * from -> C'_1 -> ... -> C'_m -> to is statistically linked and
     * every C'_i is PMU-valid.  Returns an empty chain when the two
     * configurations are already linked.
     */
    std::vector<std::vector<sim::EventId>>
    bridge(const std::vector<sim::EventId> &from,
           const std::vector<sim::EventId> &to) const;

    /**
     * Optimization 1 (removing common steps): within each bridge
     * step, if all events share a common Markov-blanket event e*, the
     * step is condensed to {e*}.
     */
    std::vector<std::vector<sim::EventId>>
    pruneCommonSteps(std::vector<std::vector<sim::EventId>> chain) const;

    /**
     * Optimization 2 (removing redundant steps): drop step i+1 when
     * its Markov blanket equals step i's (no new information).
     */
    std::vector<std::vector<sim::EventId>>
    pruneRedundantSteps(std::vector<std::vector<sim::EventId>> chain) const;

  private:
    const sim::MicroarchDescriptor &uarch_;
    SchedulerConfig config_;
    sim::Pmu pmu_;
    graph::FactorGraph eventGraph_;
};

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_SCHEDULER_H
