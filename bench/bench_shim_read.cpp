/**
 * @file
 * Cost model of the posterior snapshot shim — the paper's consumer
 * interface: how fast can a consumer poll corrected posteriors, how
 * stale are they, and what does keeping the table fresh cost the
 * service's hot path?
 *
 * Three measurements:
 *
 *   1. Reader latency.  A consumer-side SnapshotReader performs
 *      timed reads of a 13-event slot, uncontended and against a
 *      writer hammering the same slot at full speed: per-read
 *      p50/p95/p99 (the acceptance bar is sub-microsecond p99) plus
 *      the seqlock retry rate.
 *
 *   2. Staleness.  Every read reports its age (reader clock minus
 *      the writer's publish stamp).  Against a continuously
 *      publishing writer, this bounds how far a poll can lag the
 *      freshest posterior; it is compared with the push path — the
 *      delivery lag of a SubscriptionHub callback for the very same
 *      windows, measured inside a live service run.
 *
 *   3. Writer overhead.  The direct cost of one seqlock publish, and
 *      the end-to-end service wall time of an identical replay with
 *      the shim off vs on (the hot-path overhead the WindowSink
 *      mirror adds).
 *
 * Writes BENCH_shim.json (schema documented in docs/BENCH.md).
 * BP_QUICK=1 shrinks the run.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "shim/snapshot_reader.h"
#include "shim/snapshot_region.h"
#include "sim/ground_truth.h"
#include "workloads/hibench.h"

using namespace bperf;

namespace {

/** Same time base the shim's writer/reader stamp with. */
std::uint64_t
nowNanos()
{
    return shim::steadyNowNanos();
}

/** 13 monitored events: 3 fixed + 10 multiplexed roles. */
std::vector<sim::EventId>
monitoredSet(const sim::MicroarchDescriptor &uarch)
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch.fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem,
          sim::Role::StallTotal, sim::Role::DramBytes})
        events.push_back(uarch.idForRole(r));
    return events;
}

struct NsSummary
{
    double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
};

NsSummary
summarizeNs(std::vector<double> &xs)
{
    NsSummary s;
    if (xs.empty())
        return s;
    double sum = 0.0, max = 0.0;
    for (double x : xs) {
        sum += x;
        max = std::max(max, x);
    }
    s.mean = sum / static_cast<double>(xs.size());
    s.max = max;
    s.p50 = bench::percentileOrNan(xs, 50.0);
    s.p95 = bench::percentileOrNan(xs, 95.0);
    s.p99 = bench::percentileOrNan(xs, 99.0);
    return s;
}

void
writeNsSummary(bench::JsonWriter &json, const std::string &key,
               const NsSummary &s, std::size_t samples)
{
    json.beginObject(key)
        .field("samples", samples)
        .field("meanNs", s.mean)
        .field("p50Ns", s.p50)
        .field("p95Ns", s.p95)
        .field("p99Ns", s.p99)
        .field("maxNs", s.max)
        .endObject();
}

struct ReadBenchResult
{
    NsSummary latency;
    NsSummary staleness;
    std::size_t reads = 0;
    std::uint64_t retriedReads = 0;
    std::uint64_t tornReads = 0;
    /** Checksum mismatches under a stable even sequence.  Nothing in
     * this bench corrupts memory, so any nonzero count is a protocol
     * bug — asserted zero via the exit code. */
    std::uint64_t corruptReads = 0;
};

/**
 * Time `reads` snapshot reads of slot 0.  The caller decides whether
 * a writer is hammering concurrently.
 */
ReadBenchResult
timeReads(const shim::SnapshotReader &reader, std::size_t reads)
{
    ReadBenchResult result;
    std::vector<double> latency, age;
    latency.reserve(reads);
    age.reserve(reads);
    shim::PosteriorSnapshot snap;
    while (latency.size() < reads) {
        const std::uint64_t t0 = nowNanos();
        const shim::ReadStatus status = reader.readSlot(0, snap);
        const std::uint64_t t1 = nowNanos();
        if (status == shim::ReadStatus::Corrupt) {
            ++result.corruptReads;
            continue;
        }
        if (status != shim::ReadStatus::Ok) {
            ++result.tornReads; // Torn: retry bound exhausted
            continue;
        }
        latency.push_back(static_cast<double>(t1 - t0));
        age.push_back(static_cast<double>(snap.ageNanos));
        if (snap.retries > 0)
            ++result.retriedReads;
    }
    result.reads = latency.size();
    result.latency = summarizeNs(latency);
    result.staleness = summarizeNs(age);
    return result;
}

/** Lag summaries of the service comparison run. */
struct ServiceCompareResult
{
    double offSeconds = 0.0; ///< replay wall time, shim disabled
    double onSeconds = 0.0;  ///< replay wall time, shim enabled
    NsSummary callbackLag;   ///< publish -> subscription callback
    NsSummary shimAge;       ///< publish -> shim read, same windows
    std::size_t windows = 0;
    bool bitIdentical = false;
};

/** Replay one tenant run through the service; returns wall seconds. */
double
replayRun(service::MonitorService &daemon, const sim::PerfResult &run,
          std::size_t num_slices, service::SessionId id)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < num_slices; ++s)
        daemon.ingestBatch(id, service::sliceRecords(run, s));
    daemon.quiesce();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    const bool quick = bench::quickMode();
    const std::size_t kDirectReads = quick ? 20000 : 200000;
    const std::size_t kPublishes = quick ? 20000 : 200000;
    const std::size_t kSlices = quick ? 24 : 48;
    constexpr std::size_t kEvents = 13;

    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();
    const std::vector<sim::EventId> monitored = monitoredSet(uarch);

    // ---------------------------------------------------- 1. direct
    // A 13-event slot, written directly (no service), read directly.
    shim::SnapshotRegionConfig region_cfg;
    region_cfg.slots = 4;
    region_cfg.maxEvents = 16;
    shim::SnapshotRegion region(region_cfg);
    shim::SnapshotReader reader(region);

    std::vector<sim::EventId> events(kEvents);
    std::vector<core::PosteriorPoint> posterior(kEvents);
    for (std::size_t i = 0; i < kEvents; ++i) {
        events[i] = static_cast<sim::EventId>(i);
        posterior[i] = {1e6 + static_cast<double>(i), 42.0};
    }
    core::WindowExecution exec;
    exec.modeledSeconds = 2.57e-4;

    // Writer cost: a tight publish loop.
    const std::uint64_t w0 = nowNanos();
    for (std::size_t i = 0; i < kPublishes; ++i)
        region.write(0, 1, i, i, exec, events, posterior, nowNanos());
    const double publish_ns =
        static_cast<double>(nowNanos() - w0) /
        static_cast<double>(kPublishes);

    // Uncontended reads (writer idle) — checksums verified (default).
    const ReadBenchResult uncontended = timeReads(reader, kDirectReads);

    // The same reads with verification off: the v2 integrity tax is
    // the delta between these two paths.
    shim::SnapshotReader raw_reader(region);
    raw_reader.setVerifyChecksums(false);
    const ReadBenchResult uncontended_raw =
        timeReads(raw_reader, kDirectReads);

    // Reads against a hammering writer, verify on and off.
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::uint64_t w = kPublishes;
        while (!stop.load(std::memory_order_relaxed)) {
            region.write(0, 1, w, w, exec, events, posterior,
                         nowNanos());
            ++w;
        }
    });
    const ReadBenchResult hammered = timeReads(reader, kDirectReads);
    const ReadBenchResult hammered_raw =
        timeReads(raw_reader, kDirectReads);
    stop.store(true);
    writer.join();

    const auto overhead_pct = [](double with, double without) {
        return without > 0.0 ? 100.0 * (with - without) / without : 0.0;
    };
    const std::uint64_t corrupt_reads =
        uncontended.corruptReads + hammered.corruptReads +
        uncontended_raw.corruptReads + hammered_raw.corruptReads;

    // --------------------------------------------- 2+3. service run
    // Identical single-tenant replays with the shim off vs on; with
    // it on, a subscriber records its delivery lag against the
    // publish stamp of the matching snapshot (push path vs the poll
    // path's staleness for the very same windows).
    service::MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;

    const sim::GroundTruthGenerator generator(uarch,
                                              wl::makeHibench("KMeans"));
    const sim::TruthTrace truth = generator.generate(kSlices, 4242);
    sim::PerfSessionConfig perf_cfg;
    perf_cfg.seed = 99;
    ServiceCompareResult service_result;
    std::vector<core::PosteriorPoint> off_final;

    {
        service::MonitorService daemon(uarch, cfg);
        const service::SessionId id = daemon.open(monitored);
        sim::PerfSession session(uarch, perf_cfg);
        const sim::PerfResult run =
            session.runRoundRobin(truth, daemon.monitoredEvents(id));
        service_result.offSeconds = replayRun(daemon, run, kSlices, id);
        const auto report = daemon.close(id);
        if (report) {
            service_result.windows = report->stats.windowsRun;
            for (const auto &series : report->posterior.series)
                off_final.push_back(series.back());
        }
    }
    {
        service::MonitorServiceConfig on_cfg = cfg;
        on_cfg.snapshot.enabled = true;
        on_cfg.snapshot.slots = 8;
        on_cfg.snapshot.maxEvents = 16;
        service::MonitorService daemon(uarch, on_cfg);
        const service::SessionId id = daemon.open(monitored);
        shim::SnapshotReader service_reader(*daemon.snapshotRegion());

        std::mutex lag_mutex;
        std::vector<double> callback_lag, shim_age;
        bool stream_mismatch = false;
        const auto sub = daemon.subscribe(
            id, [&](const service::WindowUpdate &u) {
                // The snapshot for this window (or a fresher one) is
                // already in the table: the sink publishes to the
                // shim before the hub.  Its publish stamp dates the
                // callback's delivery lag; an immediate shim read
                // dates the poll path for comparison.
                shim::PosteriorSnapshot snap;
                if (service_reader.read(u.sessionId, snap) !=
                        shim::ReadStatus::Ok ||
                    snap.windowIndex < u.windowIndex)
                    return;
                const std::uint64_t now = nowNanos();
                const double lag =
                    now > snap.publishNanos
                        ? static_cast<double>(now - snap.publishNanos)
                        : 0.0;
                std::lock_guard<std::mutex> lock(lag_mutex);
                callback_lag.push_back(lag);
                shim_age.push_back(static_cast<double>(snap.ageNanos));
                // When the read caught exactly this window, the poll
                // and push paths must agree bit for bit.
                if (snap.windowIndex == u.windowIndex &&
                    snap.counters.size() == u.posterior.size()) {
                    for (std::size_t i = 0; i < snap.counters.size();
                         ++i) {
                        if (shim::doubleBits(
                                snap.counters[i].posterior.mean) !=
                                shim::doubleBits(u.posterior[i].mean) ||
                            shim::doubleBits(
                                snap.counters[i].posterior.stddev) !=
                                shim::doubleBits(u.posterior[i].stddev))
                            stream_mismatch = true;
                    }
                }
            });
        (void)sub;

        sim::PerfSession session(uarch, perf_cfg);
        const sim::PerfResult run =
            session.runRoundRobin(truth, daemon.monitoredEvents(id));
        service_result.onSeconds = replayRun(daemon, run, kSlices, id);
        daemon.flushSubscriptions();

        // Bit-identity: the identical replay with the shim on must
        // close with exactly the off run's posterior.  Flush again:
        // the close's tail windows publish to a callback whose
        // captures (reader, lag vectors) die before the daemon does.
        const auto report = daemon.close(id);
        daemon.flushSubscriptions();
        service_result.bitIdentical =
            report && !off_final.empty() &&
            off_final.size() == report->posterior.series.size();
        if (service_result.bitIdentical) {
            for (std::size_t i = 0; i < off_final.size(); ++i) {
                const core::PosteriorPoint &on_point =
                    report->posterior.series[i].back();
                if (shim::doubleBits(off_final[i].mean) !=
                        shim::doubleBits(on_point.mean) ||
                    shim::doubleBits(off_final[i].stddev) !=
                        shim::doubleBits(on_point.stddev)) {
                    service_result.bitIdentical = false;
                    break;
                }
            }
        }
        {
            std::lock_guard<std::mutex> lock(lag_mutex);
            service_result.bitIdentical =
                service_result.bitIdentical && !stream_mismatch;
            service_result.callbackLag = summarizeNs(callback_lag);
            service_result.shimAge = summarizeNs(shim_age);
        }
    }

    // ------------------------------------------------------ report
    TablePrinter table({"path", "p50 ns", "p99 ns", "max ns",
                        "mean staleness ns"});
    table.addRow("read (idle writer)",
                 {uncontended.latency.p50, uncontended.latency.p99,
                  uncontended.latency.max, uncontended.staleness.mean});
    table.addRow("read (idle, no verify)",
                 {uncontended_raw.latency.p50,
                  uncontended_raw.latency.p99,
                  uncontended_raw.latency.max,
                  uncontended_raw.staleness.mean});
    table.addRow("read (hammered)",
                 {hammered.latency.p50, hammered.latency.p99,
                  hammered.latency.max, hammered.staleness.mean});
    table.addRow("read (hammered, no verify)",
                 {hammered_raw.latency.p50, hammered_raw.latency.p99,
                  hammered_raw.latency.max,
                  hammered_raw.staleness.mean});
    table.addRow("subscription callback",
                 {service_result.callbackLag.p50,
                  service_result.callbackLag.p99,
                  service_result.callbackLag.max,
                  service_result.shimAge.mean});
    table.print(std::cout);
    std::cout << "checksum verify tax (uncontended): p50 "
              << overhead_pct(uncontended.latency.p50,
                              uncontended_raw.latency.p50)
              << "% p99 "
              << overhead_pct(uncontended.latency.p99,
                              uncontended_raw.latency.p99)
              << "%; corrupt reads: " << corrupt_reads
              << (corrupt_reads == 0 ? "" : " (PROTOCOL BUG)") << "\n";
    std::cout << "publish cost: " << publish_ns << " ns/publish; "
              << "service replay " << 1e3 * service_result.offSeconds
              << " ms (shim off) vs "
              << 1e3 * service_result.onSeconds << " ms (shim on); "
              << "posteriors bit-identical: "
              << (service_result.bitIdentical ? "yes" : "NO") << "\n";

    bench::JsonWriter json;
    json.beginObject()
        .field("bench", "shim_read")
        .field("quick", quick)
        .beginObject("config")
        .field("events", kEvents)
        .field("directReads", kDirectReads)
        .field("publishes", kPublishes)
        .field("slices", kSlices)
        .field("maxRetries", shim::SnapshotReader::kDefaultMaxRetries)
        .endObject();

    json.beginObject("uncontended");
    writeNsSummary(json, "readLatency", uncontended.latency,
                   uncontended.reads);
    writeNsSummary(json, "staleness", uncontended.staleness,
                   uncontended.reads);
    json.field("retriedReads", uncontended.retriedReads)
        .field("tornReads", uncontended.tornReads)
        .endObject();

    json.beginObject("hammered");
    writeNsSummary(json, "readLatency", hammered.latency,
                   hammered.reads);
    writeNsSummary(json, "staleness", hammered.staleness,
                   hammered.reads);
    json.field("retriedReads", hammered.retriedReads)
        .field("tornReads", hammered.tornReads)
        .endObject();

    // The v2 integrity tax: identical read loops with verification
    // off, plus the relative overhead the checksum adds.  corruptReads
    // doubles as an in-band protocol assertion (nonzero fails the run).
    json.beginObject("checksum");
    writeNsSummary(json, "uncontendedNoVerify", uncontended_raw.latency,
                   uncontended_raw.reads);
    writeNsSummary(json, "hammeredNoVerify", hammered_raw.latency,
                   hammered_raw.reads);
    json.field("verifyOverheadPctP50",
               overhead_pct(uncontended.latency.p50,
                            uncontended_raw.latency.p50))
        .field("verifyOverheadPctP99",
               overhead_pct(uncontended.latency.p99,
                            uncontended_raw.latency.p99))
        .field("corruptReads", corrupt_reads)
        .endObject();

    json.beginObject("writer")
        .field("publishNs", publish_ns)
        .field("serviceOffSeconds", service_result.offSeconds)
        .field("serviceOnSeconds", service_result.onSeconds)
        .field("overheadPct",
               service_result.offSeconds > 0.0
                   ? 100.0 * (service_result.onSeconds -
                              service_result.offSeconds) /
                         service_result.offSeconds
                   : 0.0)
        .endObject();

    json.beginObject("service");
    json.field("windows", service_result.windows);
    writeNsSummary(json, "subscriptionLag", service_result.callbackLag,
                   service_result.windows);
    writeNsSummary(json, "shimReadAge", service_result.shimAge,
                   service_result.windows);
    json.field("posteriorsBitIdentical", service_result.bitIdentical)
        .endObject();

    json.endObject();
    if (!json.writeFile("BENCH_shim.json"))
        std::cerr << "failed to write BENCH_shim.json\n";
    else
        std::cout << "wrote BENCH_shim.json\n";
    return (service_result.bitIdentical && corrupt_reads == 0) ? 0 : 1;
}
