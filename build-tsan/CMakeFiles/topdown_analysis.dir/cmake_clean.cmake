file(REMOVE_RECURSE
  "CMakeFiles/topdown_analysis.dir/examples/topdown_analysis.cpp.o"
  "CMakeFiles/topdown_analysis.dir/examples/topdown_analysis.cpp.o.d"
  "topdown_analysis"
  "topdown_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
