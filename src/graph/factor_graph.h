/**
 * @file
 * Bipartite factor graph over scalar variables.
 *
 * The graph is the paper's central data structure (section 4.1): its
 * variables are event values, its factors the statistical
 * relationships between them.  Besides holding the model it provides
 * the structural queries the scheduler needs — Markov blankets and
 * shortest variable-to-variable paths.
 *
 * Graphs are rebuilt per sliding window, so the container recycles:
 * reset() drops the logical contents but keeps every buffer (variable
 * and factor slots, their name strings, term vectors, adjacency rows),
 * and subsequent add*() calls reuse those slots in place.  A
 * steady-state window rebuild therefore allocates nothing — the
 * bufferGrows() counter, which ticks once per underlying buffer
 * growth, is the invariant the engine tests assert.
 */

#ifndef BPERF_GRAPH_FACTOR_GRAPH_H
#define BPERF_GRAPH_FACTOR_GRAPH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bperf {
namespace graph {

using VarId = std::uint32_t;
using FactorId = std::uint32_t;

constexpr VarId kNoVar = static_cast<VarId>(-1);

/** What density a factor contributes. */
enum class FactorKind {
    /** sum_i coeff_i x_i + offset ~ N(0, noiseStd^2). */
    LinearGaussian,
    /** Scaled/shifted Student-t likelihood on a single variable. */
    StudentT,
    /** Gaussian prior on a single variable. */
    GaussianPrior,
    // Adding a kind? Bump kFactorKindCount below.
};

/** Number of FactorKind values (sizes the per-kind factor index). */
inline constexpr std::size_t kFactorKindCount = 3;
static_assert(kFactorKindCount ==
                  static_cast<std::size_t>(FactorKind::GaussianPrior) + 1,
              "update kFactorKindCount when FactorKind grows");

/** One variable (an event value at a time slice). */
struct Variable
{
    VarId id = kNoVar;
    std::string name;
    /** Typical magnitude, used to condition the linear algebra. */
    double scaleHint = 1.0;
};

/** One factor. */
struct Factor
{
    FactorId id = 0;
    FactorKind kind = FactorKind::LinearGaussian;
    std::string name;
    std::vector<VarId> vars;

    // LinearGaussian parameters (coeffs aligned with vars).
    std::vector<double> coeffs;
    double offset = 0.0;
    double noiseStd = 1.0;

    // StudentT / GaussianPrior parameters.
    double loc = 0.0;
    double scale = 1.0;
    double nu = 3.0;
};

/**
 * The factor graph: variables, factors, adjacency and structural
 * queries.
 */
class FactorGraph
{
  public:
    /** Add a variable; returns its id. */
    VarId addVariable(std::string_view name, double scale_hint);

    /** Add `sum coeff_i x_i + offset ~ N(0, noise_std^2)`. */
    FactorId addLinearGaussian(std::string_view name,
                               std::span<const VarId> vars,
                               std::span<const double> coeffs,
                               double offset, double noise_std);

    /** Convenience overload taking (var, coeff) pairs. */
    FactorId addLinearGaussian(std::string_view name,
                               const std::vector<std::pair<VarId, double>>
                                   &terms,
                               double offset, double noise_std);

    /** Add a Student-t measurement factor on one variable. */
    FactorId addStudentT(std::string_view name, VarId var, double loc,
                         double scale, double nu);

    /** Add a Gaussian prior on one variable. */
    FactorId addGaussianPrior(std::string_view name, VarId var,
                              double mean, double stddev);

    /**
     * Empty the graph logically while retaining every buffer: the
     * variable/factor slot arrays keep their slots (and those slots
     * keep their strings and term vectors), adjacency rows keep their
     * capacity.  The next build cycle refills them in place.
     */
    void reset();

    std::size_t numVariables() const { return liveVariables_; }
    std::size_t numFactors() const { return liveFactors_; }

    const Variable &variable(VarId v) const;
    const Factor &factor(FactorId f) const;
    std::span<const Variable> variables() const
    {
        return {variables_.data(), liveVariables_};
    }
    std::span<const Factor> factors() const
    {
        return {factors_.data(), liveFactors_};
    }

    /** Factors attached to a variable. */
    const std::vector<FactorId> &factorsOf(VarId v) const;

    /**
     * Ids of all factors of one kind, in insertion order.  Maintained
     * incrementally so hot paths (EP's site scan, the Gaussian
     * solver's backbone build) iterate only the factors they handle
     * instead of filtering the full factor list.
     */
    const std::vector<FactorId> &factorsOfKind(FactorKind kind) const;

    /**
     * Cumulative buffer-growth events: ticks whenever an add*() call
     * had to grow an underlying buffer (new slot, longer name, more
     * terms than the recycled slot ever held).  Constant across
     * steady-state reset()/rebuild cycles — the zero-allocation
     * invariant the window engine asserts.
     */
    std::size_t bufferGrows() const { return grows_; }

    /**
     * Markov blanket of a variable: all variables co-occurring with it
     * in some factor (excluding the variable itself).
     */
    std::set<VarId> markovBlanket(VarId v) const;

    /** Union of Markov blankets of a set, minus the set itself. */
    std::set<VarId> markovBlanketOfSet(const std::set<VarId> &vars) const;

    /**
     * Shortest variable path between two variables, traversing
     * factors at unit cost (BFS).  Returns the sequence of variables
     * including both endpoints, or empty if disconnected.
     */
    std::vector<VarId> shortestPath(VarId from, VarId to) const;

  private:
    /** Claim the next factor slot (recycled or new) for `kind`. */
    Factor &claimFactor(FactorKind kind, std::string_view name);
    void attach(FactorId f);
    /** Copy `sv` into `dst` reusing its capacity. */
    void assignName(std::string &dst, std::string_view sv);

    std::vector<Variable> variables_;
    std::vector<Factor> factors_;
    std::vector<std::vector<FactorId>> varFactors_;
    /** Indexed by static_cast<std::size_t>(FactorKind). */
    std::array<std::vector<FactorId>, kFactorKindCount> kindFactors_;

    /** Logical sizes; slots beyond them are retained for reuse. */
    std::size_t liveVariables_ = 0;
    std::size_t liveFactors_ = 0;
    std::size_t grows_ = 0;
};

} // namespace graph
} // namespace bperf

#endif // BPERF_GRAPH_FACTOR_GRAPH_H
