/**
 * @file
 * The BayesPerf monitoring daemon: many concurrent sessions, one
 * shared worker pool, streaming windowed inference per session.
 *
 * Pipeline (per session):
 *
 *   producer -> SPSC ring (perf mmap semantics, drop-on-full)
 *            -> worker pool drain -> SliceAssembler
 *            -> WindowedInference (EP per window, carry-over priors)
 *            -> posterior series / latest-posterior snapshot
 *
 * Scheduling: a session transitions Idle -> Queued when its producer
 * delivers records, is claimed Queued -> Running by exactly one
 * worker, and producers arriving mid-drain mark it RunningDirty so
 * the same worker loops — each session is single-consumer while the
 * pool stays fully work-conserving across sessions.
 */

#ifndef BPERF_SERVICE_MONITOR_SERVICE_H
#define BPERF_SERVICE_MONITOR_SERVICE_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "accel/accel_backend.h"
#include "core/backend.h"
#include "service/admission.h"
#include "service/session.h"
#include "service/session_registry.h"
#include "service/snapshot_publisher.h"
#include "service/subscription.h"
#include "service/worker_pool.h"
#include "sim/microarch.h"
#include "telemetry/trace.h"

namespace bperf {
namespace service {

/** Which execution backend completed windows are accounted against. */
enum class BackendKind {
    /** Windows execute where EP actually ran: the host CPU. */
    Host,
    /** Windows are scheduled onto the simulated FPGA EP-engine pool
     * (accel::AccelBackend); posteriors are unchanged, latency is
     * modeled. */
    Accel,
};

/** Service-wide configuration. */
struct MonitorServiceConfig
{
    /** Inference worker threads shared by all sessions. */
    std::size_t numWorkers = 4;

    /** Registry shards (lock granularity of session lookup). */
    std::size_t numShards = 16;

    /** Defaults applied to sessions opened without overrides. */
    SessionConfig sessionDefaults;

    /** Execution backend every session's windows run on. */
    BackendKind backend = BackendKind::Host;

    /** Engine-pool parameters when backend == BackendKind::Accel. */
    accel::AccelBackendConfig accel;

    /**
     * Admission control (disabled by default).  When the backend is
     * Accel, the controller's stream clock is aligned with the pool's
     * slicePeriodSeconds automatically so latency feedback and window
     * releases share one time base.
     */
    AdmissionConfig admission;

    /** Bound of each window-subscription queue (drop-oldest beyond). */
    std::size_t subscriberQueueCapacity = 256;

    /**
     * Posterior snapshot shim (disabled by default): mirror every
     * session's latest window posterior into a seqlock snapshot
     * table that consumers poll wait-free — in-process, or from
     * another process when `snapshot.shmName` names a POSIX shm
     * segment (the paper's consumer interface).
     */
    SnapshotConfig snapshot;

    /**
     * Optional trace sink: every completed window's span is recorded
     * here (from the worker that ran it) for Chrome-trace export.
     * Not owned; must outlive the service.  nullptr disables tracing.
     */
    telemetry::TraceCollector *trace = nullptr;
};

/** Aggregate statistics across live and closed sessions. */
struct ServiceStats
{
    std::uint64_t sessionsOpened = 0;
    std::uint64_t sessionsClosed = 0;
    std::size_t sessionsLive = 0;
    /** Sums over every session ever opened. */
    SessionStats totals;
    /** Active execution backend and its cross-session accounting. */
    std::string backendName;
    core::BackendStats backend;
    /** Live modeled queue depth of the backend's engine pool. */
    core::BackendQueueDepth backendQueue;
    /** Per-tenant admission accounting (empty when disabled). */
    std::vector<TenantAdmissionStats> admission;
    /** Snapshot-shim publish accounting (enabled == false when the
     * shim is off). */
    SnapshotPublisherStats snapshot;
    /** Process-wide bp_warn / bp_error(+fatal) counts, mirrored from
     * the telemetry registry (counted even when telemetry is off). */
    std::uint64_t logWarnings = 0;
    std::uint64_t logErrors = 0;
};

/** Typed outcome of an admission-controlled open. */
struct OpenResult
{
    /** The session id, when admitted. */
    std::optional<SessionId> id;
    /** AdmissionError::None when admitted, else the denial reason. */
    AdmissionError error = AdmissionError::None;

    bool admitted() const { return id.has_value(); }
};

/** Everything a closed session hands back. */
struct SessionReport
{
    SessionId id = 0;
    std::vector<sim::EventId> events;
    core::InferenceResult posterior;
    SessionStats stats;
};

/**
 * Concurrent multi-session BayesPerf monitoring service.
 *
 * Thread contract: open/close/stats/latest may be called from any
 * thread; ingest/ingestBatch for one session must come from a single
 * producer thread at a time (the SPSC ring's producer side).
 */
class MonitorService
{
  public:
    explicit MonitorService(const sim::MicroarchDescriptor &uarch,
                            MonitorServiceConfig config = {});
    ~MonitorService();

    MonitorService(const MonitorService &) = delete;
    MonitorService &operator=(const MonitorService &) = delete;

    /**
     * Open a session monitoring `events` (fixed counters are always
     * added, perf_event_open style).  Dies if an event cannot be
     * scheduled on this PMU at all.  `overrides` replaces the
     * service-wide session defaults when given.
     *
     * Admission-blind convenience form: attributes the session to the
     * anonymous tenant and dies if admission control rejects it —
     * callers running with admission enabled should use the tenant
     * overload and handle the typed denial.
     */
    SessionId open(const std::vector<sim::EventId> &events,
                   const SessionConfig *overrides = nullptr);

    /**
     * Admission-controlled open on behalf of `tenant`: the tenant's
     * session quota and the backend's modeled queue depth are
     * consulted first, and a denial comes back as a typed
     * AdmissionError instead of a session id.
     */
    OpenResult open(const std::string &tenant,
                    const std::vector<sim::EventId> &events,
                    const SessionConfig *overrides = nullptr);

    /**
     * Deliver one sample record.  Returns false when the session is
     * unknown, admission control throttled/shed the record, or the
     * record was dropped by ring backpressure.
     */
    bool ingest(SessionId id, const sim::PerfRecord &rec);

    /**
     * Deliver a batch with one session lookup and one worker
     * notification.  Returns the number of records accepted.
     */
    std::size_t ingestBatch(SessionId id,
                            const std::vector<sim::PerfRecord> &records);

    /**
     * Close a session: drain whatever is still queued, flush the
     * assembler, run the tail windows and return the full posterior.
     * The producer must have stopped ingesting.  nullopt for unknown
     * ids.
     */
    std::optional<SessionReport> close(SessionId id);

    /** Monitored events of a live session (empty if unknown). */
    std::vector<sim::EventId> monitoredEvents(SessionId id) const;

    /** Latest posterior of one event of one session; nullopt before
     * the first inferred window or for unknown ids/events. */
    std::optional<core::PosteriorPoint> latest(SessionId id,
                                               sim::EventId event) const;

    /** Block until every delivered record has been processed.  Safe
     * from any thread except a subscription callback (the dispatcher
     * must not wait on the pool it is downstream of). */
    void quiesce() { pool_.quiesce(); }

    /**
     * Subscribe to a session's window completions: `callback` runs on
     * the hub's dispatcher thread once per completed window, with the
     * window's posterior summary and modeled execution.  A slow
     * consumer's queue drops its oldest updates (drop-and-count);
     * callbacks must not call close() or the service destructor.
     * nullopt for unknown session ids.
     */
    std::optional<SubscriptionId> subscribe(SessionId id,
                                            WindowCallback callback);

    /** Remove a subscription; false for unknown ids. */
    bool unsubscribe(SubscriptionId id);

    /** Delivery accounting of one subscription (survives
     * unsubscribe; nullopt for never-known ids). */
    std::optional<SubscriptionStats>
    subscriptionStats(SubscriptionId id) const;

    /** Block until every published window update has been delivered
     * (or dropped).  Pair with quiesce() in tests and shutdown. */
    void flushSubscriptions() { hub_.flush(); }

    /** Admission controller (quota edits, per-tenant stats). */
    AdmissionController &admission() { return admission_; }
    const AdmissionController &admission() const { return admission_; }

    /**
     * The exported posterior snapshot table; nullptr when the shim is
     * disabled.  In-process consumers construct a
     * shim::SnapshotReader over it; cross-process consumers attach by
     * the configured shm name instead.  Safe from any thread.
     */
    const shim::SnapshotRegion *snapshotRegion() const
    {
        return snapshot_ ? &snapshot_->region() : nullptr;
    }

    /** Aggregate statistics (live sessions + closed accumulator);
     * one coherent snapshot, safe from any thread. */
    ServiceStats stats() const;

    /**
     * Publish the monitor's own health metrics through the snapshot
     * shim under SnapshotPublisher::kSelfMetricsSessionId, so a
     * shim_reader in another process watches the monitor exactly like
     * a tenant.  Metric ids are the SelfMetricId enum below.  False
     * when the shim is disabled or its table is full.
     */
    bool publishSelfMetrics();

    /**
     * Stamp the snapshot segment's writer heartbeat without
     * publishing anything — an idle daemon's keepalive, so attached
     * readers watching writerIdleNanos() can tell "alive but quiet"
     * from "dead".  No-op when the shim is disabled.
     */
    void heartbeatSnapshot();

    /**
     * Shim "event ids" of the self-metrics slot.  A reader sees
     * (id, mean) pairs; the mean carries the metric value and the
     * variance is always 0.
     */
    enum SelfMetricId : sim::EventId {
        SelfSessionsLive = 1,
        SelfWindowsRun = 2,
        SelfRecordsIngested = 3,
        SelfRecordsDropped = 4,
        SelfEpSweeps = 5,
        SelfLogWarnings = 6,
        SelfLogErrors = 7,
        SelfShimPublishes = 8,
        SelfEpWindowP99Nanos = 9,
    };

    /** Live session count (registry size).  Safe from any thread. */
    std::size_t openSessions() const { return registry_.size(); }
    /** The microarchitecture every session monitors against. */
    const sim::MicroarchDescriptor &uarch() const { return uarch_; }
    /** The configuration the service was built with (immutable). */
    const MonitorServiceConfig &config() const { return config_; }

    /** The shared execution backend sessions run their windows on.
     * Implementations are internally synchronized. */
    core::InferenceBackend &backend() { return *backend_; }
    const core::InferenceBackend &backend() const { return *backend_; }

    /** Engine-pool view of the backend; nullptr on the host path. */
    const accel::AccelBackend *accelBackend() const
    {
        return config_.backend == BackendKind::Accel
                   ? static_cast<const accel::AccelBackend *>(
                         backend_.get())
                   : nullptr;
    }

  private:
    /** Worker callback: claim and drain one queued session. */
    void processSession(SessionId id);

    /** Producer-side: make sure a worker will visit the session. */
    void notifyWork(Session &session);

    /** Record's position on the admission stream clock. */
    double streamSeconds(const sim::PerfRecord &rec) const
    {
        return static_cast<double>(rec.slice) *
               admission_.config().slicePeriodSeconds;
    }

    const sim::MicroarchDescriptor &uarch_;
    MonitorServiceConfig config_;
    /** Shared by every session; must outlive the workers (pool_ is
     * the last member, so it is destroyed first). */
    std::unique_ptr<core::InferenceBackend> backend_;
    /** Reads backend_'s modeled queue; must outlive the workers. */
    AdmissionController admission_;
    SessionRegistry registry_;

    mutable std::mutex closedMutex_;
    SessionStats closedTotals_;
    /** Sessions between registry erase and closed-totals merge. */
    std::vector<std::shared_ptr<Session>> closing_;
    std::uint64_t sessionsOpened_ = 0;
    std::uint64_t sessionsClosed_ = 0;

    /** Workers mirror window posteriors here (snapshot shim); like
     * the hub it must be destroyed after the pool stops publishing.
     * nullptr when the shim is disabled. */
    std::unique_ptr<SnapshotPublisher> snapshot_;

    /** Workers publish window updates here, so the hub is destroyed
     * after the pool: publishes stop, then the dispatcher joins. */
    SubscriptionHub hub_;

    /** Last member: workers must stop before anything else dies. */
    WorkerPool pool_;
};

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_MONITOR_SERVICE_H
