#include "core/inference.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace bperf {
namespace core {

namespace {

std::uint64_t
spanNanos(std::chrono::steady_clock::time_point tp)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
}

} // namespace

std::vector<double>
InferenceResult::meanSeries(sim::EventId event) const
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event) {
            std::vector<double> out(series[i].size());
            for (std::size_t t = 0; t < out.size(); ++t)
                out[t] = series[i][t].mean;
            return out;
        }
    }
    bp_panic("event not inferred: id " << event);
}

std::vector<double>
InferenceResult::stddevSeries(sim::EventId event) const
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event) {
            std::vector<double> out(series[i].size());
            for (std::size_t t = 0; t < out.size(); ++t)
                out[t] = series[i][t].stddev;
            return out;
        }
    }
    bp_panic("event not inferred: id " << event);
}

WindowedInference::WindowedInference(const sim::MicroarchDescriptor &uarch,
                                     std::vector<sim::EventId> events,
                                     InferenceConfig config,
                                     std::size_t schedule_period)
    : uarch_(uarch), events_(std::move(events)), config_(config),
      ep_(config.ep)
{
    bp_assert(!events_.empty(), "nothing to infer");
    k_ = config_.windowSlices;
    if (k_ == 0) {
        // Adapt to the schedule period so every event is observed at
        // least once per window.
        k_ = std::clamp<std::size_t>(schedule_period, 3, 8);
    }
    // Half-overlapping sliding windows: every slice (except the tail)
    // is re-estimated by a later window in which it has future
    // context, giving two-sided smoothing between observations.
    stride_ = std::max<std::size_t>(1, k_ / 2);
    series_.resize(events_.size());
}

const SliceMeasurements &
WindowedInference::slice(std::size_t t) const
{
    bp_assert(t >= bufferBase_ && t - bufferBase_ < buffer_.size(),
              "slice " << t << " outside live window buffer");
    return buffer_[t - bufferBase_];
}

std::size_t
WindowedInference::push(const SliceMeasurements &slice)
{
    bp_assert(!finished_, "push after finish()");
    bp_assert(slice.size() == events_.size(),
              "slice carries " << slice.size() << " samples for "
                               << events_.size() << " events");
    buffer_.push_back(slice);
    ++numSlices_;
    for (auto &row : series_)
        row.emplace_back();

    std::size_t ran = 0;
    while (numSlices_ - nextStart_ >= k_) {
        runWindow(k_);
        ++ran;
    }
    return ran;
}

std::size_t
WindowedInference::finish()
{
    bp_assert(!finished_, "finish() called twice");
    finished_ = true;
    std::size_t ran = 0;
    // The batch loop runs windows at every stride start until one
    // covers the tail; replay the truncated ones it would still run.
    while (numSlices_ > 0 && coveredEnd_ < numSlices_) {
        runWindow(std::min(k_, numSlices_ - nextStart_));
        ++ran;
    }
    return ran;
}

PosteriorPoint
WindowedInference::latest(std::size_t event_index) const
{
    bp_assert(event_index < events_.size(), "event index out of range");
    bp_assert(coveredEnd_ > seriesBase_, "no slice inferred yet");
    return series_[event_index][coveredEnd_ - 1 - seriesBase_];
}

bool
WindowedInference::latestPosteriors(std::vector<PosteriorPoint> &out) const
{
    if (coveredEnd_ <= seriesBase_)
        return false;
    out.resize(events_.size());
    const std::size_t t = coveredEnd_ - 1 - seriesBase_;
    for (std::size_t i = 0; i < events_.size(); ++i)
        out[i] = series_[i][t];
    return true;
}

void
WindowedInference::runWindow(std::size_t w_len)
{
    const auto t_start = std::chrono::steady_clock::now();
    const std::size_t w0 = nextStart_;
    bp_assert(w_len > 0 && w0 + w_len <= numSlices_,
              "window [" << w0 << ", " << w0 + w_len << ") not buffered");

    // Level hints: the measured magnitude of each event inside this
    // window (falling back to the carried estimate).
    if (levels_.capacity() < events_.size())
        ++stagingGrows_;
    levels_.resize(events_.size());
    std::vector<double> &levels = levels_;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t s = 0; s < w_len; ++s) {
            const auto &sample = slice(w0 + s)[i];
            if (sample.observed) {
                sum += sample.scaled();
                ++n;
            }
        }
        if (n > 0) {
            levels[i] = sum / static_cast<double>(n);
        } else if (!carry_.empty()) {
            levels[i] = carry_[i].mean;
        } else {
            levels[i] = uarch_.event(events_[i]).typicalPerSlice;
        }
    }

    // Normalizer: the fixed instruction counter's measured values,
    // which anchor the ratio walk.
    std::vector<double> &normalizer = normalizer_;
    normalizer.clear();
    const sim::EventId inst_id = uarch_.idForRole(sim::Role::Instructions);
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (events_[i] != inst_id)
            continue;
        if (normalizer.capacity() < w_len)
            ++stagingGrows_;
        normalizer.resize(w_len);
        bool ok = true;
        for (std::size_t s = 0; s < w_len; ++s) {
            const auto &sample = slice(w0 + s)[i];
            if (!sample.observed || sample.scaled() <= 0.0) {
                ok = false;
                break;
            }
            normalizer[s] = sample.scaled();
        }
        if (!ok)
            normalizer.clear();
        break;
    }

    // Rebuild the persistent model in place (all buffers recycled);
    // only the first window constructs it.
    const std::vector<double> *norm =
        normalizer.empty() ? nullptr : &normalizer;
    if (!model_)
        model_.emplace(uarch_, events_, w_len, config_.model, &levels,
                       norm);
    else
        model_->rebuild(w_len, &levels, norm);
    WindowModel &model = *model_;
    model.addCarryPriors(carry_);

    // Measurement factors for every observed (event, slice).
    for (std::size_t i = 0; i < events_.size(); ++i) {
        for (std::size_t s = 0; s < w_len; ++s) {
            const auto &sample = slice(w0 + s)[i];
            if (!sample.observed)
                continue;
            const bool full_duty = sample.timeRunning >= 0.999;
            if (full_duty) {
                // A full-duty counter's raw count *is* the slice
                // total: window-to-window spread reflects genuine
                // intra-slice variation, not measurement noise, so
                // only read noise enters the scale.
                MeasurementModel m;
                m.loc = sample.scaled();
                m.scale = std::max(config_.model.measurementExtraRel *
                                       std::abs(m.loc),
                                   1e-9);
                m.nu = 30.0;
                model.addMeasurement(events_[i], s, m);
            } else {
                // Multiplexed counters get multiplicative-noise
                // floors (relative to both their reading and the
                // event's level).
                const double floor =
                    config_.model.measurementFloorRel * levels[i];
                model.addMeasurement(
                    events_[i], s,
                    fitMeasurement(sample, config_.model.measurementMuxRel,
                                   floor));
            }
        }
    }

    const std::size_t ws_allocs_before = epWorkspace_.totalAllocations();
    ep_.run(model.graph(), epWorkspace_, epResult_);
    const EpResult &ep_result = epResult_;
    ++windowsRun_;
    epSweepsTotal_ += ep_result.sweeps;
    epMomentEvaluations_ += ep_result.momentEvaluations;
    epRank1Updates_ += ep_result.rank1Updates;
    epFullSolves_ += ep_result.fullSolves;
    epBlockFlushes_ += ep_result.blockFlushes;
    epDeferredUpdates_ += ep_result.deferredUpdates;
    epSkippedUpdates_ += ep_result.skippedUpdates;

    // Record every covered slice; later (more contextual) windows
    // overwrite all but their warm-up prefix.
    for (std::size_t i = 0; i < events_.size(); ++i) {
        for (std::size_t s = 0; s < w_len; ++s) {
            const graph::VarId v = model.var(events_[i], s);
            series_[i][w0 + s - seriesBase_] = {ep_result.mean[v],
                                                ep_result.stddev[v]};
        }
    }
    coveredEnd_ = w0 + w_len;

    // Carry the posterior of the slice preceding the next window's
    // start.
    const std::size_t carry_slice = std::min(stride_, w_len) - 1;
    carry_.clear();
    carry_.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const graph::VarId v = model.var(events_[i], carry_slice);
        const auto &def = uarch_.event(events_[i]);
        const double walk_sd =
            config_.model.temporalSigmaRel *
            std::max(levels[i], 0.05 * def.typicalPerSlice);
        const double sd =
            std::sqrt(config_.carryVarInflation *
                      (ep_result.stddev[v] * ep_result.stddev[v] +
                       walk_sd * walk_sd));
        carry_.push_back({events_[i], ep_result.mean[v], sd});
    }

    nextStart_ = w0 + stride_;
    // Slices before the next window start can never be read again.
    while (bufferBase_ < nextStart_ && !buffer_.empty()) {
        buffer_.pop_front();
        ++bufferBase_;
    }

    // Bounded retention: drop posterior rows older than the keep
    // horizon, but never anything a future window may still rewrite.
    if (config_.retainSlices > 0 && coveredEnd_ > config_.retainSlices) {
        const std::size_t keep_from =
            std::min(nextStart_, coveredEnd_ - config_.retainSlices);
        if (keep_from > seriesBase_) {
            const std::size_t drop = keep_from - seriesBase_;
            for (auto &row : series_)
                row.erase(row.begin(), row.begin() + drop);
            seriesBase_ = keep_from;
        }
    }

    const auto t_end = std::chrono::steady_clock::now();
    const double window_seconds =
        std::chrono::duration<double>(t_end - t_start).count();
    inferSeconds_ += window_seconds;
    pendingWindowSeconds_.push_back(window_seconds);

    // Hand the completed window to the execution backend.  The
    // posterior above is final either way; the backend only decides
    // where the window would have executed and stamps that cost.
    WindowJob job;
    job.sessionKey = config_.backendSessionKey;
    job.endSlice =
        std::max(sliceOrigin_ + w0 + w_len - 1, releaseFloor_);
    job.windowSlices = w_len;
    job.numVariables = model.graph().numVariables();
    job.numSites = model.graph()
                       .factorsOfKind(graph::FactorKind::StudentT)
                       .size();
    job.numSweeps = ep_result.sweeps;
    // Partitioned runs share their plan with the backend so simulated
    // accelerator engines split the window along the same bands.
    if (config_.ep.partitions > 1 &&
        epWorkspace_.partitionPlan().numPartitions > 1)
        job.maxPartitionSites =
            epWorkspace_.partitionPlan().maxPartitionSites();
    // Streamed inputs: per-site window reads + per-variable g(theta).
    job.inputBytes = 24 * job.numSites + 8 * job.numVariables;
    job.hostSeconds = window_seconds;

    WindowExecution exec;
    if (config_.backend != nullptr) {
        exec = config_.backend->execute(job);
    } else {
        exec.endSlice = job.endSlice;
        exec.serviceSeconds = window_seconds;
        exec.modeledSeconds = window_seconds;
    }
    exec.windowOrdinal = windowsRun_;
    if (telemetry::enabled()) {
        exec.span.traceId = telemetry::nextTraceId();
        exec.span.ingestNanos = recIngestNanos_;
        exec.span.assembleNanos = recAssembleNanos_;
        exec.span.epStartNanos = spanNanos(t_start);
        exec.span.epEndNanos = spanNanos(t_end);

        auto &registry = telemetry::MetricsRegistry::global();
        static telemetry::Counter &ep_windows =
            registry.counter("ep.windows");
        static telemetry::Counter &ep_sweeps =
            registry.counter("ep.sweeps");
        static telemetry::Counter &ep_workspace_allocs =
            registry.counter("ep.workspace_allocations");
        static telemetry::Histogram &ep_window_ns =
            registry.histogram("ep.window_ns");
        ep_windows.add();
        ep_sweeps.add(ep_result.sweeps);
        ep_workspace_allocs.add(epWorkspace_.totalAllocations() -
                                ws_allocs_before);
        ep_window_ns.record(
            static_cast<std::uint64_t>(window_seconds * 1e9));
    }
    executions_.push_back(exec);
    pendingExecutions_.push_back(exec);
    if (config_.retainSlices > 0 &&
        executions_.size() > config_.retainSlices) {
        executions_.erase(executions_.begin(),
                          executions_.end() -
                              static_cast<std::ptrdiff_t>(
                                  config_.retainSlices));
    }
}

std::vector<double>
WindowedInference::takeWindowSeconds()
{
    std::vector<double> out = std::move(pendingWindowSeconds_);
    pendingWindowSeconds_.clear();
    return out;
}

std::vector<WindowExecution>
WindowedInference::takeWindowExecutions()
{
    std::vector<WindowExecution> out = std::move(pendingExecutions_);
    pendingExecutions_.clear();
    return out;
}

InferenceResult
WindowedInference::takeResult()
{
    bp_assert(finished_, "takeResult() requires finish()");
    InferenceResult result;
    result.events = events_;
    result.series = std::move(series_);
    result.firstSlice = seriesBase_;
    result.windowsRun = windowsRun_;
    result.epSweepsTotal = epSweepsTotal_;
    result.epMomentEvaluations = epMomentEvaluations_;
    result.epRank1Updates = epRank1Updates_;
    result.epFullSolves = epFullSolves_;
    result.epBlockFlushes = epBlockFlushes_;
    result.epDeferredUpdates = epDeferredUpdates_;
    result.epSkippedUpdates = epSkippedUpdates_;
    result.wallSeconds = inferSeconds_;
    result.epWorkspaceAllocations = epWorkspace_.totalAllocations();
    result.modelAllocations = modelAllocations();
    result.backendName =
        config_.backend != nullptr ? config_.backend->name() : "host";
    result.windowExecutions = std::move(executions_);
    executions_.clear();
    // The engine is spent: reset the stream cursors so stray reads
    // fail fast instead of indexing the moved-out series.
    series_.assign(events_.size(), {});
    numSlices_ = nextStart_ = coveredEnd_ = seriesBase_ = 0;
    return result;
}

InferenceEngine::InferenceEngine(const sim::MicroarchDescriptor &uarch,
                                 InferenceConfig config)
    : uarch_(uarch), config_(config)
{
}

InferenceResult
InferenceEngine::infer(const sim::PerfResult &measurements) const
{
    const auto t_start = std::chrono::steady_clock::now();

    const std::vector<sim::EventId> &events = measurements.monitored;
    bp_assert(!events.empty(), "nothing to infer");
    const std::size_t num_slices = measurements.traces.front().slices.size();

    WindowedInference streaming(uarch_, events, config_,
                                measurements.schedule.size());
    SliceMeasurements slice(events.size());
    for (std::size_t t = 0; t < num_slices; ++t) {
        for (std::size_t i = 0; i < events.size(); ++i)
            slice[i] = measurements.traces[i].slices[t];
        streaming.push(slice);
    }
    streaming.finish();

    InferenceResult result = streaming.takeResult();
    const auto t_end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(t_end - t_start).count();
    return result;
}

} // namespace core
} // namespace bperf
