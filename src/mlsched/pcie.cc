#include "mlsched/pcie.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"

namespace bperf {
namespace ml {

const char *
nodeName(Node node)
{
    switch (node) {
      case Node::Cpu0: return "CPU0";
      case Node::Cpu1: return "CPU1";
      case Node::SwitchA: return "SwitchA";
      case Node::SwitchB: return "SwitchB";
      case Node::Gpu0: return "GPU0";
      case Node::Gpu1: return "GPU1";
      case Node::Gpu2: return "GPU2";
      case Node::Gpu3: return "GPU3";
      case Node::Nic0: return "NIC0";
      case Node::Nic1: return "NIC1";
    }
    return "?";
}

namespace {

/** Parent of each leaf/switch in the tree. */
Node
parentOf(Node node)
{
    switch (node) {
      case Node::Gpu0:
      case Node::Gpu1:
      case Node::Nic0:
        return Node::SwitchA;
      case Node::Gpu2:
      case Node::Gpu3:
      case Node::Nic1:
        return Node::SwitchB;
      case Node::SwitchA:
        return Node::Cpu0;
      case Node::SwitchB:
        return Node::Cpu1;
      case Node::Cpu0:
        return Node::Cpu1;
      case Node::Cpu1:
        return Node::Cpu0;
    }
    return Node::Cpu0;
}

/** Path from a node up to its socket root. */
std::vector<Node>
pathToRoot(Node node)
{
    std::vector<Node> path{node};
    while (node != Node::Cpu0 && node != Node::Cpu1) {
        node = parentOf(node);
        path.push_back(node);
    }
    return path;
}

/** Canonical undirected link key. */
std::pair<int, int>
linkKey(Node a, Node b)
{
    int x = static_cast<int>(a), y = static_cast<int>(b);
    return {std::min(x, y), std::max(x, y)};
}

} // namespace

PcieFabric::PcieFabric(PcieConfig config) : config_(config)
{
    bp_assert(config_.linkGBps > 0.0 && config_.peakCopyGBps > 0.0,
              "bad PCIe config");
}

double
PcieFabric::linkCapacity(Node a, Node b) const
{
    if ((a == Node::Cpu0 && b == Node::Cpu1) ||
        (a == Node::Cpu1 && b == Node::Cpu0))
        return config_.socketLinkGBps;
    bp_assert(parentOf(a) == b || parentOf(b) == a,
              "nodes are not adjacent: " << nodeName(a) << "-"
                                         << nodeName(b));
    return config_.linkGBps;
}

std::vector<std::pair<Node, Node>>
PcieFabric::route(Node src, Node dst) const
{
    bp_assert(src != dst, "route to self");
    // Up from src to its root, across the socket link if needed, and
    // down to dst.  All device traffic crosses the root complex.
    const std::vector<Node> up = pathToRoot(src);
    std::vector<Node> down = pathToRoot(dst);
    std::reverse(down.begin(), down.end());

    // A socket hop, when needed, emerges from the concatenation since
    // pathToRoot ends at the owning CPU and parentOf links the CPUs.
    std::vector<Node> nodes = up;
    for (Node n : down) {
        if (nodes.back() != n)
            nodes.push_back(n);
    }

    std::vector<std::pair<Node, Node>> links;
    for (std::size_t i = 1; i < nodes.size(); ++i)
        links.emplace_back(nodes[i - 1], nodes[i]);
    return links;
}

std::vector<double>
PcieFabric::allocate(const std::vector<Flow> &flows) const
{
    // Progressive filling max-min fairness.
    std::map<std::pair<int, int>, double> capacity;
    std::vector<std::vector<std::pair<int, int>>> flow_links(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
        for (const auto &[a, b] : route(flows[i].src, flows[i].dst)) {
            const auto key = linkKey(a, b);
            capacity.emplace(key, linkCapacity(a, b));
            flow_links[i].push_back(key);
        }
    }

    std::vector<double> rate(flows.size(), 0.0);
    std::vector<bool> frozen(flows.size(), false);
    for (std::size_t i = 0; i < flows.size(); ++i)
        if (flows[i].demandGBps <= 0.0)
            frozen[i] = true;

    for (std::size_t round = 0; round < flows.size() + 1; ++round) {
        // Smallest fair-share increment over all unfrozen flows.
        double step = std::numeric_limits<double>::infinity();
        bool any = false;
        for (std::size_t i = 0; i < flows.size(); ++i) {
            if (frozen[i])
                continue;
            any = true;
            // Demand headroom.
            step = std::min(step, flows[i].demandGBps - rate[i]);
            // Link headroom share.  A flow that traverses a link
            // more than once (GPU peer traffic through the root
            // complex) consumes it once per traversal.
            for (const auto &key : flow_links[i]) {
                std::size_t uses = 0;
                for (std::size_t j = 0; j < flows.size(); ++j) {
                    if (frozen[j])
                        continue;
                    uses += static_cast<std::size_t>(
                        std::count(flow_links[j].begin(),
                                   flow_links[j].end(), key));
                }
                step = std::min(step, capacity.at(key) /
                                          static_cast<double>(uses));
            }
        }
        if (!any || step <= 1e-12)
            break;

        // Apply the increment, consume capacity (once per traversal),
        // freeze at limits.
        for (std::size_t i = 0; i < flows.size(); ++i) {
            if (frozen[i])
                continue;
            rate[i] += step;
            for (const auto &key : flow_links[i])
                capacity.at(key) -= step;
        }
        for (std::size_t i = 0; i < flows.size(); ++i) {
            if (frozen[i])
                continue;
            if (rate[i] >= flows[i].demandGBps - 1e-12) {
                frozen[i] = true;
                continue;
            }
            for (const auto &key : flow_links[i])
                if (capacity.at(key) <= 1e-12)
                    frozen[i] = true;
        }
    }
    // DMA-engine bound.
    for (double &r : rate)
        r = std::min(r, config_.peakCopyGBps);
    return rate;
}

double
PcieFabric::effectiveBandwidth(double raw_gbps, double message_bytes) const
{
    bp_assert(message_bytes > 0.0, "bad message size");
    return raw_gbps * message_bytes /
           (message_bytes + config_.messageOverheadBytes);
}

} // namespace ml
} // namespace bperf
