/**
 * @file
 * Kernel-to-userspace sample ring buffer.
 *
 * Models the perf mmap ring: the kernel enqueues sample records, the
 * monitoring process (or the BayesPerf shim/accelerator) dequeues
 * them.  New samples are dropped when the buffer is full, which is
 * exactly perf's backpressure behaviour (section 5 of the paper).
 *
 * The ring is a wait-free single-producer single-consumer FIFO: one
 * thread may push (the PMI handler / ingestion thread) while one other
 * thread pops (the inference worker), without locks.  Head and tail
 * are monotonically increasing counters with acquire/release pairing —
 * the same discipline as the kernel's data_head/data_tail protocol on
 * the real perf mmap page.
 */

#ifndef BPERF_SIM_RING_BUFFER_H
#define BPERF_SIM_RING_BUFFER_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/microarch.h"

namespace bperf {
namespace sim {

/** One sample record, as written by the PMI handler. */
struct PerfRecord
{
    std::uint32_t slice = 0;
    EventId event = kNoEvent;
    double value = 0.0;
    double timeEnabled = 0.0;
    double timeRunning = 0.0;
    /** Telemetry span stamp: when the record entered the ring
     * (telemetry::nowNanos() base; 0 when telemetry is disabled).
     * Stamped by the service's offer path, not by producers. */
    std::uint64_t ingestNanos = 0;
};

/**
 * Fixed-capacity single-producer single-consumer FIFO of PerfRecords.
 *
 * Thread contract: at most one concurrent pusher and one concurrent
 * popper.  Every accessor is safe to call from either side (sizes and
 * counters may be momentarily stale under concurrency, never torn).
 */
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity);

    /** Enqueue; returns false (and counts a drop) when full. */
    bool push(const PerfRecord &rec);

    /** Dequeue the oldest record, if any. */
    std::optional<PerfRecord> pop();

    std::size_t size() const
    {
        // Load head before tail: the consumer only ever advances
        // head_ up to a tail it already observed, so a head read that
        // precedes the tail read can never exceed it.  (The reverse
        // order raced: a consumer advancing between the two loads
        // made tail - head wrap to a huge value.)  The producer may
        // still advance tail between the loads, so clamp to capacity.
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        const std::uint64_t used = tail - head;
        return static_cast<std::size_t>(
            used < buffer_.size() ? used : buffer_.size());
    }
    std::size_t capacity() const { return buffer_.size(); }
    bool empty() const { return size() == 0; }
    bool full() const { return size() == buffer_.size(); }

    /** Number of records dropped due to backpressure. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Total records ever enqueued successfully. */
    std::uint64_t pushed() const
    {
        return tail_.load(std::memory_order_acquire);
    }

    /** Coherent (pushed, dropped) pair. */
    struct Counters
    {
        std::uint64_t pushed = 0;
        std::uint64_t dropped = 0;
    };

    /**
     * Snapshot pushed and dropped at one coherent instant.  Reading
     * the two counters independently can pair a stale pushed with a
     * fresh dropped (or vice versa), so derived invariants such as
     * offered == pushed + dropped need not hold for the pair.  Here
     * the dropped count is re-read after the pushed load: when it did
     * not change, the pair is exactly the ring's state at the instant
     * tail_ was read.
     */
    Counters counters() const
    {
        for (;;) {
            const std::uint64_t dropped_before =
                dropped_.load(std::memory_order_acquire);
            const std::uint64_t pushed =
                tail_.load(std::memory_order_acquire);
            const std::uint64_t dropped_after =
                dropped_.load(std::memory_order_acquire);
            if (dropped_before == dropped_after)
                return Counters{pushed, dropped_after};
        }
    }

  private:
    std::vector<PerfRecord> buffer_;
    /** Pop cursor: owned by the consumer, published to the producer. */
    std::atomic<std::uint64_t> head_{0};
    /** Push cursor: owned by the producer, published to the consumer. */
    std::atomic<std::uint64_t> tail_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_RING_BUFFER_H
