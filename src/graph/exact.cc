#include "graph/exact.h"

#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace graph {

void
GaussianSolver::rebind(const FactorGraph &graph)
{
    graph_ = &graph;
    const std::size_t n = graph.numVariables();

    if (baseJ_.capacity() < n * n || scale_.capacity() < n ||
        baseH_.capacity() < n)
        ++grows_;

    // Work in scaled units u = x / s to keep the precision matrix
    // well conditioned.
    scale_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        scale_[i] = graph.variable(static_cast<VarId>(i)).scaleHint;

    // The Gaussian backbone is site-independent: build it once.
    baseJ_.reset(n, n, 0.0);
    baseH_.assign(n, 0.0);

    for (FactorId fid : graph.factorsOfKind(FactorKind::LinearGaussian)) {
        const Factor &f = graph.factor(fid);
        // (a^T x + b)^2 / sigma^2 contributes a a^T / sigma^2.
        const double inv_var = 1.0 / (f.noiseStd * f.noiseStd);
        for (std::size_t i = 0; i < f.vars.size(); ++i) {
            const VarId vi = f.vars[i];
            const double ai = f.coeffs[i] * scale_[vi];
            for (std::size_t j = 0; j < f.vars.size(); ++j) {
                const VarId vj = f.vars[j];
                const double aj = f.coeffs[j] * scale_[vj];
                baseJ_(vi, vj) += ai * aj * inv_var;
            }
            baseH_[vi] += -f.offset * ai * inv_var;
        }
    }
    for (FactorId fid : graph.factorsOfKind(FactorKind::GaussianPrior)) {
        const Factor &f = graph.factor(fid);
        const VarId v = f.vars[0];
        const double inv_var = scale_[v] * scale_[v] / (f.scale * f.scale);
        baseJ_(v, v) += inv_var;
        baseH_[v] += inv_var * f.loc / scale_[v];
    }

    // Tiny ridge to keep strictly-determined systems numerically SPD.
    for (std::size_t v = 0; v < n; ++v)
        baseJ_(v, v) += 1e-12;
}

bool
GaussianSolver::hasNonGaussianFactors() const
{
    bp_assert(graph_ != nullptr, "solver not bound to a graph");
    return !graph_->factorsOfKind(FactorKind::StudentT).empty();
}

GaussianJoint
GaussianSolver::solve(const std::vector<Gaussian> &sites) const
{
    GaussianJoint joint;
    SolverScratch scratch;
    solveInto(sites, joint, scratch);
    return joint;
}

void
GaussianSolver::solveInto(const std::vector<Gaussian> &sites,
                          GaussianJoint &joint, SolverScratch &scratch) const
{
    bp_assert(graph_ != nullptr, "solver not bound to a graph");
    const std::size_t n = graph_->numVariables();
    bp_assert(sites.empty() || sites.size() == n,
              "site vector must be empty or cover all variables");

    if (scratch.J.capacity() < n * n ||
        joint.covariance.capacity() < n * n ||
        scratch.chol.capacity() < 2 * n * n ||
        scratch.h.capacity() < n || joint.mean.capacity() < n)
        ++scratch.grows;

    scratch.J = baseJ_;
    scratch.h = baseH_;
    if (!sites.empty()) {
        for (std::size_t v = 0; v < n; ++v) {
            // Site in natural units; convert to scaled units.
            scratch.J(v, v) += sites[v].lambda * scale_[v] * scale_[v];
            scratch.h[v] += sites[v].eta * scale_[v];
        }
    }

    // Covariance = J^-1 (one Cholesky factorization), mean = J^-1 h.
    scratch.J.choleskyInverseInto(joint.covariance, scratch.chol);

    // Mean in natural units, from the still-scaled covariance.
    joint.mean.resize(n);
    double *cov = joint.covariance.data();
    const double *hs = scratch.h.data();
    for (std::size_t r = 0; r < n; ++r) {
        const double *row = cov + r * n;
        double s = 0.0;
        for (std::size_t c = 0; c < n; ++c)
            s += row[c] * hs[c];
        joint.mean[r] = s * scale_[r];
    }

    // Rescale the covariance to natural units in place.
    for (std::size_t r = 0; r < n; ++r) {
        double *row = cov + r * n;
        const double sr = scale_[r];
        for (std::size_t c = 0; c < n; ++c)
            row[c] *= sr * scale_[c];
    }
}

bool
GaussianSolver::rank1SiteUpdate(GaussianJoint &joint, VarId v,
                                double d_lambda, double d_eta,
                                SolverScratch &scratch)
{
    const std::size_t n = joint.mean.size();
    bp_assert(v < n, "rank-1 update variable out of range");

    // Natural units throughout: a site change (d_lambda, d_eta) on
    // variable v shifts the precision by d_lambda e_v e_v^T and the
    // information vector by d_eta e_v.  With sigma = Sigma e_v:
    //   Sigma' = Sigma - (d_lambda / denom) sigma sigma^T
    //   mean'  = mean + sigma (d_eta - d_lambda mean_v) / denom
    // where denom = 1 + d_lambda Sigma_vv.
    const double var_v = joint.covariance(v, v);
    if (!(var_v > 0.0))
        return false;
    const double dl_var = d_lambda * var_v;
    const double denom = 1.0 + dl_var;
    // Conditioning guards — refuse and let the caller re-solve when
    // the update would poison the covariance:
    //  - denom <= 0.05: a strong downdate amplifies every entry (and
    //    any accumulated drift) by 1/denom > 20x;
    //  - dl_var > 1e4: the diagonal update cancels ~dl_var leading
    //    digits, injecting ~dl_var * eps relative error.
    // Both are rare (large site jumps happen in the first sweeps);
    // the O(n^3) fallback keeps the fast path's drift below the
    // 1e-6 agreement the golden suite asserts.
    if (!(denom > 0.05) || dl_var > 1e4)
        return false;

    if (scratch.col.capacity() < n)
        ++scratch.grows;
    scratch.col.resize(n);
    double *cov = joint.covariance.data();
    double *col = scratch.col.data();
    double *mean = joint.mean.data();
    // Sigma e_v from the lower triangle: row v up to the diagonal
    // (contiguous), column v below it.
    const double *rowv = cov + static_cast<std::size_t>(v) * n;
    for (std::size_t r = 0; r <= v; ++r)
        col[r] = rowv[r];
    for (std::size_t r = v + 1; r < n; ++r)
        col[r] = cov[r * n + v];

    const double mean_gain = (d_eta - d_lambda * mean[v]) / denom;
    for (std::size_t r = 0; r < n; ++r)
        mean[r] += mean_gain * col[r];

    // Update the lower triangle only: the matrix is symmetric and the
    // hot loop is memory-bound, so mirroring the upper half would
    // double the traffic to maintain entries nothing reads (see the
    // header contract).
    const double c = d_lambda / denom;
    for (std::size_t r = 0; r < n; ++r) {
        const double cr = c * col[r];
        double *row = cov + r * n;
        for (std::size_t k = 0; k <= r; ++k)
            row[k] -= cr * col[k];
    }
    return true;
}

BlockedJointUpdater::BlockedJointUpdater(GaussianJoint &joint,
                                         SolverScratch &scratch,
                                         std::size_t block_size)
    : joint_(&joint), scratch_(&scratch),
      blockSize_(std::max<std::size_t>(1, block_size)),
      n_(joint.mean.size())
{
    bp_assert(blockSize_ <= kMaxBlockSize, "block size too large");
    if (scratch.blockW.capacity() < blockSize_ * n_ ||
        scratch.blockC.capacity() < blockSize_)
        ++scratch.grows;
    scratch.blockW.resize(blockSize_ * n_);
    scratch.blockC.resize(blockSize_);
}

double
BlockedJointUpdater::marginalVariance(VarId v) const
{
    double var = joint_->covariance(v, v);
    const double *W = scratch_->blockW.data();
    const double *C = scratch_->blockC.data();
    for (std::size_t i = 0; i < pending_; ++i) {
        const double wv = W[i * n_ + v];
        var -= C[i] * wv * wv;
    }
    return var;
}

bool
BlockedJointUpdater::push(VarId v, double d_lambda, double d_eta)
{
    bp_assert(v < n_, "blocked update variable out of range");
    double *W = scratch_->blockW.data();
    double *C = scratch_->blockC.data();
    double *w = W + pending_ * n_;
    const double *cov = joint_->covariance.data();

    // Column v of the *stored* covariance, from the lower triangle.
    const double *rowv = cov + static_cast<std::size_t>(v) * n_;
    for (std::size_t r = 0; r <= v; ++r)
        w[r] = rowv[r];
    for (std::size_t r = v + 1; r < n_; ++r)
        w[r] = cov[r * n_ + v];

    // Correct it to the current covariance: subtract each pending
    // downdate's contribution.  This is the whole trick — the column
    // is exactly what the sequential chain would read after applying
    // the pending updates, without touching the n^2 matrix.
    for (std::size_t i = 0; i < pending_; ++i) {
        const double f = C[i] * W[i * n_ + v];
        if (f == 0.0)
            continue;
        const double *wi = W + i * n_;
        for (std::size_t r = 0; r < n_; ++r)
            w[r] -= f * wi[r];
    }

    const double var_v = w[v];
    if (!(var_v > 0.0))
        return false;
    const double dl_var = d_lambda * var_v;
    const double denom = 1.0 + dl_var;
    // Same conditioning guards as rank1SiteUpdate (see its comment).
    if (!(denom > 0.05) || dl_var > 1e4)
        return false;

    // Mean update is exact and eager (the EP loop reads means between
    // pushes); covariance is deferred.
    double *mean = joint_->mean.data();
    const double mean_gain = (d_eta - d_lambda * mean[v]) / denom;
    for (std::size_t r = 0; r < n_; ++r)
        mean[r] += mean_gain * w[r];

    C[pending_] = d_lambda / denom;
    ++pending_;
    if (pending_ == blockSize_)
        flush();
    return true;
}

void
BlockedJointUpdater::flush()
{
    if (pending_ == 0)
        return;
    double *cov = joint_->covariance.data();
    const double *W = scratch_->blockW.data();
    const double *C = scratch_->blockC.data();
    // One pass over the lower triangle applying all pending outer
    // products: the row stays cache-resident across the k inner
    // sweeps, so main-memory traffic is one triangle read+write per
    // flush instead of per update.
    for (std::size_t r = 0; r < n_; ++r) {
        double *row = cov + r * n_;
        for (std::size_t i = 0; i < pending_; ++i) {
            const double *wi = W + i * n_;
            const double a = C[i] * wi[r];
            if (a == 0.0)
                continue;
            for (std::size_t k = 0; k <= r; ++k)
                row[k] -= a * wi[k];
        }
    }
    ++flushes_;
    pending_ = 0;
}

} // namespace graph
} // namespace bperf
