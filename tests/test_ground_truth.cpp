/**
 * @file
 * Property tests of the ground-truth generator: every invariant the
 * factor graph will rely on must hold on the generated traces, for
 * every HiBench workload on both architectures.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/ground_truth.h"
#include "workloads/hibench.h"

namespace bperf {
namespace sim {
namespace {

/** Largest |coeff * value| over an invariant's terms at a slice. */
double
invariantMagnitude(const MicroarchDescriptor &u, const TruthTrace &t,
                   const LinearInvariant &inv, std::size_t slice)
{
    double mag = 0.0;
    for (const auto &term : inv.terms)
        mag = std::max(mag, std::abs(term.coeff *
                                     t.sliceTotal(slice,
                                                  u.idForRole(term.role))));
    return mag;
}

double
invariantResidual(const MicroarchDescriptor &u, const TruthTrace &t,
                  const LinearInvariant &inv, std::size_t slice)
{
    double r = 0.0;
    for (const auto &term : inv.terms)
        r += term.coeff * t.sliceTotal(slice, u.idForRole(term.role));
    return r;
}

class TruthInvariantTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TruthInvariantTest, InvariantsHoldWithinSlack)
{
    const auto uarch = makeX86Skylake();
    const auto workload = wl::makeHibench(GetParam());
    GroundTruthGenerator gen(uarch, workload);
    const auto truth = gen.generate(24, 99);

    for (const auto &inv : uarch.invariants()) {
        for (std::size_t t = 0; t < truth.numSlices(); t += 4) {
            const double mag = invariantMagnitude(uarch, truth, inv, t);
            if (mag <= 0.0)
                continue;
            const double residual =
                std::abs(invariantResidual(uarch, truth, inv, t));
            // Soft invariants drift with their OU slack modulators;
            // allow 6 sigma.  Exact invariants are tight.
            const double budget = 6.0 * inv.slackRel * mag + 1e-6 * mag;
            EXPECT_LE(residual, budget)
                << GetParam() << ": " << inv.name << " @ slice " << t;
        }
    }
}

TEST_P(TruthInvariantTest, AllValuesFiniteAndNonNegative)
{
    const auto uarch = makePower9();
    const auto workload = wl::makeHibench(GetParam());
    GroundTruthGenerator gen(uarch, workload);
    const auto truth = gen.generate(12, 5);
    for (std::size_t t = 0; t < truth.numSlices(); ++t) {
        for (const auto &e : uarch.events()) {
            const double v = truth.sliceTotal(t, e.id);
            ASSERT_TRUE(std::isfinite(v)) << e.name;
            ASSERT_GE(v, 0.0) << e.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TruthInvariantTest,
                         ::testing::ValuesIn(wl::hibenchNames()));

TEST(GroundTruth, DeterministicPerSeed)
{
    const auto uarch = makeX86Skylake();
    const auto workload = wl::makeHibench("Sort");
    GroundTruthGenerator gen(uarch, workload);
    const auto a = gen.generate(8, 42);
    const auto b = gen.generate(8, 42);
    const auto c = gen.generate(8, 43);
    const EventId cyc = uarch.idForRole(Role::Cycles);
    bool any_diff = false;
    for (std::size_t t = 0; t < 8; ++t) {
        EXPECT_DOUBLE_EQ(a.sliceTotal(t, cyc), b.sliceTotal(t, cyc));
        any_diff |= a.sliceTotal(t, cyc) != c.sliceTotal(t, cyc);
    }
    EXPECT_TRUE(any_diff);
}

TEST(GroundTruth, WindowSumsMatchSliceTotals)
{
    const auto uarch = makeX86Skylake();
    const auto workload = wl::makeHibench("Scan");
    GroundTruthGenerator gen(uarch, workload);
    const auto truth = gen.generate(4, 1);
    const EventId inst = uarch.idForRole(Role::Instructions);
    const std::size_t subs = truth.subticksPerSlice();
    const double split = truth.window(1, 0, subs / 2, inst) +
                         truth.window(1, subs / 2, subs - subs / 2, inst);
    EXPECT_NEAR(split, truth.sliceTotal(1, inst), 1e-9);
}

TEST(GroundTruth, PhaseRampIsMonotonicBlend)
{
    // A two-phase workload with very different rates must show a
    // smooth transition over the ramp, not a step.
    const auto uarch = makeX86Skylake();
    WorkloadProfile w;
    w.name = "ramp-test";
    PhaseParams lo, hi;
    lo.instPerSlice = 5.0e6;
    lo.burstiness = 0.0;
    lo.fastBurstiness = 0.0;
    hi = lo;
    hi.instPerSlice = 25.0e6;
    w.phases = {{lo, 20}, {hi, 20}};

    GeneratorConfig cfg;
    cfg.rampSlices = 8.0;
    cfg.phaseJitter = 0.0;
    GroundTruthGenerator gen(uarch, w, cfg);
    const auto truth = gen.generate(32, 3);
    const EventId inst = uarch.idForRole(Role::Instructions);

    // Slices 20..27 ramp from lo to hi monotonically.
    double prev = truth.sliceTotal(19, inst);
    for (std::size_t t = 20; t < 28; ++t) {
        const double cur = truth.sliceTotal(t, inst);
        EXPECT_GT(cur, prev * 0.999) << "slice " << t;
        prev = cur;
    }
    EXPECT_NEAR(truth.sliceTotal(18, inst), 5.0e6, 5e5);
    EXPECT_NEAR(truth.sliceTotal(30, inst), 25.0e6, 2e6);
}

TEST(GroundTruth, BurstinessControlsVariability)
{
    const auto uarch = makeX86Skylake();
    WorkloadProfile calm, wild;
    PhaseParams p;
    p.burstiness = 0.02;
    p.fastBurstiness = 0.02;
    calm = {"calm", {{p, 30}}, true};
    p.burstiness = 0.5;
    p.fastBurstiness = 0.8;
    wild = {"wild", {{p, 30}}, true};

    GroundTruthGenerator g1(uarch, calm), g2(uarch, wild);
    const auto t1 = g1.generate(30, 8);
    const auto t2 = g2.generate(30, 8);
    const EventId inst = uarch.idForRole(Role::Instructions);

    auto rel_change = [&](const TruthTrace &t) {
        double s = 0.0;
        for (std::size_t i = 1; i < t.numSlices(); ++i)
            s += std::abs(t.sliceTotal(i, inst) -
                          t.sliceTotal(i - 1, inst)) /
                 t.sliceTotal(i - 1, inst);
        return s / static_cast<double>(t.numSlices() - 1);
    };
    EXPECT_GT(rel_change(t2), 4.0 * rel_change(t1));
}

} // namespace
} // namespace sim
} // namespace bperf
