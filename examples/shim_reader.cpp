/**
 * @file
 * The paper's consumer: a separate process that attaches to the
 * monitoring daemon's shared-memory posterior snapshot table and
 * polls the latest corrected-counter posteriors — no subscription,
 * no RPC, just wait-free seqlock reads.
 *
 * Pair it with the daemon exporting a segment:
 *
 *   ./perf_daemon capi 4 --shm=/bperf-demo --linger-ms=3000 &
 *   ./shim_reader /bperf-demo
 *
 * Usage: shim_reader <shm-name> [--attach-timeout-ms=N]
 *                    [--duration-ms=N] [--interval-ms=N]
 *                    [--min-reads=N] [--max-writer-idle-ms=N]
 *
 * The reader retries attachment until the segment appears (up to
 * --attach-timeout-ms, default 5000) — only NoSegment/NotReady are
 * retried; a typed deployment error (bad magic, version mismatch,
 * corrupt geometry, truncated segment) is reported and fatal
 * immediately.  It then polls every --interval-ms (default 100) for
 * --duration-ms (default 2000), printing one line per live session
 * with its latest window, a few posteriors, and the measured
 * staleness of the read.  With --max-writer-idle-ms=N it also
 * watches the writer's heartbeat and stops polling early — cleanly —
 * once the daemon has been silent that long (the dead-daemon case
 * the CI chaos smoke SIGKILLs into existence).  The final line
 * reports the reader's health stats (ok/torn/writer-dead/corrupt/
 * quarantined).  Exits 0 once it has observed at least --min-reads
 * (default 1) consistent snapshots, non-zero otherwise — which is
 * what the CI smoke checks.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "example_args.h"
#include "shim/snapshot_reader.h"

using namespace bperf;
using examples::parseCount;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <shm-name> [--attach-timeout-ms=N]\n"
                 "          [--duration-ms=N] [--interval-ms=N]\n"
                 "          [--min-reads=N] [--max-writer-idle-ms=N]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string shm_name;
    std::size_t attach_timeout_ms = 5000;
    std::size_t duration_ms = 2000;
    std::size_t interval_ms = 100;
    std::size_t min_reads = 1;
    std::size_t max_writer_idle_ms = 0; // 0 = no heartbeat watch

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::size_t nval = 0;
        if (arg.rfind("--attach-timeout-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 20, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            attach_timeout_ms = nval;
        } else if (arg.rfind("--duration-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 14, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            duration_ms = nval;
        } else if (arg.rfind("--interval-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 14, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            interval_ms = nval;
        } else if (arg.rfind("--min-reads=", 0) == 0) {
            if (!parseCount(arg.c_str() + 12, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            min_reads = nval;
        } else if (arg.rfind("--max-writer-idle-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 21, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            max_writer_idle_ms = nval;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         argv[i]);
            usage(argv[0]);
            return 2;
        } else if (shm_name.empty()) {
            shm_name = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (shm_name.empty()) {
        usage(argv[0]);
        return 2;
    }

    // 1. Attach: the daemon may not have created the segment yet, so
    // NoSegment/NotReady are retried until the deadline.  Everything
    // else is a deployment error retrying cannot fix — report the
    // typed status and stop.
    std::optional<shim::SnapshotReader> reader;
    const auto attach_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(attach_timeout_ms);
    for (;;) {
        shim::AttachResult attach =
            shim::SnapshotReader::attach(shm_name);
        if (attach) {
            reader = std::move(attach.reader);
            break;
        }
        if (!attach.retryable()) {
            std::fprintf(stderr,
                         "%s: cannot attach to \"%s\": %s\n", argv[0],
                         shm_name.c_str(),
                         shim::attachStatusName(attach.status));
            return 1;
        }
        if (std::chrono::steady_clock::now() >= attach_deadline) {
            std::fprintf(stderr,
                         "%s: no snapshot segment \"%s\" after %zu ms "
                         "(last status: %s)\n",
                         argv[0], shm_name.c_str(), attach_timeout_ms,
                         shim::attachStatusName(attach.status));
            return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::printf("attached to %s: %zu slots x %zu events, %llu publishes "
                "so far\n",
                shm_name.c_str(), reader->slots(), reader->maxEvents(),
                static_cast<unsigned long long>(reader->publishes()));

    // 2. Poll: every interval, list live sessions and read each one.
    std::size_t ok_reads = 0;
    std::uint64_t max_age_ns = 0;
    bool writer_went_silent = false;
    const auto poll_deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(duration_ms);
    do {
        shim::ScanHealth health;
        for (std::uint64_t session : reader->sessions(&health)) {
            shim::PosteriorSnapshot snap;
            const shim::ReadStatus status = reader->read(session, snap);
            if (status != shim::ReadStatus::Ok)
                continue; // closed/degraded between listing and read
            ++ok_reads;
            if (snap.ageNanos > max_age_ns)
                max_age_ns = snap.ageNanos;
            std::printf("session %llu window %llu (end slice %zu, "
                        "modeled %.2f ms, age %.1f us):",
                        static_cast<unsigned long long>(snap.sessionId),
                        static_cast<unsigned long long>(snap.windowIndex),
                        snap.endSlice,
                        1e3 * snap.execution.modeledSeconds,
                        1e-3 * static_cast<double>(snap.ageNanos));
            const std::size_t shown =
                snap.counters.size() < 3 ? snap.counters.size() : 3;
            for (std::size_t i = 0; i < shown; ++i) {
                std::printf(" ev%u=%.0f+/-%.0f",
                            snap.counters[i].event,
                            snap.counters[i].posterior.mean,
                            snap.counters[i].posterior.stddev);
            }
            std::printf("%s\n",
                        snap.counters.size() > shown ? " ..." : "");
        }
        if (health.degraded() != 0)
            std::printf("scan: %zu degraded slots (torn %zu, "
                        "writer-dead %zu, corrupt %zu)\n",
                        health.degraded(), health.torn,
                        health.writerDead, health.corrupt);
        if (max_writer_idle_ms != 0 &&
            reader->writerIdleNanos() >
                static_cast<std::uint64_t>(max_writer_idle_ms) *
                    1000000ull) {
            std::printf("writer silent for %.1f ms (> %zu ms): "
                        "stopping\n",
                        1e-6 * static_cast<double>(
                                   reader->writerIdleNanos()),
                        max_writer_idle_ms);
            writer_went_silent = true;
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    } while (std::chrono::steady_clock::now() < poll_deadline);

    const shim::ReaderStats stats = reader->stats();
    std::printf("%zu consistent reads, max staleness %.1f us, "
                "%llu publishes total%s\n",
                ok_reads, 1e-3 * static_cast<double>(max_age_ns),
                static_cast<unsigned long long>(reader->publishes()),
                writer_went_silent ? " (writer went silent)" : "");
    std::printf("reader stats: ok=%llu not-found=%llu torn=%llu "
                "writer-dead=%llu corrupt=%llu quarantine-skips=%llu "
                "quarantined-slots=%zu\n",
                static_cast<unsigned long long>(stats.okReads),
                static_cast<unsigned long long>(stats.notFoundReads),
                static_cast<unsigned long long>(stats.tornReads),
                static_cast<unsigned long long>(stats.deadReads),
                static_cast<unsigned long long>(stats.corruptReads),
                static_cast<unsigned long long>(stats.quarantineSkips),
                stats.quarantinedSlots);
    if (ok_reads < min_reads) {
        std::fprintf(stderr, "%s: only %zu of the required %zu reads\n",
                     argv[0], ok_reads, min_reads);
        return 1;
    }
    return 0;
}
