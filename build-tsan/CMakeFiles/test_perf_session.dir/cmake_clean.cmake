file(REMOVE_RECURSE
  "CMakeFiles/test_perf_session.dir/tests/test_perf_session.cpp.o"
  "CMakeFiles/test_perf_session.dir/tests/test_perf_session.cpp.o.d"
  "test_perf_session"
  "test_perf_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
