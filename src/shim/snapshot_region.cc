#include "shim/snapshot_region.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <new>

#include "common/logging.h"

namespace bperf {
namespace shim {

namespace {

/** Identity of a created shm inode (guards the destructor's unlink
 * against removing a successor daemon's segment of the same name). */
struct SegmentIdentity
{
    dev_t dev = 0;
    ino_t ino = 0;
    bool valid = false;
};

/** mmap a zero-filled segment: anonymous, or named POSIX shm. */
std::byte *
mapSegment(const std::string &shm_name, std::size_t bytes,
           SegmentIdentity *identity)
{
    if (shm_name.empty()) {
        void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        bp_assert(mem != MAP_FAILED,
                  "snapshot region: anonymous mmap of " << bytes
                                                        << " bytes failed");
        return static_cast<std::byte *>(mem);
    }
    // O_EXCL: never adopt an existing segment — a leftover from a
    // crashed daemon (aborts skip the destructor's shm_unlink) or a
    // live daemon using the same name.  Adopting one would make two
    // processes concurrent writers of the same slots, which the
    // single-writer seqlock protocol cannot survive, and the init
    // below would non-atomically stomp words an attached reader is
    // loading.  Instead, unlink the stale name and create a fresh
    // segment: the name now resolves to this daemon (last writer
    // wins), while readers still mapped to the old inode keep their
    // old, frozen table.  (If the old writer died *mid-publish*, the
    // interrupted slot's sequence stays odd forever and reads of it
    // report Torn — detected, never served as data; the other slots
    // stay readable.)
    // Bounded unlink-and-retry: a concurrent creator can slip its
    // own segment in between our unlink and create, so one retry is
    // not enough for the advertised last-writer-wins semantics.
    int fd = -1;
    for (int attempt = 0; attempt < 16 && fd < 0; ++attempt) {
        fd = ::shm_open(shm_name.c_str(), O_CREAT | O_EXCL | O_RDWR,
                        0600);
        if (fd < 0 && errno == EEXIST)
            ::shm_unlink(shm_name.c_str());
        else if (fd < 0)
            break; // not a name collision; report it
    }
    bp_assert(fd >= 0, "snapshot region: shm_open(\"" << shm_name
                                                      << "\") failed");
    const int trunc = ::ftruncate(fd, static_cast<off_t>(bytes));
    bp_assert(trunc == 0, "snapshot region: ftruncate(\""
                              << shm_name << "\", " << bytes
                              << ") failed");
    struct stat st;
    if (::fstat(fd, &st) == 0) {
        identity->dev = st.st_dev;
        identity->ino = st.st_ino;
        identity->valid = true;
    }
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd, 0);
    ::close(fd);
    bp_assert(mem != MAP_FAILED, "snapshot region: mmap of \""
                                     << shm_name << "\" failed");
    return static_cast<std::byte *>(mem);
}

} // namespace

SnapshotRegion::SnapshotRegion(SnapshotRegionConfig config,
                               const std::string &shm_name)
    : config_(config), shmName_(shm_name),
      layout_(RegionLayout::compute(config.slots, config.maxEvents))
{
    bp_assert(config_.slots > 0, "snapshot region needs >= 1 slot");
    bp_assert(config_.maxEvents > 0,
              "snapshot region needs >= 1 event per slot");
    SegmentIdentity identity;
    base_ = mapSegment(shmName_, layout_.totalBytes, &identity);
    shmDev_ = static_cast<std::uint64_t>(identity.dev);
    shmIno_ = static_cast<std::uint64_t>(identity.ino);
    shmIdentityValid_ = identity.valid;

    // The segment is all 64-bit words; formally begin each one's
    // lifetime as an atomic (zero-initialised — mmap pages are
    // zero-filled, and Word{0} stores nothing readers could tear on).
    const std::size_t words = layout_.totalBytes / sizeof(Word);
    for (std::size_t i = 0; i < words; ++i)
        new (base_ + i * sizeof(Word)) Word{0};

    auto *header = reinterpret_cast<RegionHeader *>(base_);
    header->layoutVersion.store(kSnapshotLayoutVersion,
                                std::memory_order_relaxed);
    header->slotCount.store(config_.slots, std::memory_order_relaxed);
    header->maxEvents.store(config_.maxEvents, std::memory_order_relaxed);
    header->slotStride.store(layout_.slotStride,
                             std::memory_order_relaxed);
    header->publishes.store(0, std::memory_order_relaxed);
    header->heartbeatNanos.store(steadyNowNanos(),
                                 std::memory_order_relaxed);
    // Geometry redundancy: both copies carry the same checksum, so an
    // attacher can validate each independently and use whichever
    // survived (a flipped word invalidates exactly one copy).
    const std::uint64_t geom_sum = geometryChecksum(
        kSnapshotLayoutVersion, config_.slots, config_.maxEvents,
        layout_.slotStride);
    header->geometryChecksum.store(geom_sum, std::memory_order_relaxed);
    header->layoutVersionDup.store(kSnapshotLayoutVersion,
                                   std::memory_order_relaxed);
    header->slotCountDup.store(config_.slots, std::memory_order_relaxed);
    header->maxEventsDup.store(config_.maxEvents,
                               std::memory_order_relaxed);
    header->slotStrideDup.store(layout_.slotStride,
                                std::memory_order_relaxed);
    header->geometryChecksumDup.store(geom_sum,
                                      std::memory_order_relaxed);
    // Magic last, with release: an attacher that sees it sees the
    // whole geometry.
    header->magic.store(kSnapshotMagic, std::memory_order_release);
}

SnapshotRegion::~SnapshotRegion()
{
    if (base_ != nullptr)
        ::munmap(base_, layout_.totalBytes);
    if (shmName_.empty())
        return;
    // Only unlink the name if it still resolves to the inode we
    // created: a successor daemon may have replaced the segment
    // (last writer wins), and its live table must survive our exit.
    bool ours = true;
    if (shmIdentityValid_) {
        const int fd = ::shm_open(shmName_.c_str(), O_RDONLY, 0);
        if (fd < 0)
            return; // already gone
        struct stat st;
        ours = ::fstat(fd, &st) == 0 &&
               static_cast<std::uint64_t>(st.st_dev) == shmDev_ &&
               static_cast<std::uint64_t>(st.st_ino) == shmIno_;
        ::close(fd);
    }
    if (ours)
        ::shm_unlink(shmName_.c_str());
}

std::uint64_t
SnapshotRegion::publishes() const
{
    return reinterpret_cast<const RegionHeader *>(base_)->publishes.load(
        std::memory_order_relaxed);
}

void
SnapshotRegion::heartbeat(std::uint64_t now_nanos)
{
    reinterpret_cast<RegionHeader *>(base_)->heartbeatNanos.store(
        now_nanos, std::memory_order_relaxed);
}

void
SnapshotRegion::setFaultInjection(const WriterFaultInjection &faults)
{
    faults_ = faults;
    faults_.armed = faults.dieAtPublish != 0 ||
                    faults.skipFinalEvenStoreAtPublish != 0 ||
                    faults.flipAtPublish != 0;
}

void
SnapshotRegion::write(std::size_t slot, std::uint64_t session_id,
                      std::uint64_t window_index, std::size_t end_slice,
                      const core::WindowExecution &execution,
                      const std::vector<sim::EventId> &events,
                      const std::vector<core::PosteriorPoint> &posterior,
                      std::uint64_t publish_nanos)
{
    bp_assert(slot < config_.slots, "snapshot write to slot "
                                        << slot << " of "
                                        << config_.slots);
    bp_assert(events.size() == posterior.size(),
              "snapshot write: " << events.size() << " events vs "
                                 << posterior.size() << " posteriors");
    SlotHeader *s = slotAt(base_, layout_, slot);
    const std::size_t n = std::min(events.size(), config_.maxEvents);
    const std::uint64_t publish_no =
        writeCalls_.fetch_add(1, std::memory_order_relaxed) + 1;

    // Seqlock write: odd sequence -> payload + checksum -> even
    // sequence.  The release fence keeps the payload stores after the
    // odd store; the final release store keeps them before the even
    // store.  The checksum is folded over the exact word values
    // stored, inside the critical section, so any bit that flips
    // after the even store no longer matches it.
    //
    // The in-flight marker must be odd even when the previous publish
    // was abandoned mid-flight and left the sequence odd (a fault-
    // injected writer, or a future writer resuming a slot): blindly
    // storing s0 + 1 there would invert the parity protocol and
    // publish this window under an odd "closing" sequence.
    const std::uint64_t s0 = s->seq.load(std::memory_order_relaxed);
    const std::uint64_t s_open = s0 + 1 + (s0 & 1);
    s->seq.store(s_open, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);

    const std::uint64_t fixed[kSlotFixedPayloadWords] = {
        1, // active
        session_id,
        window_index,
        static_cast<std::uint64_t>(end_slice),
        static_cast<std::uint64_t>(n),
        publish_nanos,
        static_cast<std::uint64_t>(execution.engineId),
        doubleBits(execution.queueWaitSeconds),
        doubleBits(execution.serviceSeconds),
        doubleBits(execution.transferSeconds),
        doubleBits(execution.modeledSeconds),
    };
    s->active.store(fixed[0], std::memory_order_relaxed);
    s->sessionId.store(fixed[1], std::memory_order_relaxed);
    s->windowIndex.store(fixed[2], std::memory_order_relaxed);
    s->endSlice.store(fixed[3], std::memory_order_relaxed);
    s->eventCount.store(fixed[4], std::memory_order_relaxed);
    s->publishNanos.store(fixed[5], std::memory_order_relaxed);
    s->engineId.store(fixed[6], std::memory_order_relaxed);
    s->queueWaitBits.store(fixed[7], std::memory_order_relaxed);
    s->serviceBits.store(fixed[8], std::memory_order_relaxed);
    s->transferBits.store(fixed[9], std::memory_order_relaxed);
    s->modeledBits.store(fixed[10], std::memory_order_relaxed);

    std::uint64_t acc = chainChecksum(kChecksumSeed, s_open + 1);
    for (std::size_t i = 0; i < kSlotFixedPayloadWords; ++i)
        acc = chainChecksum(acc, fixed[i]);
    SlotEvent *entries = s->events();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t ev = events[i];
        const std::uint64_t mean = doubleBits(posterior[i].mean);
        const std::uint64_t stddev = doubleBits(posterior[i].stddev);
        entries[i].event.store(ev, std::memory_order_relaxed);
        entries[i].meanBits.store(mean, std::memory_order_relaxed);
        entries[i].stddevBits.store(stddev, std::memory_order_relaxed);
        acc = chainChecksum(acc, ev);
        acc = chainChecksum(acc, mean);
        acc = chainChecksum(acc, stddev);
    }
    s->checksum.store(acc, std::memory_order_relaxed);

    if (faults_.armed) {
        if (faults_.dieAtPublish == publish_no) {
            // The crash window the chaos suite targets: payload and
            // checksum stored, closing even store never issued.
            ::kill(::getpid(), SIGKILL);
        }
        if (faults_.skipFinalEvenStoreAtPublish == publish_no)
            return; // slot left odd, publish uncounted
    }

    s->seq.store(s_open + 1, std::memory_order_release);
    auto *header = reinterpret_cast<RegionHeader *>(base_);
    header->publishes.fetch_add(1, std::memory_order_relaxed);
    header->heartbeatNanos.store(publish_nanos,
                                 std::memory_order_relaxed);

    if (faults_.armed && faults_.flipAtPublish == publish_no) {
        // An SEU between two publishes: flip bit(s) of one slot word
        // after the publish completed.  fetch_xor keeps the injection
        // itself race-free against concurrent readers.
        Word *words = reinterpret_cast<Word *>(s);
        words[faults_.flipWordIndex].fetch_xor(
            faults_.flipMask, std::memory_order_relaxed);
    }
}

void
SnapshotRegion::invalidate(std::size_t slot)
{
    bp_assert(slot < config_.slots, "snapshot invalidate of slot "
                                        << slot << " of "
                                        << config_.slots);
    SlotHeader *s = slotAt(base_, layout_, slot);
    const std::uint64_t s0 = s->seq.load(std::memory_order_relaxed);
    const std::uint64_t s_open = s0 + 1 + (s0 & 1); // odd, see write()
    s->seq.store(s_open, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    // Zero the whole fixed payload (not just active/sessionId) so the
    // checksum covers one well-defined state: an invalidated slot is
    // all-zeros with event count 0.
    s->active.store(0, std::memory_order_relaxed);
    s->sessionId.store(0, std::memory_order_relaxed);
    s->windowIndex.store(0, std::memory_order_relaxed);
    s->endSlice.store(0, std::memory_order_relaxed);
    s->eventCount.store(0, std::memory_order_relaxed);
    s->publishNanos.store(0, std::memory_order_relaxed);
    s->engineId.store(0, std::memory_order_relaxed);
    s->queueWaitBits.store(0, std::memory_order_relaxed);
    s->serviceBits.store(0, std::memory_order_relaxed);
    s->transferBits.store(0, std::memory_order_relaxed);
    s->modeledBits.store(0, std::memory_order_relaxed);
    std::uint64_t acc = chainChecksum(kChecksumSeed, s_open + 1);
    for (std::size_t i = 0; i < kSlotFixedPayloadWords; ++i)
        acc = chainChecksum(acc, 0);
    s->checksum.store(acc, std::memory_order_relaxed);
    s->seq.store(s_open + 1, std::memory_order_release);
}

} // namespace shim
} // namespace bperf
