/**
 * @file
 * Butterfly network-on-chip model (CONNECT-generated in the paper).
 *
 * The BayesPerf accelerator connects its EP engines and MCMC sampler
 * IPs through a 16-port butterfly NoC.  The model provides per-hop
 * latency, serialization delay, and a simple contention estimate, and
 * is used by the accelerator timing simulation.
 */

#ifndef BPERF_ACCEL_NOC_H
#define BPERF_ACCEL_NOC_H

#include <cstddef>
#include <cstdint>

namespace bperf {
namespace accel {

/** NoC configuration. */
struct NocConfig
{
    std::size_t ports = 16;
    /** Cycles per router hop (pipeline depth of a CONNECT router). */
    std::uint64_t cyclesPerHop = 2;
    /** Payload flits per message. */
    std::uint64_t flitsPerMessage = 4;
    /** Cycles to serialize one flit onto a link. */
    std::uint64_t cyclesPerFlit = 1;
};

/**
 * Butterfly NoC latency/bandwidth model.
 */
class ButterflyNoc
{
  public:
    explicit ButterflyNoc(NocConfig config = {});

    const NocConfig &config() const { return config_; }

    /** Number of router stages (log2 of the port count). */
    std::size_t stages() const { return stages_; }

    /**
     * Zero-load latency in cycles of a message from `src` to `dst`.
     * A butterfly traverses all stages regardless of destination;
     * src == dst short-circuits locally.
     */
    std::uint64_t messageLatency(std::size_t src, std::size_t dst) const;

    /**
     * Latency under load: zero-load latency inflated by an M/D/1-ish
     * queueing factor at the given utilization (0 <= u < 1).
     */
    std::uint64_t messageLatencyLoaded(std::size_t src, std::size_t dst,
                                       double utilization) const;

    /** Aggregate bisection bandwidth in flits per cycle. */
    double bisectionFlitsPerCycle() const;

    /** Record traffic for the utilization statistics. */
    void recordMessage();
    std::uint64_t messagesRouted() const { return messages_; }

  private:
    NocConfig config_;
    std::size_t stages_;
    std::uint64_t messages_ = 0;
};

} // namespace accel
} // namespace bperf

#endif // BPERF_ACCEL_NOC_H
