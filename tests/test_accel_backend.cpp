/** @file Tests for the window execution backends: host stamping, the
 * simulated FPGA EP-engine pool, and backend selection through the
 * monitoring service. */

#include <gtest/gtest.h>

#include <vector>

#include "accel/accel_backend.h"
#include "core/backend.h"
#include "core/inference.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "sim/ground_truth.h"
#include "sim/perf_session.h"
#include "workloads/hibench.h"

namespace bperf {
namespace {

const sim::MicroarchDescriptor &
uarch()
{
    static const sim::MicroarchDescriptor u = sim::makeX86Skylake();
    return u;
}

std::vector<sim::EventId>
monitoredSet()
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch().fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch().idForRole(r));
    return events;
}

sim::PerfResult
measuredRun(const std::vector<sim::EventId> &monitored,
            std::size_t num_slices, std::uint64_t seed)
{
    const sim::WorkloadProfile workload = wl::makeHibench("KMeans");
    const sim::GroundTruthGenerator generator(uarch(), workload);
    const sim::TruthTrace truth = generator.generate(num_slices, seed);
    sim::PerfSessionConfig cfg;
    cfg.seed = seed * 3 + 1;
    sim::PerfSession session(uarch(), cfg);
    return session.runRoundRobin(truth, monitored);
}

/** A representative window job (shape of a 13-event k=6 window). */
core::WindowJob
windowJob(std::size_t end_slice)
{
    core::WindowJob job;
    job.sessionKey = 1;
    job.endSlice = end_slice;
    job.windowSlices = 6;
    job.numVariables = 78;
    job.numSites = 60;
    job.numSweeps = 6;
    job.inputBytes = 2048;
    job.hostSeconds = 3e-3;
    return job;
}

TEST(HostBackend, StampsMeasuredTimeWithoutQueueing)
{
    core::HostBackend backend;
    EXPECT_EQ(backend.name(), "host");

    core::WindowJob job = windowJob(5);
    job.hostSeconds = 2.5e-3;
    const core::WindowExecution exec = backend.execute(job);
    EXPECT_DOUBLE_EQ(exec.modeledSeconds, 2.5e-3);
    EXPECT_DOUBLE_EQ(exec.serviceSeconds, 2.5e-3);
    EXPECT_DOUBLE_EQ(exec.queueWaitSeconds, 0.0);
    EXPECT_EQ(exec.engineId, 0u);

    backend.execute(job);
    const core::BackendStats stats = backend.stats();
    EXPECT_EQ(stats.windowsExecuted, 2u);
    EXPECT_DOUBLE_EQ(stats.modeledSeconds.mean(), 2.5e-3);
    EXPECT_DOUBLE_EQ(stats.queueWaitSeconds.max(), 0.0);

    backend.reset();
    EXPECT_EQ(backend.stats().windowsExecuted, 0u);
}

TEST(AccelBackend, ModeledLatencyMonotoneInQueueDepth)
{
    accel::AccelBackendConfig cfg;
    cfg.numEngines = 1;
    accel::AccelBackend backend(cfg);

    // A burst released at the same stream instant: each job waits for
    // every predecessor, so end-to-end latency strictly increases
    // with queue depth while service time stays put.
    double prev_modeled = -1.0;
    double service = 0.0;
    for (int depth = 0; depth < 6; ++depth) {
        const core::WindowExecution exec =
            backend.execute(windowJob(/*end_slice=*/10));
        // The queue-free service estimate matches what execute stamps.
        EXPECT_DOUBLE_EQ(exec.serviceSeconds,
                         backend.serviceSeconds(windowJob(10)));
        EXPECT_GT(exec.modeledSeconds, prev_modeled);
        EXPECT_NEAR(exec.queueWaitSeconds,
                    static_cast<double>(depth) * exec.serviceSeconds,
                    1e-12);
        prev_modeled = exec.modeledSeconds;
        service = exec.serviceSeconds;
    }
    EXPECT_GT(service, 0.0);

    // After a reset the queue is empty again.
    backend.reset();
    EXPECT_DOUBLE_EQ(backend.execute(windowJob(10)).queueWaitSeconds,
                     0.0);
}

TEST(AccelBackend, ModeledLatencyMonotoneInEngineCount)
{
    // The same 12-job burst on growing pools: total modeled latency
    // must not increase with engine count, and must strictly drop
    // going from a saturated 1-engine pool to 4 engines.
    std::vector<double> totals;
    for (std::size_t engines : {1u, 2u, 4u, 8u}) {
        accel::AccelBackendConfig cfg;
        cfg.numEngines = engines;
        accel::AccelBackend backend(cfg);
        double total = 0.0;
        for (int j = 0; j < 12; ++j)
            total += backend.execute(windowJob(10)).modeledSeconds;
        totals.push_back(total);
    }
    for (std::size_t i = 1; i < totals.size(); ++i)
        EXPECT_LE(totals[i], totals[i - 1]) << "engines step " << i;
    EXPECT_LT(totals[2], totals[0]);
}

TEST(AccelBackend, EnginePoolBalancesAndAccounts)
{
    accel::AccelBackendConfig cfg;
    cfg.numEngines = 3;
    accel::AccelBackend backend(cfg);
    for (int j = 0; j < 9; ++j)
        backend.execute(windowJob(10));

    const accel::AccelPoolStats pool = backend.poolStats();
    ASSERT_EQ(pool.engineJobs.size(), 3u);
    for (std::uint64_t jobs : pool.engineJobs)
        EXPECT_EQ(jobs, 3u); // identical jobs spread evenly
    EXPECT_GT(pool.makespanSeconds, 0.0);
    EXPECT_EQ(backend.stats().windowsExecuted, 9u);
}

TEST(AccelBackend, CapiBeatsPcieOnTheReadPath)
{
    accel::AccelBackendConfig cfg;
    cfg.engine.hostInterface = accel::HostInterface::Capi;
    accel::AccelBackend capi(cfg);
    cfg.engine.hostInterface = accel::HostInterface::PcieDma;
    accel::AccelBackend pcie(cfg);
    EXPECT_EQ(capi.name(), "accel-capi");
    EXPECT_EQ(pcie.name(), "accel-pcie");

    // Ingest side: snooping the ring lines is cheaper than a
    // doorbell'd DMA, so both the transfer share and the end-to-end
    // service time favour CAPI.
    const core::WindowExecution capi_exec = capi.execute(windowJob(0));
    const core::WindowExecution pcie_exec = pcie.execute(windowJob(0));
    EXPECT_LT(capi_exec.transferSeconds, pcie_exec.transferSeconds);
    EXPECT_LT(capi_exec.serviceSeconds, pcie_exec.serviceSeconds);

    // Poll side: the monitoring application's posterior read is also
    // cheaper against the coherent interface.
    EXPECT_LT(capi.engineModel().pollLatencyHostCycles(2.6, 3450),
              pcie.engineModel().pollLatencyHostCycles(2.6, 3450));
}

TEST(AccelBackend, PosteriorsIdenticalToHostPath)
{
    // The backend only models timing: an engine run with the accel
    // backend must produce bit-identical posteriors to the plain host
    // run, while stamping modeled executions for every window.
    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 24, 404);

    core::InferenceConfig host_cfg;
    host_cfg.windowSlices = 6;
    const core::InferenceResult host =
        core::InferenceEngine(uarch(), host_cfg).infer(run);

    accel::AccelBackend backend(accel::AccelBackendConfig{});
    core::InferenceConfig accel_cfg = host_cfg;
    accel_cfg.backend = &backend;
    const core::InferenceResult accel =
        core::InferenceEngine(uarch(), accel_cfg).infer(run);

    EXPECT_EQ(host.backendName, "host");
    EXPECT_EQ(accel.backendName, "accel-capi");
    EXPECT_EQ(accel.windowsRun, host.windowsRun);
    ASSERT_EQ(accel.series.size(), host.series.size());
    for (std::size_t i = 0; i < host.series.size(); ++i) {
        ASSERT_EQ(accel.series[i].size(), host.series[i].size());
        for (std::size_t t = 0; t < host.series[i].size(); ++t) {
            EXPECT_EQ(accel.series[i][t].mean, host.series[i][t].mean);
            EXPECT_EQ(accel.series[i][t].stddev,
                      host.series[i][t].stddev);
        }
    }

    ASSERT_EQ(accel.windowExecutions.size(), accel.windowsRun);
    for (const auto &exec : accel.windowExecutions) {
        EXPECT_GT(exec.serviceSeconds, 0.0);
        EXPECT_GE(exec.modeledSeconds, exec.serviceSeconds);
    }
    EXPECT_EQ(backend.stats().windowsExecuted, accel.windowsRun);
}

TEST(AccelBackend, ServiceSelectsAndSharesTheBackend)
{
    // Two daemons over the same record stream, host vs accel backend:
    // identical posteriors, different modeled latency accounting.
    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 24, 808);

    auto runDaemon = [&](service::BackendKind kind) {
        service::MonitorServiceConfig cfg;
        cfg.numWorkers = 2;
        cfg.backend = kind;
        cfg.accel.numEngines = 2;
        cfg.sessionDefaults.streaming.inference.windowSlices = 6;
        service::MonitorService daemon(uarch(), cfg);
        const service::SessionId id = daemon.open(monitored);
        daemon.ingestBatch(id, service::recordStream(run));
        auto report = daemon.close(id);
        EXPECT_TRUE(report.has_value());
        const service::ServiceStats stats = daemon.stats();
        EXPECT_EQ(stats.backend.windowsExecuted,
                  report->stats.windowsRun);
        return std::make_pair(std::move(*report), stats.backendName);
    };

    const auto [host_report, host_name] =
        runDaemon(service::BackendKind::Host);
    const auto [accel_report, accel_name] =
        runDaemon(service::BackendKind::Accel);
    EXPECT_EQ(host_name, "host");
    EXPECT_EQ(accel_name, "accel-capi");

    for (sim::EventId e : monitored) {
        const auto host_mean = host_report.posterior.meanSeries(e);
        const auto accel_mean = accel_report.posterior.meanSeries(e);
        ASSERT_EQ(accel_mean.size(), host_mean.size());
        for (std::size_t t = 0; t < host_mean.size(); ++t)
            EXPECT_EQ(accel_mean[t], host_mean[t]);
    }

    // The session's modeled-latency statistics cover every window.
    EXPECT_EQ(accel_report.stats.modeledWindowSeconds.count(),
              accel_report.stats.windowsRun);
    // On the host path modeled == measured, window for window.
    EXPECT_DOUBLE_EQ(host_report.stats.modeledWindowSeconds.mean(),
                     host_report.stats.windowSeconds.mean());
}

} // namespace
} // namespace bperf
