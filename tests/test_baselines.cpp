/** @file Tests for the Linux, CounterMiner, and WM+Pin baselines. */

#include <gtest/gtest.h>

#include "baselines/counterminer.h"
#include "baselines/linux_scaling.h"
#include "baselines/wmpin.h"
#include "workloads/hibench.h"

namespace bperf {
namespace baselines {
namespace {

using sim::EventId;
using sim::Role;

sim::PerfResult
makeRun(const sim::MicroarchDescriptor &uarch, const sim::TruthTrace &truth,
        const std::vector<EventId> &monitored)
{
    sim::PerfSessionConfig cfg;
    cfg.seed = 9;
    sim::PerfSession session(uarch, cfg);
    return session.runRoundRobin(truth, monitored);
}

struct Fixture
{
    sim::MicroarchDescriptor uarch = sim::makeX86Skylake();
    sim::TruthTrace truth = make();

    sim::TruthTrace
    make()
    {
        sim::GroundTruthGenerator gen(uarch, wl::makeHibench("Scan"));
        return gen.generate(24, 3);
    }
};

TEST(LinuxEstimator, MatchesHoldLastSemantics)
{
    Fixture f;
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const auto run = makeRun(f.uarch, f.truth, {llc});
    LinuxEstimator est;
    EXPECT_EQ(est.series(run, llc),
              run.traceFor(llc).estimateSeries(
                  sim::ScalingPolicy::HoldLastScaled));
}

TEST(CounterMiner, PassesCleanSamplesThrough)
{
    // A steady workload: CM must keep clean fixed-counter reads.
    sim::MicroarchDescriptor uarch = sim::makeX86Skylake();
    sim::WorkloadProfile steady;
    steady.name = "steady";
    sim::PhaseParams p;
    p.burstiness = 0.05;
    p.fastBurstiness = 0.05;
    steady.phases = {{p, 30}};
    sim::GroundTruthGenerator gen(uarch, steady);
    const auto truth = gen.generate(24, 3);

    const EventId cyc = uarch.idForRole(Role::Cycles);
    const auto run = makeRun(uarch, truth, {cyc});
    CounterMinerEstimator cm;
    const auto series = cm.series(run, cyc);
    for (std::size_t t = 0; t < series.size(); ++t) {
        const double raw = run.traceFor(cyc).slices[t].scaled();
        EXPECT_NEAR(series[t], raw, 0.25 * raw);
    }
}

TEST(CounterMiner, DropsSingleOutlier)
{
    // Hand-build a trace with one absurd spike.
    sim::PerfResult run;
    run.monitored = {0};
    run.schedule = {{0}};
    sim::EventTrace trace;
    trace.event = 0;
    trace.slices.resize(10);
    for (std::size_t t = 0; t < 10; ++t) {
        auto &s = trace.slices[t];
        s.observed = true;
        s.timeEnabled = 1.0;
        s.timeRunning = 1.0;
        s.rawCount = 100.0 + static_cast<double>(t % 3);
    }
    trace.slices[6].rawCount = 5000.0; // spike
    run.traces = {trace};

    CounterMinerEstimator cm;
    const auto series = cm.series(run, 0);
    EXPECT_LT(series[6], 200.0); // imputed, not trusted
    EXPECT_NEAR(series[5], 102.0, 5.0);
}

TEST(CounterMiner, RecoversAfterStageChange)
{
    // A persistent level shift must be accepted after a few drops.
    sim::PerfResult run;
    run.monitored = {0};
    run.schedule = {{0}};
    sim::EventTrace trace;
    trace.event = 0;
    trace.slices.resize(20);
    for (std::size_t t = 0; t < 20; ++t) {
        auto &s = trace.slices[t];
        s.observed = true;
        s.timeEnabled = 1.0;
        s.timeRunning = 1.0;
        s.rawCount = t < 10 ? 100.0 + static_cast<double>(t % 2)
                            : 1000.0 + static_cast<double>(t % 2);
    }
    run.traces = {trace};

    CounterMinerEstimator cm;
    const auto series = cm.series(run, 0);
    // By the end of the new stage CM tracks the new level.
    EXPECT_NEAR(series[19], 1000.0, 50.0);
}

TEST(WmPin, OnlyCorrectsInstructions)
{
    Fixture f;
    const EventId inst = f.uarch.idForRole(Role::Instructions);
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const auto run = makeRun(f.uarch, f.truth, {inst, llc});

    WmPinEstimator wm(f.uarch);
    LinuxEstimator linux_est;
    // Non-instruction events pass through untouched.
    EXPECT_EQ(wm.series(run, llc), linux_est.series(run, llc));
    // Instruction counts are reduced by the interrupt overcount.
    const auto wm_inst = wm.series(run, inst);
    const auto lx_inst = linux_est.series(run, inst);
    for (std::size_t t = 0; t < wm_inst.size(); ++t)
        EXPECT_LE(wm_inst[t], lx_inst[t]);
}

TEST(WmPin, ReportsPinOverhead)
{
    Fixture f;
    WmPinEstimator wm(f.uarch);
    EXPECT_GT(wm.overheadFactor(), 100.0);
}

} // namespace
} // namespace baselines
} // namespace bperf
