/**
 * NEON (aarch64) variant of the quadrature moment kernel.  Processes
 * four grid points per iteration as two float64x2 halves so the
 * accumulator-lane layout (lane = i mod 4) and reduction order match
 * the scalar and AVX2 kernels exactly — see the bit-identity contract
 * in quad_kernel_avx2.cc.  Compiles to nothing off aarch64.
 */

#include "core/quad_kernel.h"

#if defined(BPERF_SIMD) && defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

#include "common/logging.h"
#include "core/quad_poly.h"

namespace bperf {
namespace core {

namespace {

using namespace quadpoly;

inline float64x2_t
vPolyLog1p(float64x2_t q)
{
    const float64x2_t one = vdupq_n_f64(1.0);
    const float64x2_t a = vaddq_f64(one, q);
    const uint64x2_t tmp = vsubq_u64(vreinterpretq_u64_f64(a),
                                     vdupq_n_u64(kSqrtHalfBits));
    const float64x2_t e = vcvtq_f64_u64(vshrq_n_u64(tmp, 52));
    const float64x2_t m = vreinterpretq_f64_u64(
        vaddq_u64(vandq_u64(tmp, vdupq_n_u64(kMantissaMask)),
                  vdupq_n_u64(kSqrtHalfBits)));
    const float64x2_t s =
        vdivq_f64(vsubq_f64(m, one), vaddq_f64(m, one));
    const float64x2_t t2 = vmulq_f64(s, s);
    float64x2_t p = vdupq_n_f64(kLogCoeff[kLogDegree - 1]);
    for (std::size_t j = kLogDegree - 1; j-- > 0;)
        p = vfmaq_f64(vdupq_n_f64(kLogCoeff[j]), p, t2);
    const float64x2_t two_s = vaddq_f64(s, s);
    return vfmaq_f64(
        vfmaq_f64(vmulq_f64(two_s, p), e, vdupq_n_f64(kLn2Lo)), e,
        vdupq_n_f64(kLn2Hi));
}

inline float64x2_t
vPolyExp(float64x2_t y)
{
    y = vminq_f64(vmaxq_f64(y, vdupq_n_f64(kExpLoClamp)),
                  vdupq_n_f64(kExpHiClamp));
    const float64x2_t kd =
        vrndnq_f64(vmulq_f64(y, vdupq_n_f64(kLog2E)));
    float64x2_t r = vfmaq_f64(y, kd, vdupq_n_f64(-kLn2Hi));
    r = vfmaq_f64(r, kd, vdupq_n_f64(-kLn2Lo));
    float64x2_t p = vdupq_n_f64(kExpCoeff[kExpDegree - 1]);
    for (std::size_t j = kExpDegree - 1; j-- > 0;)
        p = vfmaq_f64(vdupq_n_f64(kExpCoeff[j]), p, r);
    const int64x2_t k64 = vcvtq_s64_f64(kd); // kd integral: exact
    const float64x2_t scale = vreinterpretq_f64_s64(
        vshlq_n_s64(vaddq_s64(k64, vdupq_n_s64(1023)), 52));
    return vmulq_f64(p, scale);
}

struct LaneBlock
{
    float64x2_t lo, hi; // lanes {0,1} and {2,3}
};

inline LaneBlock
logWeights(const QuadParams &p, float64x2_t idx_lo, float64x2_t idx_hi)
{
    const float64x2_t vstep = vdupq_n_f64(p.step);
    const float64x2_t vlo = vdupq_n_f64(p.lo);
    LaneBlock out;
    float64x2_t idx[2] = {idx_lo, idx_hi};
    float64x2_t *half[2] = {&out.lo, &out.hi};
    for (int h = 0; h < 2; ++h) {
        const float64x2_t x = vfmaq_f64(vlo, vstep, idx[h]);
        const float64x2_t u = vmulq_f64(
            vsubq_f64(x, vdupq_n_f64(p.cavityMean)),
            vdupq_n_f64(p.invSd));
        const float64x2_t g =
            vmulq_f64(vmulq_f64(u, u), vdupq_n_f64(-0.5));
        const float64x2_t t = vmulq_f64(
            vsubq_f64(x, vdupq_n_f64(p.loc)), vdupq_n_f64(p.invScale));
        const float64x2_t q =
            vmulq_f64(vmulq_f64(t, t), vdupq_n_f64(p.invNu));
        *half[h] = vfmaq_f64(g, vdupq_n_f64(-p.halfNup1), vPolyLog1p(q));
    }
    return out;
}

} // namespace

void
quadMomentsNeon(const QuadParams &p, double &mean_out, double &var_out)
{
    bp_assert(p.points >= 2 && p.points <= kMaxQuadPoints,
              "quadrature grid size out of range");
    double *logw = quadLogWeightBuffer();
    const std::size_t n4 = p.points & ~static_cast<std::size_t>(3);

    // Pass 1: log-weights + running max.
    float64x2_t idx_lo = {0.0, 1.0};
    float64x2_t idx_hi = {2.0, 3.0};
    const float64x2_t four = vdupq_n_f64(4.0);
    float64x2_t vmax_lo = vdupq_n_f64(-1e300);
    float64x2_t vmax_hi = vdupq_n_f64(-1e300);
    for (std::size_t i = 0; i < n4; i += 4) {
        const LaneBlock lw = logWeights(p, idx_lo, idx_hi);
        vst1q_f64(logw + i, lw.lo);
        vst1q_f64(logw + i + 2, lw.hi);
        vmax_lo = vmaxq_f64(vmax_lo, lw.lo);
        vmax_hi = vmaxq_f64(vmax_hi, lw.hi);
        idx_lo = vaddq_f64(idx_lo, four);
        idx_hi = vaddq_f64(idx_hi, four);
    }
    double max_logw =
        std::max(vmaxvq_f64(vmax_lo), vmaxvq_f64(vmax_hi));
    for (std::size_t i = n4; i < p.points; ++i) {
        const double x =
            std::fma(p.step, static_cast<double>(i), p.lo);
        const double u = (x - p.cavityMean) * p.invSd;
        const double g = (u * u) * -0.5;
        const double t = (x - p.loc) * p.invScale;
        const double q = (t * t) * p.invNu;
        const double lw = std::fma(-p.halfNup1, polyLog1p(q), g);
        logw[i] = lw;
        max_logw = std::max(max_logw, lw);
    }

    // Pass 2: shifted weights into four accumulator lanes, moments
    // centered on the cavity mean (see quad_kernel.cc).
    const float64x2_t vstep = vdupq_n_f64(p.step);
    const float64x2_t vlo = vdupq_n_f64(p.lo);
    const float64x2_t vcm = vdupq_n_f64(p.cavityMean);
    const float64x2_t vshift = vdupq_n_f64(max_logw);
    float64x2_t vz_lo = vdupq_n_f64(0.0), vz_hi = vdupq_n_f64(0.0);
    float64x2_t vm1_lo = vdupq_n_f64(0.0), vm1_hi = vdupq_n_f64(0.0);
    float64x2_t vm2_lo = vdupq_n_f64(0.0), vm2_hi = vdupq_n_f64(0.0);
    idx_lo = (float64x2_t){0.0, 1.0};
    idx_hi = (float64x2_t){2.0, 3.0};
    for (std::size_t i = 0; i < n4; i += 4) {
        const float64x2_t x_lo = vfmaq_f64(vlo, vstep, idx_lo);
        const float64x2_t x_hi = vfmaq_f64(vlo, vstep, idx_hi);
        const float64x2_t dx_lo = vsubq_f64(x_lo, vcm);
        const float64x2_t dx_hi = vsubq_f64(x_hi, vcm);
        const float64x2_t w_lo =
            vPolyExp(vsubq_f64(vld1q_f64(logw + i), vshift));
        const float64x2_t w_hi =
            vPolyExp(vsubq_f64(vld1q_f64(logw + i + 2), vshift));
        vz_lo = vaddq_f64(vz_lo, w_lo);
        vz_hi = vaddq_f64(vz_hi, w_hi);
        vm1_lo = vfmaq_f64(vm1_lo, w_lo, dx_lo);
        vm1_hi = vfmaq_f64(vm1_hi, w_hi, dx_hi);
        vm2_lo = vfmaq_f64(vm2_lo, vmulq_f64(w_lo, dx_lo), dx_lo);
        vm2_hi = vfmaq_f64(vm2_hi, vmulq_f64(w_hi, dx_hi), dx_hi);
        idx_lo = vaddq_f64(idx_lo, four);
        idx_hi = vaddq_f64(idx_hi, four);
    }
    double z[4], m1[4], m2[4];
    vst1q_f64(z, vz_lo);
    vst1q_f64(z + 2, vz_hi);
    vst1q_f64(m1, vm1_lo);
    vst1q_f64(m1 + 2, vm1_hi);
    vst1q_f64(m2, vm2_lo);
    vst1q_f64(m2 + 2, vm2_hi);
    for (std::size_t i = n4; i < p.points; ++i) {
        const std::size_t lane = i & 3;
        const double x =
            std::fma(p.step, static_cast<double>(i), p.lo);
        const double dx = x - p.cavityMean;
        const double w = polyExp(logw[i] - max_logw);
        z[lane] += w;
        m1[lane] = std::fma(w, dx, m1[lane]);
        const double wdx = w * dx;
        m2[lane] = std::fma(wdx, dx, m2[lane]);
    }
    const double zs = (z[0] + z[1]) + (z[2] + z[3]);
    const double m1s = (m1[0] + m1[1]) + (m1[2] + m1[3]);
    const double m2s = (m2[0] + m2[1]) + (m2[2] + m2[3]);

    bp_assert(zs > 0.0, "tilted density vanished on the grid");
    const double mean_off = m1s / zs;
    mean_out = p.cavityMean + mean_off;
    var_out = std::max(m2s / zs - mean_off * mean_off, 1e-30);
}

} // namespace core
} // namespace bperf

#endif // BPERF_SIMD && __aarch64__
