/**
 * @file
 * End-to-end integration sweep: the full pipeline (workload ->
 * ground truth -> overlap schedule -> sampling -> EP inference ->
 * error metric) across architectures and workload classes, asserting
 * the paper's qualitative results hold everywhere.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/error_metrics.h"
#include "baselines/counterminer.h"
#include "baselines/linux_scaling.h"
#include "core/bayesperf.h"
#include "core/derived.h"
#include "workloads/hibench.h"

namespace bperf {
namespace {

struct Case
{
    const char *arch;
    const char *workload;
};

class PipelineTest : public ::testing::TestWithParam<Case>
{
  protected:
    sim::MicroarchDescriptor
    uarch() const
    {
        return std::string(GetParam().arch) == "x86"
                   ? sim::makeX86Skylake()
                   : sim::makePower9();
    }
};

TEST_P(PipelineTest, BayesPerfBeatsLinuxOnDerivedMetrics)
{
    const auto u = uarch();
    const auto workload = wl::makeHibench(GetParam().workload);
    const sim::GroundTruthGenerator gen(u, workload);
    const auto truth = gen.generate(48, 4242);

    // Monitor the events behind the standard derived metrics plus
    // their invariant neighbours.
    std::vector<sim::EventId> events;
    for (const auto &def : u.events())
        if (!def.fixed)
            events.push_back(def.id);

    core::BayesPerfConfig cfg;
    cfg.perf.seed = 11;
    core::BayesPerfSession session(u, cfg);
    session.open(events);
    auto run = session.measure(truth);

    // Schedule sanity.
    sim::Pmu pmu(u);
    for (const auto &config : run.schedule.configs)
        ASSERT_TRUE(pmu.validate(config));

    sim::PerfSessionConfig poll_cfg;
    poll_cfg.seed = 17;
    sim::PerfSession poll(u, poll_cfg);
    const auto polled = poll.runPolling(truth, session.monitored());
    auto ref = [&](sim::EventId e) {
        return polled.traceFor(e).estimateSeries();
    };

    baselines::LinuxEstimator linux_est;
    auto lin = [&](sim::EventId e) { return linux_est.series(run.raw, e); };
    auto bp = [&](sim::EventId e) { return run.estimate(e); };

    const auto &metrics = core::standardDerivedMetrics();
    const double err_linux =
        ana::derivedErrorPercent(u, metrics, 48, lin, ref);
    const double err_bp =
        ana::derivedErrorPercent(u, metrics, 48, bp, ref);

    EXPECT_LT(err_bp, err_linux)
        << GetParam().arch << "/" << GetParam().workload;
    // And the improvement should be substantial, not marginal.
    EXPECT_LT(err_bp, 0.85 * err_linux)
        << GetParam().arch << "/" << GetParam().workload;
}

TEST_P(PipelineTest, PosteriorUncertaintyIsInformative)
{
    const auto u = uarch();
    const auto workload = wl::makeHibench(GetParam().workload);
    const sim::GroundTruthGenerator gen(u, workload);
    const auto truth = gen.generate(32, 77);

    core::BayesPerfSession session(u, {});
    session.open({u.idForRole(sim::Role::LlcMiss),
                  u.idForRole(sim::Role::DramBytes),
                  u.idForRole(sim::Role::DmaBytes),
                  u.idForRole(sim::Role::L2Miss),
                  u.idForRole(sim::Role::StallMem)});
    auto run = session.measure(truth);

    // Truth should fall within 4 posterior stddevs most of the time
    // (EP mean-field intervals are known to be somewhat narrow).
    const sim::EventId llc = u.idForRole(sim::Role::LlcMiss);
    const auto mean = run.estimate(llc);
    const auto sd = run.uncertainty(llc);
    std::size_t covered = 0;
    for (std::size_t t = 0; t < mean.size(); ++t)
        if (std::abs(mean[t] - truth.sliceTotal(t, llc)) <= 4.0 * sd[t])
            ++covered;
    EXPECT_GE(covered, mean.size() * 6 / 10)
        << GetParam().arch << "/" << GetParam().workload;
}

INSTANTIATE_TEST_SUITE_P(
    ArchWorkloadSweep, PipelineTest,
    ::testing::Values(Case{"x86", "KMeans"}, Case{"x86", "TeraSort"},
                      Case{"x86", "Scan"}, Case{"x86", "Identity"},
                      Case{"ppc64", "KMeans"}, Case{"ppc64", "PageRank"},
                      Case{"ppc64", "DFSIOE"}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(info.param.arch) + "_" + info.param.workload;
    });

} // namespace
} // namespace bperf
