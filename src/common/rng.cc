#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace bperf {

namespace {

/** splitmix64 step, used only for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t s = seed_value;
    for (auto &word : state_)
        word = splitmix64(s);
    hasCachedNormal_ = false;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa; guaranteed in [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    bp_assert(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
        x = (*this)();
    } while (x >= limit);
    return x % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::studentT(double nu)
{
    bp_assert(nu > 0.0, "studentT requires nu > 0");
    // t = Z / sqrt(ChiSq(nu) / nu); ChiSq(nu) = Gamma(nu/2, 2).
    const double z = normal();
    const double chi2 = gamma(nu / 2.0, 2.0);
    return z / std::sqrt(chi2 / nu);
}

double
Rng::gamma(double shape, double scale)
{
    bp_assert(shape > 0.0 && scale > 0.0, "gamma requires positive params");
    if (shape < 1.0) {
        // Boost to shape + 1 then apply the standard correction.
        const double u = uniform();
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return scale * d * v;
        if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return scale * d * v;
    }
}

double
Rng::exponential(double rate)
{
    bp_assert(rate > 0.0, "exponential requires rate > 0");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::uint64_t
Rng::poisson(double mean)
{
    bp_assert(mean >= 0.0, "poisson requires mean >= 0");
    if (mean == 0.0)
        return 0;
    if (mean > 64.0) {
        // Normal approximation with continuity correction.
        const double x = normal(mean, std::sqrt(mean));
        return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
        ++k;
        p *= uniform();
    } while (p > limit);
    return k - 1;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::binomial(std::uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    const double np = static_cast<double>(n) * p;
    if (np > 64.0 && static_cast<double>(n) * (1.0 - p) > 64.0) {
        const double x = normal(np, std::sqrt(np * (1.0 - p)));
        if (x <= 0.0)
            return 0;
        const auto k = static_cast<std::uint64_t>(x + 0.5);
        return k > n ? n : k;
    }
    std::uint64_t k = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        k += bernoulli(p) ? 1 : 0;
    return k;
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    bp_assert(!weights.empty(), "categorical requires weights");
    double total = 0.0;
    for (double w : weights) {
        bp_assert(w >= 0.0, "categorical weights must be non-negative");
        total += w;
    }
    bp_assert(total > 0.0, "categorical weights must not all be zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace bperf
