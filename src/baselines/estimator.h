/**
 * @file
 * Common interface for counter-value estimators.
 *
 * An estimator turns a measurement run (PerfResult) into a per-slice
 * estimate series for each monitored event.  Implementations: Linux
 * time-scaling, CounterMiner, WM+Pin, and the BayesPerf adapter.
 */

#ifndef BPERF_BASELINES_ESTIMATOR_H
#define BPERF_BASELINES_ESTIMATOR_H

#include <string>
#include <vector>

#include "sim/perf_session.h"

namespace bperf {
namespace baselines {

/** Abstract per-event series estimator. */
class Estimator
{
  public:
    virtual ~Estimator() = default;

    /** Display name used by benches. */
    virtual std::string name() const = 0;

    /** Per-slice estimates of `event` from a measurement run. */
    virtual std::vector<double> series(const sim::PerfResult &run,
                                       sim::EventId event) const = 0;
};

} // namespace baselines
} // namespace bperf

#endif // BPERF_BASELINES_ESTIMATOR_H
