# Empty dependencies file for test_microarch.
# This may be replaced when dependencies are built.
