/** @file Tests for the Student-t measurement fit and derived metrics. */

#include <gtest/gtest.h>

#include "core/derived.h"
#include "core/measurement.h"

namespace bperf {
namespace core {
namespace {

using sim::Role;

sim::SliceSample
sampleWith(std::vector<double> windows, double duty)
{
    sim::SliceSample s;
    s.observed = true;
    s.timeEnabled = 1.0;
    s.timeRunning = duty;
    s.windows = std::move(windows);
    for (double w : s.windows)
        s.rawCount += w;
    return s;
}

TEST(Measurement, LocationIsScaledCount)
{
    const auto s = sampleWith({10.0, 12.0, 11.0, 9.0}, 0.25);
    const auto m = fitMeasurement(s);
    // Mean window 10.5, extrapolation factor 4 / 0.25 = 16.
    EXPECT_NEAR(m.loc, 10.5 * 16.0, 1e-9);
    EXPECT_NEAR(m.loc, s.scaled(), 1e-9);
}

TEST(Measurement, NuIsWindowsMinusOne)
{
    const auto s = sampleWith({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, 0.5);
    EXPECT_DOUBLE_EQ(fitMeasurement(s).nu, 5.0);
}

TEST(Measurement, ScaleGrowsWithWindowSpread)
{
    const auto tight = fitMeasurement(sampleWith({10, 10, 10, 10}, 0.5));
    const auto loose = fitMeasurement(sampleWith({2, 18, 5, 15}, 0.5));
    EXPECT_GT(loose.scale, 5.0 * tight.scale);
}

TEST(Measurement, AbsoluteFloorApplies)
{
    const auto s = sampleWith({10, 10, 10, 10}, 0.5);
    const auto m = fitMeasurement(s, 0.005, /*floor=*/123.0);
    EXPECT_GE(m.scale, 123.0);
}

TEST(MeasurementDeathTest, RejectsUnobserved)
{
    sim::SliceSample s;
    s.observed = false;
    EXPECT_DEATH((void)fitMeasurement(s), "unobserved");
}

TEST(Derived, StandardSetHasTenMetrics)
{
    EXPECT_EQ(standardDerivedMetrics().size(), 10u);
}

TEST(Derived, RolesUsedAreUnique)
{
    const auto roles = rolesUsed(standardDerivedMetrics());
    std::set<Role> unique(roles.begin(), roles.end());
    EXPECT_EQ(unique.size(), roles.size());
    EXPECT_GE(roles.size(), 10u);
}

TEST(Derived, EvalIpc)
{
    const auto uarch = sim::makeX86Skylake();
    const DerivedMetric &ipc = standardDerivedMetrics()[0];
    EXPECT_EQ(ipc.name, "IPC");
    auto value = [&](sim::EventId e) {
        if (e == uarch.idForRole(Role::Instructions))
            return 20.0e6;
        if (e == uarch.idForRole(Role::Cycles))
            return 25.0e6;
        return 0.0;
    };
    EXPECT_NEAR(evalDerived(ipc, uarch, value), 0.8, 1e-12);
}

TEST(Derived, ZeroDenominatorYieldsZero)
{
    const auto uarch = sim::makeX86Skylake();
    const DerivedMetric &ipc = standardDerivedMetrics()[0];
    auto value = [&](sim::EventId) { return 0.0; };
    EXPECT_DOUBLE_EQ(evalDerived(ipc, uarch, value), 0.0);
}

TEST(Derived, SeriesAppliesPerSlice)
{
    const auto uarch = sim::makeX86Skylake();
    DerivedMetric mpki{"test_mpki",
                       {{Role::BranchMisses, 1.0}},
                       {{Role::Instructions, 1.0}},
                       1000.0};
    auto series = [&](sim::EventId e) {
        if (e == uarch.idForRole(Role::BranchMisses))
            return std::vector<double>{100.0, 200.0};
        return std::vector<double>{1.0e5, 1.0e5};
    };
    const auto v = derivedSeries(mpki, uarch, 2, series);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_NEAR(v[0], 1.0, 1e-12);
    EXPECT_NEAR(v[1], 2.0, 1e-12);
}

TEST(Derived, ScaleMultiplies)
{
    const auto uarch = sim::makeX86Skylake();
    DerivedMetric plain{"sum",
                        {{Role::Loads, 1.0}, {Role::Stores, 1.0}},
                        {},
                        2.5};
    auto value = [&](sim::EventId) { return 4.0; };
    EXPECT_DOUBLE_EQ(evalDerived(plain, uarch, value), 2.5 * 8.0);
}

} // namespace
} // namespace core
} // namespace bperf
