/**
 * @file
 * Example: using the quantified uncertainty.
 *
 * BayesPerf returns full posteriors, not point estimates.  This
 * example monitors DRAM bandwidth on a phase-changing workload and
 * shows how a monitoring agent can (a) report calibrated error bars,
 * and (b) trigger alarms only when the posterior puts high
 * probability on a threshold crossing, avoiding the false alarms a
 * noisy point estimate would cause.
 */

#include <cstdio>

#include "common/stats.h"
#include "core/bayesperf.h"
#include "core/derived.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    const auto uarch = sim::makeX86Skylake();
    const auto workload = wl::makeHibench("DFSIOE");
    const sim::GroundTruthGenerator generator(uarch, workload);
    const std::size_t slices = 96;
    const auto truth = generator.generate(slices, 11);

    core::BayesPerfSession session(uarch);
    session.open({uarch.idForRole(sim::Role::DramBytes),
                  uarch.idForRole(sim::Role::DmaBytes),
                  uarch.idForRole(sim::Role::LlcMiss),
                  uarch.idForRole(sim::Role::StallMem),
                  uarch.idForRole(sim::Role::L2Miss),
                  uarch.idForRole(sim::Role::DramReads),
                  uarch.idForRole(sim::Role::DramWrites),
                  uarch.idForRole(sim::Role::OffcoreReads),
                  uarch.idForRole(sim::Role::OffcoreWrites),
                  uarch.idForRole(sim::Role::PcieReadBytes),
                  uarch.idForRole(sim::Role::PcieWriteBytes)});
    auto run = session.measure(truth);

    const sim::EventId dram = uarch.idForRole(sim::Role::DramBytes);
    const auto mean = run.estimate(dram);
    const auto sd = run.uncertainty(dram);
    const auto truth_series = truth.sliceSeries(dram);
    const auto linux_series = run.raw.traceFor(dram).estimateSeries();

    // Coverage: how often truth falls inside the 95% interval.
    std::size_t covered = 0;
    for (std::size_t t = 0; t < slices; ++t)
        if (std::abs(truth_series[t] - mean[t]) <= 1.96 * sd[t])
            ++covered;
    std::printf("95%% posterior interval covers truth in %zu/%zu slices\n",
                covered, slices);

    // Alarm when DRAM traffic exceeds a threshold with P > 0.9.
    const double threshold = 1.4 * bperf::mean(truth_series);
    std::size_t alarms_bp = 0, alarms_naive = 0;
    std::size_t true_alarms = 0;
    for (std::size_t t = 0; t < slices; ++t) {
        const double p_exceed =
            1.0 - normalCdf(threshold, mean[t], std::max(sd[t], 1.0));
        if (p_exceed > 0.9)
            ++alarms_bp;
        if (linux_series[t] > threshold)
            ++alarms_naive;
        if (truth_series[t] > threshold)
            ++true_alarms;
    }
    
    std::printf("slices truly above 1.4x mean DRAM traffic: %zu\n",
                true_alarms);
    std::printf("alarms raised  - naive Linux point estimate: %zu\n",
                alarms_naive);
    std::printf("alarms raised  - BayesPerf P(exceed) > 0.9:  %zu\n",
                alarms_bp);
    return 0;
}
