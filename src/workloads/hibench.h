/**
 * @file
 * Synthetic HiBench workload suite.
 *
 * The paper evaluates on the 29 workloads of the HiBench suite
 * (microbenchmarks, machine learning, SQL, web search, graph
 * analytics, streaming).  Here each workload is a phase-structured
 * profile for the ground-truth generator: the phase mixes capture
 * what matters for counter-error behaviour — how non-stationary each
 * workload is, how memory- or compute-bound, and how IO-heavy.
 */

#ifndef BPERF_WORKLOADS_HIBENCH_H
#define BPERF_WORKLOADS_HIBENCH_H

#include <string>
#include <vector>

#include "sim/workload_profile.h"

namespace bperf {
namespace wl {

/** Names of the 29 workloads, in the paper's Fig. 6 order. */
const std::vector<std::string> &hibenchNames();

/** Build the named workload; dies on unknown names. */
sim::WorkloadProfile makeHibench(const std::string &name);

/** Build all 29 workloads. */
std::vector<sim::WorkloadProfile> allHibench();

} // namespace wl
} // namespace bperf

#endif // BPERF_WORKLOADS_HIBENCH_H
