/**
 * @file
 * Measurement error model (paper section 4.2).
 *
 * A counter observed during a slice yields N PMI window reads.  The
 * unknown true value, with the Gaussian noise variance marginalized
 * out, follows a scaled/shifted Student-t:
 *     v ~ mu + S / sqrt(N) * Student(nu = N - 1),
 * where mu and S are the sample mean and standard deviation of the
 * window reads extrapolated to the full slice.
 */

#ifndef BPERF_CORE_MEASUREMENT_H
#define BPERF_CORE_MEASUREMENT_H

#include "sim/perf_session.h"

namespace bperf {
namespace core {

/** Student-t likelihood parameters for one observed slice. */
struct MeasurementModel
{
    double loc = 0.0;   // location (full-slice scale)
    double scale = 1.0; // scale of the t distribution
    double nu = 3.0;    // degrees of freedom
};

/**
 * Fit the Student-t model to an observed slice's PMI windows.
 *
 * `extra_scale_rel` inflates the scale by a relative amount of the
 * location, accounting for modeled-but-unsampled noise (interrupt
 * loss, overcounts).  `scale_floor_abs` lower-bounds the scale in
 * absolute terms; callers pass a fraction of the event's current
 * magnitude.  Without the floor, a counting window that happens to
 * land in a quiet region produces sub-windows that agree — a
 * spuriously tight likelihood at a low value — while burst-catching
 * windows disagree and stay loose, which would bias the posterior
 * low.
 */
MeasurementModel fitMeasurement(const sim::SliceSample &sample,
                                double extra_scale_rel = 0.005,
                                double scale_floor_abs = 0.0);

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_MEASUREMENT_H
