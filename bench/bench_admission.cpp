/**
 * @file
 * Latency-aware admission control under tenant overload.
 *
 * Sweeps tenant counts x admission policies against a small (2-engine)
 * accelerator pool and measures what the admitted sessions actually
 * experience.  Tenants arrive staggered over the first half of the
 * run, each attempting two sessions; every admitted session streams
 * its records slice-major on the shared stream clock, so window
 * releases line up with arrival times and the pool's modeled queue is
 * a meaningful feedback signal at every open()/push().
 *
 * Policies:
 *   - "off":     admission disabled — every session piles onto the
 *                pool, queue waits grow without bound as tenants
 *                outnumber engines;
 *   - "quota":   static per-tenant session quota (max 1 of the 2
 *                attempted) — halves the load, still unbounded
 *                beyond the pool's capacity;
 *   - "latency": feedback — opens are shed and records throttled
 *                once the pool's modeled queue crosses a threshold
 *                set from the measured uncontended service time.
 *
 * The acceptance line this bench regenerates: under overload
 * (tenants >> engines) the latency-feedback policy holds the
 * admitted sessions' p99 modeled window latency within ~2x the
 * uncontended service time, while "off" grows without bound.  A
 * bit-identity check also replays one uncontended tenant with
 * admission on vs the plain host path: admitted records are
 * numerically untouched by the controller.
 *
 * Writes BENCH_admission.json.  BP_QUICK=1 shrinks the sweep.
 */

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "sim/ground_truth.h"
#include "telemetry/telemetry.h"
#include "workloads/hibench.h"

using namespace bperf;

namespace {

/** 13 monitored events: 3 fixed + 10 multiplexed roles. */
std::vector<sim::EventId>
monitoredSet(const sim::MicroarchDescriptor &uarch)
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch.fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem,
          sim::Role::StallTotal, sim::Role::DramBytes})
        events.push_back(uarch.idForRole(r));
    return events;
}

constexpr std::size_t kEngines = 2;
constexpr std::size_t kAttemptsPerTenant = 2;
constexpr double kSlicePeriodUs = 100.0;

struct PolicySpec
{
    std::string name;
    /** Applied on top of a base config; thresholds in seconds. */
    std::size_t maxSessionsPerTenant = 0;
    double throttleQueueSeconds = 0.0;
    double shedQueueSeconds = 0.0;
    bool enabled = false;
};

struct RunResult
{
    std::size_t tenants = 0;
    std::size_t sessionsAttempted = 0;
    std::size_t sessionsAdmitted = 0;
    std::uint64_t recordsAdmitted = 0;
    std::uint64_t recordsThrottled = 0;
    std::uint64_t recordsShed = 0;
    std::size_t windows = 0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
    double meanWaitUs = 0.0;
    /** Per-stage split: queue (meanWaitUs), transfer, compute, and
     * the publish fan-out measured by the telemetry registry. */
    double meanTransferUs = 0.0;
    double meanComputeUs = 0.0;
    double publishP50Us = 0.0;
    double publishP99Us = 0.0;

    double sessionShedRate() const
    {
        return sessionsAttempted == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(sessionsAdmitted) /
                               static_cast<double>(sessionsAttempted);
    }
    double recordShedRate() const
    {
        const double offered =
            static_cast<double>(recordsAdmitted + recordsThrottled +
                                recordsShed);
        return offered == 0.0
                   ? 0.0
                   : static_cast<double>(recordsThrottled + recordsShed) /
                         offered;
    }
};

/**
 * One policy x tenant-count run.  Single-threaded driver with a
 * quiesce per slice round: window completions land on the backend
 * before the next round's admission decisions, so the feedback loop
 * (and with it the whole run) is reproducible.
 */
RunResult
runPolicy(const sim::MicroarchDescriptor &uarch,
          const std::vector<sim::PerfResult> &runs, std::size_t tenants,
          std::size_t num_slices, const PolicySpec &policy)
{
    service::MonitorServiceConfig cfg;
    cfg.numWorkers = 4;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;
    cfg.backend = service::BackendKind::Accel;
    cfg.accel.numEngines = kEngines;
    cfg.accel.slicePeriodSeconds = kSlicePeriodUs * 1e-6;
    cfg.admission.enabled = policy.enabled;
    cfg.admission.defaultQuota.maxSessions = policy.maxSessionsPerTenant;
    cfg.admission.throttleQueueSeconds = policy.throttleQueueSeconds;
    cfg.admission.shedQueueSeconds = policy.shedQueueSeconds;
    // Steady-state latency sample, collected through the window
    // subscription surface while the tenants stream.  The close()
    // tail windows are deliberately excluded: when the bench tears
    // every session down at once their truncated flush windows all
    // release at the same instant and queue on each other — a
    // shutdown artifact, not the overload behaviour under test.
    // Declared before the daemon (and flushed before returning) so
    // the dispatcher can never touch them after destruction.
    std::mutex collected_mutex;
    std::vector<core::WindowExecution> collected;

    cfg.subscriberQueueCapacity = 4096;
    // Per-run stage accounting: the registry is process-global, so
    // clear it at each run's start and scrape it at the end.
    telemetry::MetricsRegistry::global().reset();
    service::MonitorService daemon(uarch, cfg);

    const auto monitored = monitoredSet(uarch);
    struct Live
    {
        service::SessionId id;
        std::size_t run; // index into runs
        std::size_t arrivalSlice;
    };
    std::vector<Live> live;

    RunResult out;
    out.tenants = tenants;

    // Tenant t (both its session attempts) arrives at a slice spread
    // over the whole run, so the pool's queue signal has caught up
    // with earlier arrivals by the time later ones knock.
    const auto arrival = [&](std::size_t t) {
        return t * num_slices / std::max<std::size_t>(1, tenants);
    };

    std::size_t next_tenant = 0;
    for (std::size_t s = 0; s < num_slices; ++s) {
        while (next_tenant < tenants && arrival(next_tenant) <= s) {
            const std::string name =
                "tenant-" + std::to_string(next_tenant);
            for (std::size_t a = 0; a < kAttemptsPerTenant; ++a) {
                ++out.sessionsAttempted;
                const service::OpenResult result =
                    daemon.open(name, monitored);
                if (!result.admitted())
                    continue;
                const std::size_t run_index =
                    (next_tenant * kAttemptsPerTenant + a) % runs.size();
                live.push_back(Live{*result.id, run_index, s});
                daemon.subscribe(
                    *result.id,
                    [&collected_mutex,
                     &collected](const service::WindowUpdate &update) {
                        std::lock_guard<std::mutex> lock(collected_mutex);
                        collected.push_back(update.execution);
                    });
            }
            ++next_tenant;
        }
        for (const Live &session : live) {
            // A session that arrived at slice g streams its run's
            // slices g..N-1: releases stay aligned with the shared
            // stream clock.
            if (s < session.arrivalSlice)
                continue;
            daemon.ingestBatch(
                session.id,
                service::sliceRecords(runs[session.run], s));
            // Quiesce per batch, not per round: completed windows
            // land on the backend before the next admission decision,
            // so the feedback loop sees a fresh queue instead of a
            // round-stale one (and the run stays deterministic).
            daemon.quiesce();
        }
    }

    daemon.quiesce();
    daemon.flushSubscriptions();
    std::vector<double> modeled, waits, transfers, computes;
    {
        std::lock_guard<std::mutex> lock(collected_mutex);
        for (const auto &exec : collected) {
            modeled.push_back(1e6 * exec.modeledSeconds);
            waits.push_back(1e6 * exec.queueWaitSeconds);
            transfers.push_back(1e6 * exec.transferSeconds);
            computes.push_back(
                1e6 * std::max(0.0, exec.serviceSeconds -
                                        exec.transferSeconds));
        }
    }
    for (const Live &session : live) {
        if (daemon.close(session.id))
            ++out.sessionsAdmitted;
    }
    // The closes above published their tail windows; deliver them
    // before collected/collected_mutex go out of scope.
    daemon.flushSubscriptions();
    for (const auto &row : daemon.stats().admission) {
        out.recordsAdmitted += row.stats.recordsAdmitted;
        out.recordsThrottled += row.stats.recordsThrottled;
        out.recordsShed += row.stats.recordsShed;
    }
    out.windows = modeled.size();
    out.p50Us = bench::percentileOrNan(modeled, 50.0);
    out.p95Us = bench::percentileOrNan(modeled, 95.0);
    out.p99Us = bench::percentileOrNan(modeled, 99.0);
    out.maxUs = modeled.empty()
                    ? std::numeric_limits<double>::quiet_NaN()
                    : *std::max_element(modeled.begin(), modeled.end());
    out.meanWaitUs = mean(waits);
    out.meanTransferUs = mean(transfers);
    out.meanComputeUs = mean(computes);
    const telemetry::Histogram::Snapshot fanout =
        telemetry::MetricsRegistry::global().histogramSnapshot(
            "publish.fanout_ns");
    if (fanout.count > 0) {
        out.publishP50Us = fanout.percentile(50.0) / 1e3;
        out.publishP99Us = fanout.percentile(99.0) / 1e3;
    }
    return out;
}

/**
 * Admitted work is numerically untouched: one uncontended tenant
 * streamed through admission control on the accel pool produces the
 * same posterior series, bit for bit, as the plain no-admission host
 * path.
 */
bool
posteriorsBitIdentical(const sim::MicroarchDescriptor &uarch,
                       const sim::PerfResult &run,
                       std::size_t num_slices,
                       double throttle_queue_seconds)
{
    const auto monitored = monitoredSet(uarch);

    const auto replay = [&](service::MonitorServiceConfig cfg) {
        cfg.numWorkers = 2;
        cfg.sessionDefaults.streaming.inference.windowSlices = 6;
        service::MonitorService daemon(uarch, cfg);
        const service::OpenResult result =
            daemon.open("tenant-check", monitored);
        bp_assert(result.admitted(), "uncontended open was shed");
        for (std::size_t s = 0; s < num_slices; ++s)
            daemon.ingestBatch(*result.id,
                               service::sliceRecords(run, s));
        const auto report = daemon.close(*result.id);
        bp_assert(report.has_value(), "close lost the session");
        return report->posterior.series;
    };

    service::MonitorServiceConfig host;
    host.backend = service::BackendKind::Host;

    service::MonitorServiceConfig gated;
    gated.backend = service::BackendKind::Accel;
    gated.accel.numEngines = kEngines;
    gated.accel.slicePeriodSeconds = kSlicePeriodUs * 1e-6;
    gated.admission.enabled = true;
    gated.admission.defaultQuota.maxSessions = 2;
    gated.admission.throttleQueueSeconds = throttle_queue_seconds;
    gated.admission.shedQueueSeconds = throttle_queue_seconds;

    const auto a = replay(host);
    const auto b = replay(gated);
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].size() != b[i].size())
            return false;
        for (std::size_t t = 0; t < a[i].size(); ++t) {
            if (a[i][t].mean != b[i][t].mean ||
                a[i][t].stddev != b[i][t].stddev)
                return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();
    const std::size_t num_slices = bench::quickMode() ? 24 : 48;
    const std::vector<std::size_t> tenant_counts =
        bench::quickMode() ? std::vector<std::size_t>{2, 8}
                           : std::vector<std::size_t>{2, 4, 8, 16};
    const std::size_t max_tenants = tenant_counts.back();

    // Distinct seeded runs reused across all policies: a pool of
    // measurement streams the sessions replay.
    const auto monitored = monitoredSet(uarch);
    const std::vector<std::string> workloads = {"KMeans", "Sort",
                                                "Bayes", "PageRank"};
    std::vector<sim::PerfResult> runs;
    for (std::size_t i = 0; i < max_tenants * kAttemptsPerTenant; ++i) {
        const sim::GroundTruthGenerator generator(
            uarch, wl::makeHibench(workloads[i % workloads.size()]));
        const sim::TruthTrace truth =
            generator.generate(num_slices, 4200 + i);
        sim::PerfSessionConfig perf_cfg;
        perf_cfg.seed = 17 * i + 3;
        sim::PerfSession session(uarch, perf_cfg);
        runs.push_back(session.runRoundRobin(truth, monitored));
    }

    // Uncontended baseline: one tenant, one session, admission off.
    PolicySpec off{"off", 0, 0.0, 0.0, false};
    const RunResult baseline =
        runPolicy(uarch, runs, /*tenants=*/1, num_slices, off);
    // Service time = modeled latency minus queue wait; uncontended a
    // single session barely queues, so use its median modeled
    // latency.  Feedback thresholds sit at half the service time: an
    // admitted window then waits at most ~half a service time plus
    // one decision's worth of overshoot, keeping end-to-end modeled
    // latency inside 2x the uncontended service time.
    const double uncontended_us = baseline.p50Us;
    const double threshold_seconds = 0.5 * uncontended_us * 1e-6;

    std::vector<PolicySpec> policies = {
        off,
        {"quota", /*maxSessions=*/1, 0.0, 0.0, true},
        {"latency", 0, threshold_seconds, threshold_seconds, true},
    };

    std::cout << "Admission control under overload (" << kEngines
              << " engines, slice period " << kSlicePeriodUs
              << " us, k=6, " << num_slices
              << " slices, 2 session attempts/tenant; uncontended p50 "
              << uncontended_us << " us):\n";

    TablePrinter table({"policy", "tenants", "admitted", "shed %",
                        "windows", "p50 us", "p99 us", "max us",
                        "p99/uncont"});

    struct PolicyRuns
    {
        PolicySpec spec;
        std::vector<RunResult> rows;
    };
    std::vector<PolicyRuns> results;
    for (const PolicySpec &policy : policies) {
        PolicyRuns pr;
        pr.spec = policy;
        for (std::size_t tenants : tenant_counts) {
            const RunResult row =
                runPolicy(uarch, runs, tenants, num_slices, policy);
            table.addRow(policy.name,
                         {static_cast<double>(row.tenants),
                          static_cast<double>(row.sessionsAdmitted),
                          100.0 * row.sessionShedRate(),
                          static_cast<double>(row.windows), row.p50Us,
                          row.p99Us, row.maxUs,
                          row.p99Us / uncontended_us});
            pr.rows.push_back(row);
        }
        results.push_back(std::move(pr));
    }
    table.print(std::cout);

    const bool bit_identical = posteriorsBitIdentical(
        uarch, runs[0], num_slices, threshold_seconds);
    std::cout << "\nadmitted-session posteriors bit-identical to the "
                 "no-admission host path: "
              << (bit_identical ? "yes" : "NO") << "\n";

    bench::JsonWriter json;
    json.beginObject()
        .field("engines", kEngines)
        .field("slice_period_us", kSlicePeriodUs)
        .field("window_slices", 6)
        .field("slices", num_slices)
        .field("session_attempts_per_tenant", kAttemptsPerTenant)
        .field("uncontended_service_us", uncontended_us)
        .field("threshold_queue_us", 1e6 * threshold_seconds)
        .field("posteriors_bit_identical", bit_identical)
        .beginArray("policies");
    for (const PolicyRuns &pr : results) {
        json.beginObject()
            .field("policy", pr.spec.name)
            .field("enabled", pr.spec.enabled)
            .field("max_sessions_per_tenant",
                   pr.spec.maxSessionsPerTenant)
            .field("throttle_queue_us",
                   1e6 * pr.spec.throttleQueueSeconds)
            .field("shed_queue_us", 1e6 * pr.spec.shedQueueSeconds)
            .beginArray("runs");
        for (const RunResult &row : pr.rows) {
            json.beginObject()
                .field("tenants", row.tenants)
                .field("sessions_attempted", row.sessionsAttempted)
                .field("sessions_admitted", row.sessionsAdmitted)
                .field("session_shed_rate", row.sessionShedRate())
                .field("record_shed_rate", row.recordShedRate())
                .field("records_admitted", row.recordsAdmitted)
                .field("records_throttled", row.recordsThrottled)
                .field("records_shed", row.recordsShed)
                .field("windows", row.windows)
                .field("p50_us", row.p50Us)
                .field("p95_us", row.p95Us)
                .field("p99_us", row.p99Us)
                .field("max_us", row.maxUs)
                .field("mean_queue_wait_us", row.meanWaitUs)
                .field("mean_transfer_us", row.meanTransferUs)
                .field("mean_compute_us", row.meanComputeUs)
                .field("publish_p50_us", row.publishP50Us)
                .field("publish_p99_us", row.publishP99Us)
                .field("p99_vs_uncontended", row.p99Us / uncontended_us)
                .endObject();
        }
        json.endArray().endObject();
    }
    json.endArray().endObject();
    if (!json.writeFile("BENCH_admission.json")) {
        std::cerr << "failed to write BENCH_admission.json\n";
        return 1;
    }
    std::cout << "wrote BENCH_admission.json\n";
    return 0;
}
