/**
 * @file
 * Microarchitecture descriptions: event catalogs, counter placement
 * constraints, and the algebraic invariants that relate events.
 *
 * A MicroarchDescriptor plays the role of the vendor performance
 * manual ([7, 19] in the paper): it lists every countable event, which
 * programmable counters may host it, and the algebraic identities the
 * microarchitecture guarantees between event counts (e.g. the paper's
 * "DRAM bytes = cache-line-size x LLC misses + DMA bytes").  The
 * ground-truth generator uses the invariants to close the event set,
 * and the BayesPerf factor graph uses the very same invariants as
 * statistical factors.
 */

#ifndef BPERF_SIM_MICROARCH_H
#define BPERF_SIM_MICROARCH_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bperf {
namespace sim {

/** Index of an event within a MicroarchDescriptor catalog. */
using EventId = std::uint32_t;

/** Sentinel for "no event". */
constexpr EventId kNoEvent = static_cast<EventId>(-1);

/**
 * Architecture-independent meaning of an event.  The ground-truth
 * generator produces values by role; each architecture maps roles to
 * vendor-specific names and counter constraints.
 */
enum class Role : std::uint32_t {
    // Fixed-counter events.
    Cycles,
    Instructions,
    RefCycles,
    // Pipeline activity.
    ActiveCycles,
    StallTotal,
    StallMem,
    StallFrontend,
    StallBranch,
    UopsIssued,
    UopsRetired,
    // Instruction mix.
    Loads,
    Stores,
    OtherOps,
    Branches,
    BranchTaken,
    BranchNotTaken,
    BranchMisses,
    FpOps,
    SimdOps,
    // Cache hierarchy.
    L1DAccess,
    L1DMiss,
    L1IMiss,
    L2Access,
    L2Miss,
    L2Prefetch,
    LlcAccess,
    LlcMiss,
    DtlbMiss,
    ItlbMiss,
    // Offcore / uncore.
    OffcoreReads,
    OffcoreWrites,
    DramBytes,
    DramReads,
    DramWrites,
    DmaBytes,
    PcieReadBytes,
    PcieWriteBytes,
    // Software events.
    PageFaults,
    ContextSwitches,
    NumRoles
};

/** Number of distinct roles. */
constexpr std::size_t kNumRoles = static_cast<std::size_t>(Role::NumRoles);

/** Human-readable role name (architecture independent). */
const char *roleName(Role role);

/**
 * One countable event in an architecture's catalog.
 */
struct EventDef
{
    EventId id = kNoEvent;
    Role role = Role::Cycles;
    /** Vendor-style event name, e.g. "MEM_LOAD_RETIRED.ALL". */
    std::string name;
    /** True for fixed-counter events (always counted, not schedulable). */
    bool fixed = false;
    /**
     * Bitmask over programmable counters this event may be placed on.
     * Bit i set means counter i can host the event.  Ignored for
     * fixed events.
     */
    std::uint32_t counterMask = 0;
    /** True if the event additionally consumes an offcore-response MSR. */
    bool needsOffcoreMsr = false;
    /** Typical magnitude per time slice, used to scale priors. */
    double typicalPerSlice = 1.0;
};

/** One term of a linear invariant: coefficient * event. */
struct InvariantTerm
{
    Role role;
    double coeff;
};

/**
 * A linear identity over event counts: sum_i coeff_i * e_i = 0.
 *
 * `slackRel` expresses how exactly the identity holds on real
 * hardware, as a relative standard deviation of the residual with
 * respect to the magnitude of the largest term.  Exact structural
 * identities (e.g. branches = taken + not-taken) have tiny slack;
 * heuristic relations (e.g. uops ~ 1.3 x instructions) have larger
 * slack.  The ground-truth generator perturbs soft invariants by this
 * amount; the factor graph uses it as factor noise.
 */
struct LinearInvariant
{
    std::string name;
    std::vector<InvariantTerm> terms;
    double slackRel = 1e-4;
};

/**
 * Complete description of one CPU's performance monitoring unit and
 * the microarchitectural invariants between its events.
 */
class MicroarchDescriptor
{
  public:
    MicroarchDescriptor(std::string name, double clock_ghz,
                        double cache_line_bytes, std::size_t num_fixed,
                        std::size_t num_programmable,
                        std::size_t num_offcore_msrs);

    const std::string &name() const { return name_; }
    double clockGhz() const { return clockGhz_; }
    double cacheLineBytes() const { return cacheLineBytes_; }
    std::size_t numFixedCounters() const { return numFixed_; }
    std::size_t numProgrammableCounters() const { return numProg_; }
    std::size_t numOffcoreMsrs() const { return numOffcoreMsrs_; }

    /** Register an event; returns its id. */
    EventId addEvent(Role role, std::string name, bool fixed,
                     std::uint32_t counter_mask, bool needs_msr,
                     double typical_per_slice);

    /** Register an invariant over roles present in the catalog. */
    void addInvariant(LinearInvariant inv);

    const std::vector<EventDef> &events() const { return events_; }
    const std::vector<LinearInvariant> &invariants() const
    {
        return invariants_;
    }

    const EventDef &event(EventId id) const;

    /** Event for a role; dies if the role is not in the catalog. */
    const EventDef &eventForRole(Role role) const;

    /** Event id for a role. */
    EventId idForRole(Role role) const;

    /** Lookup by vendor name; nullopt if absent. */
    std::optional<EventId> findByName(const std::string &name) const;

    /** All non-fixed event ids, in catalog order. */
    std::vector<EventId> programmableEvents() const;

    /** All fixed event ids, in catalog order. */
    std::vector<EventId> fixedEvents() const;

  private:
    std::string name_;
    double clockGhz_;
    double cacheLineBytes_;
    std::size_t numFixed_;
    std::size_t numProg_;
    std::size_t numOffcoreMsrs_;
    std::vector<EventDef> events_;
    std::vector<LinearInvariant> invariants_;
    std::vector<EventId> roleToId_;
};

/**
 * Build the x86_64 "Sky Lake"-like descriptor used in the paper's x86
 * configuration: 3 fixed + 4 effective programmable core counters
 * (8 per core split between SMT threads), 2 uncore counters, 64 B
 * cache lines, 2.6 GHz.
 */
MicroarchDescriptor makeX86Skylake();

/**
 * Build the ppc64 "Power9"-like descriptor: 3 fixed + 6 programmable
 * counters, 128 B cache lines, 3.1 GHz.
 */
MicroarchDescriptor makePower9();

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_MICROARCH_H
