/**
 * @file
 * WM+Pin baseline (Weaver & McKee), as used in the paper's Fig. 8.
 *
 * Corrects only the retired-instruction count by removing the
 * deterministic overcount contributed by serviced interrupts (one
 * spurious instruction per hardware interrupt on the studied x86
 * parts), using per-instruction traces gathered through Pin.  All
 * other events pass through the Linux estimator unchanged, and the
 * Pin instrumentation costs up to ~198x runtime overhead, which the
 * estimator reports so benches can account for it.
 */

#ifndef BPERF_BASELINES_WMPIN_H
#define BPERF_BASELINES_WMPIN_H

#include "baselines/estimator.h"
#include "baselines/linux_scaling.h"
#include "sim/os_noise.h"

namespace bperf {
namespace baselines {

/** WM+Pin knobs. */
struct WmPinConfig
{
    /** Interrupt rate assumed by the correction (per slice). */
    double interruptsPerSlice = 3.0;

    /** Spurious instructions removed per interrupt. */
    double instructionsPerInterrupt = 1.0;

    /** Pin instrumentation slowdown (x), from the paper. */
    double pinSlowdown = 198.2;
};

/** The instruction-count-only corrector. */
class WmPinEstimator : public Estimator
{
  public:
    WmPinEstimator(const sim::MicroarchDescriptor &uarch,
                   WmPinConfig config = {})
        : uarch_(uarch), config_(config)
    {
    }

    std::string name() const override { return "WM+Pin"; }

    std::vector<double> series(const sim::PerfResult &run,
                               sim::EventId event) const override;

    /** Runtime overhead factor of the Pin instrumentation. */
    double overheadFactor() const { return config_.pinSlowdown; }

  private:
    const sim::MicroarchDescriptor &uarch_;
    WmPinConfig config_;
};

} // namespace baselines
} // namespace bperf

#endif // BPERF_BASELINES_WMPIN_H
