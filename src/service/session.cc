#include "service/session.h"

#include "common/logging.h"

namespace bperf {
namespace service {

void
SessionStats::merge(const SessionStats &other)
{
    recordsOffered += other.recordsOffered;
    recordsIngested += other.recordsIngested;
    recordsDropped += other.recordsDropped;
    recordsRejected += other.recordsRejected;
    slicesAssembled += other.slicesAssembled;
    windowsRun += other.windowsRun;
    epSweeps += other.epSweeps;
    drainPasses += other.drainPasses;
    inferSeconds += other.inferSeconds;
    windowSeconds.merge(other.windowSeconds);
    modeledWindowSeconds.merge(other.modeledWindowSeconds);
    backendQueueSeconds.merge(other.backendQueueSeconds);
}

Session::Session(SessionId id, const sim::MicroarchDescriptor &uarch,
                 std::vector<sim::EventId> events, SessionConfig config)
    : id_(id), queue_(config.queueCapacity),
      inference_(uarch, std::move(events), config.streaming)
{
}

bool
Session::offer(const sim::PerfRecord &rec)
{
    return queue_.push(rec);
}

std::size_t
Session::drain()
{
    std::size_t drained = 0;
    while (auto rec = queue_.pop()) {
        // Publish per completed window, not per drain pass: a long
        // backlog drains in one pass, and pollers should see
        // posteriors as soon as the first window lands.
        if (inference_.consume(*rec) > 0)
            publishPosteriors();
        ++drained;
    }
    publishStats(/*drain_pass=*/true);
    return drained;
}

void
Session::finishStream()
{
    if (inference_.finish() > 0)
        publishPosteriors();
    publishStats(/*drain_pass=*/false);
}

/**
 * Copy the engine's counters into the mutex-guarded snapshot.  The
 * engine itself is single-threaded (worker-owned); cross-thread
 * readers only ever see the published copy.
 */
void
Session::publishStats(bool drain_pass)
{
    const std::vector<double> window_seconds =
        inference_.takeWindowSeconds();
    const std::vector<core::WindowExecution> executions =
        inference_.takeWindowExecutions();
    const auto &engine = inference_.engine();
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (drain_pass)
        ++stats_.drainPasses;
    stats_.recordsRejected = inference_.recordsRejected();
    stats_.slicesAssembled = engine.slicesSeen();
    stats_.windowsRun = engine.windowsRun();
    stats_.epSweeps = engine.epSweepsTotal();
    stats_.inferSeconds = engine.inferSeconds();
    for (double seconds : window_seconds)
        stats_.windowSeconds.push(seconds);
    for (const auto &exec : executions) {
        stats_.modeledWindowSeconds.push(exec.modeledSeconds);
        stats_.backendQueueSeconds.push(exec.queueWaitSeconds);
    }
}

void
Session::publishPosteriors()
{
    const auto &engine = inference_.engine();
    if (engine.slicesCovered() == 0)
        return;
    std::lock_guard<std::mutex> lock(publishMutex_);
    latest_.resize(engine.events().size());
    for (std::size_t i = 0; i < latest_.size(); ++i)
        latest_[i] = engine.latest(i);
    latestValid_ = true;
}

std::optional<core::PosteriorPoint>
Session::latest(sim::EventId event) const
{
    std::lock_guard<std::mutex> lock(publishMutex_);
    if (!latestValid_)
        return std::nullopt;
    const auto &events = inference_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event)
            return latest_[i];
    }
    return std::nullopt;
}

SessionStats
Session::statsSnapshot() const
{
    SessionStats snap;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        snap = stats_;
    }
    snap.recordsIngested = queue_.pushed();
    snap.recordsDropped = queue_.dropped();
    snap.recordsOffered = snap.recordsIngested + snap.recordsDropped;
    return snap;
}

} // namespace service
} // namespace bperf
