/**
 * @file
 * Linux's built-in correction: scale raw counts by
 * time_enabled / time_running and carry the latest scaled window
 * forward (paper section 4, "Traditional approaches").
 */

#ifndef BPERF_BASELINES_LINUX_SCALING_H
#define BPERF_BASELINES_LINUX_SCALING_H

#include "baselines/estimator.h"

namespace bperf {
namespace baselines {

/** The perf-default estimator. */
class LinuxEstimator : public Estimator
{
  public:
    explicit LinuxEstimator(
        sim::ScalingPolicy policy = sim::ScalingPolicy::HoldLastScaled)
        : policy_(policy)
    {
    }

    std::string name() const override { return "Linux"; }

    std::vector<double> series(const sim::PerfResult &run,
                               sim::EventId event) const override;

  private:
    sim::ScalingPolicy policy_;
};

} // namespace baselines
} // namespace bperf

#endif // BPERF_BASELINES_LINUX_SCALING_H
