/**
 * @file
 * Flattening of simulated measurement runs into PerfRecord streams.
 *
 * The service ingests what a kernel PMI handler would write into the
 * perf mmap ring: one record per PMI window read, in slice order.
 * These helpers turn a PerfResult (the simulator's per-event trace
 * matrix) into exactly that stream, for producers, tests and
 * benchmarks that replay simulated runs against the daemon.
 */

#ifndef BPERF_SERVICE_RECORD_STREAM_H
#define BPERF_SERVICE_RECORD_STREAM_H

#include <vector>

#include "sim/perf_session.h"
#include "sim/ring_buffer.h"

namespace bperf {
namespace service {

/**
 * One record per PMI window read of every observed (event, slice),
 * slice-major — the arrival order the assembler expects.
 */
std::vector<sim::PerfRecord> recordStream(const sim::PerfResult &result);

/** Records of a single slice of the run (slice-replay producers). */
std::vector<sim::PerfRecord> sliceRecords(const sim::PerfResult &result,
                                          std::size_t slice);

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_RECORD_STREAM_H
