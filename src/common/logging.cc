#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace bperf {
namespace detail {

namespace {
bool g_verbose = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
emit(LogLevel level, const std::string &msg)
{
    if (!g_verbose && (level == LogLevel::Inform || level == LogLevel::Warn))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
terminate(LogLevel level, const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelName(level), file, line,
                 msg.c_str());
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace bperf
