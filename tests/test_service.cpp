/** @file Tests for the concurrent multi-session monitoring service. */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "service/slice_assembler.h"
#include "sim/ground_truth.h"
#include "workloads/hibench.h"

namespace bperf {
namespace service {
namespace {

const sim::MicroarchDescriptor &
uarch()
{
    static const sim::MicroarchDescriptor u = sim::makeX86Skylake();
    return u;
}

/** A moderately multiplexed monitored set (fixed counters included). */
std::vector<sim::EventId>
monitoredSet()
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch().fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch().idForRole(r));
    return events;
}

/** One sampled measurement run over a bursty workload. */
sim::PerfResult
measuredRun(const std::vector<sim::EventId> &monitored,
            std::size_t num_slices, std::uint64_t seed)
{
    const sim::WorkloadProfile workload = wl::makeHibench("KMeans");
    const sim::GroundTruthGenerator generator(uarch(), workload);
    const sim::TruthTrace truth = generator.generate(num_slices, seed);
    sim::PerfSessionConfig cfg;
    cfg.seed = seed * 3 + 1;
    sim::PerfSession session(uarch(), cfg);
    return session.runRoundRobin(truth, monitored);
}

core::InferenceConfig
testInference()
{
    core::InferenceConfig cfg;
    cfg.windowSlices = 6; // fixed k so batch and streaming agree
    return cfg;
}

sim::PerfRecord
rec(std::uint32_t slice, sim::EventId event, double value)
{
    sim::PerfRecord r;
    r.slice = slice;
    r.event = event;
    r.value = value;
    r.timeEnabled = 1.0;
    r.timeRunning = 0.5;
    return r;
}

TEST(SliceAssembler, GroupsRecordsIntoSlices)
{
    const std::vector<sim::EventId> events = {3, 7};
    SliceAssembler assembler(events);
    std::vector<core::SliceMeasurements> out;

    EXPECT_EQ(assembler.feed(rec(0, 3, 10.0), out), 0u);
    EXPECT_EQ(assembler.feed(rec(0, 3, 12.0), out), 0u);
    EXPECT_EQ(assembler.feed(rec(0, 7, 5.0), out), 0u);
    // A record for slice 1 finalizes slice 0.
    EXPECT_EQ(assembler.feed(rec(1, 7, 6.0), out), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0][0].observed);
    EXPECT_DOUBLE_EQ(out[0][0].rawCount, 22.0);
    ASSERT_EQ(out[0][0].windows.size(), 2u);
    EXPECT_TRUE(out[0][1].observed);
    // Single-window samples are split so the Student-t fit has >= 2.
    ASSERT_EQ(out[0][1].windows.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0][1].windows[0] + out[0][1].windows[1], 5.0);

    EXPECT_EQ(assembler.flush(out), 1u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FALSE(out[1][0].observed);
    EXPECT_TRUE(out[1][1].observed);
    EXPECT_EQ(assembler.recordsAccepted(), 4u);
}

TEST(SliceAssembler, EmitsGapSlicesAndRejectsStaleRecords)
{
    const std::vector<sim::EventId> events = {1};
    SliceAssembler assembler(events);
    std::vector<core::SliceMeasurements> out;

    assembler.feed(rec(0, 1, 1.0), out);
    // Jump to slice 3: slice 0 finalizes, slices 1-2 emit unobserved.
    EXPECT_EQ(assembler.feed(rec(3, 1, 2.0), out), 3u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[0][0].observed);
    EXPECT_FALSE(out[1][0].observed);
    EXPECT_FALSE(out[2][0].observed);

    // Stale (already finalized) slice and unknown event are rejected.
    EXPECT_EQ(assembler.feed(rec(1, 1, 9.0), out), 0u);
    EXPECT_EQ(assembler.feed(rec(3, 42, 9.0), out), 0u);
    EXPECT_EQ(assembler.recordsRejected(), 2u);
}

TEST(WindowedInference, StreamingMatchesBatchSliceLevel)
{
    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 24, 101);

    core::InferenceEngine engine(uarch(), testInference());
    const core::InferenceResult batch = engine.infer(run);

    core::WindowedInference streaming(uarch(), monitored, testInference(),
                                      run.schedule.size());
    core::SliceMeasurements slice(monitored.size());
    for (std::size_t t = 0; t < 24; ++t) {
        for (std::size_t i = 0; i < monitored.size(); ++i)
            slice[i] = run.traces[i].slices[t];
        streaming.push(slice);
    }
    streaming.finish();

    EXPECT_EQ(streaming.windowsRun(), batch.windowsRun);
    EXPECT_EQ(streaming.slicesCovered(), 24u);
    for (std::size_t i = 0; i < monitored.size(); ++i) {
        for (std::size_t t = 0; t < 24; ++t) {
            EXPECT_DOUBLE_EQ(streaming.series()[i][t].mean,
                             batch.series[i][t].mean);
            EXPECT_DOUBLE_EQ(streaming.series()[i][t].stddev,
                             batch.series[i][t].stddev);
        }
    }
}

TEST(WindowedInference, SteadyStateWindowsReuseEpWorkspace)
{
    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 48, 505);

    core::WindowedInference streaming(uarch(), monitored, testInference(),
                                      run.schedule.size());
    core::SliceMeasurements slice(monitored.size());
    std::size_t warm_allocs = 0;
    bool warmed = false;
    for (std::size_t t = 0; t < 48; ++t) {
        for (std::size_t i = 0; i < monitored.size(); ++i)
            slice[i] = run.traces[i].slices[t];
        streaming.push(slice);
        if (!warmed && streaming.windowsRun() >= 2) {
            warmed = true;
            warm_allocs = streaming.epWorkspaceAllocations();
        }
    }
    ASSERT_TRUE(warmed);
    EXPECT_GT(warm_allocs, 0u); // the warm-up window does allocate
    streaming.finish();

    // Zero steady-state allocations: after the warm-up, every window
    // (including the truncated tail ones, which are no larger) reuses
    // the EP workspace without growing any buffer.
    EXPECT_EQ(streaming.epWorkspaceAllocations(), warm_allocs);
    EXPECT_GT(streaming.windowsRun(), 2u);

    // Batch replays the same stream through the same engine type, so
    // its result reports the identical reuse counter.
    core::InferenceEngine engine(uarch(), testInference());
    const core::InferenceResult batch = engine.infer(run);
    EXPECT_EQ(batch.epWorkspaceAllocations, warm_allocs);
}

TEST(WindowedInference, BoundedRetentionKeepsMatchingTail)
{
    const auto monitored = monitoredSet();
    const auto run = measuredRun(monitored, 24, 303);

    core::InferenceEngine engine(uarch(), testInference());
    const core::InferenceResult batch = engine.infer(run);

    core::InferenceConfig bounded = testInference();
    bounded.retainSlices = 8;
    core::WindowedInference streaming(uarch(), monitored, bounded,
                                      run.schedule.size());
    core::SliceMeasurements slice(monitored.size());
    for (std::size_t t = 0; t < 24; ++t) {
        for (std::size_t i = 0; i < monitored.size(); ++i)
            slice[i] = run.traces[i].slices[t];
        streaming.push(slice);
    }
    streaming.finish();

    // Only the tail is retained, and retention must not perturb the
    // inference itself: retained posteriors equal the full batch run.
    const std::size_t base = streaming.firstRetainedSlice();
    EXPECT_GE(base, 24u - 8 - streaming.windowSlices());
    EXPECT_LE(24u - base, 8u + streaming.windowSlices());
    for (std::size_t i = 0; i < monitored.size(); ++i) {
        ASSERT_EQ(streaming.series()[i].size(), 24u - base);
        for (std::size_t t = base; t < 24; ++t) {
            EXPECT_DOUBLE_EQ(streaming.series()[i][t - base].mean,
                             batch.series[i][t].mean);
        }
        EXPECT_DOUBLE_EQ(streaming.latest(i).mean,
                         batch.series[i][23].mean);
    }

    core::InferenceResult result = streaming.takeResult();
    EXPECT_EQ(result.firstSlice, base);
    EXPECT_EQ(result.series.front().size(), 24u - base);
}

TEST(MonitorService, StreamingMatchesBatchThroughDaemon)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference = testInference();
    MonitorService daemon(uarch(), cfg);

    const SessionId id = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(id);
    const auto run = measuredRun(monitored, 24, 2024);

    daemon.ingestBatch(id, recordStream(run));
    const auto report = daemon.close(id);
    ASSERT_TRUE(report.has_value());

    core::InferenceEngine engine(uarch(), testInference());
    const core::InferenceResult batch = engine.infer(run);

    // The record stream carries the full measurement (every PMI
    // window read), so the streamed posterior must match whole-trace
    // EP far inside the 5% acceptance tolerance.
    for (sim::EventId e : monitored) {
        const auto batch_mean = batch.meanSeries(e);
        const auto stream_mean = report->posterior.meanSeries(e);
        ASSERT_EQ(stream_mean.size(), batch_mean.size());
        double abs_err = 0.0, abs_ref = 0.0;
        for (std::size_t t = 0; t < batch_mean.size(); ++t) {
            abs_err += std::abs(stream_mean[t] - batch_mean[t]);
            abs_ref += std::abs(batch_mean[t]);
        }
        EXPECT_LT(abs_err, 0.05 * abs_ref)
            << "event " << uarch().event(e).name;
    }

    EXPECT_EQ(report->stats.recordsDropped, 0u);
    EXPECT_EQ(report->stats.slicesAssembled, 24u);
    EXPECT_EQ(report->stats.windowsRun, batch.windowsRun);
}

TEST(MonitorService, RegistryOpenCloseUnderThreads)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.numShards = 4;
    cfg.sessionDefaults.streaming.inference = testInference();
    MonitorService daemon(uarch(), cfg);

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kSessionsPerThread = 6;
    std::atomic<std::size_t> closed{0};

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&daemon, &closed] {
            for (std::size_t s = 0; s < kSessionsPerThread; ++s) {
                const SessionId id = daemon.open(monitoredSet());
                EXPECT_FALSE(daemon.monitoredEvents(id).empty());
                if (daemon.close(id).has_value())
                    closed.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(closed.load(), kThreads * kSessionsPerThread);
    EXPECT_EQ(daemon.openSessions(), 0u);
    const ServiceStats stats = daemon.stats();
    EXPECT_EQ(stats.sessionsOpened, kThreads * kSessionsPerThread);
    EXPECT_EQ(stats.sessionsClosed, kThreads * kSessionsPerThread);
    EXPECT_EQ(stats.sessionsLive, 0u);

    // Closing an unknown / already closed id is a clean no-op.
    EXPECT_FALSE(daemon.close(999999).has_value());
}

TEST(MonitorService, StatsSnapshotInvariantHoldsUnderConcurrentOffers)
{
    // Regression: the snapshot used to read the ring's push and drop
    // counters at different instants, so recordsOffered (their sum)
    // could disagree with the offer() calls actually completed.  With
    // the coherent counter snapshot the invariant holds in every
    // observation while a producer hammers a tiny ring.
    SessionConfig cfg;
    cfg.queueCapacity = 4;
    Session session(1, uarch(), monitoredSet(), cfg);
    // An unmonitored event id: the assembler rejects each record, so
    // the drain loop exercises the ring and counters at full speed
    // without running EP windows.
    const sim::EventId e = 65001;

    constexpr std::uint32_t kAttempts = 100000;
    std::atomic<bool> done{false};
    std::thread producer([&] {
        for (std::uint32_t i = 0; i < kAttempts; ++i) {
            session.offer(rec(i, e, 1.0));
            if (i % 64 == 0) {
                // Keep the ring bouncing between full and empty so
                // both counters move.
                while (session.queueSize() > 1)
                    std::this_thread::yield();
            }
        }
        done.store(true);
    });
    std::thread consumer([&] {
        while (!done.load())
            session.drain();
        session.drain();
    });

    // The observation count is deliberately unasserted: on a loaded
    // single-core host the producer may finish before this loop runs.
    std::uint64_t last_offered = 0;
    while (!done.load()) {
        const SessionStats snap = session.statsSnapshot();
        ASSERT_EQ(snap.recordsOffered,
                  snap.recordsIngested + snap.recordsDropped);
        ASSERT_LE(snap.recordsOffered, kAttempts);
        ASSERT_GE(snap.recordsOffered, last_offered);
        last_offered = snap.recordsOffered;
    }
    producer.join();
    consumer.join();

    const SessionStats final_snap = session.statsSnapshot();
    EXPECT_EQ(final_snap.recordsOffered, kAttempts);
    EXPECT_EQ(final_snap.recordsOffered,
              final_snap.recordsIngested + final_snap.recordsDropped);
}

TEST(MonitorService, BackpressureDropAccounting)
{
    // A session with a tiny ring and no worker visiting it: overflow
    // must drop new records and count every one of them.
    SessionConfig cfg;
    cfg.queueCapacity = 8;
    Session session(1, uarch(), monitoredSet(), cfg);

    const sim::EventId e = monitoredSet().front();
    std::size_t accepted = 0;
    for (std::uint32_t i = 0; i < 20; ++i) {
        if (session.offer(rec(i, e, 1.0)))
            ++accepted;
    }
    EXPECT_EQ(accepted, 8u);
    const SessionStats stats = session.statsSnapshot();
    EXPECT_EQ(stats.recordsIngested, 8u);
    EXPECT_EQ(stats.recordsDropped, 12u);
    EXPECT_EQ(stats.recordsOffered, 20u);
}

/**
 * One full daemon run of the deterministic end-to-end pipeline:
 * seeded producer threads -> per-session SPSC rings -> worker pool ->
 * SliceAssembler -> windowed EP -> posterior series.  Returns every
 * session's posterior series in session order.
 */
std::vector<std::vector<std::vector<core::PosteriorPoint>>>
deterministicServiceRun(std::size_t num_workers, std::size_t num_sessions,
                        std::size_t num_slices)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = num_workers;
    cfg.sessionDefaults.streaming.inference = testInference();
    MonitorService daemon(uarch(), cfg);

    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < num_sessions; ++s)
        ids.push_back(daemon.open(monitoredSet()));
    const auto monitored = daemon.monitoredEvents(ids[0]);

    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < num_sessions; ++s) {
        producers.emplace_back(
            [&daemon, &monitored, id = ids[s], s, num_slices] {
                const auto run =
                    measuredRun(monitored, num_slices, 900 + s);
                for (std::size_t t = 0; t < num_slices; ++t)
                    daemon.ingestBatch(id, sliceRecords(run, t));
            });
    }
    for (auto &p : producers)
        p.join();

    std::vector<std::vector<std::vector<core::PosteriorPoint>>> series;
    for (SessionId id : ids) {
        auto report = daemon.close(id);
        EXPECT_TRUE(report.has_value());
        EXPECT_EQ(report->stats.recordsDropped, 0u);
        series.push_back(std::move(report->posterior.series));
    }
    return series;
}

TEST(MonitorService, EndToEndPosteriorsAreDeterministic)
{
    // The full concurrent pipeline must be a pure function of the
    // seeded inputs: worker scheduling, drain batching and producer
    // timing may vary freely between runs, but every session's
    // posterior series has to come out bit-identical — across
    // repeated runs and across worker counts.
    constexpr std::size_t kSessions = 3;
    constexpr std::size_t kSlices = 18;

    const auto base = deterministicServiceRun(2, kSessions, kSlices);
    const auto repeat = deterministicServiceRun(2, kSessions, kSlices);
    const auto more_workers =
        deterministicServiceRun(5, kSessions, kSlices);

    ASSERT_EQ(base.size(), kSessions);
    for (const auto *other : {&repeat, &more_workers}) {
        ASSERT_EQ(other->size(), base.size());
        for (std::size_t s = 0; s < base.size(); ++s) {
            ASSERT_EQ((*other)[s].size(), base[s].size());
            for (std::size_t i = 0; i < base[s].size(); ++i) {
                ASSERT_EQ((*other)[s][i].size(), base[s][i].size());
                for (std::size_t t = 0; t < base[s][i].size(); ++t) {
                    // Bit-identical, not approximately equal.
                    EXPECT_EQ((*other)[s][i][t].mean,
                              base[s][i][t].mean)
                        << "session " << s << " event " << i
                        << " slice " << t;
                    EXPECT_EQ((*other)[s][i][t].stddev,
                              base[s][i][t].stddev)
                        << "session " << s << " event " << i
                        << " slice " << t;
                }
            }
        }
    }
}

TEST(MonitorService, ConcurrentSessionsStreamConcurrently)
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 4;
    cfg.sessionDefaults.streaming.inference = testInference();
    MonitorService daemon(uarch(), cfg);

    constexpr std::size_t kSessions = 6;
    constexpr std::size_t kSlices = 18;

    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s)
        ids.push_back(daemon.open(monitoredSet()));
    const auto monitored = daemon.monitoredEvents(ids[0]);

    // One producer thread per session, replaying slice by slice.
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < kSessions; ++s) {
        producers.emplace_back([&daemon, &monitored, id = ids[s], s] {
            const auto run = measuredRun(monitored, kSlices, 500 + s);
            for (std::size_t t = 0; t < kSlices; ++t)
                daemon.ingestBatch(id, sliceRecords(run, t));
        });
    }
    for (auto &p : producers)
        p.join();
    daemon.quiesce();

    // Every session assembled every slice except the one still under
    // assembly (the assembler can't know slice N-1 ended).
    const ServiceStats mid = daemon.stats();
    EXPECT_EQ(mid.sessionsLive, kSessions);
    EXPECT_EQ(mid.totals.recordsDropped, 0u);
    EXPECT_EQ(mid.totals.slicesAssembled, kSessions * (kSlices - 1));
    EXPECT_GT(mid.totals.windowsRun, 0u);

    const sim::EventId llc = uarch().idForRole(sim::Role::LlcMiss);
    for (SessionId id : ids) {
        const auto point = daemon.latest(id, llc);
        ASSERT_TRUE(point.has_value());
        EXPECT_GT(point->stddev, 0.0);
    }

    for (SessionId id : ids) {
        const auto report = daemon.close(id);
        ASSERT_TRUE(report.has_value());
        EXPECT_EQ(report->stats.slicesAssembled, kSlices);
        EXPECT_EQ(report->posterior.series.front().size(), kSlices);
        EXPECT_GT(report->stats.windowSeconds.count(), 0u);
    }
    EXPECT_EQ(daemon.openSessions(), 0u);
}

} // namespace
} // namespace service
} // namespace bperf
