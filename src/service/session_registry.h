/**
 * @file
 * Sharded map of live monitoring sessions.
 *
 * Lookup is on the ingestion hot path — every record batch resolves a
 * session id — so the table is split into independently locked shards
 * to keep producer threads for different sessions from contending on
 * one mutex.  Ids are dense, so shard selection is a simple modulus.
 */

#ifndef BPERF_SERVICE_SESSION_REGISTRY_H
#define BPERF_SERVICE_SESSION_REGISTRY_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "service/session.h"

namespace bperf {
namespace service {

/**
 * Thread-safe session table.  Sessions are held by shared_ptr: a
 * producer or worker that resolved a session keeps it alive even if a
 * concurrent close() removes it from the table.
 */
class SessionRegistry
{
  public:
    explicit SessionRegistry(std::size_t num_shards = 16);

    /** Reserve the next session id (ids are never reused). */
    SessionId allocateId();

    /** Insert a session under its id.  Dies on duplicate ids. */
    void insert(std::shared_ptr<Session> session);

    /** Resolve an id; nullptr if closed or never opened. */
    std::shared_ptr<Session> find(SessionId id) const;

    /** Remove and return a session; nullptr if absent. */
    std::shared_ptr<Session> erase(SessionId id);

    /** Live session count. */
    std::size_t size() const;

    /** Visit every live session (shard at a time, under its lock). */
    void forEach(const std::function<void(const Session &)> &fn) const;

    std::size_t numShards() const { return shards_.size(); }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<SessionId, std::shared_ptr<Session>> sessions;
    };

    Shard &shardFor(SessionId id) { return *shards_[id % shards_.size()]; }
    const Shard &shardFor(SessionId id) const
    {
        return *shards_[id % shards_.size()];
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<SessionId> nextId_{1};
};

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_SESSION_REGISTRY_H
