# Empty compiler generated dependencies file for bench_fig7_normalized_improvement.
# This may be replaced when dependencies are built.
