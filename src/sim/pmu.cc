#include "sim/pmu.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace bperf {
namespace sim {

std::size_t
CounterAssignment::used() const
{
    std::size_t n = 0;
    for (EventId e : slots)
        if (e != kNoEvent)
            ++n;
    return n;
}

Pmu::Pmu(const MicroarchDescriptor &uarch) : uarch_(uarch) {}

std::optional<CounterAssignment>
Pmu::assign(const std::vector<EventId> &events) const
{
    const std::size_t n_prog = uarch_.numProgrammableCounters();
    if (events.size() > n_prog)
        return std::nullopt;

    std::size_t msrs_needed = 0;
    for (EventId e : events) {
        const EventDef &def = uarch_.event(e);
        bp_assert(!def.fixed, "cannot place fixed event " << def.name);
        if (def.needsOffcoreMsr)
            ++msrs_needed;
    }
    if (msrs_needed > uarch_.numOffcoreMsrs())
        return std::nullopt;

    // Most-constrained-first ordering, as Linux's scheduler does.
    std::vector<EventId> order = events;
    std::sort(order.begin(), order.end(), [&](EventId a, EventId b) {
        const auto pa = std::popcount(uarch_.event(a).counterMask);
        const auto pb = std::popcount(uarch_.event(b).counterMask);
        if (pa != pb)
            return pa < pb;
        return a < b;
    });

    std::vector<EventId> slots(n_prog, kNoEvent);
    if (!assignRecursive(order, 0, slots, uarch_.numOffcoreMsrs()))
        return std::nullopt;
    return CounterAssignment{std::move(slots)};
}

bool
Pmu::assignRecursive(const std::vector<EventId> &order, std::size_t next,
                     std::vector<EventId> &slots,
                     std::size_t msrs_left) const
{
    if (next == order.size())
        return true;
    const EventDef &def = uarch_.event(order[next]);
    if (def.needsOffcoreMsr) {
        if (msrs_left == 0)
            return false;
        --msrs_left;
    }
    for (std::size_t c = 0; c < slots.size(); ++c) {
        if (slots[c] != kNoEvent)
            continue;
        if (!(def.counterMask & (1u << c)))
            continue;
        slots[c] = def.id;
        if (assignRecursive(order, next + 1, slots, msrs_left))
            return true;
        slots[c] = kNoEvent;
    }
    return false;
}

bool
Pmu::validate(const std::vector<EventId> &events) const
{
    return assign(events).has_value();
}

std::vector<std::vector<EventId>>
Pmu::packIntoConfigs(const std::vector<EventId> &events) const
{
    std::vector<std::vector<EventId>> configs;
    std::vector<EventId> pending = events;
    while (!pending.empty()) {
        std::vector<EventId> config;
        std::vector<EventId> rest;
        for (EventId e : pending) {
            config.push_back(e);
            if (!validate(config)) {
                config.pop_back();
                rest.push_back(e);
            }
        }
        bp_assert(!config.empty(),
                  "event cannot be scheduled on any counter: "
                      << uarch_.event(pending.front()).name);
        configs.push_back(std::move(config));
        pending = std::move(rest);
    }
    return configs;
}

} // namespace sim
} // namespace bperf
