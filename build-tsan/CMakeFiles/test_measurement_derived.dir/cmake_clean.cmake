file(REMOVE_RECURSE
  "CMakeFiles/test_measurement_derived.dir/tests/test_measurement_derived.cpp.o"
  "CMakeFiles/test_measurement_derived.dir/tests/test_measurement_derived.cpp.o.d"
  "test_measurement_derived"
  "test_measurement_derived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurement_derived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
