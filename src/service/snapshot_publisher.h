/**
 * @file
 * The service end of the posterior snapshot shim: a WindowSink that
 * mirrors every completed window's posterior summary into a
 * shim::SnapshotRegion, beside (not instead of) the SubscriptionHub.
 * Subscriptions are the push surface; the snapshot table is the
 * pull/poll surface — consumers in other processes attach with
 * shim::SnapshotReader and poll wait-free, no RPC in their hot path.
 *
 * Policy lives here: slot ownership (one slot per exported session,
 * allocated at open and invalidated at close), refusal of sessions
 * that do not fit the table (too many sessions, or more events than
 * a slot holds), and drop accounting for windows that had no slot.
 */

#ifndef BPERF_SERVICE_SNAPSHOT_PUBLISHER_H
#define BPERF_SERVICE_SNAPSHOT_PUBLISHER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/subscription.h"
#include "shim/snapshot_region.h"

namespace bperf {
namespace service {

/** Snapshot-shim configuration (MonitorServiceConfig::snapshot). */
struct SnapshotConfig
{
    /** Master switch: no region is created when disabled. */
    bool enabled = false;

    /**
     * POSIX shm name of the exported segment (e.g. "/bperf-daemon").
     * Empty keeps the table in-process only — same code and layout,
     * readable through MonitorService::snapshotRegion(), which is
     * what tests and single-process consumers use.
     */
    std::string shmName;

    /** Slot table geometry (see shim::SnapshotRegionConfig). */
    std::size_t slots = 64;
    std::size_t maxEvents = 32;
};

/** Publish-side accounting, surfaced through ServiceStats. */
struct SnapshotPublisherStats
{
    bool enabled = false;
    /** Windows mirrored into the table. */
    std::uint64_t publishes = 0;
    /** Windows with no slot (table full at open, or the session
     * monitors more events than a slot holds). */
    std::uint64_t publishDrops = 0;
    /** Sessions currently owning a slot. */
    std::size_t slotsLive = 0;
    /** Slot capacity of the table. */
    std::size_t slotCapacity = 0;
};

/**
 * Slot allocator + seqlock writer over one SnapshotRegion.
 *
 * Thread contract: allocate()/release() from the service's open/close
 * paths (any thread, internally locked); publish() for one slot from
 * one thread at a time (the per-session WindowSink guarantee);
 * stats() from any thread.
 */
class SnapshotPublisher
{
  public:
    /**
     * Pseudo-session id of the service's self-metrics slot.  Real
     * session ids start at 1 (SessionRegistry), so 0 is free to mean
     * "the monitor itself" — shim readers see it as just another
     * session whose "events" are telemetry metric ids and whose
     * posterior means are the metric values.
     */
    static constexpr std::uint64_t kSelfMetricsSessionId = 0;

    /** One self-metric, exported shim-style as (event id, value). */
    struct SelfMetric
    {
        sim::EventId id = 0;
        double value = 0.0;
    };

    explicit SnapshotPublisher(const SnapshotConfig &config);

    /**
     * Claim a slot for a session about to be exported; nullopt when
     * the table is full or the session's events exceed a slot's
     * capacity (the session still runs — it is just not exported,
     * and its windows count as publishDrops).
     */
    std::optional<std::size_t> allocate(std::uint64_t session_id,
                                        std::size_t event_count);

    /** Invalidate and reclaim the session's slot (close path).  A
     * session that never got a slot is a no-op. */
    void release(std::uint64_t session_id);

    /** Mirror one completed window into `slot` (seqlock write,
     * wait-free; stamps the publish with the steady clock). */
    void publish(std::size_t slot, const WindowUpdate &update);

    /** Count one window that had nowhere to go (slotless session). */
    void countDrop();

    /**
     * Publish the monitor's own metrics under kSelfMetricsSessionId
     * — the paper's consumer interface, dogfooded: shim_reader in
     * another process watches the monitor like any tenant.  Lazily
     * claims a slot on first call (false when the table is full);
     * metrics beyond a slot's event capacity are truncated.  Callers
     * serialize publishes internally (any thread may call).
     */
    bool publishSelfMetrics(const std::vector<SelfMetric> &metrics);

    /** Stamp the region's writer-liveness word with "now" (publishes
     * stamp it implicitly; idle writers call this on a keepalive
     * cadence). */
    void heartbeat() { region_.heartbeat(shim::steadyNowNanos()); }

    SnapshotPublisherStats stats() const;

    /** The exported table (in-process readers attach to this). */
    const shim::SnapshotRegion &region() const { return region_; }

  private:
    shim::SnapshotRegion region_;

    /** Windows with no slot; successful publishes are counted by the
     * region header itself (readers watch the same word). */
    std::atomic<std::uint64_t> drops_{0};

    /** Guards the slot table (open/close paths only). */
    mutable std::mutex mutex_;
    std::vector<bool> slotUsed_;
    std::map<std::uint64_t, std::size_t> slotOf_;

    /** Serializes self-metrics publishes (one writer per slot). */
    std::mutex selfMutex_;
    std::optional<std::size_t> selfSlot_;
    std::uint64_t selfWindow_ = 0;
    /** Reusable scratch for self-metrics publishes: shaped as a
     * WindowUpdate so they flow through the one publish() path. */
    WindowUpdate selfUpdate_;
};

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_SNAPSHOT_PUBLISHER_H
