#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "telemetry/telemetry.h"

namespace bperf {
namespace detail {

namespace {
std::atomic<bool> g_verbose{false};

/** Serializes log lines emitted by concurrent service workers. */
std::mutex g_emit_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

/**
 * Mirror Warn/Error (and fatal terminations) into the telemetry
 * registry, before any verbosity gate and regardless of the enable
 * flag: "how many times did something go wrong" must never depend on
 * what was printed or whether collection was on.
 */
void
countLevel(LogLevel level)
{
    static telemetry::Counter &warnings =
        telemetry::MetricsRegistry::global().counter("log.warnings");
    static telemetry::Counter &errors =
        telemetry::MetricsRegistry::global().counter("log.errors");
    if (level == LogLevel::Warn)
        warnings.addAlways();
    else if (level != LogLevel::Inform)
        errors.addAlways();
}
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
emit(LogLevel level, const std::string &msg)
{
    countLevel(level);
    if (!g_verbose && (level == LogLevel::Inform || level == LogLevel::Warn))
        return;
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
terminate(LogLevel level, const std::string &msg, const char *file, int line)
{
    countLevel(level);
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelName(level), file, line,
                 msg.c_str());
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace bperf
