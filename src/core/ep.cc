#include "core/ep.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/quad_kernel.h"

namespace bperf {
namespace core {

using graph::FactorGraph;
using graph::FactorKind;
using graph::Gaussian;
using graph::GaussianSolver;

namespace {

/**
 * Grid setup shared by every quadrature entry point: cover both the
 * cavity and the likelihood bulk, then hand the uniform grid to the
 * requested kernel.  All x-independent terms of the two log-densities
 * are dropped (they shift all weights equally and cancel in the
 * normalized moments), so the kernels evaluate only one log1p and one
 * exp per grid point.
 */
void
quadMomentsOnGrid(double cavity_mean, double cavity_var, double loc,
                  double scale, double nu, std::size_t points,
                  QuadKernelFn kernel, double &mean_out, double &var_out)
{
    bp_assert(cavity_var > 0.0, "quadrature needs proper cavity");
    bp_assert(points >= 9, "too few quadrature points");
    const double cavity_sd = std::sqrt(cavity_var);

    QuadParams p;
    p.lo = std::min(cavity_mean - 8.0 * cavity_sd, loc - 10.0 * scale);
    const double hi = std::max(cavity_mean + 8.0 * cavity_sd,
                               loc + 10.0 * scale);
    p.step = (hi - p.lo) / static_cast<double>(points - 1);
    p.points = points;
    p.cavityMean = cavity_mean;
    p.invSd = 1.0 / cavity_sd;
    p.loc = loc;
    p.invScale = 1.0 / scale;
    p.halfNup1 = 0.5 * (nu + 1.0);
    p.invNu = 1.0 / nu;
    kernel(p, mean_out, var_out);
}

/**
 * One site's moment-matched damped update (Alg. 1 lines 3-7), shared
 * by the sequential and partitioned sweep schedules: computes the
 * cavity and tilted moments, commits the damped site approximation
 * and folds its delta into `site_sums`, and accumulates the relative
 * mean change into `max_rel_change`.  Returns false (touching
 * nothing) when the cavity is improper or degenerate; `delta_out` is
 * valid only on true.  Bringing the *joint* up to date with
 * `delta_out` is the caller's job — that is where the two schedules
 * differ.
 */
template <typename Site>
bool
momentMatchSite(const FactorGraph &graph, Site &site,
                std::vector<Gaussian> &site_sums, double marg_mean,
                double marg_var, const EpConfig &config, QuadKernelFn quad,
                double damping, std::uint64_t mcmc_seed, Gaussian &delta_out,
                double &max_rel_change)
{
    const graph::VarId v = site.var;
    if (marg_var <= 0.0)
        return false;
    const Gaussian marginal = Gaussian::fromMeanVar(marg_mean, marg_var);
    const Gaussian cavity = marginal / site.approx;
    // Degenerate cavity: skip when the division leaves less than 1e-9
    // of the marginal precision.  True rounding noise appears near
    // 1e-16 of the marginal; the margin is deliberately conservative —
    // a cavity carrying under a billionth of the precision contributes
    // nothing real to moment matching, and near the noise floor its
    // sign is arbitrary.  Subsumes the classic improper (lambda <= 0)
    // case.
    if (!(cavity.lambda * marg_var > 1e-9))
        return false;

    double tilt_mean = 0.0, tilt_var = 0.0;
    if (config.method == MomentMethod::Quadrature) {
        quadMomentsOnGrid(cavity.mean(), cavity.variance(), site.loc,
                          site.scale, site.nu, config.quadraturePoints, quad,
                          tilt_mean, tilt_var);
    } else {
        tiltedMomentsMcmc(cavity.mean(), cavity.variance(), site.loc,
                          site.scale, site.nu, config.mcmcSamples,
                          config.mcmcBurnin, mcmc_seed, tilt_mean, tilt_var);
    }

    const Gaussian tilted = Gaussian::fromMeanVar(tilt_mean, tilt_var);
    Gaussian updated = tilted / cavity;
    // Keep sites proper: clamping retains stability without changing
    // the fixed point in practice.
    if (updated.lambda < 0.0)
        updated = Gaussian::flat();

    const double d = damping;
    const Gaussian damped(d * updated.lambda + (1.0 - d) * site.approx.lambda,
                          d * updated.eta + (1.0 - d) * site.approx.eta);

    const double scale_hint = graph.variable(v).scaleHint;
    const double old_mean =
        site.approx.isProper() ? site.approx.mean() : site.loc;
    const double new_mean = damped.isProper() ? damped.mean() : site.loc;
    max_rel_change = std::max(max_rel_change,
                              std::abs(new_mean - old_mean) / scale_hint);

    delta_out = damped / site.approx;
    site.approx = damped;
    site_sums[v] = site_sums[v] * delta_out;
    return true;
}

std::size_t
clampedBlockSize(const EpConfig &config)
{
    return std::min(std::max<std::size_t>(config.blockSize, 1),
                    graph::BlockedJointUpdater::kMaxBlockSize);
}

} // namespace

void
tiltedMomentsQuadrature(double cavity_mean, double cavity_var, double loc,
                        double scale, double nu, std::size_t points,
                        double &mean_out, double &var_out)
{
    quadMomentsOnGrid(cavity_mean, cavity_var, loc, scale, nu, points,
                      activeQuadKernel(), mean_out, var_out);
}

void
tiltedMomentsQuadratureScalar(double cavity_mean, double cavity_var,
                              double loc, double scale, double nu,
                              std::size_t points, double &mean_out,
                              double &var_out)
{
    quadMomentsOnGrid(cavity_mean, cavity_var, loc, scale, nu, points,
                      quadMomentsScalar, mean_out, var_out);
}

void
tiltedMomentsMcmc(double cavity_mean, double cavity_var, double loc,
                  double scale, double nu, std::size_t samples,
                  std::size_t burnin, std::uint64_t seed, double &mean_out,
                  double &var_out)
{
    bp_assert(cavity_var > 0.0, "MCMC needs proper cavity");
    bp_assert(samples >= 16, "too few MCMC samples");
    Rng rng(seed);
    const double cavity_sd = std::sqrt(cavity_var);

    // Constant-free log-target: the dropped normalizers cancel in the
    // Metropolis accept ratio exactly as they do in quadrature.
    const double inv_sd = 1.0 / cavity_sd;
    const double inv_scale = 1.0 / scale;
    const double half_nup1 = 0.5 * (nu + 1.0);
    const double inv_nu = 1.0 / nu;
    auto log_target = [&](double x) {
        const double u = (x - cavity_mean) * inv_sd;
        const double t = (x - loc) * inv_scale;
        return -0.5 * u * u - half_nup1 * std::log1p(t * t * inv_nu);
    };

    // Random-walk Metropolis with a proposal matched to the tighter
    // of cavity and likelihood (the AcMC2-generated samplers do the
    // equivalent tuning at compile time).
    const double prop_sd = std::min(cavity_sd, scale) * 1.5;
    double x = (cavity_mean / cavity_var + loc / (scale * scale)) /
               (1.0 / cavity_var + 1.0 / (scale * scale));
    double lx = log_target(x);

    RunningStats stats;
    for (std::size_t i = 0; i < burnin + samples; ++i) {
        const double cand = x + rng.normal(0.0, prop_sd);
        const double lc = log_target(cand);
        if (lc >= lx || rng.uniform() < std::exp(lc - lx)) {
            x = cand;
            lx = lc;
        }
        if (i >= burnin)
            stats.push(x);
    }
    mean_out = stats.mean();
    // Guard against degenerate chains (all rejections).
    var_out = std::max(stats.variance(),
                       1e-6 * std::min(cavity_var, scale * scale));
}

std::size_t
EpWorkspace::totalAllocations() const
{
    std::size_t total = grows_ + scratch_.grows + solver_.bufferGrows();
    for (const Lane &lane : lanes_)
        total += lane.scratch.grows;
    return total;
}

ExpectationPropagation::ExpectationPropagation(EpConfig config)
    : config_(config)
{
}

EpResult
ExpectationPropagation::run(const FactorGraph &graph) const
{
    EpWorkspace ws;
    return run(graph, ws);
}

EpResult
ExpectationPropagation::run(const FactorGraph &graph, EpWorkspace &ws) const
{
    EpResult result;
    // Pre-size the fresh result so its (one-time) growth is not
    // charged to the workspace accounting, matching the persistent-
    // result overload's steady state.
    result.mean.reserve(graph.numVariables());
    result.stddev.reserve(graph.numVariables());
    run(graph, ws, result);
    return result;
}

void
ExpectationPropagation::run(const FactorGraph &graph, EpWorkspace &ws,
                            EpResult &result) const
{
    const std::size_t n = graph.numVariables();
    const std::size_t grows_before = ws.totalAllocations();
    ++ws.runs_;

    result.sweeps = 0;
    result.converged = false;
    result.skippedUpdates = 0;
    result.momentEvaluations = 0;
    result.rank1Updates = 0;
    result.fullSolves = 0;
    result.blockFlushes = 0;
    result.deferredUpdates = 0;
    result.workspaceAllocations = 0;

    GaussianSolver &solver = ws.solver_;
    solver.rebind(graph);

    // Collect the Student-t factors; each owns one site.
    const auto &t_factors = graph.factorsOfKind(FactorKind::StudentT);
    if (ws.sites_.capacity() < t_factors.size())
        ++ws.grows_;
    ws.sites_.clear();
    for (graph::FactorId fid : t_factors) {
        const auto &f = graph.factor(fid);
        EpWorkspace::Site s;
        s.var = f.vars[0];
        s.loc = f.loc;
        s.scale = f.scale;
        s.nu = f.nu;
        // Initialize sites at a moment-matched Gaussian of the
        // likelihood (variance of a Student-t, inflated when nu <= 2).
        const double t_var = s.nu > 2.0
                                 ? s.scale * s.scale * s.nu / (s.nu - 2.0)
                                 : 9.0 * s.scale * s.scale;
        s.approx = Gaussian::fromMeanVar(s.loc, t_var);
        ws.sites_.push_back(s);
    }

    if (ws.siteByVar_.capacity() < n)
        ++ws.grows_;
    ws.siteByVar_.assign(n, Gaussian::flat());
    for (const auto &s : ws.sites_)
        ws.siteByVar_[s.var] = ws.siteByVar_[s.var] * s.approx;
    solver.solveInto(ws.siteByVar_, ws.joint_, ws.scratch_);
    ++result.fullSolves;

    if (config_.partitions > 1 &&
        config_.jointStrategy == JointStrategy::Rank1 && !ws.sites_.empty())
        runSweepsPartitioned(graph, ws, result);
    else
        runSweepsSequential(graph, ws, result);

    if (result.mean.capacity() < n || result.stddev.capacity() < n)
        ++ws.grows_;
    result.mean.resize(n);
    result.stddev.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        result.mean[v] = ws.joint_.mean[v];
        result.stddev[v] =
            std::sqrt(std::max(ws.joint_.covariance(v, v), 0.0));
    }
    result.workspaceAllocations = ws.totalAllocations() - grows_before;
}

void
ExpectationPropagation::runSweepsSequential(const FactorGraph &graph,
                                            EpWorkspace &ws,
                                            EpResult &result) const
{
    const std::size_t n = graph.numVariables();
    GaussianSolver &solver = ws.solver_;
    const QuadKernelFn quad =
        config_.simdQuadrature ? activeQuadKernel() : quadMomentsScalar;
    const bool incremental = config_.jointStrategy == JointStrategy::Rank1;
    graph::BlockedJointUpdater updater(
        ws.joint_, ws.scratch_, incremental ? clampedBlockSize(config_) : 1);

    std::size_t updates_since_refactor = 0;
    auto full_solve = [&]() {
        // Anything pending is superseded by the fresh factorization,
        // and the per-variable site sums are rebuilt from scratch so
        // the re-factorized joint carries no additive drift.
        updater.discard();
        ws.siteByVar_.assign(n, Gaussian::flat());
        for (const auto &s : ws.sites_)
            ws.siteByVar_[s.var] = ws.siteByVar_[s.var] * s.approx;
        solver.solveInto(ws.siteByVar_, ws.joint_, ws.scratch_);
        ++result.fullSolves;
        updates_since_refactor = 0;
    };

    Rng rng(config_.seed);

    // Damping protects the early sweeps, where parallel conflicts
    // between coupled sites are large; near the fixed point it only
    // slows the geometric tail.  Once a sweep's total movement is
    // within 20x tolerance AND still shrinking, run undamped; any
    // sweep that fails to shrink (e.g. an undamped limit cycle)
    // restores the damped factor.
    double damping = config_.damping;
    double prev_change = 1e300;

    for (std::size_t sweep = 0; sweep < config_.maxSweeps; ++sweep) {
        ++result.sweeps;
        double max_rel_change = 0.0;

        for (auto &site : ws.sites_) {
            const graph::VarId v = site.var;
            // marginalVariance sees the stored diagonal corrected for
            // the pending block — exactly what the one-at-a-time
            // chain would read; the mean is maintained eagerly.
            const double marg_var = updater.marginalVariance(v);
            const double marg_mean = ws.joint_.mean[v];
            const std::uint64_t mcmc_seed =
                config_.method == MomentMethod::Mcmc ? rng() : 0;

            Gaussian delta;
            if (!momentMatchSite(graph, site, ws.siteByVar_, marg_mean,
                                 marg_var, config_, quad, damping, mcmc_seed,
                                 delta, max_rel_change)) {
                ++result.skippedUpdates;
                continue;
            }
            ++result.momentEvaluations;
            if (delta.lambda == 0.0 && delta.eta == 0.0)
                continue;

            // Bring the joint up to date with this one site change.
            if (!incremental) {
                solver.solveInto(ws.siteByVar_, ws.joint_, ws.scratch_);
                ++result.fullSolves;
            } else if (config_.refactorInterval > 0 &&
                       updates_since_refactor >= config_.refactorInterval) {
                full_solve();
            } else if (updater.push(v, delta.lambda, delta.eta)) {
                ++result.rank1Updates;
                ++updates_since_refactor;
            } else {
                // Downdate refused (near-improper joint): recover with
                // a fresh factorization.
                full_solve();
            }
        }

        if (max_rel_change < config_.tolerance) {
            result.converged = true;
            break;
        }
        damping = (max_rel_change < 20.0 * config_.tolerance &&
                   max_rel_change < prev_change)
                      ? 1.0
                      : config_.damping;
        prev_change = max_rel_change;
    }

    // Apply any still-pending downdates so the stored covariance is
    // current for result extraction.
    updater.flush();
    result.blockFlushes += updater.flushes();
}

void
ExpectationPropagation::runSweepsPartitioned(const FactorGraph &graph,
                                             EpWorkspace &ws,
                                             EpResult &result) const
{
    const std::size_t n = graph.numVariables();
    const std::size_t num_sites = ws.sites_.size();
    GaussianSolver &solver = ws.solver_;
    const QuadKernelFn quad =
        config_.simdQuadrature ? activeQuadKernel() : quadMomentsScalar;
    const std::size_t block_size = clampedBlockSize(config_);

    // The shared partitioning pass (also consumed by the accelerator
    // model via WindowJob): contiguous variable-id bands, one per
    // engine lane.
    if (ws.plan_.partitionOfSite.capacity() < num_sites ||
        ws.plan_.siteCounts.capacity() < config_.partitions)
        ++ws.grows_;
    graph::partitionSites(graph, config_.partitions, ws.plan_);
    const std::size_t P = ws.plan_.numPartitions;

    if (ws.lanes_.capacity() < P)
        ++ws.grows_;
    ws.lanes_.resize(P);
    for (EpWorkspace::Lane &lane : ws.lanes_) {
        if (lane.joint.mean.capacity() < n ||
            lane.joint.covariance.capacity() < n * n)
            ++ws.grows_;
    }

    const std::size_t T = std::min(
        std::max<std::size_t>(config_.partitionThreads, 1), P);
    if (T > 1 && ws.threads_.capacity() < T - 1)
        ++ws.grows_;

    double damping = config_.damping;
    double prev_change = 1e300;

    for (std::size_t sweep = 0; sweep < config_.maxSweeps; ++sweep) {
        ++result.sweeps;

        // Phase A prep (serial): freeze the sweep-start joint into
        // every lane and zero the per-sweep counters.  Copy-assign
        // reuses lane capacity, so steady-state sweeps allocate
        // nothing.
        for (EpWorkspace::Lane &lane : ws.lanes_) {
            lane.joint = ws.joint_;
            lane.skipped = 0;
            lane.moments = 0;
            lane.rank1 = 0;
            lane.deferred = 0;
            lane.flushes = 0;
            lane.maxRelChange = 0.0;
        }

        // Phase A (parallelizable): every lane updates its own sites
        // against its frozen joint.  Lanes own disjoint sites and
        // disjoint variables (the plan maps whole variables), so the
        // shared writes — ws.sites_[i].approx and ws.siteByVar_[v] —
        // touch distinct elements; the arithmetic per lane does not
        // depend on scheduling, which is what makes the posterior
        // bit-identical for any thread count.
        auto lane_work = [&](std::size_t p) {
            EpWorkspace::Lane &lane = ws.lanes_[p];
            graph::BlockedJointUpdater updater(lane.joint, lane.scratch,
                                               block_size);
            for (std::size_t i = 0; i < num_sites; ++i) {
                if (ws.plan_.partitionOfSite[i] != p)
                    continue;
                EpWorkspace::Site &site = ws.sites_[i];
                const graph::VarId v = site.var;
                const double marg_var = updater.marginalVariance(v);
                const double marg_mean = lane.joint.mean[v];
                // Deterministic per-(sweep, site) seed: MCMC draws
                // must not depend on lane interleaving.
                const std::uint64_t mcmc_seed =
                    config_.seed +
                    0x9E3779B97F4A7C15ull *
                        static_cast<std::uint64_t>(sweep * num_sites + i + 1);

                Gaussian delta;
                if (!momentMatchSite(graph, site, ws.siteByVar_, marg_mean,
                                     marg_var, config_, quad, damping,
                                     mcmc_seed, delta, lane.maxRelChange)) {
                    ++lane.skipped;
                    continue;
                }
                ++lane.moments;
                if (delta.lambda == 0.0 && delta.eta == 0.0)
                    continue;
                if (updater.push(v, delta.lambda, delta.eta)) {
                    ++lane.rank1;
                } else {
                    // A lane never re-factorizes (that would depend on
                    // lane state, not the graph): the site change is
                    // committed and the merge solve below carries it.
                    ++lane.deferred;
                }
            }
            // The lane joint is discarded at the merge; whatever is
            // still pending need not be applied.
            updater.discard();
            lane.flushes = updater.flushes();
        };

        if (T > 1) {
            ws.threads_.clear();
            for (std::size_t t = 1; t < T; ++t)
                ws.threads_.emplace_back([&lane_work, t, T, P]() {
                    for (std::size_t p = t; p < P; p += T)
                        lane_work(p);
                });
            for (std::size_t p = 0; p < P; p += T)
                lane_work(p);
            for (std::thread &th : ws.threads_)
                th.join();
            ws.threads_.clear();
        } else {
            for (std::size_t p = 0; p < P; ++p)
                lane_work(p);
        }

        // Phase B (serial): merge counters — max and sums are
        // order-independent — then synchronize the controller's joint
        // with one full solve over the freshly rebuilt site sums.
        double max_rel_change = 0.0;
        for (const EpWorkspace::Lane &lane : ws.lanes_) {
            result.skippedUpdates += lane.skipped;
            result.momentEvaluations += lane.moments;
            result.rank1Updates += lane.rank1;
            result.deferredUpdates += lane.deferred;
            result.blockFlushes += lane.flushes;
            max_rel_change = std::max(max_rel_change, lane.maxRelChange);
        }

        ws.siteByVar_.assign(n, Gaussian::flat());
        for (const auto &s : ws.sites_)
            ws.siteByVar_[s.var] = ws.siteByVar_[s.var] * s.approx;
        solver.solveInto(ws.siteByVar_, ws.joint_, ws.scratch_);
        ++result.fullSolves;

        if (max_rel_change < config_.tolerance) {
            result.converged = true;
            break;
        }
        damping = (max_rel_change < 20.0 * config_.tolerance &&
                   max_rel_change < prev_change)
                      ? 1.0
                      : config_.damping;
        prev_change = max_rel_change;
    }
}

} // namespace core
} // namespace bperf
