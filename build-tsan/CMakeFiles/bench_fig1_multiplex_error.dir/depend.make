# Empty dependencies file for bench_fig1_multiplex_error.
# This may be replaced when dependencies are built.
