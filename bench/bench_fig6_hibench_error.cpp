/**
 * @file
 * Reproduces Fig. 6 and the section 6.2 aggregates: error in
 * performance counter measurements across the 29 HiBench workloads
 * for Linux, CounterMiner and BayesPerf, on the x86 and ppc64
 * configurations.
 *
 * Paper shape: Linux ~39.25% (x86) / 40.1% (ppc64); CounterMiner
 * ~29.28% / 28.31%; BayesPerf 8.06% / 7.6% (4.87x / 5.28x reduction).
 */

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    const auto x86 = sim::makeX86Skylake();
    const auto ppc = sim::makePower9();

    TablePrinter table({"workload", "Linux(x86)", "Linux(ppc64)", "CM(x86)",
                        "CM(ppc64)", "BayesPerf(x86)", "BayesPerf(ppc64)"});

    RunningStats linux_x86, linux_ppc, cm_x86, cm_ppc, bp_x86, bp_ppc;

    std::uint64_t seed = 5000;
    for (const auto &name : wl::hibenchNames()) {
        const auto workload = wl::makeHibench(name);

        bench::ComparisonConfig cfg;
        cfg.numSlices = bench::defaultSlices();
        cfg.truthSeed = ++seed;
        cfg.samplingSeed = seed * 31;
        cfg.pollSeed = seed * 57;

        const auto ex = bench::compareEstimators(
            x86, workload, bench::evaluationEventSet(x86), cfg);
        const auto ep = bench::compareEstimators(
            ppc, workload, bench::evaluationEventSet(ppc), cfg);

        table.addRow(name,
                     {ex[0].derivedErrorPct, ep[0].derivedErrorPct,
                      ex[1].derivedErrorPct, ep[1].derivedErrorPct,
                      ex[2].derivedErrorPct, ep[2].derivedErrorPct},
                     1);
        linux_x86.push(ex[0].derivedErrorPct);
        linux_ppc.push(ep[0].derivedErrorPct);
        cm_x86.push(ex[1].derivedErrorPct);
        cm_ppc.push(ep[1].derivedErrorPct);
        bp_x86.push(ex[2].derivedErrorPct);
        bp_ppc.push(ep[2].derivedErrorPct);
    }

    std::cout << "# Fig. 6: error in performance counter measurements "
                 "across HiBench\n";
    table.print(std::cout);

    std::cout << "\n# Section 6.2 aggregates (paper: Linux 39.25/40.1, "
                 "CM 29.28/28.31, BayesPerf 8.06/7.6)\n";
    TablePrinter agg({"estimator", "x86 avg err %", "ppc64 avg err %",
                      "x86 reduction", "ppc64 reduction"});
    agg.addRow("Linux", {linux_x86.mean(), linux_ppc.mean(), 1.0, 1.0});
    agg.addRow("CounterMiner",
               {cm_x86.mean(), cm_ppc.mean(),
                linux_x86.mean() / cm_x86.mean(),
                linux_ppc.mean() / cm_ppc.mean()});
    agg.addRow("BayesPerf",
               {bp_x86.mean(), bp_ppc.mean(),
                linux_x86.mean() / bp_x86.mean(),
                linux_ppc.mean() / bp_ppc.mean()});
    agg.print(std::cout);
    return 0;
}
