/** @file Tests for the shared-memory posterior snapshot shim:
 * seqlock write/read round trips (bit-identical doubles), torn-write
 * retry under a hammering writer, readers attaching before the first
 * publish, slot invalidation on session close, the service publisher
 * mirroring the subscription stream bit for bit, and cross-process
 * reads through a forked child attached to a named POSIX shm
 * segment.  The in-process tests run under TSan in CI; the fork
 * tests are skipped there (fork + TSan runtime do not mix). */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "shim/snapshot_reader.h"
#include "shim/snapshot_region.h"
#include "sim/ground_truth.h"
#include "telemetry/telemetry.h"
#include "workloads/hibench.h"

#if defined(__SANITIZE_THREAD__)
#define BPERF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BPERF_TSAN 1
#endif
#endif

namespace bperf {
namespace shim {
namespace {

/** Unique POSIX shm name per test process (parallel ctest runs). */
std::string
uniqueShmName(const char *tag)
{
    return std::string("/bperf-test-") + tag + "-" +
           std::to_string(::getpid());
}

core::WindowExecution
sampleExecution()
{
    core::WindowExecution exec;
    exec.engineId = 3;
    exec.endSlice = 17;
    exec.queueWaitSeconds = 1.25e-4;
    exec.serviceSeconds = 2.5e-4;
    exec.transferSeconds = 0.5e-4;
    exec.modeledSeconds = 3.75e-4;
    return exec;
}

TEST(SnapshotRegion, WriteReadRoundTripBitIdentical)
{
    SnapshotRegion region(SnapshotRegionConfig{4, 8});
    SnapshotReader reader(region);

    // Values chosen to catch any text or float-rounding path: bit
    // patterns must survive exactly, including -0.0 and subnormals.
    const std::vector<sim::EventId> events = {7, 11, 900001};
    std::vector<core::PosteriorPoint> posterior(3);
    posterior[0] = {1.0 / 3.0, 5e-324};
    posterior[1] = {-0.0, 1.2345678901234567e8};
    posterior[2] = {6.02214076e23, 2.0 / 7.0};

    region.write(/*slot=*/2, /*session_id=*/42, /*window_index=*/9,
                 /*end_slice=*/17, sampleExecution(), events, posterior,
                 /*publish_nanos=*/123456789);

    PosteriorSnapshot snap;
    ASSERT_EQ(reader.read(42, snap), ReadStatus::Ok);
    EXPECT_EQ(snap.sessionId, 42u);
    EXPECT_EQ(snap.windowIndex, 9u);
    EXPECT_EQ(snap.endSlice, 17u);
    EXPECT_EQ(snap.publishNanos, 123456789u);
    EXPECT_EQ(snap.retries, 0u);
    EXPECT_EQ(snap.execution.engineId, 3u);
    EXPECT_EQ(doubleBits(snap.execution.queueWaitSeconds),
              doubleBits(1.25e-4));
    EXPECT_EQ(doubleBits(snap.execution.modeledSeconds),
              doubleBits(3.75e-4));
    ASSERT_EQ(snap.counters.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(snap.counters[i].event, events[i]);
        EXPECT_EQ(doubleBits(snap.counters[i].posterior.mean),
                  doubleBits(posterior[i].mean));
        EXPECT_EQ(doubleBits(snap.counters[i].posterior.stddev),
                  doubleBits(posterior[i].stddev));
    }
    EXPECT_EQ(region.publishes(), 1u);
    EXPECT_EQ(reader.publishes(), 1u);
}

TEST(SnapshotReader, AttachBeforeFirstPublishSeesNothing)
{
    SnapshotRegion region(SnapshotRegionConfig{4, 8});
    SnapshotReader reader(region);

    EXPECT_EQ(reader.publishes(), 0u);
    EXPECT_TRUE(reader.sessions().empty());
    PosteriorSnapshot snap;
    EXPECT_EQ(reader.read(1, snap), ReadStatus::NotFound);
    for (std::size_t slot = 0; slot < reader.slots(); ++slot)
        EXPECT_EQ(reader.readSlot(slot, snap), ReadStatus::NotFound);
}

TEST(SnapshotRegion, InvalidateHidesSlotAndAllowsReuse)
{
    SnapshotRegion region(SnapshotRegionConfig{2, 4});
    SnapshotReader reader(region);
    const std::vector<sim::EventId> events = {1, 2};
    const std::vector<core::PosteriorPoint> posterior = {{10.0, 1.0},
                                                         {20.0, 2.0}};

    region.write(0, 7, 0, 5, sampleExecution(), events, posterior, 1);
    PosteriorSnapshot snap;
    ASSERT_EQ(reader.read(7, snap), ReadStatus::Ok);

    region.invalidate(0);
    EXPECT_EQ(reader.read(7, snap), ReadStatus::NotFound);
    EXPECT_EQ(reader.readSlot(0, snap), ReadStatus::NotFound);
    EXPECT_TRUE(reader.sessions().empty());

    // A successor session can take the slot over; only it is visible.
    region.write(0, 8, 0, 6, sampleExecution(), events, posterior, 2);
    ASSERT_EQ(reader.read(8, snap), ReadStatus::Ok);
    EXPECT_EQ(snap.sessionId, 8u);
    EXPECT_EQ(reader.read(7, snap), ReadStatus::NotFound);
}

TEST(SnapshotReader, TornWritesRetriedNeverReturned)
{
    // One writer hammering a slot with a self-consistent pattern
    // (every field derived from the window index); a reader polling
    // concurrently must only ever observe consistent snapshots —
    // torn reads surface as retries or ReadStatus::Torn, never as a
    // mixed payload.
    constexpr std::size_t kEvents = 13;
    SnapshotRegion region(SnapshotRegionConfig{2, kEvents});

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::vector<sim::EventId> events(kEvents);
        std::vector<core::PosteriorPoint> posterior(kEvents);
        std::uint64_t w = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            ++w;
            for (std::size_t i = 0; i < kEvents; ++i) {
                events[i] = static_cast<sim::EventId>(w % 1000 + i);
                posterior[i].mean = static_cast<double>(w * kEvents + i);
                posterior[i].stddev =
                    static_cast<double>(w * kEvents + i) + 0.5;
            }
            core::WindowExecution exec;
            exec.engineId = static_cast<std::size_t>(w % 7);
            exec.modeledSeconds = static_cast<double>(w) * 1e-9;
            region.write(0, /*session_id=*/1, w, /*end_slice=*/w + 3,
                         exec, events, posterior, /*publish_nanos=*/w);
        }
    });

    SnapshotReader reader(region);
    std::uint64_t ok_reads = 0;
    std::uint64_t torn_reads = 0;
    std::uint64_t retried_reads = 0;
    PosteriorSnapshot snap;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    while (std::chrono::steady_clock::now() < deadline) {
        const ReadStatus status = reader.readSlot(0, snap);
        if (status == ReadStatus::Torn) {
            ++torn_reads;
            continue;
        }
        if (status != ReadStatus::Ok)
            continue; // writer has not published yet
        ++ok_reads;
        if (snap.retries > 0)
            ++retried_reads;
        const std::uint64_t w = snap.windowIndex;
        ASSERT_EQ(snap.endSlice, w + 3);
        ASSERT_EQ(snap.publishNanos, w);
        ASSERT_EQ(snap.execution.engineId, w % 7);
        ASSERT_EQ(doubleBits(snap.execution.modeledSeconds),
                  doubleBits(static_cast<double>(w) * 1e-9));
        ASSERT_EQ(snap.counters.size(), kEvents);
        for (std::size_t i = 0; i < kEvents; ++i) {
            ASSERT_EQ(snap.counters[i].event,
                      static_cast<sim::EventId>(w % 1000 + i));
            ASSERT_EQ(doubleBits(snap.counters[i].posterior.mean),
                      doubleBits(static_cast<double>(w * kEvents + i)));
            ASSERT_EQ(
                doubleBits(snap.counters[i].posterior.stddev),
                doubleBits(static_cast<double>(w * kEvents + i) + 0.5));
        }
    }
    stop.store(true);
    writer.join();
    // The reader must have made progress against the hammering
    // writer.  Torn outcomes are legal in any ratio: on a single
    // core, a writer descheduled mid-publish leaves the sequence odd
    // for a whole scheduler quantum and every read in it is torn —
    // what is never legal is an inconsistent payload, asserted above
    // for every one of the (typically hundreds of thousands of)
    // successful reads.
    EXPECT_GT(ok_reads, 100u);
    EXPECT_GT(region.publishes(), 0u);
    (void)torn_reads;    // ratio is scheduling-dependent
    (void)retried_reads; // informational; contention is not guaranteed
}

TEST(SnapshotReader, FrozenOddSequenceReportsWriterDead)
{
    SnapshotRegion region(SnapshotRegionConfig{2, 4});
    // Forge a stalled publish: bump the slot sequence to odd and
    // leave it there, exactly the state a writer dying mid-burst
    // leaves behind.
    auto *slot = slotAt(const_cast<std::byte *>(region.base()),
                        region.layout(), 1);
    slot->sessionId.store(9, std::memory_order_relaxed);
    slot->active.store(1, std::memory_order_relaxed);
    slot->seq.store(1, std::memory_order_release);

    SnapshotReader reader(region);
    PosteriorSnapshot snap;
    EXPECT_EQ(reader.readSlot(1, snap), ReadStatus::WriterDead);
    // The by-session scan reports the dead slot over NotFound: the
    // stalled slot *could* hold the requested session, and a retry
    // loop keyed on Torn would spin forever against it.
    EXPECT_EQ(reader.read(9, snap), ReadStatus::WriterDead);
    // Untouched slots are unaffected.
    EXPECT_EQ(reader.readSlot(0, snap), ReadStatus::NotFound);
    EXPECT_STREQ(readStatusName(ReadStatus::WriterDead), "writer-dead");
}

TEST(SnapshotReader, OddSequenceFirstSeenMidScanStillReportsWriterDead)
{
    // Regression (PR 8): the PR 7 detector armed only on the odd
    // value observed by attempt 0, so a slot that advanced to a *new*
    // odd value mid-scan and then froze was reported Torn forever —
    // recreating the spin-forever loop WriterDead exists to break.
    SnapshotRegion region(SnapshotRegionConfig{2, 4});
    auto *slot = slotAt(const_cast<std::byte *>(region.base()),
                        region.layout(), 1);
    slot->sessionId.store(9, std::memory_order_relaxed);
    slot->active.store(1, std::memory_order_relaxed);
    slot->seq.store(1, std::memory_order_release);

    SnapshotReader reader(region);
    // Deterministic mid-scan death: attempt 0 sees the slot odd on 1
    // (arming the old detector on that value), then the writer
    // "advances" to odd 3 before attempt 1 and dies there.  Every
    // remaining attempt re-sees 3 — a majority-of-budget freeze.
    reader.setRetryProbe([&](std::size_t attempt) {
        if (attempt == 1)
            slot->seq.store(3, std::memory_order_release);
    });
    PosteriorSnapshot snap;
    EXPECT_EQ(reader.readSlot(1, snap), ReadStatus::WriterDead);

    // The verdict is quarantined: the next probe is answered from the
    // quarantine table (no fresh retry loop) until the sequence moves.
    reader.setRetryProbe(nullptr);
    EXPECT_EQ(reader.read(9, snap), ReadStatus::WriterDead);
    const ReaderStats stats = reader.stats();
    EXPECT_EQ(stats.deadReads, 2u);
    EXPECT_GE(stats.quarantineSkips, 1u);
    EXPECT_EQ(stats.quarantinedSlots, 1u);
}

TEST(SnapshotReader, FlippedPayloadWordReadsCorruptNeverOk)
{
    SnapshotRegion region(SnapshotRegionConfig{2, 4});
    const std::vector<sim::EventId> events = {1, 2};
    const std::vector<core::PosteriorPoint> posterior = {{10.0, 1.0},
                                                         {20.0, 2.0}};
    region.write(0, 5, 0, 3, sampleExecution(), events, posterior, 1);

    SnapshotReader reader(region);
    PosteriorSnapshot snap;
    ASSERT_EQ(reader.readSlot(0, snap), ReadStatus::Ok);

    // Flip one bit of one posterior word outside any seqlock window:
    // the sequence stays stable and even, so only the checksum can
    // catch it — and must, on the by-slot read, the by-session scan,
    // and the session listing alike.
    auto *slot = slotAt(const_cast<std::byte *>(region.base()),
                        region.layout(), 0);
    slot->events()[0].meanBits.fetch_xor(1ull << 17,
                                         std::memory_order_relaxed);
    EXPECT_EQ(reader.readSlot(0, snap), ReadStatus::Corrupt);
    EXPECT_EQ(reader.read(5, snap), ReadStatus::Corrupt);
    EXPECT_TRUE(reader.sessions().empty());
    EXPECT_STREQ(readStatusName(ReadStatus::Corrupt), "corrupt");

    const ReaderStats stats = reader.stats();
    EXPECT_EQ(stats.corruptReads, 2u);
    EXPECT_EQ(stats.quarantinedSlots, 1u);
    EXPECT_GE(stats.quarantineSkips, 1u);

    // The next publish overwrites the flipped word and moves the
    // sequence, which lifts the quarantine: detection is per-payload,
    // not a permanent verdict on the slot.
    region.write(0, 5, 1, 4, sampleExecution(), events, posterior, 2);
    ASSERT_EQ(reader.readSlot(0, snap), ReadStatus::Ok);
    EXPECT_EQ(snap.windowIndex, 1u);
    EXPECT_EQ(reader.stats().quarantinedSlots, 0u);
}

TEST(SnapshotReader, SessionsReportsScanHealth)
{
    // Regression (PR 8): sessions() used to silently drop degraded
    // slots, so an enumerating consumer concluded those sessions were
    // gone.  The scan now reports how every slot answered.
    SnapshotRegion region(SnapshotRegionConfig{4, 4});
    const std::vector<sim::EventId> events = {1};
    const std::vector<core::PosteriorPoint> posterior = {{4.0, 0.5}};
    region.write(0, 5, 0, 3, sampleExecution(), events, posterior, 1);
    region.write(2, 6, 0, 3, sampleExecution(), events, posterior, 1);

    // Slot 1: frozen odd (writer died mid-publish).  Slot 2: flipped
    // payload word.  Slot 3: never published.
    auto *dead = slotAt(const_cast<std::byte *>(region.base()),
                        region.layout(), 1);
    dead->seq.store(1, std::memory_order_release);
    auto *flipped = slotAt(const_cast<std::byte *>(region.base()),
                           region.layout(), 2);
    flipped->sessionId.fetch_xor(1ull << 9, std::memory_order_relaxed);

    SnapshotReader reader(region);
    ScanHealth health;
    const auto ids = reader.sessions(&health);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 5u);
    EXPECT_EQ(health.active, 1u);
    EXPECT_EQ(health.empty, 1u);
    EXPECT_EQ(health.torn, 0u);
    EXPECT_EQ(health.writerDead, 1u);
    EXPECT_EQ(health.corrupt, 1u);
    EXPECT_EQ(health.degraded(), 2u);
}

TEST(SnapshotReader, WriterHeartbeatTracksPublishes)
{
    SnapshotRegion region(SnapshotRegionConfig{1, 2});
    SnapshotReader reader(region);
    // Creation stamps the first heartbeat; a publish re-stamps it
    // with the publish time; an explicit heartbeat() covers idle
    // writers between publishes.
    EXPECT_GT(reader.writerHeartbeatNanos(), 0u);
    const std::vector<sim::EventId> events = {1};
    const std::vector<core::PosteriorPoint> posterior = {{4.0, 0.5}};
    region.write(0, 1, 0, 1, sampleExecution(), events, posterior,
                 steadyNowNanos());
    EXPECT_LT(reader.writerIdleNanos(), 60ull * 1000000000ull);
    const std::uint64_t beat = steadyNowNanos();
    region.heartbeat(beat);
    EXPECT_EQ(reader.writerHeartbeatNanos(), beat);
}

TEST(SnapshotReader, AttachToMissingSegmentFails)
{
    const AttachResult result =
        SnapshotReader::attach(uniqueShmName("missing"));
    EXPECT_FALSE(result);
    EXPECT_TRUE(result.retryable());
    EXPECT_EQ(result.status, AttachStatus::NoSegment);
    EXPECT_STREQ(attachStatusName(result.status), "no-segment");
}

TEST(SnapshotReader, AttachToNamedSegmentSameProcess)
{
    const std::string name = uniqueShmName("named");
    SnapshotRegion region(SnapshotRegionConfig{3, 4}, name);
    EXPECT_EQ(region.shmName(), name);

    AttachResult attached = SnapshotReader::attach(name);
    ASSERT_TRUE(attached);
    EXPECT_EQ(attached.status, AttachStatus::Ok);
    auto &reader = attached.reader;
    EXPECT_EQ(reader->slots(), 3u);
    EXPECT_EQ(reader->maxEvents(), 4u);

    const std::vector<sim::EventId> events = {5};
    const std::vector<core::PosteriorPoint> posterior = {{3.5, 0.25}};
    region.write(1, 77, 4, 9, sampleExecution(), events, posterior, 11);

    PosteriorSnapshot snap;
    ASSERT_EQ(reader->read(77, snap), ReadStatus::Ok);
    EXPECT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(doubleBits(snap.counters[0].posterior.mean),
              doubleBits(3.5));
}

#ifndef BPERF_TSAN

/** Wire format the forked child streams back over a pipe. */
struct WireCounter
{
    std::uint64_t event;
    std::uint64_t meanBits;
    std::uint64_t stddevBits;
};
struct WireSnapshot
{
    std::uint64_t status; // ReadStatus as int
    std::uint64_t sessionId;
    std::uint64_t windowIndex;
    std::uint64_t endSlice;
    std::uint64_t modeledBits;
    std::uint64_t count;
};

/** Child side: attach to `name` (with retry), read `session_id`,
 * stream the snapshot over `fd`, exit 0 on success. */
void
childReadAndReport(const std::string &name, std::uint64_t session_id,
                   int fd)
{
    std::optional<SnapshotReader> reader;
    for (int i = 0; i < 500 && !reader; ++i) {
        AttachResult attach = SnapshotReader::attach(name);
        if (attach)
            reader = std::move(attach.reader);
        else
            ::usleep(2000);
    }
    WireSnapshot wire{};
    PosteriorSnapshot snap;
    if (!reader) {
        wire.status = 99;
        (void)!::write(fd, &wire, sizeof(wire));
        ::_exit(2);
    }
    ReadStatus status = ReadStatus::NotFound;
    for (int i = 0; i < 500; ++i) {
        status = reader->read(session_id, snap);
        if (status == ReadStatus::Ok)
            break;
        ::usleep(2000);
    }
    wire.status = static_cast<std::uint64_t>(status);
    wire.sessionId = snap.sessionId;
    wire.windowIndex = snap.windowIndex;
    wire.endSlice = snap.endSlice;
    wire.modeledBits = doubleBits(snap.execution.modeledSeconds);
    wire.count = snap.counters.size();
    if (::write(fd, &wire, sizeof(wire)) != sizeof(wire))
        ::_exit(3);
    for (const auto &counter : snap.counters) {
        WireCounter wc{counter.event,
                       doubleBits(counter.posterior.mean),
                       doubleBits(counter.posterior.stddev)};
        if (::write(fd, &wc, sizeof(wc)) != sizeof(wc))
            ::_exit(3);
    }
    ::_exit(status == ReadStatus::Ok ? 0 : 1);
}

/** Parent side: read the child's wire snapshot. */
bool
readWire(int fd, WireSnapshot &wire, std::vector<WireCounter> &counters)
{
    if (::read(fd, &wire, sizeof(wire)) != sizeof(wire))
        return false;
    counters.resize(wire.count);
    for (auto &wc : counters) {
        if (::read(fd, &wc, sizeof(wc)) != sizeof(wc))
            return false;
    }
    return true;
}

TEST(SnapshotCrossProcess, ForkedChildReadsBitIdenticalSnapshot)
{
    const std::string name = uniqueShmName("fork");
    SnapshotRegion region(SnapshotRegionConfig{4, 8}, name);

    const std::vector<sim::EventId> events = {3, 1400};
    const std::vector<core::PosteriorPoint> posterior = {
        {1.0 / 3.0, 7.25e-3}, {9.87654321e6, 2.0 / 3.0}};
    core::WindowExecution exec = sampleExecution();
    region.write(1, /*session_id=*/1234, /*window_index=*/6,
                 /*end_slice=*/41, exec, events, posterior,
                 /*publish_nanos=*/55);

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(fds[0]);
        childReadAndReport(name, 1234, fds[1]);
    }
    ::close(fds[1]);
    WireSnapshot wire{};
    std::vector<WireCounter> counters;
    ASSERT_TRUE(readWire(fds[0], wire, counters));
    ::close(fds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    EXPECT_EQ(wire.status,
              static_cast<std::uint64_t>(ReadStatus::Ok));
    EXPECT_EQ(wire.sessionId, 1234u);
    EXPECT_EQ(wire.windowIndex, 6u);
    EXPECT_EQ(wire.endSlice, 41u);
    EXPECT_EQ(wire.modeledBits, doubleBits(exec.modeledSeconds));
    ASSERT_EQ(counters.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(counters[i].event, events[i]);
        EXPECT_EQ(counters[i].meanBits, doubleBits(posterior[i].mean));
        EXPECT_EQ(counters[i].stddevBits,
                  doubleBits(posterior[i].stddev));
    }
}

TEST(SnapshotCrossProcess, WriterKilledMidPublishReportsWriterDead)
{
    const std::string name = uniqueShmName("dead");
    SnapshotRegion region(SnapshotRegionConfig{4, 8}, name);

    // A healthy session in slot 0: the dead slot must not hide it.
    const std::vector<sim::EventId> events = {3};
    const std::vector<core::PosteriorPoint> posterior = {{2.5, 0.5}};
    region.write(0, /*session_id=*/7, /*window_index=*/1,
                 /*end_slice=*/5, sampleExecution(), events, posterior,
                 /*publish_nanos=*/10);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: begin publishing session 42 into slot 2 of the
        // shared named segment, then die before the closing sequence
        // increment — the slot stays odd forever.
        auto *slot = slotAt(const_cast<std::byte *>(region.base()),
                            region.layout(), 2);
        slot->sessionId.store(42, std::memory_order_relaxed);
        slot->active.store(1, std::memory_order_relaxed);
        slot->seq.store(1, std::memory_order_release);
        ::kill(::getpid(), SIGKILL);
        ::_exit(9); // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    SnapshotReader reader(region);
    PosteriorSnapshot snap;
    // The killed writer's slot is reported dead, not endlessly torn.
    EXPECT_EQ(reader.readSlot(2, snap), ReadStatus::WriterDead);
    EXPECT_EQ(reader.read(42, snap), ReadStatus::WriterDead);
    // The live session still reads fine through the same scan.
    ASSERT_EQ(reader.read(7, snap), ReadStatus::Ok);
    EXPECT_EQ(snap.sessionId, 7u);
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(doubleBits(snap.counters[0].posterior.mean),
              doubleBits(2.5));
}

#endif // !BPERF_TSAN

} // namespace
} // namespace shim

namespace service {
namespace {

const sim::MicroarchDescriptor &
uarch()
{
    static const sim::MicroarchDescriptor u = sim::makeX86Skylake();
    return u;
}

std::vector<sim::EventId>
monitoredSet()
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch().fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch().idForRole(r));
    return events;
}

sim::PerfResult
measuredRun(const std::vector<sim::EventId> &monitored,
            std::size_t num_slices, std::uint64_t seed)
{
    const sim::GroundTruthGenerator generator(
        uarch(), wl::makeHibench("KMeans"));
    const sim::TruthTrace truth = generator.generate(num_slices, seed);
    sim::PerfSessionConfig cfg;
    cfg.seed = seed * 3 + 1;
    sim::PerfSession session(uarch(), cfg);
    return session.runRoundRobin(truth, monitored);
}

MonitorServiceConfig
snapshotServiceConfig(std::size_t slots = 8, std::size_t max_events = 32,
                      std::string shm_name = {})
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;
    cfg.snapshot.enabled = true;
    cfg.snapshot.slots = slots;
    cfg.snapshot.maxEvents = max_events;
    cfg.snapshot.shmName = std::move(shm_name);
    return cfg;
}

TEST(MonitorService, SnapshotMirrorsSubscriptionStreamBitIdentical)
{
    MonitorService daemon(uarch(), snapshotServiceConfig());
    ASSERT_NE(daemon.snapshotRegion(), nullptr);
    const SessionId id = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(id);

    std::mutex mutex;
    std::vector<WindowUpdate> updates;
    const auto sub = daemon.subscribe(id, [&](const WindowUpdate &u) {
        std::lock_guard<std::mutex> lock(mutex);
        updates.push_back(u);
    });
    ASSERT_TRUE(sub.has_value());

    const auto run = measuredRun(monitored, 24, 7001);
    daemon.ingestBatch(id, recordStream(run));
    daemon.quiesce();
    daemon.flushSubscriptions();

    // The table now holds the latest completed window; it must be the
    // same window the subscription stream saw last, bit for bit.
    shim::SnapshotReader reader(*daemon.snapshotRegion());
    shim::PosteriorSnapshot snap;
    ASSERT_EQ(reader.read(id, snap), shim::ReadStatus::Ok);
    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_FALSE(updates.empty());
        const WindowUpdate &last = updates.back();
        EXPECT_EQ(snap.sessionId, last.sessionId);
        EXPECT_EQ(snap.windowIndex, last.windowIndex);
        EXPECT_EQ(snap.endSlice, last.endSlice);
        EXPECT_EQ(shim::doubleBits(snap.execution.modeledSeconds),
                  shim::doubleBits(last.execution.modeledSeconds));
        EXPECT_EQ(shim::doubleBits(snap.execution.queueWaitSeconds),
                  shim::doubleBits(last.execution.queueWaitSeconds));
        ASSERT_EQ(snap.counters.size(), last.events.size());
        ASSERT_EQ(snap.counters.size(), last.posterior.size());
        for (std::size_t i = 0; i < snap.counters.size(); ++i) {
            EXPECT_EQ(snap.counters[i].event, last.events[i]);
            EXPECT_EQ(shim::doubleBits(snap.counters[i].posterior.mean),
                      shim::doubleBits(last.posterior[i].mean));
            EXPECT_EQ(
                shim::doubleBits(snap.counters[i].posterior.stddev),
                shim::doubleBits(last.posterior[i].stddev));
        }
    }
    const auto sessions = reader.sessions();
    ASSERT_EQ(sessions.size(), 1u);
    EXPECT_EQ(sessions[0], id);

    // Closing the session invalidates its slot; the tail windows the
    // close ran were still published first.  Flush before touching
    // `updates` again — the close's tail publishes are still being
    // dispatched to the callback.
    const auto report = daemon.close(id);
    ASSERT_TRUE(report.has_value());
    daemon.flushSubscriptions();
    EXPECT_EQ(reader.read(id, snap), shim::ReadStatus::NotFound);
    EXPECT_TRUE(reader.sessions().empty());

    const ServiceStats stats = daemon.stats();
    EXPECT_TRUE(stats.snapshot.enabled);
    EXPECT_EQ(stats.snapshot.publishes, report->stats.windowsRun);
    EXPECT_EQ(stats.snapshot.publishDrops, 0u);
    EXPECT_EQ(stats.snapshot.slotsLive, 0u);
    EXPECT_EQ(stats.snapshot.slotCapacity, 8u);
}

TEST(MonitorService, SnapshotTableFullDropsAndCounts)
{
    // One slot, two sessions: the second runs un-exported and its
    // windows are counted as snapshot drops.
    MonitorService daemon(uarch(), snapshotServiceConfig(/*slots=*/1));
    const SessionId first = daemon.open(monitoredSet());
    const SessionId second = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(first);
    const auto run = measuredRun(monitored, 18, 7002);
    daemon.ingestBatch(first, recordStream(run));
    daemon.ingestBatch(second, recordStream(run));
    daemon.quiesce();

    shim::SnapshotReader reader(*daemon.snapshotRegion());
    const auto sessions = reader.sessions();
    ASSERT_EQ(sessions.size(), 1u);
    EXPECT_EQ(sessions[0], first);
    shim::PosteriorSnapshot snap;
    EXPECT_EQ(reader.read(second, snap), shim::ReadStatus::NotFound);

    const ServiceStats stats = daemon.stats();
    EXPECT_GT(stats.snapshot.publishes, 0u);
    EXPECT_GT(stats.snapshot.publishDrops, 0u);
    EXPECT_EQ(stats.snapshot.slotsLive, 1u);

    // Closing the exported session frees its slot for a newcomer.
    daemon.close(first);
    const SessionId third = daemon.open(monitoredSet());
    daemon.ingestBatch(third, recordStream(run));
    daemon.quiesce();
    ASSERT_EQ(reader.read(third, snap), shim::ReadStatus::Ok);
    daemon.close(third);
    daemon.close(second);
}

TEST(MonitorService, SelfMetricsPublishRecordsTelemetry)
{
    // Regression (PR 8): publishSelfMetrics used to bypass the
    // publisher's publish() path, bumping shim.publishes itself but
    // never recording shim.publish_ns — self-metrics publishes are
    // ordinary publishes and must hit the same telemetry.
    auto &registry = telemetry::MetricsRegistry::global();
    const bool was_enabled = telemetry::enabled();
    telemetry::setEnabled(true);
    const std::uint64_t counter0 =
        registry.counterValue("shim.publishes");
    const std::uint64_t histogram0 =
        registry.histogramSnapshot("shim.publish_ns").count;

    MonitorService daemon(uarch(), snapshotServiceConfig());
    EXPECT_TRUE(daemon.publishSelfMetrics());
    EXPECT_EQ(registry.counterValue("shim.publishes"), counter0 + 1);
    EXPECT_EQ(registry.histogramSnapshot("shim.publish_ns").count,
              histogram0 + 1);

    // And the reader sees the metrics as pseudo-session 0.
    shim::SnapshotReader reader(*daemon.snapshotRegion());
    shim::PosteriorSnapshot snap;
    ASSERT_EQ(reader.read(0, snap), shim::ReadStatus::Ok);
    EXPECT_FALSE(snap.counters.empty());
    telemetry::setEnabled(was_enabled);
}

TEST(MonitorService, OversizedEventSetRunsUnexported)
{
    // maxEvents smaller than the monitored set: the session is
    // admitted and infers normally, it just never reaches the table.
    MonitorService daemon(
        uarch(), snapshotServiceConfig(/*slots=*/4, /*max_events=*/2));
    const SessionId id = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(id);
    const auto run = measuredRun(monitored, 18, 7003);
    daemon.ingestBatch(id, recordStream(run));
    daemon.quiesce();

    shim::SnapshotReader reader(*daemon.snapshotRegion());
    EXPECT_TRUE(reader.sessions().empty());
    const ServiceStats stats = daemon.stats();
    EXPECT_EQ(stats.snapshot.publishes, 0u);
    EXPECT_GT(stats.snapshot.publishDrops, 0u);

    const auto report = daemon.close(id);
    ASSERT_TRUE(report.has_value());
    EXPECT_GT(report->stats.windowsRun, 0u);
}

#ifndef BPERF_TSAN

TEST(MonitorService, ForkedShimReaderSeesServicePosteriors)
{
    // The acceptance scenario end to end: a daemon exporting over
    // named shm, a forked consumer attaching read-only and observing
    // the same posterior the in-process subscription stream saw, bit
    // for bit, across the process boundary.
    const std::string name = shim::uniqueShmName("service");
    MonitorService daemon(
        uarch(), snapshotServiceConfig(8, 32, name));
    const SessionId id = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(id);

    std::mutex mutex;
    std::vector<WindowUpdate> updates;
    const auto sub = daemon.subscribe(id, [&](const WindowUpdate &u) {
        std::lock_guard<std::mutex> lock(mutex);
        updates.push_back(u);
    });
    ASSERT_TRUE(sub.has_value());

    const auto run = measuredRun(monitored, 24, 7004);
    daemon.ingestBatch(id, recordStream(run));
    daemon.quiesce();
    daemon.flushSubscriptions();

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(fds[0]);
        shim::childReadAndReport(name, id, fds[1]);
    }
    ::close(fds[1]);
    shim::WireSnapshot wire{};
    std::vector<shim::WireCounter> counters;
    ASSERT_TRUE(shim::readWire(fds[0], wire, counters));
    ::close(fds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_FALSE(updates.empty());
        const WindowUpdate &last = updates.back();
        EXPECT_EQ(wire.sessionId, id);
        EXPECT_EQ(wire.windowIndex, last.windowIndex);
        EXPECT_EQ(wire.endSlice, last.endSlice);
        EXPECT_EQ(wire.modeledBits,
                  shim::doubleBits(last.execution.modeledSeconds));
        ASSERT_EQ(counters.size(), last.posterior.size());
        for (std::size_t i = 0; i < counters.size(); ++i) {
            EXPECT_EQ(counters[i].event, last.events[i]);
            EXPECT_EQ(counters[i].meanBits,
                      shim::doubleBits(last.posterior[i].mean));
            EXPECT_EQ(counters[i].stddevBits,
                      shim::doubleBits(last.posterior[i].stddev));
        }
    }
    daemon.close(id);
    daemon.flushSubscriptions(); // close's tail publishes still in flight
}

#endif // !BPERF_TSAN

} // namespace
} // namespace service
} // namespace bperf
