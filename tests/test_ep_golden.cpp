/**
 * @file
 * Golden-posterior regression suite for the EP fast path.
 *
 * The rank-1 rewrite of the EP inner loop (Sherman-Morrison joint
 * updates + fused quadrature) must not move posteriors.  Two locks:
 *
 *  1. Strategy agreement: for every case, JointStrategy::Rank1 and
 *     JointStrategy::DenseResolve (full re-solve after every site
 *     update, same schedule) agree within 1e-6 relative tolerance.
 *
 *  2. Golden fixtures: recorded posteriors in
 *     tests/data/golden_posteriors.json, covering k in {2, 4, 6},
 *     both MomentMethods, and a degenerate-cavity graph that
 *     exercises the skippedUpdates paths.  Any future change of the
 *     numerical core that moves a posterior beyond tolerance fails
 *     here first.
 *
 * Regenerate fixtures (after an INTENDED numerical change) with:
 *     BP_REGEN_GOLDEN=1 ./test_ep_golden
 * which rewrites the JSON in the source tree; re-run without the
 * variable to verify, and review the diff like any other code change.
 */

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ep.h"
#include "graph/exact.h"
#include "graph/factor_graph.h"

#ifndef BPERF_TEST_DATA_DIR
#define BPERF_TEST_DATA_DIR "tests/data"
#endif

namespace bperf {
namespace core {
namespace {

using graph::FactorGraph;

constexpr double kStrategyRelTol = 1e-6;
constexpr double kGoldenRelTol = 1e-6;

// ---------------------------------------------------------------- cases

struct GoldenCase
{
    std::string name;
    std::size_t k = 2;          // slices per window graph
    MomentMethod method = MomentMethod::Quadrature;
    bool degenerate = false;    // engineer improper cavities
};

std::vector<GoldenCase>
goldenCases()
{
    std::vector<GoldenCase> cases;
    for (std::size_t k : {2u, 4u, 6u}) {
        for (MomentMethod m :
             {MomentMethod::Quadrature, MomentMethod::Mcmc}) {
            GoldenCase c;
            c.k = k;
            c.method = m;
            c.name = "k" + std::to_string(k) + "_" +
                     (m == MomentMethod::Quadrature ? "quadrature" : "mcmc");
            cases.push_back(c);
        }
    }
    GoldenCase d;
    d.k = 4;
    d.method = MomentMethod::Quadrature;
    d.degenerate = true;
    d.name = "k4_quadrature_degenerate";
    cases.push_back(d);
    return cases;
}

/**
 * A window-shaped graph: E events x k slices, with per-event random
 * walks, a cross-event invariant per slice, carry-style priors on the
 * first slice, and Student-t measurements — event magnitudes spanning
 * five orders so the scaled solve and the rank-1 conditioning guards
 * are both exercised.  Deterministic per (k, degenerate).
 */
FactorGraph
makeWindowGraph(std::size_t k, bool degenerate)
{
    constexpr std::size_t E = 5;
    const double level[E] = {1e9, 2.5e8, 1.25e9, 3.0e4, 7.0e6};
    FactorGraph g;
    Rng rng(1234 + k);

    std::vector<std::vector<graph::VarId>> var(E);
    for (std::size_t e = 0; e < E; ++e) {
        for (std::size_t t = 0; t < k; ++t)
            var[e].push_back(g.addVariable(
                "e" + std::to_string(e) + "_t" + std::to_string(t),
                level[e]));
    }

    for (std::size_t e = 0; e < E; ++e) {
        // Carry prior on the first slice.
        g.addGaussianPrior("carry", var[e][0], level[e], 0.3 * level[e]);
        // Random walk along slices.
        for (std::size_t t = 0; t + 1 < k; ++t)
            g.addLinearGaussian("walk",
                                {{var[e][t], 1.0}, {var[e][t + 1], -1.0}},
                                0.0, 0.1 * level[e]);
    }
    // Invariant: e0 + e1 = e2 at every slice (tight).
    for (std::size_t t = 0; t < k; ++t)
        g.addLinearGaussian(
            "inv",
            {{var[0][t], 1.0}, {var[1][t], 1.0}, {var[2][t], -1.0}}, 0.0,
            0.01 * level[2]);

    // Measurements: most (event, slice) pairs observed, mixed nu.
    for (std::size_t e = 0; e < E; ++e) {
        for (std::size_t t = 0; t < k; ++t) {
            if ((e + t) % 4 == 3)
                continue; // multiplexed away
            const double obs =
                level[e] * (1.0 + 0.2 * rng.normal());
            const double nu = (e % 2 == 0) ? 3.0 : 30.0;
            g.addStudentT("m", var[e][t], obs, 0.08 * level[e], nu);
        }
    }

    if (degenerate) {
        // One measurement ~17 orders tighter than everything else on
        // its variable: the site precision swallows the rest of the
        // marginal precision below double resolution, so the cavity
        // division cancels to an improper (<= 0 precision) Gaussian
        // and EP must take the skippedUpdates path every sweep.
        g.addStudentT("tight", var[3][0], 0.9e4, 1e-6, 3.0);
    }
    return g;
}

EpResult
runCase(const GoldenCase &c, JointStrategy strategy)
{
    const FactorGraph g = makeWindowGraph(c.k, c.degenerate);
    EpConfig cfg;
    cfg.method = c.method;
    cfg.jointStrategy = strategy;
    // A low refactor interval would mask drift; keep the default so
    // the suite tests what production runs.
    ExpectationPropagation ep(cfg);
    return ep.run(g);
}

// ------------------------------------------------- minimal JSON reader

/**
 * Parser for the subset of JSON the fixture uses: objects, arrays,
 * numbers, strings (no escapes), booleans.
 */
struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &at(const std::string &key) const
    {
        auto it = fields.find(key);
        EXPECT_TRUE(it != fields.end()) << "missing JSON key: " << key;
        static const JsonValue kNull;
        return it == fields.end() ? kNull : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing JSON garbage";
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void expect(char c)
    {
        skipWs();
        ASSERT_LT(pos_, text_.size()) << "unexpected end of JSON";
        ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
        ++pos_;
    }

    JsonValue parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        return parseNumber();
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.fields[key.str] = parseValue();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue parseString()
    {
        JsonValue v;
        v.kind = JsonValue::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"')
            v.str.push_back(text_[pos_++]);
        expect('"');
        return v;
    }

    JsonValue parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else {
            EXPECT_EQ(text_.compare(pos_, 5, "false"), 0);
            v.boolean = false;
            pos_ += 5;
        }
        return v;
    }

    JsonValue parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Number;
        skipWs();
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        v.number = std::strtod(text_.substr(pos_, end - pos_).c_str(),
                               nullptr);
        pos_ = end;
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

std::string
fixturePath()
{
    return std::string(BPERF_TEST_DATA_DIR) + "/golden_posteriors.json";
}

bool
regenRequested()
{
    const char *env = std::getenv("BP_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void
writeFixture(const std::vector<GoldenCase> &cases,
             const std::vector<EpResult> &results)
{
    std::ofstream out(fixturePath());
    ASSERT_TRUE(out.good()) << "cannot write " << fixturePath();
    out.precision(17);
    out << "{\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &c = cases[i];
        const auto &r = results[i];
        out << "    {\n"
            << "      \"name\": \"" << c.name << "\",\n"
            << "      \"k\": " << c.k << ",\n"
            << "      \"method\": \""
            << (c.method == MomentMethod::Quadrature ? "quadrature"
                                                     : "mcmc")
            << "\",\n"
            << "      \"degenerate\": "
            << (c.degenerate ? "true" : "false") << ",\n"
            << "      \"converged\": " << (r.converged ? "true" : "false")
            << ",\n"
            << "      \"skippedUpdates\": " << r.skippedUpdates << ",\n"
            << "      \"mean\": [";
        for (std::size_t v = 0; v < r.mean.size(); ++v)
            out << (v ? ", " : "") << r.mean[v];
        out << "],\n      \"stddev\": [";
        for (std::size_t v = 0; v < r.stddev.size(); ++v)
            out << (v ? ", " : "") << r.stddev[v];
        out << "]\n    }" << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

void
expectClose(double actual, double expected, double rel_tol,
            const std::string &what)
{
    const double denom = std::max(std::abs(expected), 1e-30);
    EXPECT_LE(std::abs(actual - expected) / denom, rel_tol) << what;
}

// ----------------------------------------------------------------- tests

TEST(GoldenPosteriors, Rank1AgreesWithDenseResolve)
{
    for (const GoldenCase &c : goldenCases()) {
        const EpResult fast = runCase(c, JointStrategy::Rank1);
        const EpResult dense = runCase(c, JointStrategy::DenseResolve);
        ASSERT_EQ(fast.mean.size(), dense.mean.size()) << c.name;
        EXPECT_GT(fast.rank1Updates, 0u) << c.name;
        EXPECT_EQ(dense.rank1Updates, 0u) << c.name;
        for (std::size_t v = 0; v < fast.mean.size(); ++v) {
            expectClose(fast.mean[v], dense.mean[v], kStrategyRelTol,
                        c.name + " mean[" + std::to_string(v) + "]");
            expectClose(fast.stddev[v], dense.stddev[v], kStrategyRelTol,
                        c.name + " stddev[" + std::to_string(v) + "]");
        }
    }
}

TEST(GoldenPosteriors, DegenerateCaseExercisesSkippedUpdates)
{
    GoldenCase d;
    d.k = 4;
    d.method = MomentMethod::Quadrature;
    d.degenerate = true;
    d.name = "degenerate";
    const EpResult r = runCase(d, JointStrategy::Rank1);
    EXPECT_GT(r.skippedUpdates, 0u)
        << "degenerate case no longer hits the improper-cavity path";
    for (double m : r.mean)
        EXPECT_TRUE(std::isfinite(m));
}

TEST(GoldenPosteriors, SimdQuadratureBitIdenticalToScalar)
{
    // The dispatched SIMD quadrature kernel and the scalar reference
    // share one polynomial and one reduction order by construction:
    // the contract is bit-identity, not closeness, so any drift —
    // a reassociated accumulator, an FMA the scalar path lacks —
    // fails here exactly.
    for (const GoldenCase &c : goldenCases()) {
        if (c.method != MomentMethod::Quadrature)
            continue;
        const FactorGraph g = makeWindowGraph(c.k, c.degenerate);
        EpConfig cfg;
        cfg.jointStrategy = JointStrategy::Rank1;
        cfg.simdQuadrature = true;
        ExpectationPropagation simd_ep(cfg);
        const EpResult simd = simd_ep.run(g);
        cfg.simdQuadrature = false;
        ExpectationPropagation scalar_ep(cfg);
        const EpResult scalar = scalar_ep.run(g);

        ASSERT_EQ(simd.mean.size(), scalar.mean.size()) << c.name;
        EXPECT_EQ(simd.sweeps, scalar.sweeps) << c.name;
        EXPECT_EQ(simd.skippedUpdates, scalar.skippedUpdates) << c.name;
        for (std::size_t v = 0; v < simd.mean.size(); ++v) {
            EXPECT_EQ(simd.mean[v], scalar.mean[v])
                << c.name << " mean[" << v << "]";
            EXPECT_EQ(simd.stddev[v], scalar.stddev[v])
                << c.name << " stddev[" << v << "]";
        }
    }
}

TEST(GoldenPosteriors, PartitionedSweepsAgreeWithSequential)
{
    // Partition-parallel sweeps follow a different update schedule
    // (frozen lane joints, merge solve), so mid-trajectory iterates
    // differ; run both schedules to convergence at a tight tolerance
    // and compare the fixed points.  Quadrature only: the MCMC moment
    // sampler consumes its RNG in schedule order, so its Monte Carlo
    // error would dominate any schedule comparison.
    constexpr double kPartitionRelTol = 1e-10;
    for (const GoldenCase &c : goldenCases()) {
        if (c.method != MomentMethod::Quadrature)
            continue;
        const FactorGraph g = makeWindowGraph(c.k, c.degenerate);
        EpConfig cfg;
        cfg.jointStrategy = JointStrategy::Rank1;
        cfg.tolerance = 1e-12;
        cfg.maxSweeps = 60;
        ExpectationPropagation seq_ep(cfg);
        const EpResult sequential = seq_ep.run(g);

        for (std::size_t parts : {2u, 4u}) {
            cfg.partitions = parts;
            ExpectationPropagation par_ep(cfg);
            const EpResult partitioned = par_ep.run(g);
            ASSERT_EQ(partitioned.mean.size(), sequential.mean.size())
                << c.name;
            for (std::size_t v = 0; v < sequential.mean.size(); ++v) {
                expectClose(partitioned.mean[v], sequential.mean[v],
                            kPartitionRelTol,
                            c.name + " p" + std::to_string(parts) +
                                " mean[" + std::to_string(v) + "]");
                expectClose(partitioned.stddev[v], sequential.stddev[v],
                            kPartitionRelTol,
                            c.name + " p" + std::to_string(parts) +
                                " stddev[" + std::to_string(v) + "]");
            }
        }
    }
}

TEST(GoldenPosteriors, PartitionedSweepsDeterministic)
{
    // The partition-parallel schedule must be a pure function of the
    // graph: bit-identical across worker thread counts and across
    // repeated runs through the same engine (which reuses its
    // workspace arenas).
    const FactorGraph g = makeWindowGraph(6, false);
    EpConfig cfg;
    cfg.jointStrategy = JointStrategy::Rank1;
    cfg.partitions = 4;
    cfg.partitionThreads = 1;
    ExpectationPropagation base_ep(cfg);
    const EpResult base = base_ep.run(g);
    ASSERT_FALSE(base.mean.empty());

    const EpResult again = base_ep.run(g);
    ASSERT_EQ(again.mean.size(), base.mean.size());
    EXPECT_EQ(again.sweeps, base.sweeps);
    for (std::size_t v = 0; v < base.mean.size(); ++v) {
        EXPECT_EQ(again.mean[v], base.mean[v]) << "rerun mean[" << v << "]";
        EXPECT_EQ(again.stddev[v], base.stddev[v])
            << "rerun stddev[" << v << "]";
    }

    for (std::size_t threads : {2u, 4u}) {
        cfg.partitionThreads = threads;
        ExpectationPropagation ep(cfg);
        const EpResult r = ep.run(g);
        ASSERT_EQ(r.mean.size(), base.mean.size()) << threads;
        EXPECT_EQ(r.sweeps, base.sweeps) << threads;
        for (std::size_t v = 0; v < base.mean.size(); ++v) {
            EXPECT_EQ(r.mean[v], base.mean[v])
                << threads << " threads, mean[" << v << "]";
            EXPECT_EQ(r.stddev[v], base.stddev[v])
                << threads << " threads, stddev[" << v << "]";
        }
    }
}

TEST(GoldenPosteriors, MatchesRecordedFixtures)
{
    const std::vector<GoldenCase> cases = goldenCases();
    std::vector<EpResult> results;
    for (const GoldenCase &c : cases)
        results.push_back(runCase(c, JointStrategy::Rank1));

    if (regenRequested()) {
        writeFixture(cases, results);
        GTEST_SKIP() << "regenerated " << fixturePath();
    }

    std::ifstream in(fixturePath());
    ASSERT_TRUE(in.good())
        << "missing fixture " << fixturePath()
        << " — run BP_REGEN_GOLDEN=1 ./test_ep_golden once to record";
    std::stringstream buf;
    buf << in.rdbuf();
    JsonParser parser(buf.str());
    const JsonValue root = parser.parse();

    const auto &recorded = root.at("cases").items;
    ASSERT_EQ(recorded.size(), cases.size())
        << "fixture case count differs — regenerate and review";

    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &c = cases[i];
        const auto &r = results[i];
        const JsonValue &rec = recorded[i];
        EXPECT_EQ(rec.at("name").str, c.name);
        EXPECT_EQ(rec.at("converged").boolean, r.converged) << c.name;
        EXPECT_EQ(static_cast<std::size_t>(
                      rec.at("skippedUpdates").number),
                  r.skippedUpdates)
            << c.name;

        const auto &mean = rec.at("mean").items;
        const auto &stddev = rec.at("stddev").items;
        ASSERT_EQ(mean.size(), r.mean.size()) << c.name;
        ASSERT_EQ(stddev.size(), r.stddev.size()) << c.name;
        for (std::size_t v = 0; v < r.mean.size(); ++v) {
            expectClose(r.mean[v], mean[v].number, kGoldenRelTol,
                        c.name + " mean[" + std::to_string(v) + "]");
            expectClose(r.stddev[v], stddev[v].number, kGoldenRelTol,
                        c.name + " stddev[" + std::to_string(v) + "]");
        }
    }
}

} // namespace
} // namespace core
} // namespace bperf
