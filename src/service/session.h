/**
 * @file
 * One live monitoring session inside the BayesPerf service.
 *
 * A session owns the three per-tenant pieces of the pipeline: the
 * SPSC sample ring its producer writes into (perf mmap semantics —
 * drop-on-full backpressure), the streaming windowed-inference engine
 * a worker drains it into, and the scheduling/statistics state the
 * service uses to multiplex many sessions over few workers.
 *
 * Thread roles:
 *   - exactly one producer thread calls offer();
 *   - exactly one worker at a time holds the session in Running state
 *     and calls drain()/finishStream() (the state machine enforces
 *     this — see SessionState);
 *   - any thread may read statsSnapshot() and latest().
 */

#ifndef BPERF_SERVICE_SESSION_H
#define BPERF_SERVICE_SESSION_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "service/streaming_inference.h"
#include "service/subscription.h"
#include "sim/ring_buffer.h"

namespace bperf {
namespace service {

/** Service-wide session identifier. */
using SessionId = std::uint64_t;

/**
 * Work-scheduling state of a session (the classic dirty-flag actor
 * protocol).  Transitions:
 *   Idle -> Queued          producer enqueued work (session goes on
 *                           the worker pool's run queue)
 *   Queued -> Running       a worker claimed the session
 *   Running -> RunningDirty producer enqueued more work mid-drain
 *   RunningDirty -> Running the worker loops to drain again
 *   Running -> Idle         the worker found no follow-up work
 * A session is drained by at most one worker at any moment, which is
 * what makes the SPSC ring's single-consumer contract hold.
 */
enum class SessionState : int { Idle, Queued, Running, RunningDirty };

/** Per-session configuration. */
struct SessionConfig
{
    /**
     * Service sessions are long-lived, so unlike the batch engine
     * they cap posterior history by default (the close report then
     * covers the last retainSlices slices; see
     * InferenceConfig::retainSlices).  Set to 0 to keep everything.
     */
    static constexpr std::size_t kDefaultRetainSlices = 4096;

    SessionConfig() { streaming.inference.retainSlices = kDefaultRetainSlices; }

    /** Capacity of the sample ring (records, i.e. PMI window reads). */
    std::size_t queueCapacity = 1 << 12;

    StreamingConfig streaming;
};

/** Point-in-time statistics of one session. */
struct SessionStats
{
    std::uint64_t recordsOffered = 0;  // pushed + dropped
    std::uint64_t recordsIngested = 0; // accepted into the ring
    std::uint64_t recordsDropped = 0;  // ring backpressure drops
    std::uint64_t recordsRejected = 0; // malformed / out of order
    std::uint64_t slicesAssembled = 0;
    std::uint64_t windowsRun = 0;
    std::uint64_t epSweeps = 0;
    std::uint64_t drainPasses = 0;
    double inferSeconds = 0.0;
    /** Per-window EP latency distribution (seconds). */
    RunningStats windowSeconds;
    /** Modeled per-window latency on the execution backend (equals
     * windowSeconds on the host backend; queue wait + transfer +
     * compute of the simulated engine pool on the accel backend). */
    RunningStats modeledWindowSeconds;
    /** Modeled wait for a free backend engine (0 on the host path). */
    RunningStats backendQueueSeconds;

    /** Accumulate another session's (or snapshot's) numbers. */
    void merge(const SessionStats &other);
};

/**
 * Live per-session state.  Created by MonitorService::open and owned
 * via shared_ptr by the registry and any in-flight workers.
 */
class Session
{
  public:
    /**
     * Called once per completed window, from whichever worker (or
     * closing thread) ran it.  The service points this at its
     * subscription hub and admission controller.
     */
    using WindowSink = std::function<void(const WindowUpdate &)>;

    Session(SessionId id, const sim::MicroarchDescriptor &uarch,
            std::vector<sim::EventId> events, SessionConfig config,
            std::string tenant = {}, WindowSink window_sink = nullptr);

    SessionId id() const { return id_; }
    /** Admission-control tenant this session belongs to. */
    const std::string &tenant() const { return tenant_; }
    const std::vector<sim::EventId> &events() const
    {
        return inference_.events();
    }

    /**
     * Producer side: enqueue one sample record.  Returns false when
     * the ring is full (the record is dropped and counted).
     */
    bool offer(const sim::PerfRecord &rec);

    /**
     * Worker side (requires Running state): pop every available
     * record into the streaming engine.  Returns records drained.
     */
    std::size_t drain();

    /**
     * Worker side: flush the assembler and run tail windows.  Called
     * once when the session closes.
     */
    void finishStream();

    /** Take the full posterior result (close path, worker-held). */
    core::InferenceResult takeResult() { return inference_.takeResult(); }

    /**
     * Posterior of `event` at the most recent inferred slice, from
     * the published snapshot; nullopt before the first window or for
     * an unmonitored event.  Safe from any thread.
     */
    std::optional<core::PosteriorPoint> latest(sim::EventId event) const;

    /** Consistent statistics snapshot.  Safe from any thread. */
    SessionStats statsSnapshot() const;

    std::size_t queueSize() const { return queue_.size(); }

    std::atomic<SessionState> state{SessionState::Idle};

  private:
    void publishPosteriors();
    void publishStats(bool drain_pass);
    /** Per-window stats + subscription updates after windows ran. */
    void harvestWindows();

    const SessionId id_;
    const std::string tenant_;
    sim::RingBuffer queue_;
    StreamingInference inference_;
    WindowSink windowSink_;
    /** Windows already handed to the sink (completion counter). */
    std::uint64_t windowsReported_ = 0;

    /** Guards latest_ / latestValid_ (cross-thread posterior reads). */
    mutable std::mutex publishMutex_;
    std::vector<core::PosteriorPoint> latest_;
    bool latestValid_ = false;

    /** Guards the worker-written statistics below. */
    mutable std::mutex statsMutex_;
    SessionStats stats_;
};

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_SESSION_H
