# Empty compiler generated dependencies file for test_mlsched.
# This may be replaced when dependencies are built.
