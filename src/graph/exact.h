/**
 * @file
 * Exact inference for the Gaussian part of a factor graph.
 *
 * Builds the joint information form (precision matrix J, information
 * vector h) from all LinearGaussian and GaussianPrior factors plus an
 * optional set of per-variable Gaussian "site" approximations (as EP
 * maintains for the non-Gaussian factors), and solves for the joint
 * mean and covariance.  Variables are internally rescaled by their
 * scale hints so the solve stays well conditioned even though event
 * magnitudes span five orders of magnitude.
 *
 * The Gaussian backbone (everything except the sites) never changes
 * between solves of the same graph, so the solver caches it at
 * construction; repeated solves only add the site diagonal and
 * factorize.  For EP's inner loop the solver additionally supports
 * Sherman-Morrison rank-1 updates of an already-solved joint, so a
 * single-site change costs O(n^2) instead of an O(n^3) re-solve.
 *
 * When every factor in the graph is Gaussian this *is* the exact
 * posterior, which the tests use to validate EP.
 */

#ifndef BPERF_GRAPH_EXACT_H
#define BPERF_GRAPH_EXACT_H

#include <vector>

#include "common/matrix.h"
#include "graph/factor_graph.h"
#include "graph/gaussian.h"

namespace bperf {
namespace graph {

/** Joint Gaussian over all variables of a graph. */
struct GaussianJoint
{
    std::vector<double> mean;
    Matrix covariance; // full covariance, natural units

    double marginalMean(VarId v) const { return mean[v]; }
    double marginalVariance(VarId v) const { return covariance(v, v); }
};

/**
 * Reusable buffers for GaussianSolver::solveInto and rank-1 updates.
 * One scratch belongs to one solver loop (EP run / workspace); solves
 * become allocation-free once its capacity covers the graph size.
 */
struct SolverScratch
{
    Matrix J;                  // scaled precision copy
    std::vector<double> h;     // scaled information vector
    std::vector<double> chol;  // Cholesky factorization scratch
    std::vector<double> col;   // covariance column (rank-1 updates)
    std::vector<double> blockW; // pending update columns (block x n)
    std::vector<double> blockC; // pending downdate coefficients
    /** Buffer-growth events (allocation accounting for EpWorkspace). */
    std::size_t grows = 0;
};

/**
 * Solver for the Gaussian sub-model of a factor graph.
 */
class GaussianSolver
{
  public:
    /** Empty solver; rebind() before use. */
    GaussianSolver() = default;

    explicit GaussianSolver(const FactorGraph &graph) { rebind(graph); }

    /**
     * (Re)build the cached Gaussian backbone for `graph`, reusing the
     * solver's buffers — allocation-free when the previous graph was
     * at least as large.  The graph must outlive the solver's use.
     */
    void rebind(const FactorGraph &graph);

    /** Buffer-growth events since construction (allocation accounting). */
    std::size_t bufferGrows() const { return grows_; }

    /**
     * Compute the joint implied by all Gaussian factors plus
     * per-variable sites (sites may be flat).  `sites` must be empty
     * or one entry per variable.  Dies if the model is improper
     * (unconstrained variables with no prior/site).
     */
    GaussianJoint solve(const std::vector<Gaussian> &sites = {}) const;

    /**
     * solve() into caller-owned storage: `joint` and `scratch` are
     * reused across calls and only (re)allocate while their capacity
     * is below the graph size — steady-state re-solves of equal-sized
     * graphs perform no allocations.
     */
    void solveInto(const std::vector<Gaussian> &sites, GaussianJoint &joint,
                   SolverScratch &scratch) const;

    /**
     * Apply a single-site natural-parameter change (d_lambda, d_eta)
     * on variable v to an already-solved joint, via Sherman-Morrison
     * on the precision matrix: O(n^2).  The joint must correspond to
     * the site values *before* the change.
     *
     * Contract: only the LOWER triangle (including the diagonal) of
     * joint.covariance is kept current — the update is memory-bound
     * and the EP loop reads only marginal variances (diagonal) and
     * columns (recoverable from the lower triangle), so mirroring the
     * upper half would double the traffic for nothing.  The mean is
     * exact.  A subsequent solveInto restores the full symmetric
     * matrix; callers needing upper-triangle entries after rank-1
     * updates must read (c, r) with r >= c instead.
     *
     * Returns false — leaving the joint untouched — when the downdate
     * is too ill-conditioned to apply stably (1 + d_lambda * var(v)
     * not safely positive); the caller must then fall back to a full
     * solveInto with the new site values.
     */
    static bool rank1SiteUpdate(GaussianJoint &joint, VarId v,
                                double d_lambda, double d_eta,
                                SolverScratch &scratch);

    /**
     * True iff the graph contains non-Gaussian factors (so solve()
     * alone is not the full posterior).
     */
    bool hasNonGaussianFactors() const;

  private:
    const FactorGraph *graph_ = nullptr;
    std::vector<double> scale_; // per-variable scale hints
    Matrix baseJ_;              // Gaussian backbone precision (scaled)
    std::vector<double> baseH_; // backbone information vector (scaled)
    std::size_t grows_ = 0;
};

/**
 * Blocked (rank-k) variant of GaussianSolver::rank1SiteUpdate: defers
 * up to `blockSize` site downdates and applies them to the stored
 * lower triangle in one pass, cutting the memory traffic of the
 * covariance sweep by the block factor (the rank-1 update is
 * memory-bound).
 *
 * The algebra is exactly the sequential Sherman-Morrison chain: each
 * push materializes the covariance column of its variable *as of all
 * pending updates* (implicit correction against the pending block),
 * so marginal variances, mean updates and conditioning guards see the
 * same values the one-at-a-time path would — the two paths differ
 * only by floating-point summation order.
 *
 * The joint's mean is kept current eagerly; its covariance is current
 * only through marginalVariance()/flush().  Callers must flush()
 * before reading covariance entries directly, and discard() before a
 * full re-solve (which supersedes anything pending).
 *
 * Borrows the joint and scratch; one updater serves one EP run (or
 * one partition lane).  Not thread-safe across lanes sharing a
 * scratch.
 */
class BlockedJointUpdater
{
  public:
    /** Largest supported block (bounds a stack buffer in flush). */
    static constexpr std::size_t kMaxBlockSize = 64;

    BlockedJointUpdater(GaussianJoint &joint, SolverScratch &scratch,
                        std::size_t block_size);

    /** Marginal variance of v as of all pending updates. */
    double marginalVariance(VarId v) const;

    /**
     * Queue the site change (d_lambda, d_eta) on v.  Applies the mean
     * update immediately and auto-flushes when the block fills.
     * Returns false — leaving joint and block untouched — under the
     * same conditioning guards as rank1SiteUpdate; the caller must
     * then discard() and fall back to a full solve.
     */
    bool push(VarId v, double d_lambda, double d_eta);

    /** Apply all pending downdates to the stored lower triangle. */
    void flush();

    /** Drop pending downdates (before a full re-solve). */
    void discard() { pending_ = 0; }

    std::size_t pending() const { return pending_; }
    /** Lower-triangle passes performed (bench accounting). */
    std::size_t flushes() const { return flushes_; }

  private:
    GaussianJoint *joint_;
    SolverScratch *scratch_;
    std::size_t blockSize_;
    std::size_t n_;
    std::size_t pending_ = 0;
    std::size_t flushes_ = 0;
};

} // namespace graph
} // namespace bperf

#endif // BPERF_GRAPH_EXACT_H
