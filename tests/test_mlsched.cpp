/** @file Tests for the PCIe fabric, MLP, RL scheduler, and CF model. */

#include <cmath>

#include <gtest/gtest.h>

#include "mlsched/collab_filter.h"
#include "mlsched/mlp.h"
#include "mlsched/pcie.h"
#include "mlsched/rl_scheduler.h"
#include "mlsched/shuffle_env.h"

namespace bperf {
namespace ml {
namespace {

TEST(Pcie, RouteCrossesExpectedLinks)
{
    PcieFabric fabric;
    const auto route = fabric.route(Node::Gpu1, Node::Gpu2);
    // GPU1 -> SwA -> CPU0 -> CPU1 -> SwB -> GPU2.
    ASSERT_EQ(route.size(), 5u);
    EXPECT_EQ(route[0].first, Node::Gpu1);
    EXPECT_EQ(route[2].first, Node::Cpu0);
    EXPECT_EQ(route[2].second, Node::Cpu1);
    EXPECT_EQ(route[4].second, Node::Gpu2);
}

TEST(Pcie, MaxMinRespectsCapacity)
{
    PcieFabric fabric;
    // Three saturating flows through the SwitchA uplink.
    std::vector<Flow> flows = {
        {Node::Gpu0, Node::Cpu0, 100.0},
        {Node::Gpu1, Node::Cpu0, 100.0},
        {Node::Nic0, Node::Cpu0, 100.0},
    };
    const auto rates = fabric.allocate(flows);
    double total = 0.0;
    for (double r : rates)
        total += r;
    EXPECT_LE(total, fabric.config().linkGBps + 1e-6);
    // Fair: all equal.
    EXPECT_NEAR(rates[0], rates[1], 1e-6);
    EXPECT_NEAR(rates[1], rates[2], 1e-6);
}

TEST(Pcie, UnconstrainedFlowGetsItsDemand)
{
    PcieFabric fabric;
    std::vector<Flow> flows = {{Node::Gpu0, Node::Cpu0, 3.0}};
    EXPECT_NEAR(fabric.allocate(flows)[0], 3.0, 1e-9);
}

TEST(Pcie, EffectiveBandwidthSaturates)
{
    PcieFabric fabric;
    const double peak = fabric.config().peakCopyGBps;
    EXPECT_LT(fabric.effectiveBandwidth(peak, 512.0), 0.2 * peak);
    EXPECT_GT(fabric.effectiveBandwidth(peak, 4.0e6), 0.99 * peak);
    // Monotone in message size.
    double prev = 0.0;
    for (double m = 256.0; m < 1e7; m *= 4.0) {
        const double bw = fabric.effectiveBandwidth(peak, m);
        EXPECT_GE(bw, prev);
        prev = bw;
    }
}

TEST(Mlp, GradientMatchesFiniteDifference)
{
    Mlp net({3, 4, 2}, Activation::Tanh, 7);
    const std::vector<double> x = {0.3, -0.7, 1.1};

    // Loss = output[0]; gradient via backprop vs finite differences
    // through a weight perturbation using Adam's first step direction
    // is awkward, so instead check d(loss)/d(input consistency):
    // perturb the input and compare loss change with the chain rule
    // estimate from the output gradient.
    const auto y0 = net.forward(x);

    // Accumulate gradient of output[0] and take a tiny Adam step;
    // the loss must decrease (gradient direction sanity).
    net.accumulateGradient(x, {1.0, 0.0});
    net.adamStep(1e-3);
    const auto y1 = net.forward(x);
    EXPECT_LT(y1[0], y0[0]);
}

TEST(Mlp, LearnsXor)
{
    Mlp net({2, 8, 1}, Activation::Tanh, 3);
    const std::vector<std::vector<double>> xs = {
        {0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<double> ys = {0, 1, 1, 0};
    for (int epoch = 0; epoch < 2000; ++epoch) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double out = net.forward(xs[i])[0];
            net.accumulateGradient(xs[i], {2.0 * (out - ys[i])});
        }
        net.adamStep(0.01);
    }
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(net.forward(xs[i])[0], ys[i], 0.2) << i;
}

TEST(Mlp, SoftmaxIsNormalized)
{
    const auto p = softmax({1.0, 2.0, 3.0});
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
    // Stability with large logits.
    const auto q = softmax({1000.0, 1001.0});
    EXPECT_NEAR(q[0] + q[1], 1.0, 1e-12);
}

TEST(ShuffleEnv, FeaturesHaveConfiguredSize)
{
    ShuffleEnv env({});
    const Episode ep = env.sample();
    EXPECT_EQ(ep.features.size(), kNumFeatures);
}

TEST(ShuffleEnv, ContentionMakesNic0WorseUnderHeavyGpuTraffic)
{
    ShuffleEnv env({});
    Episode ep;
    ep.gpuTrafficGBps = 12.0;
    ep.shuffleGB = 4.0;
    ep.messageBytes = 1 << 20;
    ep.numaNode = 0;
    // Heavy GPU exchange shares NIC0's uplink.
    EXPECT_GT(env.completionTime(ep, 0), env.completionTime(ep, 1));

    ep.gpuTrafficGBps = 0.0;
    // With an idle fabric the local NIC wins (no socket penalty).
    EXPECT_LT(env.completionTime(ep, 0), env.completionTime(ep, 1));
}

TEST(ShuffleEnv, IsolatedTimeIsLowerBound)
{
    ShuffleEnv env({});
    for (int i = 0; i < 50; ++i) {
        const Episode ep = env.sample();
        const double iso = env.isolatedTime(ep);
        EXPECT_LE(iso, env.completionTime(ep, 0) + 1e-9);
        EXPECT_LE(iso, env.completionTime(ep, 1) + 1e-9);
    }
}

TEST(ShuffleEnv, NoiseCorruptsFeatures)
{
    EnvConfig clean_cfg;
    clean_cfg.noise.errorPct = 0.0;
    clean_cfg.seed = 4;
    EnvConfig noisy_cfg;
    noisy_cfg.noise.errorPct = 40.0;
    noisy_cfg.seed = 4;
    ShuffleEnv clean(clean_cfg), noisy(noisy_cfg);
    // Same seed, same episode stream; features differ only by noise.
    double diff = 0.0;
    for (int i = 0; i < 20; ++i) {
        const Episode a = clean.sample();
        const Episode b = noisy.sample();
        for (std::size_t k = 0; k < 4; ++k)
            diff += std::abs(a.features[k] - b.features[k]);
    }
    EXPECT_GT(diff, 1.0);
}

TEST(RlScheduler, TrainingReducesLoss)
{
    EnvConfig env;
    env.noise.errorPct = 0.0; // clean inputs: clearest signal
    RlConfig rl;
    rl.iterations = 1500;
    RlScheduler scheduler(env, rl);
    const auto curve = scheduler.train();
    double early = 0.0, late = 0.0;
    for (std::size_t i = 0; i < 30; ++i) {
        early += curve.loss[i];
        late += curve.loss[curve.loss.size() - 1 - i];
    }
    EXPECT_LT(late, early - 0.1);
}

TEST(RlScheduler, CleanInputsConvergeNoSlowerThanNoisy)
{
    auto converge = [](double noise) {
        EnvConfig env;
        env.noise.errorPct = noise;
        env.seed = 9;
        RlConfig rl;
        rl.iterations = 1500;
        rl.seed = 2;
        RlScheduler s(env, rl);
        return s.train().iterationsToConverge(1.24);
    };
    EXPECT_LE(converge(8.0), converge(45.0));
}

TEST(CollabFilter, FactorizationFitsObservedCells)
{
    CfConfig cfg;
    cfg.epochs = 400;
    MatrixFactorization mf(6, 4, cfg);
    // Rank-1 ground truth.
    std::vector<CfObservation> obs;
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            if ((r + c) % 2 == 0)
                obs.push_back({r, c, 1.0 + 0.5 * r + 0.2 * c});
    mf.fit(obs);
    EXPECT_LT(mf.rmse(obs), 0.08);
    // Held-out cells are imputed close to the additive structure.
    EXPECT_NEAR(mf.predict(1, 2), 1.0 + 0.5 + 0.4, 0.3);
}

TEST(CollabFilter, BucketsAreInRange)
{
    EnvConfig env;
    CfScheduler scheduler(env, {});
    ShuffleEnv probe(env);
    for (int i = 0; i < 100; ++i) {
        const Episode ep = probe.sample();
        EXPECT_LT(scheduler.bucketOf(ep.features),
                  scheduler.numBuckets());
    }
}

TEST(CollabFilter, TrainedSchedulerBeatsWorstCase)
{
    EnvConfig env;
    env.noise.errorPct = 10.0;
    env.seed = 8;
    CfScheduler scheduler(env, {});
    scheduler.train(6000);
    const double sched = scheduler.evaluate(500);

    // Anti-policy: always the contended NIC0.
    ShuffleEnv probe(env);
    double worst = 0.0;
    for (int i = 0; i < 500; ++i) {
        const Episode ep = probe.sample();
        worst += probe.completionTime(ep, 0) / probe.isolatedTime(ep);
    }
    worst /= 500.0;
    EXPECT_LT(sched, worst);
}

TEST(Mlp, InputGradientMatchesFiniteDifference)
{
    Mlp net({5, 6, 4, 2}, Activation::Tanh, 17);
    const std::vector<double> x = {0.3, -0.7, 1.1, 0.05, -2.2};
    // Loss = 0.7*y[0] - 1.3*y[1]; analytic d(loss)/d(input) vs central
    // finite differences, per coordinate.
    const std::vector<double> grad_out = {0.7, -1.3};
    const std::vector<double> grad_in = net.inputGradient(x, grad_out);
    ASSERT_EQ(grad_in.size(), x.size());

    auto loss = [&](const std::vector<double> &in) {
        const auto y = net.forward(in);
        return grad_out[0] * y[0] + grad_out[1] * y[1];
    };
    const double h = 1e-6;
    for (std::size_t i = 0; i < x.size(); ++i) {
        std::vector<double> lo = x, hi = x;
        lo[i] -= h;
        hi[i] += h;
        const double fd = (loss(hi) - loss(lo)) / (2.0 * h);
        EXPECT_NEAR(grad_in[i], fd, 1e-5 * (1.0 + std::abs(fd))) << i;
    }
    // Const: the check must not have perturbed training state.
    net.adamStep(1e-3);
    const auto y0 = net.forward(x);
    Mlp fresh({5, 6, 4, 2}, Activation::Tanh, 17);
    fresh.adamStep(1e-3);
    const auto y1 = fresh.forward(x);
    EXPECT_EQ(y0[0], y1[0]);
    EXPECT_EQ(y0[1], y1[1]);
}

TEST(Mlp, InputGradientMatchesFiniteDifferenceRelu)
{
    Mlp net({4, 8, 1}, Activation::Relu, 29);
    // Stay clear of ReLU kinks: central differences still straddle a
    // kink with probability ~0 for this input, and the tolerance
    // covers the rest.
    const std::vector<double> x = {0.41, -0.93, 1.27, 0.66};
    const std::vector<double> grad_in = net.inputGradient(x, {1.0});
    const double h = 1e-6;
    for (std::size_t i = 0; i < x.size(); ++i) {
        std::vector<double> lo = x, hi = x;
        lo[i] -= h;
        hi[i] += h;
        const double fd =
            (net.forward(hi)[0] - net.forward(lo)[0]) / (2.0 * h);
        EXPECT_NEAR(grad_in[i], fd, 1e-5 * (1.0 + std::abs(fd))) << i;
    }
}

TEST(TrainingCurve, NeverConvergesReturnsSize)
{
    TrainingCurve curve;
    curve.loss = {2.0, 1.9, 1.8, 1.7};
    EXPECT_EQ(curve.iterationsToConverge(1.5), curve.loss.size());
    TrainingCurve empty;
    EXPECT_EQ(empty.iterationsToConverge(1.5), 0u);
}

TEST(TrainingCurve, ConvergedFromTheStartReturnsZero)
{
    TrainingCurve curve;
    curve.loss = {1.0, 0.9, 0.8};
    EXPECT_EQ(curve.iterationsToConverge(1.5), 0u);
}

TEST(TrainingCurve, DipThenRecoveryCountsTheLastCrossing)
{
    // Dips below at 1, recovers at 3, converges for good at 5.
    TrainingCurve curve;
    curve.loss = {2.0, 1.2, 1.3, 1.9, 1.6, 1.2, 1.1, 1.0};
    EXPECT_EQ(curve.iterationsToConverge(1.5), 5u);
    // Exactly at threshold does not count as below.
    TrainingCurve edge;
    edge.loss = {1.5, 1.4};
    EXPECT_EQ(edge.iterationsToConverge(1.5), 1u);
}

TEST(RlScheduler, SeededRunsAreBitIdentical)
{
    EnvConfig env;
    env.seed = 31;
    RlConfig rl;
    rl.iterations = 400;
    rl.seed = 12;

    RlScheduler a(env, rl);
    RlScheduler b(env, rl);
    const TrainingCurve ca = a.train();
    const TrainingCurve cb = b.train();
    ASSERT_EQ(ca.loss.size(), cb.loss.size());
    for (std::size_t i = 0; i < ca.loss.size(); ++i)
        ASSERT_EQ(ca.loss[i], cb.loss[i]) << "diverged at iter " << i;
    EXPECT_EQ(a.evaluate(200), b.evaluate(200));

    // A different seed must actually change the run.
    rl.seed = 13;
    RlScheduler c(env, rl);
    const TrainingCurve cc = c.train();
    bool any_diff = false;
    for (std::size_t i = 0; i < cc.loss.size(); ++i)
        any_diff |= cc.loss[i] != ca.loss[i];
    EXPECT_TRUE(any_diff);
}

TEST(CollabFilter, SeededRunsAreBitIdentical)
{
    EnvConfig env;
    env.seed = 41;
    CfScheduler a(env, {});
    CfScheduler b(env, {});
    a.train(1500);
    b.train(1500);
    EXPECT_EQ(a.evaluate(300), b.evaluate(300));

    CfConfig other;
    other.seed = 99;
    CfScheduler c(env, other);
    c.train(1500);
    EXPECT_NE(c.evaluate(300), a.evaluate(300));
}

} // namespace
} // namespace ml
} // namespace bperf
