/**
 * @file
 * ASCII table and series printers used by the benchmark harnesses to
 * report paper tables/figures in a uniform format.
 */

#ifndef BPERF_COMMON_TABLE_H
#define BPERF_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace bperf {

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 *   TablePrinter t({"workload", "linux", "bayesperf"});
 *   t.addRow({"Sort", "39.2", "8.1"});
 *   t.print(std::cout);
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 2);

    void print(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatDouble(double v, int precision = 2);

/**
 * Print an (x, series...) block, one line per x value, suitable for
 * regenerating a line plot from the paper.
 */
void printSeries(std::ostream &os, const std::string &title,
                 const std::string &x_label,
                 const std::vector<double> &xs,
                 const std::vector<std::string> &series_names,
                 const std::vector<std::vector<double>> &series,
                 int precision = 2);

} // namespace bperf

#endif // BPERF_COMMON_TABLE_H
