#include "core/inference.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace core {

std::vector<double>
InferenceResult::meanSeries(sim::EventId event) const
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event) {
            std::vector<double> out(series[i].size());
            for (std::size_t t = 0; t < out.size(); ++t)
                out[t] = series[i][t].mean;
            return out;
        }
    }
    bp_panic("event not inferred: id " << event);
}

std::vector<double>
InferenceResult::stddevSeries(sim::EventId event) const
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event) {
            std::vector<double> out(series[i].size());
            for (std::size_t t = 0; t < out.size(); ++t)
                out[t] = series[i][t].stddev;
            return out;
        }
    }
    bp_panic("event not inferred: id " << event);
}

InferenceEngine::InferenceEngine(const sim::MicroarchDescriptor &uarch,
                                 InferenceConfig config)
    : uarch_(uarch), config_(config)
{
}

InferenceResult
InferenceEngine::infer(const sim::PerfResult &measurements) const
{
    const auto t_start = std::chrono::steady_clock::now();

    const std::vector<sim::EventId> &events = measurements.monitored;
    bp_assert(!events.empty(), "nothing to infer");
    const std::size_t num_slices = measurements.traces.front().slices.size();
    std::size_t k = config_.windowSlices;
    if (k == 0) {
        // Adapt to the schedule period so every event is observed at
        // least once per window.
        k = std::clamp<std::size_t>(measurements.schedule.size(), 3, 8);
    }

    InferenceResult result;
    result.events = events;
    result.series.assign(events.size(),
                         std::vector<PosteriorPoint>(num_slices));

    std::vector<CarryPrior> carry;

    // Half-overlapping sliding windows: every slice (except the tail)
    // is re-estimated by a later window in which it has future
    // context, giving two-sided smoothing between observations.
    const std::size_t stride = std::max<std::size_t>(1, k / 2);

    for (std::size_t w0 = 0; w0 < num_slices; w0 += stride) {
        const std::size_t w_len = std::min(k, num_slices - w0);

        // Level hints: the measured magnitude of each event inside
        // this window (falling back to the carried estimate).
        std::vector<double> levels(events.size());
        for (std::size_t i = 0; i < events.size(); ++i) {
            const auto &trace = measurements.traces[i];
            double sum = 0.0;
            std::size_t n = 0;
            for (std::size_t s = 0; s < w_len; ++s) {
                const auto &sample = trace.slices[w0 + s];
                if (sample.observed) {
                    sum += sample.scaled();
                    ++n;
                }
            }
            if (n > 0) {
                levels[i] = sum / static_cast<double>(n);
            } else if (!carry.empty()) {
                levels[i] = carry[i].mean;
            } else {
                levels[i] = uarch_.event(events[i]).typicalPerSlice;
            }
        }

        // Normalizer: the fixed instruction counter's measured
        // values, which anchor the ratio walk.
        std::vector<double> normalizer;
        const sim::EventId inst_id =
            uarch_.idForRole(sim::Role::Instructions);
        for (std::size_t i = 0; i < events.size(); ++i) {
            if (events[i] != inst_id)
                continue;
            const auto &trace = measurements.traces[i];
            normalizer.resize(w_len);
            bool ok = true;
            for (std::size_t s = 0; s < w_len; ++s) {
                const auto &sample = trace.slices[w0 + s];
                if (!sample.observed || sample.scaled() <= 0.0) {
                    ok = false;
                    break;
                }
                normalizer[s] = sample.scaled();
            }
            if (!ok)
                normalizer.clear();
            break;
        }

        WindowModel model(uarch_, events, w_len, config_.model, &levels,
                          normalizer.empty() ? nullptr : &normalizer);
        model.addCarryPriors(carry);

        // Measurement factors for every observed (event, slice).
        for (std::size_t i = 0; i < events.size(); ++i) {
            const auto &trace = measurements.traces[i];
            for (std::size_t s = 0; s < w_len; ++s) {
                const auto &sample = trace.slices[w0 + s];
                if (!sample.observed)
                    continue;
                const bool full_duty = sample.timeRunning >= 0.999;
                if (full_duty) {
                    // A full-duty counter's raw count *is* the slice
                    // total: window-to-window spread reflects genuine
                    // intra-slice variation, not measurement noise,
                    // so only read noise enters the scale.
                    MeasurementModel m;
                    m.loc = sample.scaled();
                    m.scale = std::max(config_.model.measurementExtraRel *
                                           std::abs(m.loc),
                                       1e-9);
                    m.nu = 30.0;
                    model.addMeasurement(events[i], s, m);
                } else {
                    // Multiplexed counters get multiplicative-noise
                    // floors (relative to both their reading and the
                    // event's level).
                    const double floor =
                        config_.model.measurementFloorRel * levels[i];
                    model.addMeasurement(
                        events[i], s,
                        fitMeasurement(sample,
                                       config_.model.measurementMuxRel,
                                       floor));
                }
            }
        }

        ExpectationPropagation ep(config_.ep);
        const EpResult ep_result = ep.run(model.graph());
        ++result.windowsRun;
        result.epSweepsTotal += ep_result.sweeps;

        // Record every covered slice; later (more contextual)
        // windows overwrite all but their warm-up prefix.
        for (std::size_t i = 0; i < events.size(); ++i) {
            for (std::size_t s = 0; s < w_len; ++s) {
                const graph::VarId v = model.var(events[i], s);
                result.series[i][w0 + s] = {ep_result.mean[v],
                                            ep_result.stddev[v]};
            }
        }

        // Carry the posterior of the slice preceding the next
        // window's start.
        const std::size_t carry_slice =
            std::min(stride, w_len) - 1 + 0; // slice w0+stride-1
        carry.clear();
        carry.reserve(events.size());
        for (std::size_t i = 0; i < events.size(); ++i) {
            const graph::VarId v = model.var(events[i], carry_slice);
            const auto &def = uarch_.event(events[i]);
            const double walk_sd =
                config_.model.temporalSigmaRel *
                std::max(levels[i], 0.05 * def.typicalPerSlice);
            const double sd = std::sqrt(
                config_.carryVarInflation *
                (ep_result.stddev[v] * ep_result.stddev[v] +
                 walk_sd * walk_sd));
            carry.push_back({events[i], ep_result.mean[v], sd});
        }

        if (w0 + w_len >= num_slices)
            break; // tail fully covered
    }

    const auto t_end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(t_end - t_start).count();
    return result;
}

} // namespace core
} // namespace bperf
