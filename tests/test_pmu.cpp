/** @file Tests for counter placement and configuration packing. */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/pmu.h"

namespace bperf {
namespace sim {
namespace {

TEST(Pmu, PlacesUnconstrainedEvents)
{
    const auto uarch = makeX86Skylake();
    Pmu pmu(uarch);
    const std::vector<EventId> events = {
        uarch.idForRole(Role::Loads), uarch.idForRole(Role::Stores),
        uarch.idForRole(Role::Branches)};
    const auto assignment = pmu.assign(events);
    ASSERT_TRUE(assignment.has_value());
    EXPECT_EQ(assignment->used(), 3u);
    // Every placed event sits on a counter its mask allows.
    for (std::size_t c = 0; c < assignment->slots.size(); ++c) {
        const EventId e = assignment->slots[c];
        if (e == kNoEvent)
            continue;
        EXPECT_TRUE(uarch.event(e).counterMask & (1u << c));
    }
}

TEST(Pmu, RespectsRestrictedCounterMask)
{
    const auto uarch = makeX86Skylake();
    Pmu pmu(uarch);
    // StallMem only goes on counter 2.
    const EventId stall = uarch.idForRole(Role::StallMem);
    const auto assignment = pmu.assign({stall});
    ASSERT_TRUE(assignment.has_value());
    EXPECT_EQ(assignment->slots[2], stall);
}

TEST(Pmu, BacktracksWhenGreedyWouldFail)
{
    // Two events both placeable on counter 0, one ONLY on counter 0:
    // placement must still succeed by routing the flexible one away.
    MicroarchDescriptor u("t", 1.0, 64.0, 0, 2, 0);
    const EventId a =
        u.addEvent(Role::Loads, "flex", false, 0x3, false, 1.0);
    const EventId b =
        u.addEvent(Role::Stores, "pinned", false, 0x1, false, 1.0);
    Pmu pmu(u);
    const auto assignment = pmu.assign({a, b});
    ASSERT_TRUE(assignment.has_value());
    EXPECT_EQ(assignment->slots[0], b);
    EXPECT_EQ(assignment->slots[1], a);
}

TEST(Pmu, OffcoreMsrBudgetEnforced)
{
    const auto uarch = makeX86Skylake(); // 2 offcore MSRs
    Pmu pmu(uarch);
    const EventId r = uarch.idForRole(Role::OffcoreReads);
    const EventId w = uarch.idForRole(Role::OffcoreWrites);
    EXPECT_TRUE(pmu.validate({r, w}));

    const auto ppc = makePower9(); // 1 offcore MSR
    Pmu pmu2(ppc);
    EXPECT_TRUE(pmu2.validate({ppc.idForRole(Role::OffcoreReads)}));
    EXPECT_FALSE(pmu2.validate({ppc.idForRole(Role::OffcoreReads),
                                ppc.idForRole(Role::OffcoreWrites)}));
}

TEST(Pmu, RejectsOverCapacity)
{
    const auto uarch = makeX86Skylake();
    Pmu pmu(uarch);
    std::vector<EventId> too_many = uarch.programmableEvents();
    EXPECT_FALSE(pmu.validate(too_many));
}

TEST(Pmu, UncoreEventsOnlyOnUncoreCounters)
{
    const auto uarch = makeX86Skylake();
    Pmu pmu(uarch);
    const EventId dram = uarch.idForRole(Role::DramBytes);
    const auto assignment = pmu.assign({dram});
    ASSERT_TRUE(assignment.has_value());
    // Counters 4-5 are the uncore pool on x86.
    const auto slot = std::find(assignment->slots.begin(),
                                assignment->slots.end(), dram) -
                      assignment->slots.begin();
    EXPECT_GE(slot, 4);
}

TEST(Pmu, PackCoversEveryEventExactlyOnce)
{
    const auto uarch = makeX86Skylake();
    Pmu pmu(uarch);
    const auto events = uarch.programmableEvents();
    const auto configs = pmu.packIntoConfigs(events);

    std::vector<EventId> seen;
    for (const auto &config : configs) {
        EXPECT_TRUE(pmu.validate(config));
        for (EventId e : config)
            seen.push_back(e);
    }
    std::sort(seen.begin(), seen.end());
    auto expected = events;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(seen, expected);
}

TEST(Pmu, PackUsesCountersEfficiently)
{
    const auto uarch = makeX86Skylake();
    Pmu pmu(uarch);
    // 8 fully flexible core events on 4 core counters: 2 configs.
    std::vector<EventId> events = {
        uarch.idForRole(Role::Loads),      uarch.idForRole(Role::Stores),
        uarch.idForRole(Role::Branches),   uarch.idForRole(Role::OtherOps),
        uarch.idForRole(Role::FpOps),      uarch.idForRole(Role::SimdOps),
        uarch.idForRole(Role::L1DAccess),  uarch.idForRole(Role::L1DMiss)};
    EXPECT_EQ(pmu.packIntoConfigs(events).size(), 2u);
}

} // namespace
} // namespace sim
} // namespace bperf
