/**
 * @file
 * Read-path latency models for Fig. 3: the average cost, in host CPU
 * cycles, of reading one counter value under each mechanism.
 *
 * Native paths (perf read() syscall, rdpmc) are constants taken from
 * the well-known costs of those paths.  The BayesPerf-CPU and
 * CounterMiner costs are *measured* on this host by timing the actual
 * inference/mining code that must run per read, then converted to
 * cycles at the configured host clock.  The accelerator path is the
 * native read plus the shim's ring-buffer dereference, served by the
 * Accelerator timing model.
 */

#ifndef BPERF_ACCEL_LATENCY_H
#define BPERF_ACCEL_LATENCY_H

#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.h"

namespace bperf {
namespace accel {

/** One bar of Fig. 3. */
struct ReadLatency
{
    std::string name;
    std::uint64_t cycles = 0;
    bool measured = false; // measured on this host vs modeled
};

/** Configuration of the latency study. */
struct LatencyModelConfig
{
    double hostClockGhz = 2.6;
    /** Reads averaged when timing measured paths (paper: 100). */
    std::size_t timedReads = 100;
    /** Sites refreshed incrementally per BayesPerf-CPU read: the
     * event's measurement site plus the invariant-factor sites that
     * constrain it in the current slice — a read cannot be served
     * until every site its marginal depends on has been refreshed. */
    std::size_t sitesPerRead = 4;
    /** Variables in the active window (marginal update cost). */
    std::size_t windowVariables = 96;
    /** Trace length CounterMiner re-mines per online read. */
    std::size_t counterMinerTrace = 192;
};

/**
 * Produces the Fig. 3 latency set.
 */
class ReadLatencyModel
{
  public:
    explicit ReadLatencyModel(LatencyModelConfig config = {});

    /** perf_event read() syscall path. */
    std::uint64_t linuxReadCycles() const;

    /** Userspace rdpmc + scaling math. */
    std::uint64_t rdpmcReadCycles() const;

    /** CPU BayesPerf: incremental EP refresh, measured on this host. */
    std::uint64_t bayesPerfCpuCycles() const;

    /** Accelerated BayesPerf: native read + shim ring dereference. */
    std::uint64_t bayesPerfAccelCycles(const Accelerator &accel) const;

    /** Online CounterMiner: window re-mining, measured on this host. */
    std::uint64_t counterMinerCycles() const;

    /** All five bars, in the paper's order. */
    std::vector<ReadLatency> report(const Accelerator &accel) const;

  private:
    LatencyModelConfig config_;
};

} // namespace accel
} // namespace bperf

#endif // BPERF_ACCEL_LATENCY_H
