#include "graph/exact.h"

#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace graph {

GaussianSolver::GaussianSolver(const FactorGraph &graph) : graph_(graph) {}

bool
GaussianSolver::hasNonGaussianFactors() const
{
    for (const auto &f : graph_.factors())
        if (f.kind == FactorKind::StudentT)
            return true;
    return false;
}

GaussianJoint
GaussianSolver::solve(const std::vector<Gaussian> &sites) const
{
    const std::size_t n = graph_.numVariables();
    bp_assert(sites.empty() || sites.size() == n,
              "site vector must be empty or cover all variables");

    // Work in scaled units u = x / s to keep the precision matrix
    // well conditioned.
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = graph_.variable(static_cast<VarId>(i)).scaleHint;

    Matrix J(n, n, 0.0);
    std::vector<double> h(n, 0.0);

    for (const auto &f : graph_.factors()) {
        switch (f.kind) {
          case FactorKind::LinearGaussian: {
            // (a^T x + b)^2 / sigma^2 contributes a a^T / sigma^2.
            const double inv_var = 1.0 / (f.noiseStd * f.noiseStd);
            for (std::size_t i = 0; i < f.vars.size(); ++i) {
                const VarId vi = f.vars[i];
                const double ai = f.coeffs[i] * s[vi];
                for (std::size_t j = 0; j < f.vars.size(); ++j) {
                    const VarId vj = f.vars[j];
                    const double aj = f.coeffs[j] * s[vj];
                    J(vi, vj) += ai * aj * inv_var;
                }
                h[vi] += -f.offset * ai * inv_var;
            }
            break;
          }
          case FactorKind::GaussianPrior: {
            const VarId v = f.vars[0];
            const double inv_var =
                s[v] * s[v] / (f.scale * f.scale);
            J(v, v) += inv_var;
            h[v] += inv_var * f.loc / s[v];
            break;
          }
          case FactorKind::StudentT:
            // Non-Gaussian: handled by EP sites, not here.
            break;
        }
    }

    if (!sites.empty()) {
        for (std::size_t v = 0; v < n; ++v) {
            // Site in natural units; convert to scaled units.
            J(v, v) += sites[v].lambda * s[v] * s[v];
            h[v] += sites[v].eta * s[v];
        }
    }

    // Tiny ridge to keep strictly-determined systems numerically SPD.
    for (std::size_t v = 0; v < n; ++v)
        J(v, v) += 1e-12;

    // Covariance = J^-1 (one Cholesky factorization), mean = J^-1 h.
    GaussianJoint joint;
    const Matrix cov_u = J.choleskyInverse();
    const std::vector<double> u = cov_u.apply(h);
    joint.mean.resize(n);
    for (std::size_t v = 0; v < n; ++v)
        joint.mean[v] = u[v] * s[v];

    joint.covariance = Matrix(n, n, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            joint.covariance(r, c) = cov_u(r, c) * s[r] * s[c];
    return joint;
}

} // namespace graph
} // namespace bperf
