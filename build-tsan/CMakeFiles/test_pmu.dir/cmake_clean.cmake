file(REMOVE_RECURSE
  "CMakeFiles/test_pmu.dir/tests/test_pmu.cpp.o"
  "CMakeFiles/test_pmu.dir/tests/test_pmu.cpp.o.d"
  "test_pmu"
  "test_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
