#include "core/ep.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

namespace bperf {
namespace core {

using graph::FactorGraph;
using graph::FactorKind;
using graph::Gaussian;
using graph::GaussianSolver;

void
tiltedMomentsQuadrature(double cavity_mean, double cavity_var, double loc,
                        double scale, double nu, std::size_t points,
                        double &mean_out, double &var_out)
{
    bp_assert(cavity_var > 0.0, "quadrature needs proper cavity");
    bp_assert(points >= 9, "too few quadrature points");
    const double cavity_sd = std::sqrt(cavity_var);

    // Cover both the cavity and the likelihood bulk.
    const double lo = std::min(cavity_mean - 8.0 * cavity_sd,
                               loc - 10.0 * scale);
    const double hi = std::max(cavity_mean + 8.0 * cavity_sd,
                               loc + 10.0 * scale);
    const double step = (hi - lo) / static_cast<double>(points - 1);

    // Log-weight of grid point x, with every x-independent term of
    // the two log-densities dropped: the normal's -log(sd)-log(2pi)/2
    // and the Student-t's lgamma/log(nu pi)/log(scale) constants shift
    // all weights equally and cancel in the normalized moments, so
    // the inner loop needs no lgamma/log calls — only one log1p.
    const double inv_sd = 1.0 / cavity_sd;
    const double inv_scale = 1.0 / scale;
    const double half_nup1 = 0.5 * (nu + 1.0);
    const double inv_nu = 1.0 / nu;

    // Single fused pass: instead of materializing all log-weights and
    // shifting by their max (two passes + a buffer), keep the running
    // max and rescale the partial sums whenever it moves.  The tilted
    // density is unimodal on this grid, so rescales stop at the mode.
    double max_logw = -1e300;
    double z = 0.0, m1 = 0.0, m2 = 0.0;
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * static_cast<double>(i);
        const double u = (x - cavity_mean) * inv_sd;
        // -u^2/2 upper-bounds the log-weight (the likelihood term is
        // <= 0), and the running max only grows: points whose bound
        // sits 40 nats under it contribute < 5e-18 of the mass — skip
        // them without paying the log1p/exp.
        const double gauss_term = -0.5 * u * u;
        if (gauss_term - max_logw < -40.0)
            continue;
        const double t = (x - loc) * inv_scale;
        const double logw =
            gauss_term - half_nup1 * std::log1p(t * t * inv_nu);
        if (logw > max_logw) {
            const double r = std::exp(max_logw - logw);
            z *= r;
            m1 *= r;
            m2 *= r;
            max_logw = logw;
        }
        const double w = std::exp(logw - max_logw);
        z += w;
        m1 += w * x;
        m2 += w * x * x;
    }
    bp_assert(z > 0.0, "tilted density vanished on the grid");
    mean_out = m1 / z;
    var_out = std::max(m2 / z - mean_out * mean_out, 1e-30);
}

void
tiltedMomentsMcmc(double cavity_mean, double cavity_var, double loc,
                  double scale, double nu, std::size_t samples,
                  std::size_t burnin, std::uint64_t seed, double &mean_out,
                  double &var_out)
{
    bp_assert(cavity_var > 0.0, "MCMC needs proper cavity");
    bp_assert(samples >= 16, "too few MCMC samples");
    Rng rng(seed);
    const double cavity_sd = std::sqrt(cavity_var);

    // Constant-free log-target: the dropped normalizers cancel in the
    // Metropolis accept ratio exactly as they do in quadrature.
    const double inv_sd = 1.0 / cavity_sd;
    const double inv_scale = 1.0 / scale;
    const double half_nup1 = 0.5 * (nu + 1.0);
    const double inv_nu = 1.0 / nu;
    auto log_target = [&](double x) {
        const double u = (x - cavity_mean) * inv_sd;
        const double t = (x - loc) * inv_scale;
        return -0.5 * u * u - half_nup1 * std::log1p(t * t * inv_nu);
    };

    // Random-walk Metropolis with a proposal matched to the tighter
    // of cavity and likelihood (the AcMC2-generated samplers do the
    // equivalent tuning at compile time).
    const double prop_sd = std::min(cavity_sd, scale) * 1.5;
    double x = (cavity_mean / cavity_var + loc / (scale * scale)) /
               (1.0 / cavity_var + 1.0 / (scale * scale));
    double lx = log_target(x);

    RunningStats stats;
    for (std::size_t i = 0; i < burnin + samples; ++i) {
        const double cand = x + rng.normal(0.0, prop_sd);
        const double lc = log_target(cand);
        if (lc >= lx || rng.uniform() < std::exp(lc - lx)) {
            x = cand;
            lx = lc;
        }
        if (i >= burnin)
            stats.push(x);
    }
    mean_out = stats.mean();
    // Guard against degenerate chains (all rejections).
    var_out = std::max(stats.variance(),
                       1e-6 * std::min(cavity_var, scale * scale));
}

std::size_t
EpWorkspace::totalAllocations() const
{
    return grows_ + scratch_.grows + solver_.bufferGrows();
}

ExpectationPropagation::ExpectationPropagation(EpConfig config)
    : config_(config)
{
}

EpResult
ExpectationPropagation::run(const FactorGraph &graph) const
{
    EpWorkspace ws;
    return run(graph, ws);
}

EpResult
ExpectationPropagation::run(const FactorGraph &graph, EpWorkspace &ws) const
{
    const std::size_t n = graph.numVariables();

    EpResult result;
    const std::size_t grows_before = ws.totalAllocations();
    ++ws.runs_;

    GaussianSolver &solver = ws.solver_;
    solver.rebind(graph);

    // Collect the Student-t factors; each owns one site.
    const auto &t_factors = graph.factorsOfKind(FactorKind::StudentT);
    if (ws.sites_.capacity() < t_factors.size())
        ++ws.grows_;
    ws.sites_.clear();
    for (graph::FactorId fid : t_factors) {
        const auto &f = graph.factor(fid);
        EpWorkspace::Site s;
        s.var = f.vars[0];
        s.loc = f.loc;
        s.scale = f.scale;
        s.nu = f.nu;
        // Initialize sites at a moment-matched Gaussian of the
        // likelihood (variance of a Student-t, inflated when nu <= 2).
        const double t_var = s.nu > 2.0
                                 ? s.scale * s.scale * s.nu / (s.nu - 2.0)
                                 : 9.0 * s.scale * s.scale;
        s.approx = Gaussian::fromMeanVar(s.loc, t_var);
        ws.sites_.push_back(s);
    }

    if (ws.siteByVar_.capacity() < n)
        ++ws.grows_;
    auto rebuild_site_sums = [&]() {
        ws.siteByVar_.assign(n, Gaussian::flat());
        for (const auto &s : ws.sites_)
            ws.siteByVar_[s.var] = ws.siteByVar_[s.var] * s.approx;
    };

    std::size_t updates_since_refactor = 0;
    auto full_solve = [&]() {
        // Rebuild the per-variable site sums from scratch so the
        // re-factorized joint carries no additive drift.
        rebuild_site_sums();
        solver.solveInto(ws.siteByVar_, ws.joint_, ws.scratch_);
        ++result.fullSolves;
        updates_since_refactor = 0;
    };

    Rng rng(config_.seed);
    full_solve();

    // Damping protects the early sweeps, where parallel conflicts
    // between coupled sites are large; near the fixed point it only
    // slows the geometric tail.  Once a sweep's total movement is
    // within 20x tolerance AND still shrinking, run undamped; any
    // sweep that fails to shrink (e.g. an undamped limit cycle)
    // restores the damped factor.
    double damping = config_.damping;
    double prev_change = 1e300;

    for (std::size_t sweep = 0; sweep < config_.maxSweeps; ++sweep) {
        ++result.sweeps;
        double max_rel_change = 0.0;

        for (auto &site : ws.sites_) {
            const graph::VarId v = site.var;
            const double marg_var = ws.joint_.covariance(v, v);
            const double marg_mean = ws.joint_.mean[v];
            if (marg_var <= 0.0) {
                ++result.skippedUpdates;
                continue;
            }
            const Gaussian marginal =
                Gaussian::fromMeanVar(marg_mean, marg_var);
            const Gaussian cavity = marginal / site.approx;
            // Degenerate cavity: skip when the division leaves less
            // than 1e-9 of the marginal precision.  True rounding
            // noise appears near 1e-16 of the marginal; the margin is
            // deliberately conservative — a cavity carrying under a
            // billionth of the precision contributes nothing real to
            // moment matching, and near the noise floor its sign is
            // arbitrary.  Subsumes the classic improper (lambda <= 0)
            // case.
            if (!(cavity.lambda * marg_var > 1e-9)) {
                ++result.skippedUpdates;
                continue;
            }

            double tilt_mean = 0.0, tilt_var = 0.0;
            if (config_.method == MomentMethod::Quadrature) {
                tiltedMomentsQuadrature(cavity.mean(), cavity.variance(),
                                        site.loc, site.scale, site.nu,
                                        config_.quadraturePoints, tilt_mean,
                                        tilt_var);
            } else {
                tiltedMomentsMcmc(cavity.mean(), cavity.variance(),
                                  site.loc, site.scale, site.nu,
                                  config_.mcmcSamples, config_.mcmcBurnin,
                                  rng(), tilt_mean, tilt_var);
            }
            ++result.momentEvaluations;

            const Gaussian tilted =
                Gaussian::fromMeanVar(tilt_mean, tilt_var);
            Gaussian updated = tilted / cavity;
            // Keep sites proper: clamping retains stability without
            // changing the fixed point in practice.
            if (updated.lambda < 0.0)
                updated = Gaussian::flat();

            const double d = damping;
            const Gaussian damped(
                d * updated.lambda + (1.0 - d) * site.approx.lambda,
                d * updated.eta + (1.0 - d) * site.approx.eta);

            const double scale_hint = graph.variable(v).scaleHint;
            const double old_mean =
                site.approx.isProper() ? site.approx.mean() : site.loc;
            const double new_mean =
                damped.isProper() ? damped.mean() : site.loc;
            max_rel_change =
                std::max(max_rel_change,
                         std::abs(new_mean - old_mean) / scale_hint);

            const Gaussian delta = damped / site.approx;
            site.approx = damped;
            ws.siteByVar_[v] = ws.siteByVar_[v] * delta;
            if (delta.lambda == 0.0 && delta.eta == 0.0)
                continue;

            // Bring the joint up to date with this one site change.
            if (config_.jointStrategy == JointStrategy::DenseResolve) {
                solver.solveInto(ws.siteByVar_, ws.joint_, ws.scratch_);
                ++result.fullSolves;
            } else if (config_.refactorInterval > 0 &&
                       updates_since_refactor >= config_.refactorInterval) {
                full_solve();
            } else if (GaussianSolver::rank1SiteUpdate(
                           ws.joint_, v, delta.lambda, delta.eta,
                           ws.scratch_)) {
                ++result.rank1Updates;
                ++updates_since_refactor;
            } else {
                // Downdate refused (near-improper joint): recover with
                // a fresh factorization.
                full_solve();
            }
        }

        if (max_rel_change < config_.tolerance) {
            result.converged = true;
            break;
        }
        damping = (max_rel_change < 20.0 * config_.tolerance &&
                   max_rel_change < prev_change)
                      ? 1.0
                      : config_.damping;
        prev_change = max_rel_change;
    }

    result.mean.resize(n);
    result.stddev.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        result.mean[v] = ws.joint_.mean[v];
        result.stddev[v] =
            std::sqrt(std::max(ws.joint_.covariance(v, v), 0.0));
    }
    result.workspaceAllocations = ws.totalAllocations() - grows_before;
    return result;
}

} // namespace core
} // namespace bperf
