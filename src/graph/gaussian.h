/**
 * @file
 * One-dimensional Gaussians in natural (information) parameters.
 *
 * EP manipulates site approximations by multiplying and dividing
 * Gaussians; in natural parameters (precision lambda, precision-mean
 * eta) those operations are addition and subtraction.  Objects may be
 * improper (non-positive precision) transiently, as EP requires.
 */

#ifndef BPERF_GRAPH_GAUSSIAN_H
#define BPERF_GRAPH_GAUSSIAN_H

namespace bperf {
namespace graph {

/** Gaussian in natural parameters: density ∝ exp(eta x - lambda x²/2). */
struct Gaussian
{
    double lambda = 0.0; // precision
    double eta = 0.0;    // precision * mean

    Gaussian() = default;
    Gaussian(double lambda_, double eta_) : lambda(lambda_), eta(eta_) {}

    /** Construct from moment parameters; var must be positive. */
    static Gaussian fromMeanVar(double mean, double var);

    /** Uninformative (flat) message. */
    static Gaussian flat() { return {0.0, 0.0}; }

    bool isProper() const { return lambda > 0.0; }

    /** Mean; requires a proper Gaussian. */
    double mean() const;

    /** Variance; requires a proper Gaussian. */
    double variance() const;

    /** Density product (message multiplication). */
    Gaussian operator*(const Gaussian &other) const
    {
        return {lambda + other.lambda, eta + other.eta};
    }

    /** Density ratio (cavity computation). */
    Gaussian operator/(const Gaussian &other) const
    {
        return {lambda - other.lambda, eta - other.eta};
    }
};

} // namespace graph
} // namespace bperf

#endif // BPERF_GRAPH_GAUSSIAN_H
