/**
 * @file
 * Wire layout of the posterior snapshot table — the paper's consumer
 * shim.  One writer (the monitoring daemon) keeps a fixed table of
 * per-session slots fresh inside a shared-memory segment; any number
 * of consumer processes map the segment read-only and poll the latest
 * corrected-counter posteriors without ever taking a lock or making
 * an RPC.
 *
 * Concurrency design: every slot is a seqlock.  The writer bumps the
 * slot's sequence word to odd, stores the payload, and bumps it back
 * to even; a reader snapshots the sequence, copies the payload, and
 * retries if the sequence moved or was odd (a torn read).  All
 * payload cells are lock-free relaxed atomics, so the protocol is
 * simultaneously
 *   - wait-free for the writer (a publish is a bounded store burst),
 *   - obstruction-free for readers (bounded retries, no writer
 *     blocking), and
 *   - data-race-free in the C++ memory model (TSan-clean for the
 *     in-process variant; the cross-process variant is the same code
 *     over an mmap'd segment).
 *
 * Everything in the segment is a 64-bit word: integers directly,
 * doubles as their IEEE-754 bit pattern (bit-preserving, so a reader
 * observes posteriors bit-identical to the in-process subscription
 * stream).  The layout is versioned; readers refuse segments whose
 * magic/version/geometry do not match what they were compiled with.
 */

#ifndef BPERF_SHIM_SNAPSHOT_LAYOUT_H
#define BPERF_SHIM_SNAPSHOT_LAYOUT_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bperf {
namespace shim {

/** Every cell of the segment: a lock-free 64-bit atomic word. */
using Word = std::atomic<std::uint64_t>;

static_assert(sizeof(Word) == sizeof(std::uint64_t),
              "snapshot layout requires plain 8-byte atomic words");
static_assert(Word::is_always_lock_free,
              "snapshot layout requires lock-free 64-bit atomics");

/** "BPSNPSHM" — identifies an initialised snapshot segment. */
inline constexpr std::uint64_t kSnapshotMagic = 0x4250534e5053484dull;

/** Bumped on any incompatible layout change. */
inline constexpr std::uint64_t kSnapshotLayoutVersion = 1;

/** Store a double's bit pattern in a word (bit-preserving). */
inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Recover a double from its stored bit pattern. */
inline double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/**
 * The shim's time base: steady_clock (CLOCK_MONOTONIC) nanoseconds.
 * Writers stamp publishes with it and readers subtract their own
 * reading to bound staleness, so BOTH sides must use this one helper
 * — a clock mismatch would silently skew every age computation
 * across the process boundary.
 */
inline std::uint64_t
steadyNowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Segment header (offset 0).  geometry fields are written once at
 * creation and read-only afterwards; `magic` is stored *last* with
 * release ordering, so an attaching reader that observes the magic
 * also observes a fully initialised geometry.
 */
struct RegionHeader
{
    Word magic;         ///< kSnapshotMagic once the segment is ready.
    Word layoutVersion; ///< kSnapshotLayoutVersion of the writer.
    Word slotCount;     ///< Session slots in the table.
    Word maxEvents;     ///< Posterior entries per slot.
    Word slotStride;    ///< Bytes between consecutive slots.
    Word publishes;     ///< Total publishes across all slots (live).
};

/** One posterior entry of one slot: event id + mean/stddev bits. */
struct SlotEvent
{
    Word event;      ///< sim::EventId, widened to 64 bits.
    Word meanBits;   ///< Posterior mean (double bits).
    Word stddevBits; ///< Posterior stddev (double bits).
};

/**
 * Fixed head of one session slot; `maxEvents` SlotEvent entries
 * follow immediately after.  Everything below `seq` is seqlock
 * payload: only valid when read under a stable even sequence.
 */
struct SlotHeader
{
    /** Seqlock sequence: odd while a write is in flight; 0 means the
     * slot has never been published. */
    Word seq;

    Word active;       ///< 1 while a live session owns the slot.
    Word sessionId;    ///< Owning session.
    Word windowIndex;  ///< Per-session window counter (completion order).
    Word endSlice;     ///< Slice whose arrival completed the window.
    Word eventCount;   ///< Valid SlotEvent entries (<= maxEvents).
    Word publishNanos; ///< steady_clock stamp of the publish (staleness).
    Word engineId;     ///< Backend engine that served the window.
    Word queueWaitBits; ///< WindowExecution.queueWaitSeconds (double bits).
    Word serviceBits;   ///< WindowExecution.serviceSeconds (double bits).
    Word transferBits;  ///< WindowExecution.transferSeconds (double bits).
    Word modeledBits;   ///< WindowExecution.modeledSeconds (double bits).

    /** Trailing posterior entries (writer-side view). */
    SlotEvent *events() noexcept
    {
        return reinterpret_cast<SlotEvent *>(this + 1);
    }
    const SlotEvent *events() const noexcept
    {
        return reinterpret_cast<const SlotEvent *>(this + 1);
    }
};

static_assert(sizeof(RegionHeader) % sizeof(Word) == 0, "word layout");
static_assert(sizeof(SlotHeader) % sizeof(Word) == 0, "word layout");
static_assert(sizeof(SlotEvent) % sizeof(Word) == 0, "word layout");

/** Byte geometry of a segment; identical for writer and readers. */
struct RegionLayout
{
    std::size_t headerBytes = 0; ///< Header, rounded to a cache line.
    std::size_t slotStride = 0;  ///< Per-slot bytes, cache-line rounded.
    std::size_t totalBytes = 0;  ///< Whole segment.

    static RegionLayout compute(std::size_t slots, std::size_t max_events)
    {
        constexpr std::size_t kLine = 64;
        auto round = [](std::size_t n) {
            return (n + kLine - 1) / kLine * kLine;
        };
        RegionLayout layout;
        layout.headerBytes = round(sizeof(RegionHeader));
        layout.slotStride =
            round(sizeof(SlotHeader) + max_events * sizeof(SlotEvent));
        layout.totalBytes =
            layout.headerBytes + slots * layout.slotStride;
        return layout;
    }
};

/** Slot `index` of a mapped segment (writer-side, mutable view). */
inline SlotHeader *
slotAt(std::byte *base, const RegionLayout &layout, std::size_t index)
{
    return reinterpret_cast<SlotHeader *>(
        base + layout.headerBytes + index * layout.slotStride);
}

/** Slot `index` of a mapped segment (reader-side view). */
inline const SlotHeader *
slotAt(const std::byte *base, const RegionLayout &layout,
       std::size_t index)
{
    return reinterpret_cast<const SlotHeader *>(
        base + layout.headerBytes + index * layout.slotStride);
}

} // namespace shim
} // namespace bperf

#endif // BPERF_SHIM_SNAPSHOT_LAYOUT_H
