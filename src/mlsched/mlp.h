/**
 * @file
 * Small dense neural network with Adam, used by the case study's
 * reinforcement-learned scheduler (the paper's 4-layer fully
 * connected ReLU network: 36-16-16-2).
 */

#ifndef BPERF_MLSCHED_MLP_H
#define BPERF_MLSCHED_MLP_H

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace bperf {
namespace ml {

/** Activation applied after each hidden layer. */
enum class Activation { Relu, Tanh, Identity };

/**
 * Fully connected network trained with Adam.
 */
class Mlp
{
  public:
    /**
     * @param layer_sizes  e.g. {36, 16, 16, 2}.
     * @param hidden       hidden-layer activation (output is linear).
     */
    Mlp(std::vector<std::size_t> layer_sizes, Activation hidden,
        std::uint64_t seed);

    /** Forward pass; returns the linear outputs. */
    std::vector<double> forward(const std::vector<double> &input) const;

    /**
     * Accumulate gradients by backpropagating d(loss)/d(output).
     * forward() state is recomputed internally for the given input.
     */
    void accumulateGradient(const std::vector<double> &input,
                            const std::vector<double> &grad_output);

    /** Apply one Adam step with the accumulated gradients, then
     * clear them. */
    void adamStep(double learning_rate);

    /**
     * d(loss)/d(input) for the given d(loss)/d(output): the full
     * backward pass continued through the first layer.  Const — the
     * gradient accumulators are untouched, so a finite-difference
     * check can interleave with training.
     */
    std::vector<double>
    inputGradient(const std::vector<double> &input,
                  const std::vector<double> &grad_output) const;

    std::size_t inputSize() const { return sizes_.front(); }
    std::size_t outputSize() const { return sizes_.back(); }
    std::size_t parameterCount() const;

  private:
    struct Layer
    {
        std::size_t in = 0, out = 0;
        std::vector<double> w, b;
        std::vector<double> gw, gb;     // gradient accumulators
        std::vector<double> mw, vw;     // Adam moments (weights)
        std::vector<double> mb, vb;     // Adam moments (bias)
    };

    std::vector<double> activate(const std::vector<double> &x) const;
    std::vector<double>
    activateGrad(const std::vector<double> &pre,
                 const std::vector<double> &grad_post) const;

    std::vector<std::size_t> sizes_;
    Activation hidden_;
    std::vector<Layer> layers_;
    std::size_t adamStep_ = 0;
};

/** Numerically stable softmax. */
std::vector<double> softmax(const std::vector<double> &logits);

} // namespace ml
} // namespace bperf

#endif // BPERF_MLSCHED_MLP_H
