#include "baselines/wmpin.h"

#include <algorithm>

namespace bperf {
namespace baselines {

std::vector<double>
WmPinEstimator::series(const sim::PerfResult &run, sim::EventId event) const
{
    LinuxEstimator linux_est;
    std::vector<double> out = linux_est.series(run, event);

    // Only the instruction count is corrected.
    if (uarch_.event(event).role != sim::Role::Instructions)
        return out;

    const double overcount =
        config_.interruptsPerSlice * config_.instructionsPerInterrupt;
    for (double &v : out)
        v = std::max(v - overcount, 0.0);
    return out;
}

} // namespace baselines
} // namespace bperf
