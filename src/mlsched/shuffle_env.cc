#include "mlsched/shuffle_env.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace ml {

namespace {

/** Seed split for the env's default synthetic feed: the episode
 * stream and the observation noise draw from independent streams, so
 * two environments with the same seed but different noise profiles
 * sample identical episodes (raw-vs-corrected runs compare policies
 * on the same situations). */
std::uint64_t
feedSeed(std::uint64_t env_seed)
{
    return env_seed * 1000003ull + 17ull;
}

} // namespace

ShuffleEnv::ShuffleEnv(EnvConfig config)
    : config_(std::move(config)), fabric_(config_.pcie),
      rng_(config_.seed)
{
    bp_assert(config_.noise.staleness >= 0.0 &&
                  config_.noise.staleness < 1.0,
              "staleness must be in [0, 1)");
    if (config_.feed != nullptr) {
        feed_ = config_.feed;
    } else {
        ownedFeed_ = std::make_unique<SyntheticCounterFeed>(
            config_.noise, feedSeed(config_.seed));
        feed_ = ownedFeed_.get();
    }
}

Episode
ShuffleEnv::sample()
{
    Episode ep;
    // Halo-exchange intensity: mixture of idle, moderate, saturating.
    const double mode = rng_.uniform();
    if (mode < 0.3) {
        ep.gpuTrafficGBps = rng_.uniform(0.0, 2.0);
    } else if (mode < 0.7) {
        ep.gpuTrafficGBps = rng_.uniform(2.0, 8.0);
    } else {
        ep.gpuTrafficGBps = rng_.uniform(8.0, 12.0);
    }
    ep.shuffleGB = rng_.uniform(0.5, 8.0);
    ep.messageBytes = std::pow(2.0, rng_.uniform(12.0, 22.0));
    ep.numaNode = rng_.bernoulli(0.5) ? 1 : 0;
    ep.features = makeFeatures(ep);
    return ep;
}

std::vector<double>
ShuffleEnv::makeFeatures(const Episode &episode)
{
    // True underlying signals, in rough feature-engineering units.
    std::vector<double> sig;
    const double gpu = episode.gpuTrafficGBps;
    // (a) write-type counters: allocating/full/partial/non-snoop.
    sig.push_back(gpu * 0.45);
    sig.push_back(gpu * 0.30);
    sig.push_back(gpu * 0.15);
    sig.push_back(gpu * 0.10);
    // (b) demand code reads, partial/MMIO reads.
    sig.push_back(gpu * 0.6 + 0.4);
    sig.push_back(gpu * 0.08 + 0.05);
    // (c) per-channel DRAM bandwidth (4 channels).
    for (int c = 0; c < 4; ++c)
        sig.push_back(gpu * 0.2 + 1.1);
    // (d) memory-bus utilization.
    sig.push_back(gpu / 12.0);
    // (e) shuffle size and NUMA residency.
    sig.push_back(episode.shuffleGB);
    sig.push_back(std::log2(episode.messageBytes));
    sig.push_back(static_cast<double>(episode.numaNode));

    // The estimator reports the HPC-derived signals (all but the last
    // three — shuffle size and NUMA node come from the request, not
    // from HPCs); the feed corrupts them the way that estimator
    // would: staleness mixing with the previous state, then the
    // measurement error it currently achieves.
    feed_->observe(sig, sig.size() - 3);

    std::vector<double> features = std::move(sig);
    features.reserve(kNumFeatures);
    // Pad with first/second-order interactions to the 36 inputs the
    // paper's network consumes.
    const std::size_t base = features.size();
    std::size_t i = 0, j = 1;
    while (features.size() < kNumFeatures) {
        features.push_back(features[i] * features[j] /
                           (1.0 + std::abs(features[j])));
        j += 2;
        if (j >= base) {
            ++i;
            j = i + 1;
        }
    }
    features.resize(kNumFeatures);
    return features;
}

double
ShuffleEnv::completionTime(const Episode &episode, int nic) const
{
    bp_assert(nic == 0 || nic == 1, "nic must be 0 or 1");

    const Node data_cpu = episode.numaNode == 0 ? Node::Cpu0 : Node::Cpu1;
    const Node nic_node = nic == 0 ? Node::Nic0 : Node::Nic1;

    std::vector<Flow> flows;
    // Halo exchange between GPU0 and GPU1 through the root complex:
    // it loads the switch-A uplink twice, so shuffles through NIC0
    // contend with it while NIC1 (across the socket) avoids it at the
    // cost of the remote-DMA penalty.
    flows.push_back({Node::Gpu0, Node::Gpu1,
                     fabric_.effectiveBandwidth(episode.gpuTrafficGBps,
                                                256.0 * 1024.0)});
    // The shuffle flow.
    const double demand = fabric_.effectiveBandwidth(
        fabric_.config().peakCopyGBps, episode.messageBytes);
    flows.push_back({data_cpu, nic_node, demand});

    const std::vector<double> rates = fabric_.allocate(flows);
    double rate = std::max(rates[1], 1e-3);
    // Remote-socket DMA pays an efficiency penalty (longer
    // completion queues, cross-node snoops).
    const bool crosses_socket =
        (episode.numaNode == 0) != (nic == 0);
    if (crosses_socket)
        rate *= 0.82;
    return episode.shuffleGB / rate;
}

double
ShuffleEnv::isolatedTime(const Episode &episode) const
{
    const double rate = std::max(
        fabric_.effectiveBandwidth(fabric_.config().peakCopyGBps,
                                   episode.messageBytes),
        1e-3);
    return episode.shuffleGB / rate;
}

int
ShuffleEnv::optimalNic(const Episode &episode) const
{
    return completionTime(episode, 0) <= completionTime(episode, 1) ? 0
                                                                    : 1;
}

} // namespace ml
} // namespace bperf
