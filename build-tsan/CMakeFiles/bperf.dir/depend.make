# Empty dependencies file for bperf.
# This may be replaced when dependencies are built.
