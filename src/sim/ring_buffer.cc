#include "sim/ring_buffer.h"

#include "common/logging.h"

namespace bperf {
namespace sim {

RingBuffer::RingBuffer(std::size_t capacity) : buffer_(capacity)
{
    bp_assert(capacity > 0, "ring buffer capacity must be positive");
}

bool
RingBuffer::push(const PerfRecord &rec)
{
    if (full()) {
        ++dropped_;
        return false;
    }
    buffer_[(head_ + size_) % buffer_.size()] = rec;
    ++size_;
    ++pushed_;
    return true;
}

std::optional<PerfRecord>
RingBuffer::pop()
{
    if (empty())
        return std::nullopt;
    PerfRecord rec = buffer_[head_];
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    return rec;
}

} // namespace sim
} // namespace bperf
