/** @file Tests for the perf-subsystem simulation. */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/perf_session.h"
#include "workloads/hibench.h"

namespace bperf {
namespace sim {
namespace {

struct Fixture
{
    MicroarchDescriptor uarch = makeX86Skylake();
    WorkloadProfile workload = wl::makeHibench("KMeans");
    TruthTrace truth;

    Fixture() : truth(makeTruth()) {}

    TruthTrace
    makeTruth()
    {
        GroundTruthGenerator gen(uarch, workload);
        return gen.generate(20, 77);
    }
};

TEST(PerfSession, PollingTracksTruthClosely)
{
    Fixture f;
    PerfSessionConfig cfg;
    cfg.noise.scale = 1.0;
    PerfSession session(f.uarch, cfg);
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const auto result = session.runPolling(f.truth, {llc});
    for (std::size_t t = 0; t < f.truth.numSlices(); ++t) {
        const auto &s = result.traces[0].slices[t];
        ASSERT_TRUE(s.observed);
        EXPECT_DOUBLE_EQ(s.timeRunning, 1.0);
        EXPECT_NEAR(s.scaled(), f.truth.sliceTotal(t, llc),
                    0.05 * f.truth.sliceTotal(t, llc));
    }
}

TEST(PerfSession, NoiseFreePollingIsNearExact)
{
    Fixture f;
    PerfSessionConfig cfg;
    cfg.noise.scale = 0.0;
    PerfSession session(f.uarch, cfg);
    const EventId inst = f.uarch.idForRole(Role::Instructions);
    const auto result = session.runPolling(f.truth, {inst});
    for (std::size_t t = 0; t < f.truth.numSlices(); ++t)
        EXPECT_NEAR(result.traces[0].slices[t].scaled(),
                    f.truth.sliceTotal(t, inst),
                    1e-6 * f.truth.sliceTotal(t, inst));
}

TEST(PerfSession, SamplingObservesPerSchedule)
{
    Fixture f;
    PerfSession session(f.uarch, {});
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const EventId loads = f.uarch.idForRole(Role::Loads);
    const EventId cyc = f.uarch.idForRole(Role::Cycles);
    const std::vector<std::vector<EventId>> schedule = {{llc}, {loads}};
    const auto result = session.run(f.truth, {cyc, llc, loads}, schedule);

    for (std::size_t t = 0; t < f.truth.numSlices(); ++t) {
        // Fixed counter: always observed at full duty.
        EXPECT_TRUE(result.traceFor(cyc).slices[t].observed);
        EXPECT_DOUBLE_EQ(result.traceFor(cyc).slices[t].timeRunning, 1.0);
        // Multiplexed events observed only in their slices.
        EXPECT_EQ(result.traceFor(llc).slices[t].observed, t % 2 == 0);
        EXPECT_EQ(result.traceFor(loads).slices[t].observed, t % 2 == 1);
    }
}

TEST(PerfSession, DutyCycleShrinksWithScheduleLength)
{
    Fixture f;
    PerfSession session(f.uarch, {});
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const EventId loads = f.uarch.idForRole(Role::Loads);
    const EventId l2 = f.uarch.idForRole(Role::L2Miss);
    const EventId br = f.uarch.idForRole(Role::Branches);

    const auto r2 =
        session.run(f.truth, {llc, loads}, {{llc}, {loads}});
    const auto r4 = session.run(f.truth, {llc, loads, l2, br},
                                {{llc}, {loads}, {l2}, {br}});
    const double duty2 = r2.traceFor(llc).slices[0].timeRunning;
    const double duty4 = r4.traceFor(llc).slices[0].timeRunning;
    EXPECT_GT(duty2, duty4);
}

TEST(PerfSession, ScaledExtrapolatesWindow)
{
    SliceSample s;
    s.observed = true;
    s.rawCount = 100.0;
    s.timeEnabled = 1.0;
    s.timeRunning = 0.25;
    EXPECT_DOUBLE_EQ(s.scaled(), 400.0);
    s.timeRunning = 0.0;
    EXPECT_DOUBLE_EQ(s.scaled(), 0.0);
}

TEST(PerfSession, HoldLastEstimateSeries)
{
    EventTrace trace;
    trace.slices.resize(4);
    trace.slices[1].observed = true;
    trace.slices[1].rawCount = 50.0;
    trace.slices[1].timeRunning = 0.5;
    trace.slices[3].observed = true;
    trace.slices[3].rawCount = 80.0;
    trace.slices[3].timeRunning = 0.5;

    const auto est = trace.estimateSeries(ScalingPolicy::HoldLastScaled);
    EXPECT_DOUBLE_EQ(est[0], 100.0); // backfilled
    EXPECT_DOUBLE_EQ(est[1], 100.0);
    EXPECT_DOUBLE_EQ(est[2], 100.0); // held
    EXPECT_DOUBLE_EQ(est[3], 160.0);
}

TEST(PerfSession, CumulativeScaledDiffConservesTotal)
{
    EventTrace trace;
    trace.slices.resize(6);
    for (std::size_t t = 0; t < 6; t += 2) {
        trace.slices[t].observed = true;
        trace.slices[t].rawCount = 30.0;
        trace.slices[t].timeRunning = 0.5;
    }
    const auto est =
        trace.estimateSeries(ScalingPolicy::CumulativeScaledDiff);
    double total = 0.0;
    for (double v : est)
        total += v;
    // Cumulative scaling: 90 raw counts over 1.5 running of 6
    // enabled slices -> 360 estimated total.
    EXPECT_NEAR(total, 360.0, 1e-9);
}

TEST(PerfSession, WindowsSumToRawCount)
{
    Fixture f;
    PerfSession session(f.uarch, {});
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const auto result = session.run(f.truth, {llc}, {{llc}});
    for (const auto &s : result.traces[0].slices) {
        ASSERT_TRUE(s.observed);
        double sum = 0.0;
        for (double w : s.windows)
            sum += w;
        EXPECT_NEAR(sum, s.rawCount, 1e-9);
    }
}

TEST(PerfSession, InvalidScheduleIsFatal)
{
    Fixture f;
    PerfSession session(f.uarch, {});
    // Two uncore-only events + one more uncore event cannot share a
    // config (only 2 uncore counters); three of them are invalid.
    const std::vector<EventId> uncore = {
        f.uarch.idForRole(Role::DramBytes),
        f.uarch.idForRole(Role::DmaBytes),
        f.uarch.idForRole(Role::DramReads)};
    EXPECT_EXIT(session.run(f.truth, uncore, {uncore}),
                ::testing::ExitedWithCode(1), "invalid configuration");
}

TEST(PerfSession, SamplingDeterministicPerSeed)
{
    Fixture f;
    PerfSessionConfig cfg;
    cfg.seed = 5;
    PerfSession a(f.uarch, cfg), b(f.uarch, cfg);
    const EventId llc = f.uarch.idForRole(Role::LlcMiss);
    const auto ra = a.run(f.truth, {llc}, {{llc}});
    const auto rb = b.run(f.truth, {llc}, {{llc}});
    for (std::size_t t = 0; t < f.truth.numSlices(); ++t)
        EXPECT_DOUBLE_EQ(ra.traces[0].slices[t].rawCount,
                         rb.traces[0].slices[t].rawCount);
}

} // namespace
} // namespace sim
} // namespace bperf
