/**
 * @file
 * Shared harness used by the benchmark binaries that regenerate the
 * paper's tables and figures: monitored-set construction, estimator
 * comparison runs, and paper-style reporting.
 */

#ifndef BPERF_BENCH_BENCH_UTIL_H
#define BPERF_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/error_metrics.h"
#include "sim/ground_truth.h"
#include "sim/microarch.h"
#include "sim/workload_profile.h"

namespace bperf {
namespace bench {

/** One estimator's error on one run. */
struct EstimatorErrors
{
    std::string name;
    /** Average error across the 10 standard derived metrics (%). */
    double derivedErrorPct = 0.0;
    /** Average per-event trace error (%). */
    double eventErrorPct = 0.0;
};

/** Knobs for a comparison run. */
struct ComparisonConfig
{
    std::size_t numSlices = 96;
    std::uint64_t truthSeed = 1234;
    std::uint64_t samplingSeed = 77;
    std::uint64_t pollSeed = 991;
    bool useOverlapSchedule = true;
    bool includeWmPin = false;
    bool includeBayesPerf = true;
};

/**
 * The monitored event set of the paper's evaluation: the HPCs behind
 * the 10 standard derived metrics plus their invariant-related
 * neighbours — 29 distinct programmable events, as in section 2's
 * derived-event example.
 */
std::vector<sim::EventId>
evaluationEventSet(const sim::MicroarchDescriptor &uarch);

/** First `n` events of a deterministic padded monitoring order. */
std::vector<sim::EventId>
paddedEventSet(const sim::MicroarchDescriptor &uarch, std::size_t n);

/**
 * Run one workload under sampling, score Linux / CounterMiner /
 * (optionally WM+Pin) / BayesPerf against a polled reference run of
 * the same execution.
 */
std::vector<EstimatorErrors>
compareEstimators(const sim::MicroarchDescriptor &uarch,
                  const sim::WorkloadProfile &workload,
                  const std::vector<sim::EventId> &monitored,
                  const ComparisonConfig &config);

/** True when the BP_QUICK environment variable asks for short runs. */
bool quickMode();

/** numSlices, honoring quick mode. */
std::size_t defaultSlices();

} // namespace bench
} // namespace bperf

#endif // BPERF_BENCH_BENCH_UTIL_H
