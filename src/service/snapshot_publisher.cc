#include "service/snapshot_publisher.h"

#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

namespace {

shim::SnapshotRegionConfig
regionConfig(const SnapshotConfig &config)
{
    shim::SnapshotRegionConfig region;
    region.slots = config.slots;
    region.maxEvents = config.maxEvents;
    return region;
}

telemetry::Counter &
shimPublishesCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("shim.publishes");
    return c;
}

telemetry::Counter &
shimDropsCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("shim.publish_drops");
    return c;
}

telemetry::Histogram &
shimPublishHistogram()
{
    static telemetry::Histogram &h =
        telemetry::MetricsRegistry::global().histogram("shim.publish_ns");
    return h;
}

} // namespace

SnapshotPublisher::SnapshotPublisher(const SnapshotConfig &config)
    : region_(regionConfig(config), config.shmName),
      slotUsed_(config.slots, false)
{
}

std::optional<std::size_t>
SnapshotPublisher::allocate(std::uint64_t session_id,
                            std::size_t event_count)
{
    if (event_count > region_.maxEvents())
        return std::nullopt; // does not fit a slot
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t slot = 0; slot < slotUsed_.size(); ++slot) {
        if (slotUsed_[slot])
            continue;
        slotUsed_[slot] = true;
        slotOf_[session_id] = slot;
        return slot;
    }
    return std::nullopt; // table full
}

void
SnapshotPublisher::release(std::uint64_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slotOf_.find(session_id);
    if (it == slotOf_.end())
        return; // never exported
    const std::size_t slot = it->second;
    // Invalidate before the slot becomes allocatable: a slot must
    // never have two writers, and the next owner's first publish is
    // ordered after this critical section through mutex_.
    region_.invalidate(slot);
    slotOf_.erase(it);
    slotUsed_[slot] = false;
}

void
SnapshotPublisher::publish(std::size_t slot, const WindowUpdate &update)
{
    const std::uint64_t start = shim::steadyNowNanos();
    region_.write(slot, update.sessionId, update.windowIndex,
                  update.endSlice, update.execution, update.events,
                  update.posterior, start);
    shimPublishesCounter().add();
    if (telemetry::enabled()) {
        const std::uint64_t end = shim::steadyNowNanos();
        if (end > start)
            shimPublishHistogram().record(end - start);
    }
}

void
SnapshotPublisher::countDrop()
{
    drops_.fetch_add(1, std::memory_order_relaxed);
    shimDropsCounter().add();
}

bool
SnapshotPublisher::publishSelfMetrics(const std::vector<SelfMetric> &metrics)
{
    std::lock_guard<std::mutex> lock(selfMutex_);
    if (!selfSlot_) {
        // Claim lazily: a daemon that never publishes self-metrics
        // leaves the slot free for a tenant.  Event-count 0 passes
        // the capacity check; actual publishes truncate below.
        selfSlot_ = allocate(kSelfMetricsSessionId, 0);
        if (!selfSlot_) {
            countDrop();
            return false;
        }
    }
    const std::size_t count =
        metrics.size() < region_.maxEvents() ? metrics.size()
                                             : region_.maxEvents();
    // Shape the metrics as a WindowUpdate and go through publish():
    // self-metrics publishes are ordinary publishes, with the same
    // counter bump and the same shim.publish_ns histogram sample —
    // not a parallel path that duplicates (and drifts from) the
    // accounting.
    selfUpdate_.sessionId = kSelfMetricsSessionId;
    selfUpdate_.windowIndex = selfWindow_++;
    selfUpdate_.windowId = selfWindow_;
    selfUpdate_.endSlice = 0;
    selfUpdate_.execution = core::WindowExecution{};
    selfUpdate_.events.clear();
    selfUpdate_.posterior.clear();
    for (std::size_t i = 0; i < count; ++i) {
        selfUpdate_.events.push_back(metrics[i].id);
        selfUpdate_.posterior.push_back({metrics[i].value, 0.0});
    }
    publish(*selfSlot_, selfUpdate_);
    return true;
}

SnapshotPublisherStats
SnapshotPublisher::stats() const
{
    SnapshotPublisherStats out;
    out.enabled = true;
    // The region header's publish counter is the single source of
    // truth (the same word readers watch for freshness).
    out.publishes = region_.publishes();
    out.publishDrops = drops_.load(std::memory_order_relaxed);
    out.slotCapacity = region_.slots();
    std::lock_guard<std::mutex> lock(mutex_);
    out.slotsLive = slotOf_.size();
    return out;
}

} // namespace service
} // namespace bperf
