# Empty compiler generated dependencies file for topdown_analysis.
# This may be replaced when dependencies are built.
