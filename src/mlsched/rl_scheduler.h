/**
 * @file
 * Actor-critic reinforcement-learned NIC scheduler (paper section
 * 6.3, second model): the 36-16-16-2 ReLU policy network trained to
 * minimize shuffle completion time, with a small value network as
 * baseline.
 */

#ifndef BPERF_MLSCHED_RL_SCHEDULER_H
#define BPERF_MLSCHED_RL_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "mlsched/mlp.h"
#include "mlsched/shuffle_env.h"

namespace bperf {
namespace ml {

/** Training hyperparameters (taken from the referenced works). */
struct RlConfig
{
    std::size_t iterations = 9000;
    std::size_t batchSize = 8;
    double policyLearningRate = 2e-3;
    double valueLearningRate = 8e-3;
    /**
     * Entropy regularization weight.  Without it the softmax collapses
     * onto the contention-free NIC early (a decision the noise-free
     * NUMA feature alone supports) and never explores enough to learn
     * the counter-dependent refinement — routing locally when the
     * observed GPU traffic is low — which is exactly the part of the
     * policy that counter quality gates.
     */
    double entropyBonus = 0.03;
    /**
     * Training-time exploration floor: actions are sampled from the
     * policy clamped into [floor, 1-floor] (0 disables).  Off by
     * default: forced exploration in strongly-decided states injects
     * large advantage gradients through the shared weights that swamp
     * the subtler state-dependent signal; the entropy bonus regularizes
     * without that failure mode.  Greedy evaluation is unaffected.
     */
    double explorationFloor = 0.0;
    /**
     * Symmetric clip on the critic-baselined advantage.  Contended
     * placements can be ~1.3 normalized-makespan worse while the
     * counter-dependent refinement (local NIC under low GPU traffic)
     * is only ~0.2 better; unclipped, the former's gradients dominate
     * the shared weights and the refinement is never learned.
     */
    double advantageClip = 0.3;
    /**
     * Iterations during which only the critic trains (policy frozen).
     * Starting the policy against an accurate state-dependent baseline
     * makes the advantage of the counter-dependent refinement visible
     * from the first policy update, while exploration is still high.
     */
    std::size_t criticWarmupIterations = 300;
    /** EWMA factor of the reported loss curve. */
    double lossSmoothing = 0.03;
    std::uint64_t seed = 5;
};

/** The Fig. 10 training curve. */
struct TrainingCurve
{
    /** Smoothed normalized makespan (loss) per iteration. */
    std::vector<double> loss;

    /** First iteration where the smoothed loss drops below the
     * threshold and stays below it; loss.size() if never. */
    std::size_t iterationsToConverge(double threshold) const;
};

/**
 * Trains and evaluates the RL scheduler against an environment.
 */
class RlScheduler
{
  public:
    RlScheduler(EnvConfig env_config, RlConfig rl_config);

    /** Run training; returns the loss curve. */
    TrainingCurve train();

    /** Greedy NIC choice for a feature vector. */
    int chooseNic(const std::vector<double> &features) const;

    /**
     * Average shuffle completion time over fresh episodes, normalized
     * by the isolated time (1.0 = no contention impact).
     */
    double evaluate(std::size_t episodes);

    /** The environment (and thus the feed) this scheduler trains
     * against — lets callers inspect live-feed statistics. */
    ShuffleEnv &environment() { return env_; }
    const ShuffleEnv &environment() const { return env_; }

  private:
    EnvConfig envConfig_;
    RlConfig rlConfig_;
    ShuffleEnv env_;
    Mlp policy_;
    Mlp value_;
    Rng rng_;
};

} // namespace ml
} // namespace bperf

#endif // BPERF_MLSCHED_RL_SCHEDULER_H
