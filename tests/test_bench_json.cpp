/** @file Schema tests for the shared bench JSON writer: the one
 * serializer behind every BENCH_*.json artifact must emit
 * syntactically valid JSON with exactly the nesting the benches ask
 * for. */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "common/stats.h"

#include "bench_util.h"
#include "json_checker.h"

namespace bperf {
namespace {

using testutil::JsonChecker;

TEST(JsonWriter, ScalarFieldsAndCommaPlacement)
{
    bench::JsonWriter json;
    json.beginObject()
        .field("count", 3)
        .field("ratio", 1.5)
        .field("name", std::string("ep"))
        .field("tag", "fast")
        .field("ok", true)
        .field("bad", false)
        .endObject();
    EXPECT_EQ(json.str(),
              "{\"count\": 3, \"ratio\": 1.5, \"name\": \"ep\", "
              "\"tag\": \"fast\", \"ok\": true, \"bad\": false}");
    EXPECT_TRUE(JsonChecker(json.str()).valid());
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControlCharacters)
{
    bench::JsonWriter json;
    json.beginObject()
        .field("path", "C:\\data\\run")
        .field("quote", "say \"hi\"")
        .field("multi", "a\nb\tc")
        .endObject();
    EXPECT_EQ(json.str(),
              "{\"path\": \"C:\\\\data\\\\run\", "
              "\"quote\": \"say \\\"hi\\\"\", "
              "\"multi\": \"a\\nb\\tc\"}");
    EXPECT_TRUE(JsonChecker(json.str()).valid());
}

TEST(JsonWriter, NestedObjectsAndArrays)
{
    bench::JsonWriter json;
    json.beginObject()
        .beginObject("host")
        .field("p50_us", 12.5)
        .endObject()
        .beginArray("accel");
    for (int engines : {1, 2}) {
        json.beginObject()
            .field("engines", engines)
            .field("p99_us", 100.0 * engines)
            .endObject();
    }
    json.endArray().beginArray("raw").value(1).value(2.5).endArray();
    json.beginObject("empty").endObject().endObject();

    EXPECT_EQ(json.str(),
              "{\"host\": {\"p50_us\": 12.5}, "
              "\"accel\": [{\"engines\": 1, \"p99_us\": 100}, "
              "{\"engines\": 2, \"p99_us\": 200}], "
              "\"raw\": [1, 2.5], \"empty\": {}}");
    EXPECT_TRUE(JsonChecker(json.str()).valid());
}

/** The exact schema bench_ep_window.cpp writes. */
TEST(JsonWriter, EpWindowBenchSchemaIsValid)
{
    bench::JsonWriter json;
    json.beginObject()
        .field("events", 13)
        .field("window_slices", 6)
        .field("joint_size", 78)
        .field("quad_kernel", "avx2")
        .field("block_size", 8)
        .field("partitions", 2)
        .field("us_per_window_fast", 730.5)
        .field("us_per_window_scalar", 4500.0)
        .field("us_per_window_partitioned", 3100.0)
        .field("us_per_window_dense", 45000.25)
        .field("us_per_window_mcmc", 30000.0)
        .field("speedup_fast_vs_dense", 16.66)
        .field("speedup_simd_vs_scalar", 6.15)
        .field("moment_evals_per_window", 293.0)
        .field("rank1_updates_per_window", 292.0)
        .field("full_solves_per_window", 2.0)
        .field("block_flushes_per_window", 37.0)
        .field("buffer_growths", 1205)
        .field("quadrature_us", 1.25)
        .field("rank1_update_us", 10.5)
        .field("full_solve_us", 120.75)
        .endObject();
    const std::string doc = json.str();
    EXPECT_TRUE(JsonChecker(doc).valid());
    for (const char *key :
         {"events", "window_slices", "joint_size", "quad_kernel",
          "us_per_window_fast", "us_per_window_scalar",
          "us_per_window_dense", "speedup_fast_vs_dense",
          "speedup_simd_vs_scalar", "buffer_growths"})
        EXPECT_NE(doc.find('"' + std::string(key) + "\": "),
                  std::string::npos)
            << key;
}

/** The exact schema bench_accel_service.cpp writes. */
TEST(JsonWriter, AccelServiceBenchSchemaIsValid)
{
    bench::JsonWriter json;
    json.beginObject()
        .field("sessions", 8)
        .field("slices", 48)
        .field("window_slices", 6)
        .field("events", 13)
        .field("slice_period_us", 100.0)
        .beginObject("host")
        .field("backend", "host")
        .field("windows", 120)
        .field("mean_us", 2700.0)
        .field("p50_us", 2650.0)
        .field("p95_us", 3100.0)
        .field("p99_us", 3400.0)
        .field("mean_queue_wait_us", 0.0)
        .field("mean_transfer_us", 0.0)
        .field("mean_compute_us", 2700.0)
        .field("publish_p50_us", 2.0)
        .field("publish_p99_us", 11.0)
        .endObject()
        .beginArray("accel");
    for (int engines : {1, 2, 4, 8}) {
        json.beginObject()
            .field("engines", engines)
            .field("backend", "accel-capi")
            .field("windows", 120)
            .field("mean_us", 500.0)
            .field("p50_us", 400.0)
            .field("p95_us", 900.0)
            .field("p99_us", 1200.0)
            .field("mean_queue_wait_us", 250.0)
            .field("mean_transfer_us", 40.0)
            .field("mean_compute_us", 210.0)
            .field("publish_p50_us", 2.0)
            .field("publish_p99_us", 11.0)
            .field("engine_utilization", 0.85)
            .field("speedup_vs_host", 5.4)
            .endObject();
    }
    json.endArray().endObject();
    const std::string doc = json.str();
    EXPECT_TRUE(JsonChecker(doc).valid());
    for (const char *key :
         {"sessions", "host", "accel", "p50_us", "p95_us", "p99_us",
          "mean_queue_wait_us", "mean_transfer_us", "mean_compute_us",
          "publish_p50_us", "publish_p99_us", "engine_utilization",
          "speedup_vs_host"})
        EXPECT_NE(doc.find('"' + std::string(key) + '"'),
                  std::string::npos)
            << key;
}

/** The exact schema bench_shim_read.cpp writes (layout v2: the
 * `checksum` section carries the verify-off read latencies, the
 * relative verification overhead, and the corruptReads protocol
 * assertion — zero in any healthy run). */
TEST(JsonWriter, ShimReadBenchSchemaIsValid)
{
    bench::JsonWriter json;
    const auto ns_summary = [&](const char *key) {
        json.beginObject(key)
            .field("samples", 200000)
            .field("meanNs", 120.0)
            .field("p50Ns", 110.0)
            .field("p95Ns", 160.0)
            .field("p99Ns", 180.0)
            .field("maxNs", 9000.0)
            .endObject();
    };
    json.beginObject()
        .field("bench", "shim_read")
        .field("quick", false)
        .beginObject("config")
        .field("events", 13)
        .field("directReads", 200000)
        .field("publishes", 200000)
        .field("slices", 48)
        .field("maxRetries", 64)
        .endObject();
    for (const char *section : {"uncontended", "hammered"}) {
        json.beginObject(section);
        ns_summary("readLatency");
        ns_summary("staleness");
        json.field("retriedReads", 12)
            .field("tornReads", 3)
            .endObject();
    }
    json.beginObject("checksum");
    ns_summary("uncontendedNoVerify");
    ns_summary("hammeredNoVerify");
    json.field("verifyOverheadPctP50", 4.5)
        .field("verifyOverheadPctP99", 6.1)
        .field("corruptReads", 0)
        .endObject();
    json.beginObject("writer")
        .field("publishNs", 210.0)
        .field("serviceOffSeconds", 1.2)
        .field("serviceOnSeconds", 1.22)
        .field("overheadPct", 1.7)
        .endObject();
    json.beginObject("service").field("windows", 120);
    ns_summary("subscriptionLag");
    ns_summary("shimReadAge");
    json.field("posteriorsBitIdentical", true).endObject();
    json.endObject();

    const std::string doc = json.str();
    EXPECT_TRUE(JsonChecker(doc).valid());
    for (const char *key :
         {"uncontended", "hammered", "checksum", "uncontendedNoVerify",
          "hammeredNoVerify", "verifyOverheadPctP50",
          "verifyOverheadPctP99", "corruptReads", "readLatency",
          "staleness", "publishNs", "posteriorsBitIdentical"})
        EXPECT_NE(doc.find('"' + std::string(key) + "\": "),
                  std::string::npos)
            << key;
}

/** The exact schema bench_telemetry_overhead.cpp writes. */
TEST(JsonWriter, TelemetryBenchSchemaIsValid)
{
    bench::JsonWriter json;
    json.beginObject()
        .field("events", 13)
        .field("window_slices", 6)
        .field("us_per_window_disabled", 2700.0)
        .field("us_per_window_enabled", 2750.0)
        .field("overhead_pct", 1.85)
        .field("counter_add_ns_enabled", 4.0)
        .field("counter_add_ns_disabled", 0.8)
        .field("histogram_record_ns_enabled", 6.5)
        .field("histogram_record_ns_disabled", 0.8)
        .field("clock_stamp_ns", 20.0)
        .field("scrape_us", 3.5)
        .endObject();
    const std::string doc = json.str();
    EXPECT_TRUE(JsonChecker(doc).valid());
    for (const char *key :
         {"us_per_window_disabled", "us_per_window_enabled",
          "overhead_pct", "counter_add_ns_enabled",
          "histogram_record_ns_disabled", "scrape_us"})
        EXPECT_NE(doc.find('"' + std::string(key) + "\": "),
                  std::string::npos)
            << key;
}

/** The exact schema bench_sec63_decision_quality.cpp writes: per
 * policy x counter-quality improvement distributions, the
 * corrected-vs-raw gains, the corrected_beats_raw verdicts the CI
 * smoke asserts on, and the paper's section 6.3 bars. */
TEST(JsonWriter, DecisionQualityBenchSchemaIsValid)
{
    bench::JsonWriter json;
    const auto stats_block = [&](const char *key) {
        json.beginObject(key)
            .field("mean_pct", 15.1)
            .field("stddev_pct", 2.2)
            .field("stderr_pct", 1.0)
            .field("ci95_pct", 1.96)
            .field("trials", 5)
            .endObject();
    };
    const auto paper_bar = [&](const char *key) {
        json.beginObject(key)
            .field("mean_pct", 22.3)
            .field("pm_pct", 7.9)
            .endObject();
    };
    json.beginObject()
        .field("quick", false)
        .field("trials", 5)
        .field("eval_episodes", 1500)
        .field("train_iters", 7000)
        .beginObject("noise")
        .field("raw_error_pct", 38.0)
        .field("raw_staleness", 0.5)
        .field("corrected_error_pct", 10.0)
        .field("corrected_staleness", 0.0)
        .endObject();
    json.beginObject("improvement_vs_static_pct");
    for (const char *key : {"cf_raw", "rl_raw", "cf_corrected",
                            "rl_corrected"})
        stats_block(key);
    json.endObject();
    json.beginObject("corrected_vs_raw_pct");
    stats_block("cf");
    stats_block("rl");
    json.endObject();
    json.beginObject("corrected_beats_raw")
        .field("cf", true)
        .field("rl", true)
        .endObject();
    json.beginObject("paper");
    for (const char *key : {"cf_vs_static", "rl_vs_static",
                            "cf_corrected_gain", "rl_corrected_gain"})
        paper_bar(key);
    json.endObject().endObject();

    const std::string doc = json.str();
    EXPECT_TRUE(JsonChecker(doc).valid());
    for (const char *key :
         {"noise", "raw_error_pct", "raw_staleness",
          "improvement_vs_static_pct", "cf_raw", "rl_corrected",
          "corrected_vs_raw_pct", "corrected_beats_raw", "mean_pct",
          "ci95_pct", "paper", "rl_corrected_gain"})
        EXPECT_NE(doc.find('"' + std::string(key) + "\": "),
                  std::string::npos)
            << key;
}

/** The exact schema bench_fig9_pcie_contention.cpp writes. */
TEST(JsonWriter, Fig9PcieContentionBenchSchemaIsValid)
{
    bench::JsonWriter json;
    json.beginObject()
        .field("peak_copy_gbps", 12.2)
        .beginArray("points");
    for (int log2_bytes : {12, 16, 20}) {
        json.beginObject()
            .field("log2_bytes", log2_bytes)
            .field("isolated_gbps", 9.5)
            .field("contended_gbps", 4.2)
            .field("slowdown_x", 2.26)
            .endObject();
    }
    json.endArray()
        .beginObject("contention")
        .field("saturation_gbps", 11.9)
        .field("max_slowdown_x", 2.8)
        .field("small_message_slowdown_x", 2.3)
        .endObject()
        .endObject();

    const std::string doc = json.str();
    EXPECT_TRUE(JsonChecker(doc).valid());
    for (const char *key :
         {"peak_copy_gbps", "points", "log2_bytes", "isolated_gbps",
          "contended_gbps", "slowdown_x", "contention",
          "saturation_gbps", "max_slowdown_x",
          "small_message_slowdown_x"})
        EXPECT_NE(doc.find('"' + std::string(key) + "\": "),
                  std::string::npos)
            << key;
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull)
{
    // Regression: percentiles over an empty sample set (a 0-window
    // run) used to stream bare nan/inf tokens, which no JSON parser
    // accepts.  Every non-finite double must come out as null.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    bench::JsonWriter json;
    json.beginObject()
        .field("p99_us", nan)
        .field("speedup", inf)
        .field("slowdown", -inf)
        .field("ok", 1.5)
        .beginArray("raw")
        .value(nan)
        .value(2.0)
        .endArray()
        .endObject();
    EXPECT_EQ(json.str(),
              "{\"p99_us\": null, \"speedup\": null, "
              "\"slowdown\": null, \"ok\": 1.5, \"raw\": [null, 2]}");
    EXPECT_TRUE(JsonChecker(json.str()).valid());
}

TEST(JsonWriter, EmptyPercentilePathEmitsNull)
{
    // The exact empty-sample path the benches hit on a 0-window run:
    // percentileOrNan -> NaN -> null in the artifact.
    const std::vector<double> empty;
    const double p99 = bench::percentileOrNan(empty, 99.0);
    EXPECT_TRUE(std::isnan(p99));
    // Non-empty input must agree with the strict percentile().
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(bench::percentileOrNan(xs, 50.0),
                     percentile(xs, 50.0));

    bench::JsonWriter json;
    json.beginObject().field("windows", 0).field("p99_us", p99).endObject();
    EXPECT_EQ(json.str(), "{\"windows\": 0, \"p99_us\": null}");
    EXPECT_TRUE(JsonChecker(json.str()).valid());
}

TEST(JsonWriter, WriteFileRoundTrips)
{
    bench::JsonWriter json;
    json.beginObject().field("a", 1).endObject();
    const std::string path =
        ::testing::TempDir() + "bperf_json_writer_test.json";
    ASSERT_TRUE(json.writeFile(path));
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "{\"a\": 1}\n");
}

} // namespace
} // namespace bperf
