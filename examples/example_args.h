/**
 * @file
 * Tiny argv helpers shared by the example binaries (perf_daemon,
 * shim_reader): strict numeric flag-value parsing — garbage,
 * negatives and out-of-range values are rejected, not clamped — and
 * POSIX shm name validation.  Examples only; the library proper has
 * no argv surface.
 */

#ifndef BPERF_EXAMPLES_EXAMPLE_ARGS_H
#define BPERF_EXAMPLES_EXAMPLE_ARGS_H

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bperf {
namespace examples {

/** Parse a non-negative double flag value; false on garbage. */
inline bool
parseDouble(const char *text, double *out)
{
    errno = 0;
    char *end = nullptr;
    *out = std::strtod(text, &end);
    return end != text && *end == '\0' && errno != ERANGE &&
           *out >= 0.0;
}

/** Parse a non-negative integer flag value; false on garbage,
 * negatives, or overflow (no silent wrap/clamp). */
inline bool
parseCount(const char *text, std::size_t *out)
{
    if (text[0] == '-')
        return false; // strtoul would silently wrap negatives
    errno = 0;
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        return false;
    *out = static_cast<std::size_t>(v);
    return true;
}

/**
 * True for a portable POSIX shm name: leading '/', no further '/',
 * short enough for the implementation (NAME_MAX minus the /dev/shm
 * prefix glibc uses).  Rejecting here turns a would-be shm_open
 * failure into a normal usage error.
 */
inline bool
validShmName(const std::string &name)
{
    return name.size() >= 2 && name.size() <= 250 && name[0] == '/' &&
           name.find('/', 1) == std::string::npos;
}

} // namespace examples
} // namespace bperf

#endif // BPERF_EXAMPLES_EXAMPLE_ARGS_H
