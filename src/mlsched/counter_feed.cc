#include "mlsched/counter_feed.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace ml {

const char *
feedServedName(FeedServed served)
{
    switch (served) {
      case FeedServed::Live: return "live";
      case FeedServed::LastGood: return "last-good";
      case FeedServed::Fallback: return "fallback";
    }
    return "?";
}

void
CounterFeed::corrupt(std::vector<double> &signals, std::size_t hpc_count,
                     std::vector<double> &last_truth, double error_pct,
                     double staleness, Rng &rng)
{
    bp_assert(hpc_count <= signals.size(),
              "hpc_count exceeds the signal vector");
    bp_assert(staleness >= 0.0 && staleness < 1.0,
              "staleness must be in [0, 1)");

    // Remember the incoming truth before corrupting: the *previous*
    // system state is what a slow estimator still reports.
    std::vector<double> truth(signals.begin(),
                              signals.begin() +
                                  static_cast<std::ptrdiff_t>(hpc_count));

    if (!last_truth.empty() && staleness > 0.0) {
        const std::size_t n = std::min(hpc_count, last_truth.size());
        for (std::size_t i = 0; i < n; ++i)
            signals[i] = (1.0 - staleness) * signals[i] +
                         staleness * last_truth[i];
    }

    // Multiplexing error is correlated within one estimation window:
    // every counter extrapolates over the same un-scheduled gaps, so
    // most of the error is a common-mode factor a downstream model
    // cannot average away across counters, plus a smaller per-counter
    // component.  The split keeps the total per-signal stddev at
    // error_pct (0.8^2 + 0.6^2 = 1).
    const double rel = error_pct / 100.0;
    const double common = rng.normal(0.0, 0.8 * rel);
    for (std::size_t i = 0; i < hpc_count; ++i)
        signals[i] *=
            std::max(1.0 + common + rng.normal(0.0, 0.6 * rel), 0.0);

    last_truth = std::move(truth);
}

SyntheticCounterFeed::SyntheticCounterFeed(FeatureNoise noise,
                                           std::uint64_t seed)
    : noise_(noise), rng_(seed)
{
    bp_assert(noise_.staleness >= 0.0 && noise_.staleness < 1.0,
              "staleness must be in [0, 1)");
    bp_assert(noise_.errorPct >= 0.0, "negative noise");
}

FeedQuality
SyntheticCounterFeed::observe(std::vector<double> &signals,
                              std::size_t hpc_count)
{
    ++stats_.observations;
    ++stats_.liveObservations;
    const FeedQuality quality{noise_.errorPct, noise_.staleness,
                              FeedServed::Live};
    corrupt(signals, hpc_count, lastTruth_, quality.errorPct,
            quality.staleness, rng_);
    return quality;
}

ShimCounterFeed::ShimCounterFeed(shim::SnapshotReader reader,
                                 ShimFeedConfig config)
    : reader_(std::move(reader)), config_(std::move(config)),
      rng_(config_.seed)
{
    bp_assert(config_.stalenessHorizonSeconds > 0.0,
              "staleness horizon must be positive");
    bp_assert(config_.maxStaleness >= 0.0 && config_.maxStaleness < 1.0,
              "staleness cap must be in [0, 1)");
    bp_assert(config_.minErrorPct >= 0.0 &&
                  config_.maxErrorPct >= config_.minErrorPct,
              "bad error clamp");
}

ShimFeedAttach
ShimCounterFeed::attach(const std::string &shm_name, ShimFeedConfig config)
{
    shim::AttachResult attached = shim::SnapshotReader::attach(shm_name);
    ShimFeedAttach result;
    result.status = attached.status;
    if (attached)
        result.feed.emplace(std::move(*attached.reader),
                            std::move(config));
    return result;
}

FeedQuality
ShimCounterFeed::pollQuality()
{
    // Poll every watched session; one verdict per session per sweep.
    std::vector<std::uint64_t> watched = config_.watchedSessions;
    if (watched.empty()) {
        for (std::uint64_t session : reader_.sessions()) {
            // Session 0 is the daemon's self-metrics pseudo-session
            // (service::SnapshotPublisher::kSelfMetricsSessionId);
            // its "posteriors" are telemetry values, not counters.
            if (session != 0)
                watched.push_back(session);
        }
    }

    double rel_sum = 0.0;
    std::size_t rel_count = 0;
    std::uint64_t freshest_age = ~0ull;
    std::optional<shim::PosteriorSnapshot> freshest;

    for (std::uint64_t session : watched) {
        shim::PosteriorSnapshot snap;
        const shim::ReadStatus status =
            reader_.read(session, snap, config_.maxRetries);
        switch (status) {
          case shim::ReadStatus::Ok: break;
          case shim::ReadStatus::NotFound: ++stats_.notFoundPolls; continue;
          case shim::ReadStatus::Torn: ++stats_.tornPolls; continue;
          case shim::ReadStatus::WriterDead:
            ++stats_.writerDeadPolls;
            continue;
          case shim::ReadStatus::Corrupt: ++stats_.corruptPolls; continue;
        }
        // The staleness verdict: a consistent snapshot can still be
        // too old to trust (daemon wedged between publishes).
        if (static_cast<double>(snap.ageNanos) >
            config_.maxSnapshotAgeSeconds * 1e9) {
            ++stats_.stalePolls;
            continue;
        }
        ++stats_.okPolls;
        for (const shim::SnapshotCounter &counter : snap.counters) {
            const double mean = std::abs(counter.posterior.mean);
            rel_sum += counter.posterior.stddev / std::max(mean, 1e-9);
            ++rel_count;
        }
        if (snap.ageNanos < freshest_age) {
            freshest_age = snap.ageNanos;
            freshest = std::move(snap);
        }
    }

    if (rel_count > 0) {
        FeedQuality quality;
        quality.errorPct =
            std::clamp(100.0 * rel_sum / static_cast<double>(rel_count),
                       config_.minErrorPct, config_.maxErrorPct);
        quality.staleness =
            std::min(static_cast<double>(freshest_age) * 1e-9 /
                         config_.stalenessHorizonSeconds,
                     config_.maxStaleness);
        quality.served = FeedServed::Live;
        lastGood_ = quality;
        sinceLastGood_ = 0;
        lastSnapshot_ = std::move(freshest);
        ++stats_.liveObservations;
        return quality;
    }

    // Degrade: bounded last-good, then the fallback profile.
    ++sinceLastGood_;
    if (lastGood_.has_value() &&
        sinceLastGood_ <= config_.holdLastGoodObservations) {
        FeedQuality quality = *lastGood_;
        quality.served = FeedServed::LastGood;
        ++stats_.lastGoodObservations;
        return quality;
    }
    ++stats_.fallbackObservations;
    return {config_.fallback.errorPct, config_.fallback.staleness,
            FeedServed::Fallback};
}

FeedQuality
ShimCounterFeed::observe(std::vector<double> &signals,
                         std::size_t hpc_count)
{
    ++stats_.observations;
    const FeedQuality quality = pollQuality();
    corrupt(signals, hpc_count, lastTruth_, quality.errorPct,
            quality.staleness, rng_);
    return quality;
}

} // namespace ml
} // namespace bperf
