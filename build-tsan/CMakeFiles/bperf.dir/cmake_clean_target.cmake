file(REMOVE_RECURSE
  "libbperf.a"
)
