file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_monitor.dir/examples/uncertainty_monitor.cpp.o"
  "CMakeFiles/uncertainty_monitor.dir/examples/uncertainty_monitor.cpp.o.d"
  "uncertainty_monitor"
  "uncertainty_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
