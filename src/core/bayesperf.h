/**
 * @file
 * BayesPerf public session API.
 *
 * Mirrors the perf_event_open workflow the paper's shim exposes
 * (section 5): a monitoring application opens the events of interest,
 * the session schedules them (overlap-aware by default), drives the
 * measurement, and serves full posterior distributions — mean plus
 * uncertainty — for every event at every time slice.
 */

#ifndef BPERF_CORE_BAYESPERF_H
#define BPERF_CORE_BAYESPERF_H

#include <vector>

#include "core/inference.h"
#include "core/scheduler.h"
#include "sim/ground_truth.h"
#include "sim/perf_session.h"

namespace bperf {
namespace core {

/** Top-level configuration of a BayesPerf session. */
struct BayesPerfConfig
{
    sim::PerfSessionConfig perf;
    InferenceConfig inference;
    SchedulerConfig scheduler;

    /**
     * Use the overlap-aware schedule (the paper's design).  Disabled,
     * the session falls back to Linux round-robin packing — the
     * scheduling ablation.
     */
    bool useOverlapSchedule = true;
};

/** Everything a measurement run produces. */
struct BayesPerfRun
{
    sim::PerfResult raw;
    InferenceResult posterior;
    ScheduleResult schedule;

    /** Posterior-mean series (the MLE the paper reports). */
    std::vector<double> estimate(sim::EventId event) const
    {
        return posterior.meanSeries(event);
    }

    /** Posterior-stddev series (the quantified uncertainty). */
    std::vector<double> uncertainty(sim::EventId event) const
    {
        return posterior.stddevSeries(event);
    }
};

/**
 * Resolve a requested event set to the session's monitored list:
 * fixed counters first (always on, perf_event_open semantics), then
 * the requested events deduplicated in order.  Dies if any event
 * cannot be scheduled on this PMU at all.  Shared by the batch
 * session API and the monitoring service.
 */
std::vector<sim::EventId>
resolveMonitoredSet(const sim::MicroarchDescriptor &uarch,
                    const std::vector<sim::EventId> &events);

/**
 * A BayesPerf monitoring session.
 */
class BayesPerfSession
{
  public:
    explicit BayesPerfSession(const sim::MicroarchDescriptor &uarch,
                              BayesPerfConfig config = {});

    /**
     * Register the events to monitor (perf_event_open equivalent).
     * Fixed events are always monitored and added automatically.
     * Dies if any event cannot be scheduled on this PMU at all.
     */
    void open(const std::vector<sim::EventId> &events);

    bool isOpen() const { return !monitored_.empty(); }
    const std::vector<sim::EventId> &monitored() const { return monitored_; }

    /** Run the measurement + inference pipeline over a trace. */
    BayesPerfRun measure(const sim::TruthTrace &truth);

    const sim::MicroarchDescriptor &uarch() const { return uarch_; }
    const BayesPerfConfig &config() const { return config_; }

  private:
    const sim::MicroarchDescriptor &uarch_;
    BayesPerfConfig config_;
    std::vector<sim::EventId> monitored_;
};

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_BAYESPERF_H
