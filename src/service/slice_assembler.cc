#include "service/slice_assembler.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

namespace {

telemetry::Counter &
slicesAssembledCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("slices.assembled");
    return c;
}

telemetry::Counter &
recordsRejectedCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("records.rejected");
    return c;
}

} // namespace

SliceAssembler::SliceAssembler(std::vector<sim::EventId> events,
                               bool align_to_first_record)
    : events_(std::move(events)), current_(events_.size()),
      alignToFirstRecord_(align_to_first_record)
{
    bp_assert(!events_.empty(), "assembler needs a monitored event set");
    sim::EventId max_id = 0;
    for (sim::EventId e : events_)
        max_id = std::max(max_id, e);
    eventIndex_.assign(static_cast<std::size_t>(max_id) + 1, SIZE_MAX);
    for (std::size_t i = 0; i < events_.size(); ++i)
        eventIndex_[events_[i]] = i;
}

void
SliceAssembler::finalizeCurrent(std::vector<core::SliceMeasurements> &out)
{
    for (auto &sample : current_) {
        // The Student-t fit needs at least two window reads.  A
        // producer that sends one aggregate record per slice still
        // defines the same full-slice estimate; split it into two
        // identical half-windows (the fit's scale floors dominate a
        // zero sample variance anyway).
        if (sample.observed && sample.windows.size() == 1) {
            const double half = sample.windows.front() / 2.0;
            sample.windows = {half, half};
        }
    }
    out.push_back(std::move(current_));
    current_.assign(events_.size(), sim::SliceSample{});
    open_ = false;
    ++frontSlice_;
    slicesAssembledCounter().add();
}

std::size_t
SliceAssembler::feed(const sim::PerfRecord &rec,
                     std::vector<core::SliceMeasurements> &out)
{
    const std::size_t idx =
        rec.event < eventIndex_.size() ? eventIndex_[rec.event] : SIZE_MAX;
    if (idx == SIZE_MAX || rec.slice < frontSlice_ ||
        (open_ && rec.slice < curSlice_)) {
        ++rejected_;
        recordsRejectedCounter().add();
        return 0;
    }

    if (!started_) {
        started_ = true;
        if (alignToFirstRecord_) {
            // The stream begins where the producer does: no
            // retroactive gap slices before the attach point.
            origin_ = rec.slice;
            frontSlice_ = rec.slice;
        }
    }

    const std::size_t before = out.size();
    if (open_ && rec.slice > curSlice_)
        finalizeCurrent(out);
    if (!open_) {
        // Slices skipped entirely (no record ever arrives for them)
        // are emitted as fully-unobserved rows the moment a later
        // record proves them over, keeping the slice index a
        // wall-clock time base.
        while (frontSlice_ < rec.slice) {
            out.emplace_back(events_.size());
            ++frontSlice_;
        }
        curSlice_ = rec.slice;
        open_ = true;
    }

    sim::SliceSample &sample = current_[idx];
    sample.observed = true;
    sample.rawCount += rec.value;
    sample.timeEnabled = rec.timeEnabled;
    sample.timeRunning = rec.timeRunning;
    sample.windows.push_back(rec.value);
    ++accepted_;
    return out.size() - before;
}

std::size_t
SliceAssembler::flush(std::vector<core::SliceMeasurements> &out)
{
    if (!open_)
        return 0;
    const std::size_t before = out.size();
    finalizeCurrent(out);
    return out.size() - before;
}

} // namespace service
} // namespace bperf
