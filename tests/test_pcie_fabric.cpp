/**
 * @file
 * Properties of the PCIe fabric model (mlsched/pcie.h): conservation
 * (per-link shares never exceed capacity, counting traversal
 * multiplicity), max-min monotonicity (adding a flow never helps an
 * existing one), the bandwidth-vs-message-size efficiency curve, and
 * total nodeName coverage.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mlsched/pcie.h"

namespace bperf {
namespace ml {
namespace {

/** All node enumerators, by hand — keep in sync with pcie.h. */
const std::vector<Node> kAllNodes = {
    Node::Cpu0, Node::Cpu1, Node::SwitchA, Node::SwitchB,
    Node::Gpu0, Node::Gpu1, Node::Gpu2,    Node::Gpu3,
    Node::Nic0, Node::Nic1,
};

/** Endpoints a flow may legally use (switches only forward). */
const std::vector<Node> kEndpoints = {
    Node::Cpu0, Node::Cpu1, Node::Gpu0, Node::Gpu1,
    Node::Gpu2, Node::Gpu3, Node::Nic0, Node::Nic1,
};

/** Canonical undirected link key. */
std::pair<Node, Node>
linkKey(Node a, Node b)
{
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/**
 * Sum each link's allocated bandwidth across all flows, counting a
 * link once per traversal (a flow routed through a link twice loads
 * it twice).
 */
std::map<std::pair<Node, Node>, double>
perLinkLoad(const PcieFabric &fabric, const std::vector<Flow> &flows,
            const std::vector<double> &rates)
{
    std::map<std::pair<Node, Node>, double> load;
    for (std::size_t f = 0; f < flows.size(); ++f)
        for (const auto &hop : fabric.route(flows[f].src, flows[f].dst))
            load[linkKey(hop.first, hop.second)] += rates[f];
    return load;
}

TEST(PcieFabric, SharesNeverExceedAnyLinkCapacity)
{
    PcieFabric fabric;
    Rng rng(2024);

    for (int round = 0; round < 200; ++round) {
        std::vector<Flow> flows;
        const std::size_t n = 1 + rng.uniformInt(5);
        for (std::size_t i = 0; i < n; ++i) {
            Flow flow;
            flow.src = kEndpoints[rng.uniformInt(kEndpoints.size())];
            do {
                flow.dst = kEndpoints[rng.uniformInt(kEndpoints.size())];
            } while (flow.dst == flow.src);
            flow.demandGBps = rng.uniform(0.1, 40.0);
            flows.push_back(flow);
        }

        const std::vector<double> rates = fabric.allocate(flows);
        ASSERT_EQ(rates.size(), flows.size());
        for (std::size_t f = 0; f < flows.size(); ++f) {
            EXPECT_GE(rates[f], 0.0);
            EXPECT_LE(rates[f], flows[f].demandGBps + 1e-9);
        }
        for (const auto &[link, total] :
             perLinkLoad(fabric, flows, rates)) {
            EXPECT_LE(total, fabric.linkCapacity(link.first,
                                                 link.second) +
                                 1e-6)
                << nodeName(link.first) << "-" << nodeName(link.second)
                << " overloaded in round " << round;
        }
    }
}

/*
 * Max-min fairness is NOT globally monotone under flow addition: a
 * new flow can throttle an existing flow on one link, and the freed
 * capacity lets a third flow grow elsewhere.  The property does hold
 * when every flow crosses the same trunk and the leaf links are
 * disjoint, so that is the case we pin: cross-socket flows with
 * distinct sources and destinations all share SwitchA-CPU0, the
 * socket link, and CPU1-SwitchB, and nothing else.
 */
TEST(PcieFabric, AddingATrunkFlowNeverIncreasesAnotherShare)
{
    PcieFabric fabric;
    Rng rng(77);
    const std::vector<Node> kWestLeaves = {Node::Gpu0, Node::Gpu1,
                                           Node::Nic0};
    const std::vector<Node> kEastLeaves = {Node::Gpu2, Node::Gpu3,
                                           Node::Nic1};

    for (int round = 0; round < 100; ++round) {
        std::vector<Node> srcs = kWestLeaves;
        std::vector<Node> dsts = kEastLeaves;
        rng.shuffle(srcs);
        rng.shuffle(dsts);

        std::vector<Flow> flows;
        const std::size_t n = 2 + rng.uniformInt(2); // 2..3 total
        for (std::size_t i = 0; i < n; ++i) {
            Flow flow;
            flow.src = srcs[i];
            flow.dst = dsts[i];
            flow.demandGBps = rng.uniform(0.5, 30.0);
            flows.push_back(flow);
        }

        std::vector<Flow> fewer(flows.begin(), flows.end() - 1);
        const std::vector<double> before = fabric.allocate(fewer);
        const std::vector<double> after = fabric.allocate(flows);
        for (std::size_t f = 0; f < fewer.size(); ++f)
            EXPECT_LE(after[f], before[f] + 1e-9)
                << "flow " << f << " gained from contention in round "
                << round;
    }
}

TEST(PcieFabric, EffectiveBandwidthMonotoneAndSaturating)
{
    PcieFabric fabric;
    const double raw = fabric.config().peakCopyGBps;

    double prev = -1.0;
    for (double msg = 64.0; msg <= 64.0 * 1024.0 * 1024.0; msg *= 2.0) {
        const double bw = fabric.effectiveBandwidth(raw, msg);
        EXPECT_GT(bw, prev) << "not strictly increasing at " << msg;
        EXPECT_LT(bw, raw) << "exceeds the raw rate at " << msg;
        prev = bw;
    }
    // Saturation: huge messages approach the raw rate...
    EXPECT_GT(fabric.effectiveBandwidth(raw, 1e9), 0.999 * raw);
    // ...and the overhead point is exactly half of it.
    EXPECT_NEAR(fabric.effectiveBandwidth(
                    raw, fabric.config().messageOverheadBytes),
                raw / 2.0, 1e-12);
}

TEST(PcieFabric, NodeNameCoversEveryEnumerator)
{
    std::set<std::string> seen;
    for (Node node : kAllNodes) {
        const char *name = nodeName(node);
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
        EXPECT_STRNE(name, "?") << "unnamed enumerator";
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate node name " << name;
    }
    EXPECT_EQ(seen.size(), kAllNodes.size());
}

TEST(PcieFabric, RoutesAreSymmetricAndLinkValid)
{
    PcieFabric fabric;
    for (Node src : kEndpoints) {
        for (Node dst : kEndpoints) {
            if (src == dst)
                continue;
            const auto fwd = fabric.route(src, dst);
            const auto rev = fabric.route(dst, src);
            ASSERT_FALSE(fwd.empty());
            EXPECT_EQ(fwd.size(), rev.size());
            EXPECT_EQ(fwd.front().first, src);
            EXPECT_EQ(fwd.back().second, dst);
            for (const auto &hop : fwd) {
                // Every hop is a real link: capacity query must not die
                // and must be positive.
                EXPECT_GT(fabric.linkCapacity(hop.first, hop.second),
                          0.0);
            }
        }
    }
}

} // namespace
} // namespace ml
} // namespace bperf
