file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pcie_contention.dir/bench/bench_fig9_pcie_contention.cpp.o"
  "CMakeFiles/bench_fig9_pcie_contention.dir/bench/bench_fig9_pcie_contention.cpp.o.d"
  "bench_fig9_pcie_contention"
  "bench_fig9_pcie_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pcie_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
