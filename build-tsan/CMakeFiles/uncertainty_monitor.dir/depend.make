# Empty dependencies file for uncertainty_monitor.
# This may be replaced when dependencies are built.
