/**
 * @file
 * Graph-partitioning pass shared by the host EP engine and the
 * modeled accelerator (accel::Accelerator).
 *
 * The paper's FPGA runs EP site updates on parallel per-slice
 * engines; the host path mirrors that by splitting the window graph's
 * variables into P contiguous id ranges.  Variable ids are slice-
 * major (model_builder lays out (slice, event) row by row), so
 * contiguous ranges are contiguous time-slice bands — exactly the
 * paper's per-slice engine assignment — and every Student-t site
 * lands in the partition of its (single) variable.
 *
 * The plan is deterministic in the graph alone (no RNG, no thread
 * count), which is what lets partition-parallel EP merge results
 * bit-identically across any number of worker threads, and lets the
 * accelerator model consume the same load distribution the host ran.
 */

#ifndef BPERF_GRAPH_PARTITION_H
#define BPERF_GRAPH_PARTITION_H

#include <cstdint>
#include <vector>

#include "graph/factor_graph.h"

namespace bperf {
namespace graph {

/** Site-to-partition assignment of one graph. */
struct PartitionPlan
{
    std::size_t numPartitions = 1;
    /** Partition of each Student-t site, indexed by the site's
     * position in factorsOfKind(StudentT) insertion order. */
    std::vector<std::uint32_t> partitionOfSite;
    /** Sites per partition. */
    std::vector<std::size_t> siteCounts;

    /** Heaviest partition's site count (the accelerator's critical
     * path; 0 for a plan with no sites). */
    std::size_t maxPartitionSites() const;
};

/**
 * Assign the graph's Student-t sites to `partitions` contiguous
 * variable-id ranges, reusing `plan`'s storage (allocation-free at
 * steady state).  `partitions` is clamped to [1, numVariables].
 */
void partitionSites(const FactorGraph &graph, std::size_t partitions,
                    PartitionPlan &plan);

/** Convenience overload building a fresh plan. */
PartitionPlan partitionSites(const FactorGraph &graph,
                             std::size_t partitions);

} // namespace graph
} // namespace bperf

#endif // BPERF_GRAPH_PARTITION_H
