/**
 * @file
 * Example: the section 6.3 feedback loop end to end.
 *
 * Trains the RL-based NIC scheduler twice — once on Linux-quality
 * counter inputs and once on BayesPerf-quality inputs — then compares
 * placement decisions and average shuffle completion against the
 * static local-NIC policy.
 */

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "mlsched/collab_filter.h"
#include "mlsched/rl_scheduler.h"

using namespace bperf;

int
main()
{
    const std::size_t train_iters = 4000;
    const std::size_t eval_episodes = 800;

    auto trained_eval = [&](double noise_pct) {
        ml::EnvConfig env;
        env.noise.errorPct = noise_pct;
        env.seed = 31;
        ml::RlConfig rl;
        rl.iterations = train_iters;
        ml::RlScheduler scheduler(env, rl);
        const auto curve = scheduler.train();
        std::printf("  noise %4.1f%%: loss %0.3f -> %0.3f over %zu iters\n",
                    noise_pct, curve.loss.front(), curve.loss.back(),
                    curve.loss.size());
        return scheduler.evaluate(eval_episodes);
    };

    std::puts("training the PCIe-aware RL scheduler...");
    const double rl_linux = trained_eval(38.0);
    const double rl_bp = trained_eval(10.0);

    // Static baseline: always use the NIC local to the data.
    ml::EnvConfig env_cfg;
    env_cfg.noise.errorPct = 38.0;
    env_cfg.seed = 77;
    ml::ShuffleEnv env(env_cfg);
    double static_time = 0.0;
    for (std::size_t i = 0; i < eval_episodes; ++i) {
        const ml::Episode ep = env.sample();
        static_time += env.completionTime(ep, ep.numaNode) /
                       env.isolatedTime(ep);
    }
    static_time /= static_cast<double>(eval_episodes);

    std::cout << "\n";
    TablePrinter t({"policy", "avg normalized makespan",
                    "vs static %"});
    t.addRow({"static (local NIC)", formatDouble(static_time, 3), "0.0"});
    t.addRow({"RL + Linux counters", formatDouble(rl_linux, 3),
              formatDouble(100.0 * (static_time - rl_linux) / static_time,
                           1)});
    t.addRow({"RL + BayesPerf counters", formatDouble(rl_bp, 3),
              formatDouble(100.0 * (static_time - rl_bp) / static_time,
                           1)});
    t.print(std::cout);
    return 0;
}
