/**
 * @file
 * OS-induced measurement nondeterminism.
 *
 * Models the error modalities the paper lists beyond multiplexing:
 * interrupt servicing that steals counting time, context switches,
 * per-read jitter from the reading technique, and occasional
 * overcounts on some processors (Weaver et al.).
 */

#ifndef BPERF_SIM_OS_NOISE_H
#define BPERF_SIM_OS_NOISE_H

namespace bperf {
namespace sim {

/** Configuration of the OS noise injected into sampled reads. */
struct OsNoiseConfig
{
    /** Relative stddev of jitter on every sampled (multiplexed)
     * counter read: PMI skid, counter lag, scheduling correlation. */
    double readJitterRel = 0.32;

    /** Relative stddev of jitter on polled reads (clean reference). */
    double pollJitterRel = 0.004;

    /** Mean hardware interrupts per slice (Poisson). */
    double interruptsPerSlice = 3.0;

    /** Fraction of a slice's counts lost per serviced interrupt. */
    double interruptLossFrac = 0.004;

    /** Probability that a read overcounts (hardware erratum). */
    double overcountProb = 0.01;

    /** Relative magnitude of an overcount glitch. */
    double overcountRel = 0.05;

    /** Scale all noise terms; 0 disables OS noise entirely. */
    double scale = 1.0;
};

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_OS_NOISE_H
