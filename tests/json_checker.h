/**
 * @file
 * Minimal recursive-descent JSON syntax checker (objects, arrays,
 * strings, numbers, booleans, null) shared by the tests that validate
 * generated artifacts: the bench JsonWriter schema tests and the
 * telemetry Chrome-trace export test.  Syntax only — it proves a
 * document parses, not what it contains.
 */

#ifndef BPERF_TESTS_JSON_CHECKER_H
#define BPERF_TESTS_JSON_CHECKER_H

#include <cctype>
#include <cstddef>
#include <string>

namespace bperf {
namespace testutil {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool string()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        for (++pos_; pos_ < text_.size(); ++pos_) {
            if (text_[pos_] == '\\') {
                ++pos_; // escaped character
                continue;
            }
            if (text_[pos_] == '"') {
                ++pos_;
                return true;
            }
        }
        return false;
    }

    bool number()
    {
        skipSpace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        skipSpace();
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) == 0) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    bool value()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool object()
    {
        if (!consume('{'))
            return false;
        if (consume('}'))
            return true;
        do {
            if (!string() || !consume(':') || !value())
                return false;
        } while (consume(','));
        return consume('}');
    }

    bool array()
    {
        if (!consume('['))
            return false;
        if (consume(']'))
            return true;
        do {
            if (!value())
                return false;
        } while (consume(','));
        return consume(']');
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace testutil
} // namespace bperf

#endif // BPERF_TESTS_JSON_CHECKER_H
