/** @file Tests for the overlap-aware counter scheduler (section 4.1). */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/scheduler.h"

namespace bperf {
namespace core {
namespace {

using sim::EventId;
using sim::Role;

TEST(Scheduler, EveryConfigIsPmuValid)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const auto schedule = scheduler.build(uarch.programmableEvents());
    sim::Pmu pmu(uarch);
    for (const auto &config : schedule.configs)
        EXPECT_TRUE(pmu.validate(config));
}

TEST(Scheduler, CoversEveryMonitoredEvent)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const auto monitored = uarch.programmableEvents();
    const auto schedule = scheduler.build(monitored);

    std::set<EventId> scheduled;
    for (const auto &config : schedule.configs)
        for (EventId e : config)
            scheduled.insert(e);
    for (EventId e : monitored)
        EXPECT_TRUE(scheduled.count(e)) << uarch.event(e).name;
}

TEST(Scheduler, ConsecutiveConfigsShareCarriedEvent)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const auto schedule = scheduler.build(uarch.programmableEvents());
    ASSERT_GT(schedule.configs.size(), 1u);
    for (std::size_t i = 1; i < schedule.configs.size(); ++i) {
        const EventId carry = schedule.carried[i];
        if (carry == sim::kNoEvent)
            continue; // chain break
        const auto &prev = schedule.configs[i - 1];
        const auto &cur = schedule.configs[i];
        EXPECT_NE(std::find(prev.begin(), prev.end(), carry), prev.end());
        EXPECT_NE(std::find(cur.begin(), cur.end(), carry), cur.end());
    }
    // At least one real overlap must exist in a rich event set.
    EXPECT_TRUE(std::any_of(schedule.carried.begin(),
                            schedule.carried.end(),
                            [](EventId e) { return e != sim::kNoEvent; }));
}

TEST(Scheduler, ConsecutiveConfigsAreStatisticallyLinked)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const auto schedule = scheduler.build(uarch.programmableEvents());
    for (std::size_t i = 1; i < schedule.configs.size(); ++i) {
        if (schedule.carried[i] == sim::kNoEvent)
            continue;
        EXPECT_TRUE(scheduler.configsLinked(schedule.configs[i - 1],
                                            schedule.configs[i]));
    }
}

TEST(Scheduler, RoundRobinModeHasNoCarry)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch, {.reserveOverlapSlot = false});
    const auto schedule = scheduler.build(uarch.programmableEvents());
    for (EventId c : schedule.carried)
        EXPECT_EQ(c, sim::kNoEvent);
}

TEST(Scheduler, OverlapScheduleIsLongerThanRoundRobin)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler with(uarch);
    OverlapScheduler without(uarch, {.reserveOverlapSlot = false});
    const auto monitored = uarch.programmableEvents();
    EXPECT_GE(with.build(monitored).configs.size(),
              without.build(monitored).configs.size());
}

TEST(Scheduler, MarkovBlanketReflectsInvariants)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    // dram_bytes shares the dram_bandwidth factor with llc_miss.
    const auto blanket =
        scheduler.blanketOf({uarch.idForRole(Role::DramBytes)});
    EXPECT_TRUE(blanket.count(uarch.idForRole(Role::LlcMiss)));
    EXPECT_TRUE(blanket.count(uarch.idForRole(Role::DmaBytes)));
}

TEST(Scheduler, ShortestEventPathCrossesInvariants)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    // loads -> l1d_access (l1d invariant) or inst_mix; one hop.
    const auto path = scheduler.shortestEventPath(
        uarch.idForRole(Role::Loads), uarch.idForRole(Role::L1DAccess));
    EXPECT_EQ(path.size(), 2u);
    // l1i_miss relates to dram_writes only through a longer chain.
    const auto longer = scheduler.shortestEventPath(
        uarch.idForRole(Role::L1IMiss),
        uarch.idForRole(Role::DramWrites));
    EXPECT_GT(longer.size(), 2u);
    // dtlb_miss participates in no invariant: disconnected.
    EXPECT_TRUE(scheduler
                    .shortestEventPath(uarch.idForRole(Role::DtlbMiss),
                                       uarch.idForRole(Role::DramWrites))
                    .empty());
}

TEST(Scheduler, BridgeEmptyWhenAlreadyLinked)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const auto bridge =
        scheduler.bridge({uarch.idForRole(Role::Loads)},
                         {uarch.idForRole(Role::Stores)});
    EXPECT_TRUE(bridge.empty()); // both in inst_mix / l1d_access
}

TEST(Scheduler, PruneRedundantDropsEqualBlanketSteps)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const EventId loads = uarch.idForRole(Role::Loads);
    std::vector<std::vector<EventId>> chain = {{loads}, {loads}, {loads}};
    const auto pruned = scheduler.pruneRedundantSteps(chain);
    EXPECT_EQ(pruned.size(), 1u);
}

TEST(Scheduler, PruneCommonCondensesThroughSharedNeighbour)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    // Taken and not-taken branches share "branches" in their blankets.
    std::vector<std::vector<EventId>> chain = {
        {uarch.idForRole(Role::BranchTaken),
         uarch.idForRole(Role::BranchNotTaken)}};
    const auto pruned = scheduler.pruneCommonSteps(chain);
    ASSERT_EQ(pruned.size(), 1u);
    ASSERT_EQ(pruned[0].size(), 1u);
    EXPECT_EQ(uarch.event(pruned[0][0]).role, Role::Branches);
}

TEST(Scheduler, FixedOnlyMonitoringYieldsEmptyConfig)
{
    const auto uarch = sim::makeX86Skylake();
    OverlapScheduler scheduler(uarch);
    const auto schedule = scheduler.build(uarch.fixedEvents());
    ASSERT_EQ(schedule.configs.size(), 1u);
    EXPECT_TRUE(schedule.configs[0].empty());
}

} // namespace
} // namespace core
} // namespace bperf
