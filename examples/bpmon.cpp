/**
 * @file
 * bpmon: a command-line monitoring tool on top of the BayesPerf API,
 * in the spirit of `perf stat`.
 *
 * Usage:
 *   bpmon [--arch x86|ppc64] [--workload NAME] [--slices N]
 *         [--seed S] [--round-robin] [--csv]
 *
 * Runs the named workload on the simulated machine, monitors the full
 * evaluation event set, and reports per-event averages: truth, Linux
 * scaling, BayesPerf posterior mean and uncertainty, and each
 * estimator's error against a polled reference.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/error_metrics.h"
#include "baselines/linux_scaling.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/bayesperf.h"
#include "workloads/hibench.h"

using namespace bperf;

namespace {

void
usage()
{
    std::puts("usage: bpmon [--arch x86|ppc64] [--workload NAME] "
              "[--slices N] [--seed S] [--round-robin] [--csv]");
    std::puts("workloads:");
    for (const auto &name : wl::hibenchNames())
        std::printf("  %s\n", name.c_str());
}

double
avg(const std::vector<double> &xs)
{
    RunningStats s;
    for (double x : xs)
        s.push(x);
    return s.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string arch = "x86";
    std::string workload_name = "KMeans";
    std::size_t slices = 96;
    std::uint64_t seed = 42;
    bool round_robin = false;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--arch") {
            arch = next();
        } else if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--slices") {
            slices = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--round-robin") {
            round_robin = true;
        } else if (arg == "--csv") {
            csv = true;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    const sim::MicroarchDescriptor uarch =
        arch == "ppc64" ? sim::makePower9() : sim::makeX86Skylake();
    const sim::WorkloadProfile workload = wl::makeHibench(workload_name);
    const sim::GroundTruthGenerator generator(uarch, workload);
    const sim::TruthTrace truth = generator.generate(slices, seed);

    std::vector<sim::EventId> events;
    for (const auto &def : uarch.events())
        if (!def.fixed)
            events.push_back(def.id);

    core::BayesPerfConfig cfg;
    cfg.perf.seed = seed * 3 + 1;
    cfg.useOverlapSchedule = !round_robin;
    core::BayesPerfSession session(uarch, cfg);
    session.open(events);
    core::BayesPerfRun run = session.measure(truth);

    sim::PerfSessionConfig poll_cfg;
    poll_cfg.seed = seed * 7 + 5;
    sim::PerfSession poll(uarch, poll_cfg);
    const sim::PerfResult polled =
        poll.runPolling(truth, session.monitored());
    baselines::LinuxEstimator linux_est;

    if (!csv) {
        std::printf("# bpmon: %s on %s, %zu slices, seed %llu, %s "
                    "schedule (%zu configs, %zu chain breaks)\n",
                    workload_name.c_str(), uarch.name().c_str(), slices,
                    static_cast<unsigned long long>(seed),
                    round_robin ? "round-robin" : "overlap",
                    run.schedule.configs.size(),
                    run.schedule.chainBreaks);
    }

    TablePrinter table({"event", "truth avg", "bayes avg", "+/-",
                        "linux err%", "bayes err%"});
    if (csv)
        std::puts("event,truth_avg,bayes_avg,bayes_sd,linux_err_pct,"
                  "bayes_err_pct");

    for (sim::EventId e : session.monitored()) {
        const auto ref = polled.traceFor(e).estimateSeries();
        const auto bayes = run.estimate(e);
        const double err_linux =
            ana::traceErrorPercent(linux_est.series(run.raw, e), ref);
        const double err_bayes = ana::traceErrorPercent(bayes, ref);
        const double t_avg = avg(truth.sliceSeries(e));
        const double b_avg = avg(bayes);
        const double sd_avg = avg(run.uncertainty(e));
        if (csv) {
            std::printf("%s,%.1f,%.1f,%.1f,%.2f,%.2f\n",
                        uarch.event(e).name.c_str(), t_avg, b_avg, sd_avg,
                        err_linux, err_bayes);
        } else {
            table.addRow({uarch.event(e).name, formatDouble(t_avg, 0),
                          formatDouble(b_avg, 0), formatDouble(sd_avg, 0),
                          formatDouble(err_linux, 1),
                          formatDouble(err_bayes, 1)});
        }
    }
    if (!csv)
        table.print(std::cout);
    return 0;
}
