/**
 * @file
 * Quickstart: monitor more events than the PMU has counters, and
 * compare Linux's scaled estimates with BayesPerf posteriors.
 *
 * Walks through the whole public API:
 *   1. pick a microarchitecture,
 *   2. pick a workload and generate a ground-truth run,
 *   3. open a BayesPerfSession on a large event set,
 *   4. measure, then read posterior means and uncertainties,
 *   5. score both estimators against a polled reference run.
 */

#include <cstdio>
#include <iostream>

#include "analysis/error_metrics.h"
#include "baselines/linux_scaling.h"
#include "common/table.h"
#include "core/bayesperf.h"
#include "sim/ground_truth.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    // 1. The x86 Skylake-like PMU: 3 fixed + 4 core + 2 uncore counters.
    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();

    // 2. A bursty, phase-changing workload.
    const sim::WorkloadProfile workload = wl::makeHibench("KMeans");
    const sim::GroundTruthGenerator generator(uarch, workload);
    const std::size_t num_slices = 96;
    const sim::TruthTrace truth = generator.generate(num_slices, /*seed=*/42);

    // 3. Open a session on 18 events: far more than fit at once.
    const std::vector<sim::Role> roles = {
        sim::Role::LlcMiss,      sim::Role::L2Miss,
        sim::Role::L1DMiss,      sim::Role::L1DAccess,
        sim::Role::Loads,        sim::Role::Stores,
        sim::Role::Branches,     sim::Role::BranchMisses,
        sim::Role::StallTotal,   sim::Role::StallMem,
        sim::Role::StallFrontend,sim::Role::StallBranch,
        sim::Role::ActiveCycles, sim::Role::DramBytes,
        sim::Role::DmaBytes,     sim::Role::UopsIssued,
        sim::Role::OffcoreReads, sim::Role::DramReads,
    };
    std::vector<sim::EventId> events;
    for (sim::Role r : roles)
        events.push_back(uarch.idForRole(r));

    core::BayesPerfSession session(uarch);
    session.open(events);

    // 4. Measure: sampling run + Bayesian inference.
    core::BayesPerfRun run = session.measure(truth);
    std::printf("schedule: %zu configurations, %zu chain breaks\n",
                run.schedule.configs.size(), run.schedule.chainBreaks);

    const sim::EventId llc = uarch.idForRole(sim::Role::LlcMiss);
    const auto posterior_mean = run.estimate(llc);
    const auto posterior_sd = run.uncertainty(llc);
    std::printf("LLC misses @ slice 10: %.0f +/- %.0f (truth %.0f)\n",
                posterior_mean[10], posterior_sd[10],
                truth.sliceTotal(10, llc));

    // 5. Score against a polled reference run of the same execution.
    sim::PerfSessionConfig poll_cfg;
    poll_cfg.seed = 991;
    sim::PerfSession poll_session(uarch, poll_cfg);
    const sim::PerfResult polled =
        poll_session.runPolling(truth, session.monitored());

    baselines::LinuxEstimator linux_est;
    TablePrinter table({"event", "Linux err %", "BayesPerf err %"});
    for (sim::Role r : {sim::Role::LlcMiss, sim::Role::DramBytes,
                        sim::Role::StallMem, sim::Role::BranchMisses,
                        sim::Role::Loads}) {
        const sim::EventId e = uarch.idForRole(r);
        const auto ref = polled.traceFor(e).estimateSeries();
        const double err_linux =
            ana::traceErrorPercent(linux_est.series(run.raw, e), ref);
        const double err_bp =
            ana::traceErrorPercent(run.estimate(e), ref);
        table.addRow(uarch.event(e).name, {err_linux, err_bp});
    }
    table.print(std::cout);
    return 0;
}
