/**
 * @file
 * Reproduces Fig. 8: error scaling with the number of multiplexed
 * events (10..35) for the KMeans workload, on x86 and ppc64, for
 * Linux, CounterMiner, BayesPerf and WM+Pin.
 *
 * Paper shape: Linux grows steeply; WM+Pin tracks Linux (it only
 * corrects instruction counts); CounterMiner sits in between;
 * BayesPerf stays low and nearly flat (error reduced by up to ~34%
 * absolute vs Linux at 35 events).
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "workloads/hibench.h"

using namespace bperf;

namespace {

void
runArch(const sim::MicroarchDescriptor &uarch, const char *label)
{
    const auto workload = wl::makeHibench("KMeans");
    const std::vector<double> counts = {10, 15, 20, 25, 30, 35};
    std::vector<double> e_linux, e_cm, e_bp, e_wm;

    std::uint64_t seed = 31000;
    for (double n : counts) {
        bench::ComparisonConfig cfg;
        cfg.numSlices = bench::defaultSlices();
        cfg.truthSeed = ++seed;
        cfg.samplingSeed = seed * 13;
        cfg.pollSeed = seed * 57;
        cfg.includeWmPin = true;
        const auto errs = bench::compareEstimators(
            uarch, workload,
            bench::paddedEventSet(uarch, static_cast<std::size_t>(n)),
            cfg);
        // Order: Linux, CounterMiner, WM+Pin, BayesPerf.
        e_linux.push_back(errs[0].eventErrorPct);
        e_cm.push_back(errs[1].eventErrorPct);
        e_wm.push_back(errs[2].eventErrorPct);
        e_bp.push_back(errs[3].eventErrorPct);
    }

    printSeries(std::cout,
                std::string("Fig. 8: error vs #events, KMeans (") + label +
                    ")",
                "events", counts,
                {"Linux", "CounterMiner", "BayesPerf", "WM+Pin"},
                {e_linux, e_cm, e_bp, e_wm}, 1);
}

} // namespace

int
main()
{
    const auto x86 = sim::makeX86Skylake();
    const auto ppc = sim::makePower9();
    runArch(x86, "x86");
    std::cout << "\n";
    runArch(ppc, "ppc64");
    std::cout << "# paper: Linux/WM+Pin grow with events; BayesPerf "
                 "stays low and flat\n";
    return 0;
}
