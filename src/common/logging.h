/**
 * @file
 * Status-message and error-termination helpers.
 *
 * Mirrors the gem5 logging conventions: panic() for internal invariant
 * violations (library bugs), fatal() for unrecoverable user errors
 * (bad configuration, invalid arguments), and warn()/inform() for
 * non-fatal status reporting.
 */

#ifndef BPERF_COMMON_LOGGING_H
#define BPERF_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace bperf {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Error, Fatal, Panic };

namespace detail {

/** Emit a formatted message; terminates the process for Fatal/Panic. */
[[noreturn]] void terminate(LogLevel level, const std::string &msg,
                            const char *file, int line);

void emit(LogLevel level, const std::string &msg);

/** Enable/disable Inform/Warn output (used to keep test logs quiet). */
void setVerbose(bool verbose);
bool verbose();

} // namespace detail

/**
 * Abort with a message describing an internal invariant violation.
 * Use when the condition indicates a bug in this library, never for
 * user input errors.
 */
#define bp_panic(msg)                                                        \
    do {                                                                     \
        std::ostringstream bp_oss_;                                          \
        bp_oss_ << msg;                                                      \
        ::bperf::detail::terminate(::bperf::LogLevel::Panic, bp_oss_.str(),  \
                                   __FILE__, __LINE__);                      \
    } while (0)

/**
 * Exit with a message describing an unrecoverable user error (bad
 * configuration, invalid arguments).
 */
#define bp_fatal(msg)                                                        \
    do {                                                                     \
        std::ostringstream bp_oss_;                                          \
        bp_oss_ << msg;                                                      \
        ::bperf::detail::terminate(::bperf::LogLevel::Fatal, bp_oss_.str(),  \
                                   __FILE__, __LINE__);                      \
    } while (0)

/**
 * Report a non-fatal error: something went wrong and was handled
 * (dropped, degraded, retried), but the process continues.  Always
 * printed, regardless of verbosity; counted in the telemetry
 * registry's "log.errors" (like bp_warn in "log.warnings"), so tests
 * and benches can assert "no errors logged" without scraping stderr.
 */
#define bp_error(msg)                                                        \
    do {                                                                     \
        std::ostringstream bp_oss_;                                          \
        bp_oss_ << msg;                                                      \
        ::bperf::detail::emit(::bperf::LogLevel::Error, bp_oss_.str());      \
    } while (0)

/** Report a suspicious-but-survivable condition. */
#define bp_warn(msg)                                                         \
    do {                                                                     \
        std::ostringstream bp_oss_;                                          \
        bp_oss_ << msg;                                                      \
        ::bperf::detail::emit(::bperf::LogLevel::Warn, bp_oss_.str());       \
    } while (0)

/** Report normal operating status. */
#define bp_inform(msg)                                                       \
    do {                                                                     \
        std::ostringstream bp_oss_;                                          \
        bp_oss_ << msg;                                                      \
        ::bperf::detail::emit(::bperf::LogLevel::Inform, bp_oss_.str());     \
    } while (0)

/** Assert an internal invariant; compiled in all build types. */
#define bp_assert(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            bp_panic("assertion failed: " #cond ": " << msg);                \
        }                                                                    \
    } while (0)

} // namespace bperf

#endif // BPERF_COMMON_LOGGING_H
