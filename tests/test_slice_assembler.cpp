/** @file Edge-case tests for the per-session record-to-slice
 * reassembly (SliceAssembler): boundary records, duplicate and
 * missing group members, gaps, and the partial final slice. */

#include <gtest/gtest.h>

#include <vector>

#include "service/slice_assembler.h"

namespace bperf {
namespace service {
namespace {

sim::PerfRecord
rec(std::uint32_t slice, sim::EventId event, double value,
    double enabled = 1.0, double running = 0.5)
{
    sim::PerfRecord r;
    r.slice = slice;
    r.event = event;
    r.value = value;
    r.timeEnabled = enabled;
    r.timeRunning = running;
    return r;
}

TEST(SliceAssemblerEdge, WindowBoundaryRecordsStayInTheirSlice)
{
    // Two PMI window reads of the same (event, slice) followed by the
    // first read of the next slice: the boundary record must finalize
    // the old slice without leaking into it.
    SliceAssembler assembler({5});
    std::vector<core::SliceMeasurements> out;

    EXPECT_EQ(assembler.feed(rec(0, 5, 10.0), out), 0u);
    EXPECT_EQ(assembler.feed(rec(0, 5, 14.0), out), 0u);
    EXPECT_EQ(assembler.feed(rec(1, 5, 99.0), out), 1u);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0][0].windows.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0][0].windows[0], 10.0);
    EXPECT_DOUBLE_EQ(out[0][0].windows[1], 14.0);
    EXPECT_DOUBLE_EQ(out[0][0].rawCount, 24.0);

    // The boundary record opened slice 1 and stays there.
    EXPECT_EQ(assembler.flush(out), 1u);
    ASSERT_EQ(out.size(), 2u);
    ASSERT_EQ(out[1][0].windows.size(), 2u); // single read split in two
    EXPECT_DOUBLE_EQ(out[1][0].windows[0] + out[1][0].windows[1], 99.0);
    EXPECT_DOUBLE_EQ(out[1][0].rawCount, 99.0);
}

TEST(SliceAssemblerEdge, DuplicateGroupMembersAccumulate)
{
    // The same event delivered many times within one slice (deep PMI
    // backlog): every read lands in the sample, in arrival order.
    SliceAssembler assembler({2, 9});
    std::vector<core::SliceMeasurements> out;

    for (int i = 1; i <= 4; ++i)
        EXPECT_EQ(assembler.feed(rec(0, 9, i), out), 0u);
    assembler.feed(rec(1, 2, 1.0), out);
    ASSERT_EQ(out.size(), 1u);
    const sim::SliceSample &dup = out[0][1];
    EXPECT_TRUE(dup.observed);
    ASSERT_EQ(dup.windows.size(), 4u);
    for (int i = 1; i <= 4; ++i)
        EXPECT_DOUBLE_EQ(dup.windows[i - 1], i);
    EXPECT_DOUBLE_EQ(dup.rawCount, 10.0);
    // The other group member never reported: unobserved default.
    EXPECT_FALSE(out[0][0].observed);
    EXPECT_TRUE(out[0][0].windows.empty());
    EXPECT_EQ(assembler.recordsAccepted(), 5u);
    EXPECT_EQ(assembler.recordsRejected(), 0u);
}

TEST(SliceAssemblerEdge, MissingGroupMembersStayUnobserved)
{
    SliceAssembler assembler({1, 2, 3});
    std::vector<core::SliceMeasurements> out;

    assembler.feed(rec(0, 1, 5.0), out);
    assembler.feed(rec(0, 3, 7.0), out);
    assembler.feed(rec(1, 2, 9.0), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0][0].observed);
    EXPECT_FALSE(out[0][1].observed);
    EXPECT_TRUE(out[0][2].observed);

    // In the next slice the roles flip; nothing carries over.
    assembler.flush(out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FALSE(out[1][0].observed);
    EXPECT_TRUE(out[1][1].observed);
    EXPECT_FALSE(out[1][2].observed);
}

TEST(SliceAssemblerEdge, PartialFinalSliceOnlyOnFlush)
{
    SliceAssembler assembler({4});
    std::vector<core::SliceMeasurements> out;

    assembler.feed(rec(0, 4, 1.0), out);
    assembler.feed(rec(1, 4, 2.0), out);
    ASSERT_EQ(out.size(), 1u);

    // The slice under assembly is invisible until flushed...
    EXPECT_EQ(assembler.frontSlice(), 1u);
    EXPECT_EQ(assembler.flush(out), 1u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[1][0].observed);
    EXPECT_EQ(assembler.frontSlice(), 2u);

    // ...a second flush with nothing pending is a no-op...
    EXPECT_EQ(assembler.flush(out), 0u);
    EXPECT_EQ(out.size(), 2u);

    // ...and the flushed slice is closed: a late record for it is
    // stale, while the stream continues cleanly afterwards.
    EXPECT_EQ(assembler.feed(rec(1, 4, 8.0), out), 0u);
    EXPECT_EQ(assembler.recordsRejected(), 1u);
    EXPECT_EQ(assembler.feed(rec(2, 4, 3.0), out), 0u);
    EXPECT_EQ(assembler.flush(out), 1u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[2][0].rawCount, 3.0);
}

TEST(SliceAssemblerEdge, GapAfterFlushEmitsUnobservedRows)
{
    SliceAssembler assembler({6});
    std::vector<core::SliceMeasurements> out;

    assembler.feed(rec(0, 6, 1.0), out);
    assembler.flush(out);
    // Stream resumes at slice 4: slices 1-3 were silent and must be
    // emitted as unobserved to keep the time base dense.
    EXPECT_EQ(assembler.feed(rec(4, 6, 2.0), out), 3u);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t t = 1; t <= 3; ++t)
        EXPECT_FALSE(out[t][0].observed);
    EXPECT_EQ(assembler.frontSlice(), 4u);
}

TEST(SliceAssemblerEdge, OutOfOrderWithinOpenSliceRejected)
{
    SliceAssembler assembler({1, 7});
    std::vector<core::SliceMeasurements> out;

    assembler.feed(rec(2, 1, 1.0), out); // opens slice 2 (gap 0-1)
    ASSERT_EQ(out.size(), 2u);
    // Records older than the open slice are stale even though they
    // were never emitted as observed.
    EXPECT_EQ(assembler.feed(rec(1, 7, 5.0), out), 0u);
    // Unknown events are rejected without disturbing assembly.
    EXPECT_EQ(assembler.feed(rec(2, 42, 5.0), out), 0u);
    EXPECT_EQ(assembler.recordsRejected(), 2u);

    assembler.feed(rec(2, 7, 6.0), out);
    assembler.flush(out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[2][0].observed);
    EXPECT_TRUE(out[2][1].observed);
}

TEST(SliceAssemblerEdge, DutyCycleMetadataTracksLastRead)
{
    SliceAssembler assembler({3});
    std::vector<core::SliceMeasurements> out;

    assembler.feed(rec(0, 3, 4.0, 1.0, 0.25), out);
    assembler.feed(rec(0, 3, 6.0, 2.0, 0.75), out);
    assembler.flush(out);
    ASSERT_EQ(out.size(), 1u);
    // The slice-level enabled/running ratio comes from the most
    // recent read (cumulative perf times).
    EXPECT_DOUBLE_EQ(out[0][0].timeEnabled, 2.0);
    EXPECT_DOUBLE_EQ(out[0][0].timeRunning, 0.75);
    EXPECT_DOUBLE_EQ(out[0][0].rawCount, 10.0);
}

} // namespace
} // namespace service
} // namespace bperf
