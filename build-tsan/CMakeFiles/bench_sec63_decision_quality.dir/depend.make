# Empty dependencies file for bench_sec63_decision_quality.
# This may be replaced when dependencies are built.
