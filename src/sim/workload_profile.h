/**
 * @file
 * Workload description consumed by the ground-truth generator.
 *
 * A workload is a sequence of phases; each phase fixes the mean
 * behaviour of the core's primary drivers (instruction rate, mix,
 * miss ratios, DMA traffic) plus how bursty the workload is inside a
 * phase.  Phase changes are the non-stationarity that multiplexed
 * counter reads cannot track, which is the error source the paper
 * corrects.
 */

#ifndef BPERF_SIM_WORKLOAD_PROFILE_H
#define BPERF_SIM_WORKLOAD_PROFILE_H

#include <cstddef>
#include <string>
#include <vector>

namespace bperf {
namespace sim {

/** Mean behaviour of the CPU's primary drivers during one phase. */
struct PhaseParams
{
    /** Mean instructions retired per time slice. */
    double instPerSlice = 20.0e6;

    // Instruction mix (fractions of instructions; must sum < 0.95).
    double fracLoad = 0.25;
    double fracStore = 0.12;
    double fracBranch = 0.20;

    // Branch behaviour.
    double brTakenFrac = 0.65;
    double brMispRate = 0.02; // per branch

    // Cache behaviour (miss ratios per access at each level).
    double l1dMissRate = 0.05;
    double l1iMissRate = 0.003; // per instruction
    double l2MissRate = 0.30;
    double llcMissRate = 0.30;
    double l2PrefetchRatio = 0.25; // prefetches per L1D miss

    // TLB behaviour.
    double dtlbMissRate = 0.003; // per L1D access
    double itlbMissRate = 0.0002; // per instruction

    // IO / uncore.
    double dmaBytesPerSlice = 1.0e6;
    double pcieReadFrac = 0.6;  // of DMA bytes
    double dramReadFrac = 0.65; // of DRAM bytes
    double offcoreReadFrac = 0.7;

    // Floating point intensity (fractions of instructions).
    double fpFrac = 0.10;
    double simdFrac = 0.05;

    // Pipeline model.
    double cpiBase = 0.45;         // active cycles per instruction
    double stallFePerInst = 0.12;  // frontend stall cycles per instruction

    // Software events (means per slice).
    double pageFaultsPerSlice = 200.0;
    double ctxSwitchesPerSlice = 50.0;

    /**
     * Slow intra-phase burstiness: stationary standard deviation of
     * the log-scale Ornstein-Uhlenbeck modulation applied to the
     * drivers.  Governs slice-to-slice variation.
     */
    double burstiness = 0.25;

    /** Slow OU correlation time in slices. */
    double ouTauSlices = 4.0;

    /**
     * Fast burstiness: a second OU component with sub-slice
     * correlation time.  It is what makes extrapolating a short
     * counting window to the whole slice (Linux's tE/tR scaling)
     * error-prone — the paper's multiplexing error mechanism.
     */
    double fastBurstiness = 0.5;

    /** Fast OU correlation time in sub-ticks. */
    double fastTauSubticks = 1.5;
};

/** One phase: parameters plus its duration. */
struct Phase
{
    PhaseParams params;
    std::size_t durationSlices = 20;
};

/** Complete phase-structured workload description. */
struct WorkloadProfile
{
    std::string name;
    std::vector<Phase> phases;
    /** When true, the phase list repeats if the run is longer. */
    bool loop = true;
};

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_WORKLOAD_PROFILE_H
