file(REMOVE_RECURSE
  "CMakeFiles/bpmon.dir/examples/bpmon.cpp.o"
  "CMakeFiles/bpmon.dir/examples/bpmon.cpp.o.d"
  "bpmon"
  "bpmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
