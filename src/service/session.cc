#include "service/session.h"

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

namespace {

telemetry::Counter &
ringOffersCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("ring.offers");
    return c;
}

telemetry::Counter &
ringDropsCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("ring.drops");
    return c;
}

telemetry::Histogram &
ringWaitHistogram()
{
    static telemetry::Histogram &h =
        telemetry::MetricsRegistry::global().histogram("ring.wait_ns");
    return h;
}

telemetry::Histogram &
publishFanoutHistogram()
{
    static telemetry::Histogram &h =
        telemetry::MetricsRegistry::global().histogram(
            "publish.fanout_ns");
    return h;
}

} // namespace

void
SessionStats::merge(const SessionStats &other)
{
    recordsOffered += other.recordsOffered;
    recordsIngested += other.recordsIngested;
    recordsDropped += other.recordsDropped;
    recordsRejected += other.recordsRejected;
    slicesAssembled += other.slicesAssembled;
    windowsRun += other.windowsRun;
    epSweeps += other.epSweeps;
    drainPasses += other.drainPasses;
    inferSeconds += other.inferSeconds;
    windowSeconds.merge(other.windowSeconds);
    modeledWindowSeconds.merge(other.modeledWindowSeconds);
    backendQueueSeconds.merge(other.backendQueueSeconds);
}

Session::Session(SessionId id, const sim::MicroarchDescriptor &uarch,
                 std::vector<sim::EventId> events, SessionConfig config,
                 std::string tenant, WindowSink window_sink)
    : id_(id), tenant_(std::move(tenant)), queue_(config.queueCapacity),
      inference_(uarch, std::move(events), config.streaming),
      windowSink_(std::move(window_sink))
{
}

bool
Session::offer(const sim::PerfRecord &rec)
{
    if (!telemetry::enabled())
        return queue_.push(rec);
    ringOffersCounter().add();
    sim::PerfRecord stamped = rec;
    stamped.ingestNanos = telemetry::nowNanos();
    const bool pushed = queue_.push(stamped);
    if (!pushed)
        ringDropsCounter().add();
    return pushed;
}

std::size_t
Session::drain()
{
    std::size_t drained = 0;
    while (auto rec = queue_.pop()) {
        if (rec->ingestNanos != 0 && telemetry::enabled()) {
            const std::uint64_t now = telemetry::nowNanos();
            if (now > rec->ingestNanos)
                ringWaitHistogram().record(now - rec->ingestNanos);
        }
        // Publish per completed window, not per drain pass: a long
        // backlog drains in one pass, and pollers should see
        // posteriors as soon as the first window lands.
        if (inference_.consume(*rec) > 0) {
            publishPosteriors();
            harvestWindows();
        }
        ++drained;
    }
    publishStats(/*drain_pass=*/true);
    return drained;
}

void
Session::finishStream()
{
    if (inference_.finish() > 0) {
        publishPosteriors();
        harvestWindows();
    }
    publishStats(/*drain_pass=*/false);
}

/**
 * Consume the engine's per-window latency samples: fold them into the
 * published statistics and emit one WindowUpdate per window to the
 * sink (subscriptions, admission in-flight accounting).  Runs on the
 * thread that ran the windows (worker or closer), so the engine reads
 * need no lock.
 */
void
Session::harvestWindows()
{
    const std::vector<double> window_seconds =
        inference_.takeWindowSeconds();
    const std::vector<core::WindowExecution> executions =
        inference_.takeWindowExecutions();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        for (double seconds : window_seconds)
            stats_.windowSeconds.push(seconds);
        for (const auto &exec : executions) {
            stats_.modeledWindowSeconds.push(exec.modeledSeconds);
            stats_.backendQueueSeconds.push(exec.queueWaitSeconds);
        }
    }
    if (executions.empty())
        return;
    if (windowSink_ == nullptr) {
        windowsReported_ += executions.size();
        return;
    }

    // The latest posterior is a fine per-window summary here: windows
    // complete one at a time in slice order, so all but the last
    // update of a multi-window harvest (rare: a drain crossing
    // several window boundaries in one record is impossible, but a
    // finish() tail can run two) share the final snapshot.
    WindowUpdate update;
    update.sessionId = id_;
    update.events = inference_.events();
    update.posterior.reserve(update.events.size());
    {
        std::lock_guard<std::mutex> lock(publishMutex_);
        update.posterior = latest_;
    }
    for (const auto &exec : executions) {
        update.windowIndex = windowsReported_++;
        update.windowId = exec.windowOrdinal;
        update.endSlice = exec.endSlice;
        update.execution = exec;
        if (telemetry::enabled()) {
            update.execution.span.publishNanos = telemetry::nowNanos();
            windowSink_(update);
            const std::uint64_t after = telemetry::nowNanos();
            if (after > update.execution.span.publishNanos)
                publishFanoutHistogram().record(
                    after - update.execution.span.publishNanos);
        } else {
            windowSink_(update);
        }
    }
}

/**
 * Copy the engine's counters into the mutex-guarded snapshot.  The
 * engine itself is single-threaded (worker-owned); cross-thread
 * readers only ever see the published copy.
 */
void
Session::publishStats(bool drain_pass)
{
    // Per-window latency samples are folded in by harvestWindows();
    // this publishes the engine's cumulative counters.
    const auto &engine = inference_.engine();
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (drain_pass)
        ++stats_.drainPasses;
    stats_.recordsRejected = inference_.recordsRejected();
    stats_.slicesAssembled = engine.slicesSeen();
    stats_.windowsRun = engine.windowsRun();
    stats_.epSweeps = engine.epSweepsTotal();
    stats_.inferSeconds = engine.inferSeconds();
}

void
Session::publishPosteriors()
{
    const auto &engine = inference_.engine();
    std::lock_guard<std::mutex> lock(publishMutex_);
    if (engine.latestPosteriors(latest_))
        latestValid_ = true;
}

std::optional<core::PosteriorPoint>
Session::latest(sim::EventId event) const
{
    std::lock_guard<std::mutex> lock(publishMutex_);
    if (!latestValid_)
        return std::nullopt;
    const auto &events = inference_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] == event)
            return latest_[i];
    }
    return std::nullopt;
}

SessionStats
Session::statsSnapshot() const
{
    SessionStats snap;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        snap = stats_;
    }
    // One coherent (pushed, dropped) pair: reading the two ring
    // counters at different instants could pair a stale push count
    // with a fresh drop count, breaking the snapshot invariant
    // recordsOffered == recordsIngested + recordsDropped against the
    // offer() calls actually completed.
    const sim::RingBuffer::Counters counters = queue_.counters();
    snap.recordsIngested = counters.pushed;
    snap.recordsDropped = counters.dropped;
    snap.recordsOffered = snap.recordsIngested + snap.recordsDropped;
    return snap;
}

} // namespace service
} // namespace bperf
