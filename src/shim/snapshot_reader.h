/**
 * @file
 * Consumer side of the posterior snapshot shim: a lock-free,
 * poll-style reader over a snapshot segment, usable in-process (over
 * a live SnapshotRegion) or from another process entirely (attach to
 * the daemon's named segment read-only).
 *
 * Reads are versioned seqlock copies: a reader snapshots the slot's
 * sequence, copies the payload, and retries when the sequence moved —
 * torn reads are detected, never returned.  Every successful read
 * reports its retry count and a staleness bound (reader clock minus
 * the writer's publish stamp, both CLOCK_MONOTONIC, so the bound is
 * valid across processes on one machine).
 *
 * Thread contract: a SnapshotReader is a read-only view with no
 * mutable state besides the mapping itself; all methods are safe from
 * any thread, concurrently with the writer.
 */

#ifndef BPERF_SHIM_SNAPSHOT_READER_H
#define BPERF_SHIM_SNAPSHOT_READER_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/inference.h"
#include "shim/snapshot_layout.h"
#include "shim/snapshot_region.h"
#include "sim/microarch.h"

namespace bperf {
namespace shim {

/** Outcome of one snapshot read. */
enum class ReadStatus
{
    /** A consistent snapshot was copied out. */
    Ok,
    /** No active slot holds the session (never published, or the
     * session closed and its slot was invalidated). */
    NotFound,
    /** Retries exhausted without a stable sequence, but the sequence
     * *moved* while we watched: a live writer is publishing under us
     * (or was descheduled between moves).  Transient; try again. */
    Torn,
    /** The slot's sequence was odd — a publish in flight — and never
     * changed across the entire retry budget.  A live seqlock writer
     * advances the sequence within a handful of reader iterations, so
     * a frozen odd sequence means the writer died (or was killed)
     * mid-publish, leaving the slot odd forever.  Persistent until
     * the daemon restarts and reinitialises the segment; consumers
     * should treat the session as lost, not poll it as contended. */
    WriterDead,
};

/** Stable identifier of a ReadStatus (logs, tables, tests). */
const char *readStatusName(ReadStatus status);

/** One event's posterior as stored in a slot (bit-identical to the
 * writer's WindowUpdate entry). */
struct SnapshotCounter
{
    sim::EventId event = 0;
    core::PosteriorPoint posterior;
};

/** One consistent per-session snapshot, plus read-side metadata. */
struct PosteriorSnapshot
{
    std::uint64_t sessionId = 0;
    /** Per-session window counter (completion order). */
    std::uint64_t windowIndex = 0;
    /** Slice whose arrival completed the window. */
    std::size_t endSlice = 0;
    /** Modeled backend execution of the window. */
    core::WindowExecution execution;
    /** Latest posterior of each monitored event. */
    std::vector<SnapshotCounter> counters;

    /** Writer's steady-clock publish stamp (nanoseconds). */
    std::uint64_t publishNanos = 0;
    /** Staleness bound of this read: reader clock minus publish
     * stamp, clamped at 0 (nanoseconds). */
    std::uint64_t ageNanos = 0;
    /** Torn-read retries this read needed (0 = first try). */
    std::uint64_t retries = 0;
};

/**
 * Read-only view over a snapshot segment.  Move-only; unmaps an
 * attached segment on destruction (an in-process view borrows the
 * region's mapping and must not outlive it).
 */
class SnapshotReader
{
  public:
    /** Default torn-read retry bound per read. */
    static constexpr std::size_t kDefaultMaxRetries = 64;

    /** In-process view over a live region (no copy, no syscalls). */
    explicit SnapshotReader(const SnapshotRegion &region);

    /**
     * Attach to a named segment read-only.  nullopt while the segment
     * does not exist yet or is not fully initialised (attach loops in
     * consumers simply retry); dies on a geometry/version mismatch —
     * that is a deployment error, not a race.
     */
    static std::optional<SnapshotReader>
    attach(const std::string &shm_name);

    ~SnapshotReader();
    SnapshotReader(SnapshotReader &&other) noexcept;
    SnapshotReader &operator=(SnapshotReader &&other) noexcept;
    SnapshotReader(const SnapshotReader &) = delete;
    SnapshotReader &operator=(const SnapshotReader &) = delete;

    std::size_t slots() const { return slots_; }
    std::size_t maxEvents() const { return maxEvents_; }

    /** Writer's total publish count (monotone; freshness signal). */
    std::uint64_t publishes() const;

    /** Session ids of every active slot (one consistent read each). */
    std::vector<std::uint64_t> sessions() const;

    /**
     * Copy the latest snapshot of `session_id` into `out`.  Scans the
     * slot table (slot count is small by design).  Wait-free except
     * for seqlock retries, which are bounded by `max_retries`.
     */
    ReadStatus read(std::uint64_t session_id, PosteriorSnapshot &out,
                    std::size_t max_retries = kDefaultMaxRetries) const;

    /** Copy slot `slot` directly (consumers that cached a slot). */
    ReadStatus readSlot(std::size_t slot, PosteriorSnapshot &out,
                        std::size_t max_retries = kDefaultMaxRetries) const;

  private:
    SnapshotReader() = default;

    /** Seq-validated read of just a slot's {active, session id} —
     * the cheap probe read()/sessions() scan with, so the full
     * payload (and its vector) is only copied for the target slot. */
    ReadStatus peekSlot(std::size_t slot, std::uint64_t &session_id,
                        std::size_t max_retries) const;

    const std::byte *base_ = nullptr;
    RegionLayout layout_;
    std::size_t slots_ = 0;
    std::size_t maxEvents_ = 0;
    /** Bytes to munmap at destruction; 0 for borrowed mappings. */
    std::size_t mappedBytes_ = 0;
};

} // namespace shim
} // namespace bperf

#endif // BPERF_SHIM_SNAPSHOT_READER_H
