# Empty dependencies file for pcie_scheduler.
# This may be replaced when dependencies are built.
