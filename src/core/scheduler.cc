#include "core/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace bperf {
namespace core {

using sim::EventId;
using sim::kNoEvent;

namespace {

bool
intersects(const std::set<EventId> &a, const std::set<EventId> &b)
{
    for (EventId e : a)
        if (b.count(e))
            return true;
    return false;
}

std::set<EventId>
toSet(const std::vector<EventId> &v)
{
    return {v.begin(), v.end()};
}

} // namespace

OverlapScheduler::OverlapScheduler(const sim::MicroarchDescriptor &uarch,
                                   SchedulerConfig config)
    : uarch_(uarch), config_(config), pmu_(uarch)
{
    // Event graph: VarId i is catalog event i.
    for (const auto &def : uarch_.events())
        eventGraph_.addVariable(def.name, def.typicalPerSlice);
    for (const auto &inv : uarch_.invariants()) {
        std::vector<std::pair<graph::VarId, double>> terms;
        for (const auto &t : inv.terms)
            terms.emplace_back(uarch_.idForRole(t.role), t.coeff);
        eventGraph_.addLinearGaussian(inv.name, std::move(terms), 0.0, 1.0);
    }
}

std::set<EventId>
OverlapScheduler::blanketOf(const std::vector<EventId> &events) const
{
    std::set<graph::VarId> vars(events.begin(), events.end());
    std::set<EventId> out;
    for (graph::VarId v : eventGraph_.markovBlanketOfSet(vars))
        out.insert(static_cast<EventId>(v));
    return out;
}

bool
OverlapScheduler::configsLinked(const std::vector<EventId> &a,
                                const std::vector<EventId> &b) const
{
    const auto sa = toSet(a);
    const auto sb = toSet(b);
    if (intersects(sa, sb))
        return true;
    const auto ba = blanketOf(a);
    const auto bb = blanketOf(b);
    return intersects(ba, sb) || intersects(sa, bb) || intersects(ba, bb);
}

std::vector<EventId>
OverlapScheduler::shortestEventPath(EventId from, EventId to) const
{
    std::vector<EventId> out;
    for (graph::VarId v : eventGraph_.shortestPath(from, to))
        out.push_back(static_cast<EventId>(v));
    return out;
}

ScheduleResult
OverlapScheduler::build(const std::vector<EventId> &monitored) const
{
    std::vector<EventId> pending;
    for (EventId e : monitored)
        if (!uarch_.event(e).fixed)
            pending.push_back(e);

    ScheduleResult result;
    if (pending.empty()) {
        result.configs = {{}};
        result.carried = {kNoEvent};
        return result;
    }

    if (!config_.reserveOverlapSlot) {
        result.configs = pmu_.packIntoConfigs(pending);
        result.carried.assign(result.configs.size(), kNoEvent);
        return result;
    }

    auto erase_from_pending = [&](EventId e) {
        pending.erase(std::remove(pending.begin(), pending.end(), e),
                      pending.end());
    };

    // Greedily grow `config` with events from pending, preferring
    // events inside `prefer`.
    auto fill_config = [&](std::vector<EventId> &config,
                           const std::set<EventId> &prefer) {
        std::vector<EventId> ordered;
        for (EventId e : pending)
            if (prefer.count(e))
                ordered.push_back(e);
        for (EventId e : pending)
            if (!prefer.count(e))
                ordered.push_back(e);
        for (EventId e : ordered) {
            if (config.size() >= uarch_.numProgrammableCounters())
                break;
            config.push_back(e);
            if (pmu_.validate(config)) {
                erase_from_pending(e);
            } else {
                config.pop_back();
            }
        }
    };

    // First configuration: no carry possible.
    {
        std::vector<EventId> config;
        fill_config(config, {});
        bp_assert(!config.empty(), "no monitored event is schedulable");
        result.configs.push_back(std::move(config));
        result.carried.push_back(kNoEvent);
    }

    while (!pending.empty()) {
        const std::vector<EventId> &prev = result.configs.back();

        // Candidate carries: events of the previous configuration
        // whose Markov blanket reaches into the pending set (so the
        // overlap transfers information the next slice needs).
        EventId carry = kNoEvent;
        const std::set<EventId> pending_set = toSet(pending);
        for (EventId c : prev) {
            std::set<graph::VarId> single{c};
            const auto blanket = eventGraph_.markovBlanket(c);
            bool reaches = false;
            for (graph::VarId v : blanket)
                if (pending_set.count(static_cast<EventId>(v)))
                    reaches = true;
            if (reaches) {
                carry = c;
                break;
            }
        }
        if (carry == kNoEvent && !prev.empty())
            carry = prev.front(); // still repeat an event across slices

        std::vector<EventId> config;
        if (carry != kNoEvent)
            config.push_back(carry);
        const std::set<EventId> prefer =
            carry != kNoEvent ? blanketOf({carry}) : std::set<EventId>{};
        fill_config(config, prefer);

        const bool only_carry =
            carry != kNoEvent && config.size() == 1;
        if (only_carry) {
            // The carry blocks every pending event (mask/MSR
            // conflicts): break the chain and restart from a valid
            // configuration, as section 4.1 prescribes.
            ++result.chainBreaks;
            config.clear();
            fill_config(config, {});
            bp_assert(!config.empty(), "pending event unschedulable");
            result.configs.push_back(std::move(config));
            result.carried.push_back(kNoEvent);
        } else {
            result.configs.push_back(std::move(config));
            result.carried.push_back(carry);
        }
    }
    return result;
}

std::vector<std::vector<EventId>>
OverlapScheduler::bridge(const std::vector<EventId> &from,
                         const std::vector<EventId> &to) const
{
    if (configsLinked(from, to))
        return {};

    // Shortest path over all endpoint pairs.
    std::vector<EventId> best;
    for (EventId a : from) {
        for (EventId b : to) {
            const auto path = shortestEventPath(a, b);
            if (path.empty())
                continue;
            if (best.empty() || path.size() < best.size())
                best = path;
        }
    }
    if (best.size() <= 2)
        return {}; // disconnected, or directly adjacent

    std::vector<std::vector<EventId>> chain;
    for (std::size_t i = 1; i + 1 < best.size(); ++i) {
        const EventId e = best[i];
        if (uarch_.event(e).fixed)
            continue; // fixed events are always measured; no step needed
        if (!pmu_.validate({e}))
            continue;
        chain.push_back({e});
    }
    chain = pruneCommonSteps(std::move(chain));
    chain = pruneRedundantSteps(std::move(chain));
    return chain;
}

std::vector<std::vector<EventId>>
OverlapScheduler::pruneCommonSteps(
    std::vector<std::vector<EventId>> chain) const
{
    for (auto &step : chain) {
        if (step.size() < 2)
            continue;
        // Intersect the Markov blankets of all events in the step.
        std::set<EventId> common;
        bool first = true;
        for (EventId e : step) {
            std::set<EventId> blanket;
            for (graph::VarId v : eventGraph_.markovBlanket(e))
                blanket.insert(static_cast<EventId>(v));
            if (first) {
                common = std::move(blanket);
                first = false;
            } else {
                std::set<EventId> kept;
                for (EventId c : common)
                    if (blanket.count(c))
                        kept.insert(c);
                common = std::move(kept);
            }
        }
        // Composition can flow through a single shared neighbour.
        for (EventId e_star : common) {
            if (!uarch_.event(e_star).fixed && pmu_.validate({e_star})) {
                step = {e_star};
                break;
            }
        }
    }
    return chain;
}

std::vector<std::vector<EventId>>
OverlapScheduler::pruneRedundantSteps(
    std::vector<std::vector<EventId>> chain) const
{
    std::vector<std::vector<EventId>> kept;
    std::set<EventId> prev_blanket;
    for (auto &step : chain) {
        auto blanket = blanketOf(step);
        if (!kept.empty() && blanket == prev_blanket)
            continue; // no change in blanket: skip straight ahead
        prev_blanket = blanket;
        kept.push_back(std::move(step));
    }
    return kept;
}

} // namespace core
} // namespace bperf
