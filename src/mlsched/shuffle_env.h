/**
 * @file
 * The section 6.3 scheduling environment: a Spark executor must pick
 * which NIC carries a distributed shuffle while two GPUs on socket 0
 * run a halo exchange.  NIC0 shares the switch uplink with the GPU
 * traffic (contention); NIC1 avoids it but crosses the socket link.
 *
 * The scheduler observes HPC-derived features (write types, demand
 * and MMIO reads, DRAM/membus bandwidth, shuffle size, NUMA node —
 * the paper's input list), corrupted by the measurement error of
 * whichever estimator feeds the model, and optionally stale by the
 * estimator's inference latency.
 */

#ifndef BPERF_MLSCHED_SHUFFLE_ENV_H
#define BPERF_MLSCHED_SHUFFLE_ENV_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mlsched/pcie.h"

namespace bperf {
namespace ml {

/** Number of scheduler input features (paper: 36-input network). */
constexpr std::size_t kNumFeatures = 36;

/** Noise profile of the HPC estimator feeding the scheduler. */
struct FeatureNoise
{
    /** Relative error (stddev, %) on HPC-derived features. */
    double errorPct = 40.0;

    /**
     * Staleness in [0, 1): fraction of the feature signal that still
     * reflects the previous system state because the estimator's
     * inference latency delays fresh values (BayesPerf-CPU vs
     * accelerator).
     */
    double staleness = 0.0;
};

/** One scheduling situation. */
struct Episode
{
    double gpuTrafficGBps = 0.0; // halo-exchange offered load
    double shuffleGB = 0.0;      // bytes to move
    double messageBytes = 0.0;   // shuffle message size
    int numaNode = 0;            // where the shuffle data lives
    std::vector<double> features; // noisy HPC-derived observation
};

/** Environment configuration. */
struct EnvConfig
{
    FeatureNoise noise;
    PcieConfig pcie;
    std::uint64_t seed = 21;
};

/**
 * Episode generator and completion-time oracle.
 */
class ShuffleEnv
{
  public:
    explicit ShuffleEnv(EnvConfig config);

    /** Draw the next scheduling situation. */
    Episode sample();

    /** Shuffle completion time (s) when routed through `nic` (0/1). */
    double completionTime(const Episode &episode, int nic) const;

    /** Completion time on an idle fabric (normalization). */
    double isolatedTime(const Episode &episode) const;

    /** Ground-truth best NIC for an episode. */
    int optimalNic(const Episode &episode) const;

    const PcieFabric &fabric() const { return fabric_; }

  private:
    std::vector<double> makeFeatures(const Episode &episode,
                                     const Episode *previous);

    EnvConfig config_;
    PcieFabric fabric_;
    Rng rng_;
    bool havePrev_ = false;
    Episode prev_;
};

} // namespace ml
} // namespace bperf

#endif // BPERF_MLSCHED_SHUFFLE_ENV_H
