#include "mlsched/collab_filter.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace bperf {
namespace ml {

namespace {

/** Buckets per state dimension. */
constexpr std::size_t kTrafficBuckets = 6;
constexpr std::size_t kSizeBuckets = 3;
constexpr std::size_t kNumaBuckets = 2;

} // namespace

MatrixFactorization::MatrixFactorization(std::size_t rows, std::size_t cols,
                                         CfConfig config)
    : rows_(rows), cols_(cols), config_(config)
{
    Rng rng(config_.seed);
    rowFactors_.resize(rows_ * config_.rank);
    colFactors_.resize(cols_ * config_.rank);
    for (double &x : rowFactors_)
        x = rng.normal(0.0, 0.1);
    for (double &x : colFactors_)
        x = rng.normal(0.0, 0.1);
    rowBias_.assign(rows_, 0.0);
    colBias_.assign(cols_, 0.0);
}

void
MatrixFactorization::fit(const std::vector<CfObservation> &observations)
{
    bp_assert(!observations.empty(), "no CF observations");
    double mean = 0.0;
    for (const auto &o : observations)
        mean += o.value;
    globalBias_ = mean / static_cast<double>(observations.size());

    Rng rng(config_.seed * 31 + 7);
    std::vector<std::size_t> order(observations.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    const double lr = config_.learningRate;
    const double reg = config_.regularization;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t idx : order) {
            const auto &o = observations[idx];
            const double err = o.value - predict(o.row, o.col);
            rowBias_[o.row] += lr * (err - reg * rowBias_[o.row]);
            colBias_[o.col] += lr * (err - reg * colBias_[o.col]);
            for (std::size_t k = 0; k < config_.rank; ++k) {
                double &ru = rowFactors_[o.row * config_.rank + k];
                double &cv = colFactors_[o.col * config_.rank + k];
                const double ru0 = ru;
                ru += lr * (err * cv - reg * ru);
                cv += lr * (err * ru0 - reg * cv);
            }
        }
    }
}

double
MatrixFactorization::predict(std::size_t row, std::size_t col) const
{
    bp_assert(row < rows_ && col < cols_, "CF cell out of range");
    double s = globalBias_ + rowBias_[row] + colBias_[col];
    for (std::size_t k = 0; k < config_.rank; ++k)
        s += rowFactors_[row * config_.rank + k] *
             colFactors_[col * config_.rank + k];
    return s;
}

double
MatrixFactorization::rmse(const std::vector<CfObservation> &cells) const
{
    bp_assert(!cells.empty(), "rmse over empty set");
    double s = 0.0;
    for (const auto &c : cells) {
        const double e = c.value - predict(c.row, c.col);
        s += e * e;
    }
    return std::sqrt(s / static_cast<double>(cells.size()));
}

CfScheduler::CfScheduler(EnvConfig env_config, CfConfig cf_config)
    : envConfig_(env_config), cfConfig_(cf_config), env_(env_config),
      model_(numBuckets(), 2, cf_config)
{
}

std::size_t
CfScheduler::numBuckets() const
{
    return kTrafficBuckets * kSizeBuckets * kNumaBuckets;
}

std::size_t
CfScheduler::bucketOf(const std::vector<double> &features) const
{
    bp_assert(features.size() >= 14, "feature vector too short");
    // Reconstruct the state estimate from the (noisy) features: the
    // memory-bus utilization (index 10) tracks GPU traffic, index 11
    // is the shuffle size, index 13 the NUMA node.
    const double traffic = std::clamp(features[10], 0.0, 0.999);
    const auto tb = static_cast<std::size_t>(
        traffic * static_cast<double>(kTrafficBuckets));
    const double size_gb = std::clamp(features[11], 0.0, 7.999);
    const auto sb = static_cast<std::size_t>(
        size_gb / 8.0 * static_cast<double>(kSizeBuckets));
    const std::size_t nb = features[13] >= 0.5 ? 1 : 0;
    return (tb * kSizeBuckets + sb) * kNumaBuckets + nb;
}

void
CfScheduler::train(std::size_t episodes)
{
    bp_assert(episodes > 0, "need training episodes");
    Rng rng(cfConfig_.seed * 101 + 3);
    std::vector<CfObservation> observations;
    for (std::size_t i = 0; i < episodes; ++i) {
        const Episode ep = env_.sample();
        const std::size_t row = bucketOf(ep.features);
        // Random exploration placement; sparsity drops a fraction of
        // the observations, as in the paper's sweep.
        const int nic = rng.bernoulli(0.5) ? 1 : 0;
        if (rng.uniform() < cfConfig_.sparsity)
            continue;
        const double norm =
            env_.completionTime(ep, nic) / env_.isolatedTime(ep);
        observations.push_back(
            {row, static_cast<std::size_t>(nic), norm});
    }
    bp_assert(!observations.empty(),
              "sparsity removed every observation");
    model_.fit(observations);
}

int
CfScheduler::chooseNic(const std::vector<double> &features) const
{
    const std::size_t row = bucketOf(features);
    return model_.predict(row, 0) <= model_.predict(row, 1) ? 0 : 1;
}

double
CfScheduler::evaluate(std::size_t episodes)
{
    bp_assert(episodes > 0, "need evaluation episodes");
    double total = 0.0;
    for (std::size_t i = 0; i < episodes; ++i) {
        const Episode ep = env_.sample();
        const int nic = chooseNic(ep.features);
        total += env_.completionTime(ep, nic) / env_.isolatedTime(ep);
    }
    return total / static_cast<double>(episodes);
}

} // namespace ml
} // namespace bperf
