#include "core/bayesperf.h"

#include <algorithm>

#include "common/logging.h"

namespace bperf {
namespace core {

BayesPerfSession::BayesPerfSession(const sim::MicroarchDescriptor &uarch,
                                   BayesPerfConfig config)
    : uarch_(uarch), config_(config)
{
}

std::vector<sim::EventId>
resolveMonitoredSet(const sim::MicroarchDescriptor &uarch,
                    const std::vector<sim::EventId> &events)
{
    std::vector<sim::EventId> monitored;
    // Fixed counters are always on and anchor the factor graph.
    for (sim::EventId e : uarch.fixedEvents())
        monitored.push_back(e);
    sim::Pmu pmu(uarch);
    for (sim::EventId e : events) {
        if (std::find(monitored.begin(), monitored.end(), e) !=
            monitored.end())
            continue;
        if (!uarch.event(e).fixed && !pmu.validate({e}))
            bp_fatal("event not schedulable on any counter: "
                     << uarch.event(e).name);
        monitored.push_back(e);
    }
    return monitored;
}

void
BayesPerfSession::open(const std::vector<sim::EventId> &events)
{
    monitored_ = resolveMonitoredSet(uarch_, events);
}

BayesPerfRun
BayesPerfSession::measure(const sim::TruthTrace &truth)
{
    bp_assert(isOpen(), "open() must be called before measure()");

    BayesPerfRun run;

    SchedulerConfig sched_cfg = config_.scheduler;
    sched_cfg.reserveOverlapSlot = config_.useOverlapSchedule;
    OverlapScheduler scheduler(uarch_, sched_cfg);
    run.schedule = scheduler.build(monitored_);

    sim::PerfSession session(uarch_, config_.perf);
    run.raw = session.run(truth, monitored_, run.schedule.configs);

    InferenceEngine engine(uarch_, config_.inference);
    run.posterior = engine.infer(run.raw);
    return run;
}

} // namespace core
} // namespace bperf
