/** @file Tests for the window model and end-to-end inference. */

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/linux_scaling.h"
#include "core/bayesperf.h"
#include "core/model_builder.h"
#include "workloads/hibench.h"

namespace bperf {
namespace core {
namespace {

using sim::EventId;
using sim::Role;

TEST(WindowModel, VariablesPerEventAndSlice)
{
    const auto uarch = sim::makeX86Skylake();
    const std::vector<EventId> events = {
        uarch.idForRole(Role::Cycles), uarch.idForRole(Role::LlcMiss)};
    WindowModel model(uarch, events, 3, {});
    EXPECT_EQ(model.graph().numVariables(), 6u);
    for (std::size_t t = 0; t < 3; ++t)
        for (EventId e : events)
            EXPECT_NE(model.var(e, t), graph::kNoVar);
    // Unmodeled events map to no variable.
    EXPECT_EQ(model.var(uarch.idForRole(Role::DmaBytes), 0),
              graph::kNoVar);
}

TEST(WindowModel, InvariantsOnlyWhenCovered)
{
    const auto uarch = sim::makeX86Skylake();
    // Cycles alone covers no invariant (all need >= 2 modeled roles).
    WindowModel lone(uarch, {uarch.idForRole(Role::Cycles)}, 1, {});
    std::size_t invariant_factors = 0;
    for (const auto &f : lone.graph().factors())
        if (f.kind == graph::FactorKind::LinearGaussian &&
            f.name.find("walk") == std::string::npos)
            ++invariant_factors;
    EXPECT_EQ(invariant_factors, 0u);

    // Cycles + active + stall_total covers cycle_accounting.
    WindowModel covered(uarch,
                        {uarch.idForRole(Role::Cycles),
                         uarch.idForRole(Role::ActiveCycles),
                         uarch.idForRole(Role::StallTotal)},
                        2, {});
    invariant_factors = 0;
    for (const auto &f : covered.graph().factors())
        if (f.name.find("cycle_accounting") == 0)
            ++invariant_factors;
    EXPECT_EQ(invariant_factors, 2u); // one per slice
}

TEST(WindowModel, IncludeLatentModelsWholeCatalog)
{
    const auto uarch = sim::makeX86Skylake();
    ModelConfig cfg;
    cfg.includeLatent = true;
    WindowModel model(uarch, {uarch.idForRole(Role::Cycles)}, 2, cfg);
    EXPECT_EQ(model.graph().numVariables(), 2 * uarch.events().size());
}

TEST(WindowModel, RatioWalkNeedsNormalizer)
{
    const auto uarch = sim::makeX86Skylake();
    const std::vector<EventId> events = {uarch.idForRole(Role::Loads)};
    auto count_ratio = [](const WindowModel &m) {
        std::size_t n = 0;
        for (const auto &f : m.graph().factors())
            if (f.name.rfind("ratio_walk:", 0) == 0)
                ++n;
        return n;
    };
    WindowModel without(uarch, events, 3, {});
    EXPECT_EQ(count_ratio(without), 0u);
    const std::vector<double> norm = {1e6, 1.1e6, 0.9e6};
    WindowModel with(uarch, events, 3, {}, nullptr, &norm);
    EXPECT_EQ(count_ratio(with), 2u);
}

struct EndToEnd
{
    sim::MicroarchDescriptor uarch = sim::makeX86Skylake();

    BayesPerfRun
    run(double noise_scale, std::uint64_t seed = 42)
    {
        const auto workload = wl::makeHibench("KMeans");
        sim::GroundTruthGenerator gen(uarch, workload);
        truth = gen.generate(36, seed);

        BayesPerfConfig cfg;
        cfg.perf.noise.scale = noise_scale;
        cfg.perf.seed = seed * 3 + 1;
        BayesPerfSession session(uarch, cfg);
        session.open({uarch.idForRole(Role::LlcMiss),
                      uarch.idForRole(Role::L2Miss),
                      uarch.idForRole(Role::StallMem),
                      uarch.idForRole(Role::StallFrontend),
                      uarch.idForRole(Role::StallBranch),
                      uarch.idForRole(Role::StallTotal),
                      uarch.idForRole(Role::ActiveCycles),
                      uarch.idForRole(Role::BranchMisses),
                      uarch.idForRole(Role::DramBytes),
                      uarch.idForRole(Role::DmaBytes)});
        monitored = session.monitored();
        return session.measure(truth);
    }

    sim::TruthTrace truth{1, 2, 1};
    std::vector<EventId> monitored;
};

TEST(Inference, PosteriorIsFiniteWithPositiveUncertainty)
{
    EndToEnd fixture;
    const auto run = fixture.run(1.0);
    for (EventId e : fixture.monitored) {
        const auto mean = run.estimate(e);
        const auto sd = run.uncertainty(e);
        for (std::size_t t = 0; t < mean.size(); ++t) {
            ASSERT_TRUE(std::isfinite(mean[t]));
            ASSERT_TRUE(std::isfinite(sd[t]));
            ASSERT_GT(sd[t], 0.0);
        }
    }
}

TEST(Inference, FixedCountersAreNearlyExact)
{
    EndToEnd fixture;
    const auto run = fixture.run(1.0);
    const EventId cyc = fixture.uarch.idForRole(Role::Cycles);
    const auto est = run.estimate(cyc);
    for (std::size_t t = 0; t < est.size(); ++t) {
        const double truth_v = fixture.truth.sliceTotal(t, cyc);
        EXPECT_NEAR(est[t], truth_v, 0.05 * truth_v) << "slice " << t;
    }
}

TEST(Inference, BeatsLinuxScalingOnNoisyRun)
{
    // The headline property: on a multiplexed run, BayesPerf's
    // posterior means are closer to the truth than Linux scaling,
    // averaged over the multiplexed events.
    EndToEnd fixture;
    const auto run = fixture.run(1.0);
    baselines::LinuxEstimator linux_est;

    double err_bp = 0.0, err_linux = 0.0;
    std::size_t n = 0;
    for (EventId e : fixture.monitored) {
        if (fixture.uarch.event(e).fixed)
            continue;
        const auto bp = run.estimate(e);
        const auto lx = linux_est.series(run.raw, e);
        for (std::size_t t = 0; t < bp.size(); ++t) {
            const double truth_v =
                std::max(fixture.truth.sliceTotal(t, e), 1e-9);
            err_bp += std::abs(bp[t] - truth_v) / truth_v;
            err_linux += std::abs(lx[t] - truth_v) / truth_v;
            ++n;
        }
    }
    EXPECT_LT(err_bp, 0.8 * err_linux)
        << "BayesPerf " << err_bp / n << " vs Linux " << err_linux / n;
}

TEST(Inference, NearNoiseFreeRunIsAccuratelyRecovered)
{
    EndToEnd fixture;
    const auto run = fixture.run(0.0);
    const EventId llc = fixture.uarch.idForRole(Role::LlcMiss);
    const auto est = run.estimate(llc);
    double rel = 0.0;
    for (std::size_t t = 0; t < est.size(); ++t)
        rel += std::abs(est[t] - fixture.truth.sliceTotal(t, llc)) /
               fixture.truth.sliceTotal(t, llc);
    rel /= static_cast<double>(est.size());
    // Residual error stems only from multiplexing gaps.
    EXPECT_LT(rel, 0.25);
}

TEST(Inference, ObservedSlicesTighterThanUnobserved)
{
    EndToEnd fixture;
    const auto run = fixture.run(1.0);
    const EventId llc = fixture.uarch.idForRole(Role::LlcMiss);
    const auto sd = run.uncertainty(llc);
    const auto &trace = run.raw.traceFor(llc);
    double sd_obs = 0.0, sd_un = 0.0;
    std::size_t n_obs = 0, n_un = 0;
    for (std::size_t t = 0; t < sd.size(); ++t) {
        if (trace.slices[t].observed) {
            sd_obs += sd[t];
            ++n_obs;
        } else {
            sd_un += sd[t];
            ++n_un;
        }
    }
    ASSERT_GT(n_obs, 0u);
    ASSERT_GT(n_un, 0u);
    // Invariants and ratio walks spread information, so the gap is
    // modest, but observed slices must not be *less* certain.
    EXPECT_LT(sd_obs / n_obs, 1.15 * sd_un / n_un);
}

TEST(Inference, DeterministicAcrossRuns)
{
    EndToEnd a, b;
    const auto ra = a.run(1.0, 7);
    const auto rb = b.run(1.0, 7);
    const EventId llc = a.uarch.idForRole(Role::LlcMiss);
    EXPECT_EQ(ra.estimate(llc), rb.estimate(llc));
}

TEST(Inference, SessionRequiresOpen)
{
    const auto uarch = sim::makeX86Skylake();
    BayesPerfSession session(uarch, {});
    sim::GroundTruthGenerator gen(uarch, wl::makeHibench("Sort"));
    const auto truth = gen.generate(4, 1);
    EXPECT_DEATH((void)session.measure(truth), "open");
}

} // namespace
} // namespace core
} // namespace bperf
