file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fpga_area_power.dir/bench/bench_table1_fpga_area_power.cpp.o"
  "CMakeFiles/bench_table1_fpga_area_power.dir/bench/bench_table1_fpga_area_power.cpp.o.d"
  "bench_table1_fpga_area_power"
  "bench_table1_fpga_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fpga_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
