#include "graph/partition.h"

#include "common/logging.h"

namespace bperf {
namespace graph {

std::size_t
PartitionPlan::maxPartitionSites() const
{
    std::size_t max = 0;
    for (std::size_t c : siteCounts)
        max = std::max(max, c);
    return max;
}

void
partitionSites(const FactorGraph &graph, std::size_t partitions,
               PartitionPlan &plan)
{
    const std::size_t n = graph.numVariables();
    std::size_t p_count = partitions == 0 ? 1 : partitions;
    if (n > 0)
        p_count = std::min(p_count, n);

    plan.numPartitions = p_count;
    plan.siteCounts.assign(p_count, 0);

    const auto &sites = graph.factorsOfKind(FactorKind::StudentT);
    if (plan.partitionOfSite.capacity() < sites.size())
        plan.partitionOfSite.reserve(sites.size());
    plan.partitionOfSite.clear();
    for (FactorId f : sites) {
        const Factor &factor = graph.factor(f);
        bp_assert(factor.vars.size() == 1,
                  "StudentT site must bind one variable");
        const VarId v = factor.vars[0];
        // Contiguous id ranges: p(v) = floor(v * P / n).  Ids are
        // slice-major, so ranges are time-slice bands.
        const std::size_t p =
            n == 0 ? 0
                   : (static_cast<std::size_t>(v) * p_count) / n;
        plan.partitionOfSite.push_back(static_cast<std::uint32_t>(p));
        ++plan.siteCounts[p];
    }
}

PartitionPlan
partitionSites(const FactorGraph &graph, std::size_t partitions)
{
    PartitionPlan plan;
    partitionSites(graph, partitions, plan);
    return plan;
}

} // namespace graph
} // namespace bperf
