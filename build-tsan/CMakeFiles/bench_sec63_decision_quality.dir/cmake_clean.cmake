file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_decision_quality.dir/bench/bench_sec63_decision_quality.cpp.o"
  "CMakeFiles/bench_sec63_decision_quality.dir/bench/bench_sec63_decision_quality.cpp.o.d"
  "bench_sec63_decision_quality"
  "bench_sec63_decision_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_decision_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
