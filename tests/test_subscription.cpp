/** @file Tests for the window-subscription surface: per-window
 * delivery with posterior summaries, bounded queues with
 * drop-and-count on slow consumers, unsubscribe, and clean teardown
 * while publishers are racing (run under TSan in CI). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "service/subscription.h"
#include "sim/ground_truth.h"
#include "workloads/hibench.h"

namespace bperf {
namespace service {
namespace {

const sim::MicroarchDescriptor &
uarch()
{
    static const sim::MicroarchDescriptor u = sim::makeX86Skylake();
    return u;
}

std::vector<sim::EventId>
monitoredSet()
{
    std::vector<sim::EventId> events;
    for (sim::EventId e : uarch().fixedEvents())
        events.push_back(e);
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem})
        events.push_back(uarch().idForRole(r));
    return events;
}

sim::PerfResult
measuredRun(const std::vector<sim::EventId> &monitored,
            std::size_t num_slices, std::uint64_t seed)
{
    const sim::GroundTruthGenerator generator(
        uarch(), wl::makeHibench("KMeans"));
    const sim::TruthTrace truth = generator.generate(num_slices, seed);
    sim::PerfSessionConfig cfg;
    cfg.seed = seed * 3 + 1;
    sim::PerfSession session(uarch(), cfg);
    return session.runRoundRobin(truth, monitored);
}

MonitorServiceConfig
serviceConfig()
{
    MonitorServiceConfig cfg;
    cfg.numWorkers = 2;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;
    return cfg;
}

WindowUpdate
makeUpdate(std::uint64_t session, std::uint64_t index)
{
    WindowUpdate u;
    u.sessionId = session;
    u.windowIndex = index;
    return u;
}

TEST(SubscriptionHub, DeliversPublishedUpdatesInOrder)
{
    SubscriptionHub hub(16);
    std::mutex mutex;
    std::vector<std::uint64_t> seen;
    const SubscriptionId id =
        hub.subscribe(7, [&](const WindowUpdate &u) {
            std::lock_guard<std::mutex> lock(mutex);
            seen.push_back(u.windowIndex);
        });

    for (std::uint64_t i = 0; i < 5; ++i)
        hub.publish(makeUpdate(7, i));
    // Another session's updates must not reach this subscriber.
    hub.publish(makeUpdate(8, 99));
    hub.flush();

    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_EQ(seen.size(), 5u);
        for (std::uint64_t i = 0; i < 5; ++i)
            EXPECT_EQ(seen[i], i);
    }
    const auto stats = hub.stats(id);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->published, 5u);
    EXPECT_EQ(stats->delivered, 5u);
    EXPECT_EQ(stats->dropped, 0u);
}

TEST(SubscriptionHub, SlowConsumerDropsOldestAndCounts)
{
    SubscriptionHub hub(/*queue_capacity=*/4);

    // Gate the callback so the queue backs up deterministically.
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::vector<std::uint64_t> seen;
    const SubscriptionId id =
        hub.subscribe(1, [&](const WindowUpdate &u) {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return release; });
            seen.push_back(u.windowIndex);
        });

    // First publish may enter the callback immediately and block
    // there; the rest fill the bounded queue and start evicting.
    constexpr std::uint64_t kPublished = 12;
    for (std::uint64_t i = 0; i < kPublished; ++i)
        hub.publish(makeUpdate(1, i));
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    hub.flush();

    const auto stats = hub.stats(id);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->published, kPublished);
    EXPECT_GT(stats->dropped, 0u);
    EXPECT_EQ(stats->delivered + stats->dropped, kPublished);
    {
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_EQ(seen.size(), stats->delivered);
        // Drop-oldest: the freshest window always survives.
        ASSERT_FALSE(seen.empty());
        EXPECT_EQ(seen.back(), kPublished - 1);
    }
}

TEST(SubscriptionHub, UnsubscribeStopsDeliveryKeepsStats)
{
    SubscriptionHub hub(16);
    std::atomic<std::uint64_t> count{0};
    const SubscriptionId id = hub.subscribe(
        3, [&](const WindowUpdate &) { count.fetch_add(1); });

    hub.publish(makeUpdate(3, 0));
    hub.flush();
    EXPECT_TRUE(hub.unsubscribe(id));
    EXPECT_FALSE(hub.unsubscribe(id)); // idempotent
    hub.publish(makeUpdate(3, 1));
    hub.flush();

    EXPECT_EQ(count.load(), 1u);
    const auto stats = hub.stats(id);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->delivered, 1u);
    EXPECT_EQ(hub.subscriberCount(3), 0u);
}

TEST(SubscriptionHub, PublishRacesSubscribeUnsubscribeAndTeardown)
{
    // Publishers racing subscribe/unsubscribe/flush, then a teardown
    // with updates still queued: accounting must balance and the
    // dispatcher must join cleanly (TSan-checked in CI).  Publishers
    // always stop before the hub dies — the service guarantees the
    // same order by destroying its worker pool first.
    for (int round = 0; round < 10; ++round) {
        std::atomic<bool> stop{false};
        SubscriptionHub hub(8);
        std::thread publisher([&] {
            std::uint64_t i = 0;
            while (!stop.load())
                hub.publish(makeUpdate(1, i++));
        });
        std::atomic<std::uint64_t> seen{0};
        for (int churn = 0; churn < 20; ++churn) {
            const SubscriptionId id = hub.subscribe(
                1, [&](const WindowUpdate &) { seen.fetch_add(1); });
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            EXPECT_TRUE(hub.unsubscribe(id));
            // After unsubscribe only an in-flight callback can still
            // complete; flush() waits it out, then the accounting
            // must balance exactly.
            hub.flush();
            const auto stats = hub.stats(id);
            ASSERT_TRUE(stats.has_value());
            EXPECT_EQ(stats->delivered + stats->dropped,
                      stats->published);
        }
        stop.store(true);
        publisher.join();
        // Destruction with a live subscriber and possibly queued
        // updates: the dispatcher joins, leftovers count as dropped.
        hub.subscribe(1, [](const WindowUpdate &) {});
    }
}

TEST(MonitorService, SubscriberSeesEveryWindowWithPosteriors)
{
    MonitorService daemon(uarch(), serviceConfig());
    const SessionId id = daemon.open(monitoredSet());
    const auto monitored = daemon.monitoredEvents(id);
    const auto run = measuredRun(monitored, 24, 321);

    std::mutex mutex;
    std::vector<WindowUpdate> updates;
    const auto sub = daemon.subscribe(id, [&](const WindowUpdate &u) {
        std::lock_guard<std::mutex> lock(mutex);
        updates.push_back(u);
    });
    ASSERT_TRUE(sub.has_value());
    // Subscribing to an unknown session is a typed miss.
    EXPECT_FALSE(daemon.subscribe(999999, [](const WindowUpdate &) {})
                     .has_value());

    daemon.ingestBatch(id, recordStream(run));
    daemon.quiesce();
    daemon.flushSubscriptions();

    const auto report = daemon.close(id);
    ASSERT_TRUE(report.has_value());
    daemon.flushSubscriptions(); // the close() tail windows

    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(updates.size(), report->stats.windowsRun);
    for (std::size_t i = 0; i < updates.size(); ++i) {
        const WindowUpdate &u = updates[i];
        EXPECT_EQ(u.sessionId, id);
        EXPECT_EQ(u.windowIndex, i);
        // The engine-stamped window id is 1-based and gap-free: no
        // window is ever skipped or double-assigned on its way from
        // runWindow() through harvestWindows() to the subscriber.
        EXPECT_EQ(u.windowId, i + 1);
        if (i > 0) {
            EXPECT_EQ(u.windowId, updates[i - 1].windowId + 1);
        }
        ASSERT_EQ(u.events.size(), monitored.size());
        ASSERT_EQ(u.posterior.size(), monitored.size());
        for (const auto &p : u.posterior) {
            EXPECT_GT(p.mean, 0.0);
            EXPECT_GT(p.stddev, 0.0);
        }
        EXPECT_GT(u.execution.modeledSeconds, 0.0);
        if (i > 0) {
            EXPECT_GE(u.endSlice, updates[i - 1].endSlice);
        }
    }
    const auto sub_stats = daemon.subscriptionStats(*sub);
    ASSERT_TRUE(sub_stats.has_value());
    EXPECT_EQ(sub_stats->published, report->stats.windowsRun);
    EXPECT_EQ(sub_stats->delivered, report->stats.windowsRun);
    EXPECT_EQ(sub_stats->dropped, 0u);
}

TEST(MonitorService, SubscriptionsWhileProducersStream)
{
    // Several sessions streaming from producer threads with a
    // subscriber each: delivery accounting must balance and teardown
    // must be clean while the dispatcher races the workers.
    MonitorServiceConfig cfg = serviceConfig();
    cfg.numWorkers = 4;
    MonitorService daemon(uarch(), cfg);

    constexpr std::size_t kSessions = 4;
    constexpr std::size_t kSlices = 18;

    std::vector<SessionId> ids;
    std::vector<std::atomic<std::uint64_t>> counts(kSessions);
    std::vector<SubscriptionId> subs;
    for (std::size_t s = 0; s < kSessions; ++s) {
        ids.push_back(daemon.open(monitoredSet()));
        const auto sub = daemon.subscribe(
            ids[s], [&counts, s](const WindowUpdate &) {
                counts[s].fetch_add(1);
            });
        ASSERT_TRUE(sub.has_value());
        subs.push_back(*sub);
    }
    const auto monitored = daemon.monitoredEvents(ids[0]);

    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < kSessions; ++s) {
        producers.emplace_back([&daemon, &monitored, id = ids[s], s] {
            const auto run = measuredRun(monitored, kSlices, 800 + s);
            for (std::size_t t = 0; t < kSlices; ++t)
                daemon.ingestBatch(id, sliceRecords(run, t));
        });
    }
    for (auto &p : producers)
        p.join();
    daemon.quiesce();
    daemon.flushSubscriptions();

    for (std::size_t s = 0; s < kSessions; ++s) {
        const auto report = daemon.close(ids[s]);
        ASSERT_TRUE(report.has_value());
        daemon.flushSubscriptions();
        const auto stats = daemon.subscriptionStats(subs[s]);
        ASSERT_TRUE(stats.has_value());
        EXPECT_EQ(stats->published, report->stats.windowsRun);
        EXPECT_EQ(stats->delivered + stats->dropped,
                  stats->published);
        EXPECT_EQ(counts[s].load(), stats->delivered);
    }
}

} // namespace
} // namespace service
} // namespace bperf
