#include "sim/ring_buffer.h"

#include "common/logging.h"

namespace bperf {
namespace sim {

RingBuffer::RingBuffer(std::size_t capacity) : buffer_(capacity)
{
    bp_assert(capacity > 0, "ring buffer capacity must be positive");
}

bool
RingBuffer::push(const PerfRecord &rec)
{
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == buffer_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    buffer_[tail % buffer_.size()] = rec;
    // Release pairs with the consumer's acquire of tail_: the record
    // write above is visible before the new tail is.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
}

std::optional<PerfRecord>
RingBuffer::pop()
{
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (tail == head)
        return std::nullopt;
    PerfRecord rec = buffer_[head % buffer_.size()];
    // Release pairs with the producer's acquire of head_: the slot is
    // fully read before it is handed back for reuse.
    head_.store(head + 1, std::memory_order_release);
    return rec;
}

} // namespace sim
} // namespace bperf
