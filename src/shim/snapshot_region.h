/**
 * @file
 * Writer side of the posterior snapshot shim: a fixed table of
 * per-session seqlock slots inside an anonymous (in-process) or
 * named POSIX shared-memory (cross-process) mapping.
 *
 * The region is the *mechanism*; policy (which session owns which
 * slot, drop accounting) lives in service::SnapshotPublisher.  Slot
 * writes are wait-free bounded store bursts and never observe or
 * block readers.
 *
 * Thread contract: write()/invalidate() on one slot must come from
 * one thread at a time (the service guarantees this — a session's
 * windows are harvested by a single worker at a time); different
 * slots may be written concurrently.  Geometry accessors are safe
 * from any thread.
 */

#ifndef BPERF_SHIM_SNAPSHOT_REGION_H
#define BPERF_SHIM_SNAPSHOT_REGION_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/inference.h"
#include "shim/snapshot_layout.h"
#include "sim/microarch.h"

namespace bperf {
namespace shim {

/** Geometry of a snapshot table, fixed at creation. */
struct SnapshotRegionConfig
{
    /** Session slots: the most sessions simultaneously exported. */
    std::size_t slots = 64;
    /** Posterior entries per slot: the most events per session. */
    std::size_t maxEvents = 32;
};

/**
 * Deterministic fault-injection hooks for the chaos suite
 * (tests/test_shim_chaos.cpp).  All fields default to "off"; the hot
 * path pays one branch on `armed` when nothing is injected.  Publish
 * numbers are 1-based counts of write() calls on this region.
 */
struct WriterFaultInjection
{
    /** Any hook armed?  (Kept explicit so write() checks one flag.) */
    bool armed = false;

    /** SIGKILL the calling process mid-publish N: after the payload
     * stores, before the closing even sequence store — exactly the
     * window a crashing daemon leaves a slot odd forever.  Use from a
     * forked child. */
    std::uint64_t dieAtPublish = 0;

    /** Return from publish N without the closing even sequence store
     * (the in-process stand-in for dieAtPublish: the slot stays odd,
     * the writer survives to be inspected). */
    std::uint64_t skipFinalEvenStoreAtPublish = 0;

    /** After publish N completes normally, XOR `flipMask` into the
     * slot word at index `flipWordIndex` (0 = the slot's seq word;
     * fixed payload words and SlotEvent words follow in layout
     * order).  Models an SEU landing between two publishes. */
    std::uint64_t flipAtPublish = 0;
    std::size_t flipWordIndex = 0;
    std::uint64_t flipMask = 1;
};

/**
 * An owned, initialised snapshot segment.
 *
 * With an empty name the table lives in an anonymous private mapping
 * (tests, CI, single-process consumers reading through
 * SnapshotReader's in-process attach).  With a name it is created
 * via shm_open()/ftruncate()/mmap() under /dev/shm, visible to any
 * process that knows the name, and unlinked when the region dies
 * (existing reader mappings stay valid until they unmap).  Creation
 * is exclusive: a pre-existing segment of the same name (stale from
 * a crashed daemon, or a concurrently running one) is never adopted
 * — it is unlinked and replaced by a fresh one, so a segment's
 * slots only ever have this process as their writer.
 */
class SnapshotRegion
{
  public:
    /** Create and initialise a segment; dies on shm/mmap failure. */
    explicit SnapshotRegion(SnapshotRegionConfig config = {},
                            const std::string &shm_name = {});

    /** Unmaps; additionally shm_unlink()s a named segment. */
    ~SnapshotRegion();

    SnapshotRegion(const SnapshotRegion &) = delete;
    SnapshotRegion &operator=(const SnapshotRegion &) = delete;

    /** The shm_open() name; empty for in-process regions. */
    const std::string &shmName() const { return shmName_; }

    std::size_t slots() const { return config_.slots; }
    std::size_t maxEvents() const { return config_.maxEvents; }
    std::size_t sizeBytes() const { return layout_.totalBytes; }

    /** Total publishes across all slots since creation. */
    std::uint64_t publishes() const;

    /**
     * Stamp the header's writer-liveness word (readers compare it
     * against their own steady clock to tell a dead daemon from an
     * idle one).  write() stamps it on every publish; call this
     * directly from an idle writer's keepalive loop.
     */
    void heartbeat(std::uint64_t now_nanos);

    /** Arm (or clear, with a default-constructed value) the chaos
     * suite's deterministic fault hooks.  Not thread-safe against
     * concurrent write() — arm before handing the region to writers. */
    void setFaultInjection(const WriterFaultInjection &faults);

    /**
     * Publish one window's posterior snapshot into `slot` (seqlock
     * write: readers mid-copy retry).  Events beyond maxEvents() are
     * truncated — the publisher refuses such sessions a slot, so this
     * is a belt-and-braces clamp.  Single writer per slot.
     */
    void write(std::size_t slot, std::uint64_t session_id,
               std::uint64_t window_index, std::size_t end_slice,
               const core::WindowExecution &execution,
               const std::vector<sim::EventId> &events,
               const std::vector<core::PosteriorPoint> &posterior,
               std::uint64_t publish_nanos);

    /** Mark `slot` inactive (session closed); readers see NotFound. */
    void invalidate(std::size_t slot);

    /** Base of the mapping — SnapshotReader's in-process attach. */
    const std::byte *base() const { return base_; }

    /** Byte geometry (shared with readers via the header). */
    const RegionLayout &layout() const { return layout_; }

  private:
    SnapshotRegionConfig config_;
    std::string shmName_;
    RegionLayout layout_;
    std::byte *base_ = nullptr;
    /** Inode identity of the created named segment: the destructor
     * only shm_unlink()s the name if it still resolves to this inode
     * (a successor daemon may have replaced it, last-writer-wins). */
    std::uint64_t shmDev_ = 0;
    std::uint64_t shmIno_ = 0;
    bool shmIdentityValid_ = false;

    /** Chaos-suite fault hooks (all off by default). */
    WriterFaultInjection faults_;
    /** write() calls so far (1-based publish numbering for faults_);
     * atomic because different slots may be written concurrently. */
    std::atomic<std::uint64_t> writeCalls_{0};
};

} // namespace shim
} // namespace bperf

#endif // BPERF_SHIM_SNAPSHOT_REGION_H
