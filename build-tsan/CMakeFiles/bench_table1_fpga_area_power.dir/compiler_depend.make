# Empty compiler generated dependencies file for bench_table1_fpga_area_power.
# This may be replaced when dependencies are built.
