/**
 * @file
 * Accelerator execution backend: completed inference windows from the
 * monitoring service scheduled onto a pool of simulated FPGA EP
 * engines.
 *
 * The paper's accelerator runs k EP engines fed by a shared AcMC2
 * sampler pool; the host streams measurements in over CAPI (ppc64,
 * cache snooping) or PCIe DMA (x86, doorbell + payload).  This
 * backend models that deployment under real window traffic: each pool
 * engine is one EP engine (an accel::Accelerator instance with its
 * slice of the sampler pool), every completed window becomes an
 * InferenceJob released at its stream time (endSlice ticks of the
 * slice clock), and jobs queue FIFO on the earliest-available engine.
 * When live sessions outnumber engines the queues back up, and the
 * stamped WindowExecution exposes exactly the queue-wait / transfer /
 * compute split the bench and tests assert on.
 *
 * Numerics are untouched — posteriors still come from the host EP run
 * that produced the window; only the timing is modeled.
 */

#ifndef BPERF_ACCEL_ACCEL_BACKEND_H
#define BPERF_ACCEL_ACCEL_BACKEND_H

#include <mutex>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "core/backend.h"

namespace bperf {
namespace accel {

/** Pool-level configuration of the accelerator backend. */
struct AccelBackendConfig
{
    /** EP engines accepting whole-window jobs concurrently (the
     * paper's k). */
    std::size_t numEngines = 4;

    /**
     * MCMC sampler IPs attached to each engine (the paper's 12
     * samplers for 4 engines = 3 per engine).  Per-engine, so scaling
     * the pool scales the samplers with it — an engine's service time
     * does not depend on how many siblings it has.
     */
    std::size_t mcmcSamplersPerEngine = 3;

    /**
     * Modeled wall-clock length of one time slice: a window completed
     * by slice t is released to the pool at t * slicePeriodSeconds.
     * This is the stream clock that turns per-session window
     * completions into an arrival process the engines contend over.
     */
    double slicePeriodSeconds = 1e-3;

    /** MCMC samples per tilted-moment estimate (Alg. 1). */
    std::size_t samplesPerSite = 400;

    /**
     * Per-engine accelerator parameters (clock, NoC, host interface,
     * sampler pipeline).  epEngines and mcmcSamplers inside are
     * overridden by the pool split above.
     */
    AcceleratorConfig engine;
};

/** Point-in-time pool statistics beyond core::BackendStats. */
struct AccelPoolStats
{
    /** Jobs served by each engine. */
    std::vector<std::uint64_t> engineJobs;
    /** Modeled busy seconds accumulated by each engine. */
    std::vector<double> engineBusySeconds;
    /** Latest modeled completion time across the pool (seconds on the
     * stream clock). */
    double makespanSeconds = 0.0;
};

/**
 * core::InferenceBackend scheduling windows onto k simulated EP
 * engines with per-engine FIFO queues.  Thread-safe; shared by every
 * session of a MonitorService running BackendKind::Accel.
 */
class AccelBackend : public core::InferenceBackend
{
  public:
    explicit AccelBackend(AccelBackendConfig config = {});

    const std::string &name() const override { return name_; }

    /**
     * Schedule one window: released at endSlice * slicePeriodSeconds,
     * placed on the engine that can start it earliest (FIFO per
     * engine), served for the Accelerator-modeled transfer + compute
     * time of the job's shape.
     *
     * The scheduler is online: jobs are placed in the order execute()
     * is called, which under concurrent workers is real thread
     * interleaving, not release order.  Per-session posteriors and
     * service times are unaffected; queue waits (and so the bench's
     * latency percentiles) can jitter run to run under contention,
     * exactly as a live dispatch queue's would.
     */
    core::WindowExecution execute(const core::WindowJob &job) override;

    core::BackendStats stats() const override;

    /**
     * Live pool backlog on the stream clock: how long a window
     * released "now" would wait for the earliest engine.  This is the
     * saturation signal the service's admission controller throttles
     * and sheds on.  "Now" is max(nowSeconds, latest release seen):
     * an idle caller advancing its stream clock sees the backlog
     * drain, instead of the stale last-release snapshot that used to
     * report phantom queue depth across idle gaps.
     */
    core::BackendQueueDepth
    queueDepth(double nowSeconds = 0.0) const override;

    void reset() override;

    AccelPoolStats poolStats() const;

    const AccelBackendConfig &config() const { return config_; }
    const Accelerator &engineModel() const { return engine_; }

    /** Modeled service seconds (transfer + compute, no queueing) of
     * one job shape on one pool engine. */
    double serviceSeconds(const core::WindowJob &job) const;

  private:
    AccelBackendConfig config_;
    Accelerator engine_; // one pool engine (epEngines = 1)
    std::string name_;

    mutable std::mutex mutex_;
    core::BackendStats stats_;
    /** Stream time each engine becomes free. */
    std::vector<double> freeAt_;
    std::vector<std::uint64_t> engineJobs_;
    std::vector<double> engineBusy_;
    /** Latest release time seen ("now" of the queue-depth snapshot). */
    double lastReleaseSeconds_ = 0.0;
};

} // namespace accel
} // namespace bperf

#endif // BPERF_ACCEL_ACCEL_BACKEND_H
