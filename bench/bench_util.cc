#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "baselines/bayesperf_estimator.h"
#include "baselines/counterminer.h"
#include "baselines/linux_scaling.h"
#include "baselines/wmpin.h"
#include "common/logging.h"
#include "common/stats.h"
#include "core/bayesperf.h"
#include "core/derived.h"

namespace bperf {
namespace bench {

using sim::EventId;
using sim::Role;

std::vector<EventId>
evaluationEventSet(const sim::MicroarchDescriptor &uarch)
{
    // 29 programmable events: the metric HPCs plus invariant
    // neighbours, mirroring the 29-counter derived-event example of
    // section 2.
    static const Role roles[] = {
        // Metric events.
        Role::StallTotal, Role::StallMem, Role::StallFrontend,
        Role::StallBranch, Role::BranchMisses, Role::LlcMiss,
        Role::DramBytes, Role::DmaBytes, Role::UopsIssued,
        // Invariant neighbours.
        Role::ActiveCycles, Role::Loads, Role::Stores, Role::Branches,
        Role::OtherOps, Role::BranchTaken, Role::BranchNotTaken,
        Role::L1DAccess, Role::L1DMiss, Role::L1IMiss, Role::L2Access,
        Role::L2Miss, Role::L2Prefetch, Role::LlcAccess,
        Role::DramReads, Role::DramWrites, Role::PcieReadBytes,
        Role::PcieWriteBytes, Role::OffcoreReads, Role::OffcoreWrites};
    std::vector<EventId> out;
    for (Role r : roles)
        out.push_back(uarch.idForRole(r));
    return out;
}

std::vector<EventId>
paddedEventSet(const sim::MicroarchDescriptor &uarch, std::size_t n)
{
    std::vector<EventId> base = evaluationEventSet(uarch);
    // Extend with the remaining programmable events, in catalog order.
    for (EventId e : uarch.programmableEvents())
        if (std::find(base.begin(), base.end(), e) == base.end())
            base.push_back(e);
    bp_assert(n <= base.size(),
              "requested more events than the catalog provides");
    base.resize(n);
    return base;
}

std::vector<EstimatorErrors>
compareEstimators(const sim::MicroarchDescriptor &uarch,
                  const sim::WorkloadProfile &workload,
                  const std::vector<EventId> &monitored,
                  const ComparisonConfig &config)
{
    const sim::GroundTruthGenerator generator(uarch, workload);
    const sim::TruthTrace truth =
        generator.generate(config.numSlices, config.truthSeed);

    // Sampling run through the BayesPerf session (which also gives
    // the raw perf result the baselines consume).
    core::BayesPerfConfig bp_cfg;
    bp_cfg.perf.seed = config.samplingSeed;
    bp_cfg.useOverlapSchedule = config.useOverlapSchedule;
    core::BayesPerfSession session(uarch, bp_cfg);
    session.open(monitored);

    core::OverlapScheduler scheduler(
        uarch, {.reserveOverlapSlot = config.useOverlapSchedule});
    const core::ScheduleResult schedule =
        scheduler.build(session.monitored());
    sim::PerfSessionConfig perf_cfg = bp_cfg.perf;
    sim::PerfSession perf(uarch, perf_cfg);
    const sim::PerfResult sampled =
        perf.run(truth, session.monitored(), schedule.configs);

    // Polled reference run of the same execution.
    sim::PerfSessionConfig poll_cfg;
    poll_cfg.seed = config.pollSeed;
    sim::PerfSession poll(uarch, poll_cfg);
    const sim::PerfResult polled =
        poll.runPolling(truth, session.monitored());

    const auto &metrics = core::standardDerivedMetrics();
    auto ref_series = [&](EventId e) {
        return polled.traceFor(e).estimateSeries();
    };

    auto score = [&](const baselines::Estimator &est) {
        EstimatorErrors errors;
        errors.name = est.name();
        auto est_series = [&](EventId e) { return est.series(sampled, e); };
        errors.derivedErrorPct = ana::derivedErrorPercent(
            uarch, metrics, config.numSlices, est_series, ref_series);
        RunningStats ev;
        for (EventId e : session.monitored())
            ev.push(ana::traceErrorPercent(est.series(sampled, e),
                                           ref_series(e)));
        errors.eventErrorPct = ev.mean();
        return errors;
    };

    std::vector<EstimatorErrors> out;
    out.push_back(score(baselines::LinuxEstimator()));
    out.push_back(score(baselines::CounterMinerEstimator()));
    if (config.includeWmPin)
        out.push_back(score(baselines::WmPinEstimator(uarch)));
    if (config.includeBayesPerf)
        out.push_back(score(baselines::BayesPerfEstimator(uarch)));
    return out;
}

bool
quickMode()
{
    const char *env = std::getenv("BP_QUICK");
    return env && env[0] == '1';
}

std::size_t
defaultSlices()
{
    return quickMode() ? 48 : 96;
}

} // namespace bench
} // namespace bperf
