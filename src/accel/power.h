/**
 * @file
 * Area and power model of the BayesPerf accelerator on the
 * AlphaData ADM-PCIE-9V3 board (Xilinx Virtex UltraScale+ VU3P),
 * reproducing the paper's Table 1.
 *
 * The model is a structural inventory: per-component FPGA resource
 * and power figures for the EP engines, AcMC2 sampler IPs, NoC,
 * controller, DRAM subsystem, and the host interface (Xilinx XDMA on
 * the x86-PCIe build, CAPI PSL on the ppc64 build), summed against
 * the VU3P's capacity.  "Measured" power applies the board-level
 * efficiency factor (regulators + transceivers) on top of the
 * Vivado-style estimate.
 */

#ifndef BPERF_ACCEL_POWER_H
#define BPERF_ACCEL_POWER_H

#include <string>
#include <vector>

namespace bperf {
namespace accel {

/** Which board build. */
enum class BoardConfig { X86Pcie, Ppc64Capi };

/** FPGA resource bundle. */
struct Resources
{
    double lut = 0;
    double ff = 0;
    double dsp = 0;
    double bram = 0; // 36 Kb blocks
    double uram = 0;

    Resources operator+(const Resources &o) const;
    Resources operator*(double k) const;
};

/** One named component of the design. */
struct Component
{
    std::string name;
    std::size_t count = 1;
    Resources each;
    double dynamicWattsEach = 0.0;
};

/** Capacity of the VU3P part. */
Resources vu3pCapacity();

/** Utilization percentages (of VU3P) and power for one build. */
struct AreaPowerReport
{
    std::vector<Component> components;
    Resources total;
    double utilLutPct = 0;
    double utilFfPct = 0;
    double utilDspPct = 0;
    double utilBramPct = 0;
    double utilUramPct = 0;
    double vivadoWatts = 0;   // estimate: static + dynamic
    double measuredWatts = 0; // board measurement model
};

/** Build the component inventory and report for a board config. */
AreaPowerReport buildAreaPowerReport(BoardConfig config);

/** Host CPU TDP used for the paper's efficiency comparison (watts). */
double hostTdpWatts(BoardConfig config);

} // namespace accel
} // namespace bperf

#endif // BPERF_ACCEL_POWER_H
