#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bperf {

void
RunningStats::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::stderrMean() const
{
    if (n_ == 0)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n_));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
median(std::vector<double> xs)
{
    bp_assert(!xs.empty(), "median of empty vector");
    const std::size_t mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
    double hi = xs[mid];
    if (xs.size() % 2 == 1)
        return hi;
    std::nth_element(xs.begin(), xs.begin() + mid - 1, xs.begin() + mid);
    return 0.5 * (hi + xs[mid - 1]);
}

double
percentile(std::vector<double> xs, double p)
{
    bp_assert(!xs.empty(), "percentile of empty vector");
    bp_assert(p >= 0.0 && p <= 100.0, "percentile p out of range");
    std::sort(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
correlation(const std::vector<double> &xs, const std::vector<double> &ys)
{
    bp_assert(xs.size() == ys.size(), "correlation length mismatch");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
meanAbsPercentError(const std::vector<double> &estimate,
                    const std::vector<double> &truth)
{
    bp_assert(estimate.size() == truth.size(), "MAPE length mismatch");
    if (estimate.empty())
        return 0.0;
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == 0.0)
            continue;
        s += std::abs(estimate[i] - truth[i]) / std::abs(truth[i]);
        ++n;
    }
    return n ? 100.0 * s / static_cast<double>(n) : 0.0;
}

double
normalPdf(double x, double m, double s)
{
    bp_assert(s > 0.0, "normalPdf requires positive stddev");
    const double z = (x - m) / s;
    return std::exp(-0.5 * z * z) / (s * std::sqrt(2.0 * M_PI));
}

double
normalLogPdf(double x, double m, double s)
{
    bp_assert(s > 0.0, "normalLogPdf requires positive stddev");
    const double z = (x - m) / s;
    return -0.5 * z * z - std::log(s) - 0.5 * std::log(2.0 * M_PI);
}

double
normalCdf(double x, double m, double s)
{
    bp_assert(s > 0.0, "normalCdf requires positive stddev");
    return 0.5 * std::erfc(-(x - m) / (s * std::sqrt(2.0)));
}

namespace {

/**
 * Thread-safe log-gamma.  glibc's lgamma() writes the global signgam,
 * which races when EP workers of different sessions evaluate
 * Student-t likelihoods concurrently; the arguments here are always
 * positive, so the sign is known and the reentrant form is exact.
 */
double
logGamma(double x)
{
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

} // namespace

double
studentTLogPdf(double x, double nu, double mu, double scale)
{
    bp_assert(nu > 0.0 && scale > 0.0, "studentTLogPdf bad params");
    const double z = (x - mu) / scale;
    const double a = logGamma((nu + 1.0) / 2.0) - logGamma(nu / 2.0);
    const double b = -0.5 * std::log(nu * M_PI) - std::log(scale);
    const double c = -(nu + 1.0) / 2.0 * std::log1p(z * z / nu);
    return a + b + c;
}

double
gumbelOutlierScore(double x, double sample_mean, double sample_std,
                   std::size_t n)
{
    if (sample_std <= 0.0 || n < 2)
        return 0.0;
    // P(max of n standard normals >= |z|) = 1 - Phi(z)^n.
    const double z = std::abs(x - sample_mean) / sample_std;
    const double phi = normalCdf(z, 0.0, 1.0);
    return 1.0 - std::pow(phi, static_cast<double>(n));
}

} // namespace bperf
