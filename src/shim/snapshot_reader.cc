#include "shim/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>

#include "common/logging.h"

namespace bperf {
namespace shim {

const char *
readStatusName(ReadStatus status)
{
    switch (status) {
      case ReadStatus::Ok: return "ok";
      case ReadStatus::NotFound: return "not-found";
      case ReadStatus::Torn: return "torn";
      case ReadStatus::WriterDead: return "writer-dead";
      case ReadStatus::Corrupt: return "corrupt";
    }
    return "unknown";
}

const char *
attachStatusName(AttachStatus status)
{
    switch (status) {
      case AttachStatus::Ok: return "ok";
      case AttachStatus::NoSegment: return "no-segment";
      case AttachStatus::NotReady: return "not-ready";
      case AttachStatus::BadMagic: return "bad-magic";
      case AttachStatus::VersionMismatch: return "version-mismatch";
      case AttachStatus::GeometryCorrupt: return "geometry-corrupt";
      case AttachStatus::TooSmall: return "too-small";
    }
    return "unknown";
}

SnapshotReader::SnapshotReader(const SnapshotRegion &region)
    : base_(region.base()), layout_(region.layout()),
      slots_(region.slots()), maxEvents_(region.maxEvents()),
      mappedBytes_(0)
{
    initState();
}

void
SnapshotReader::initState()
{
    state_ = std::make_unique<State>();
    state_->quarantineSeq =
        std::make_unique<std::atomic<std::uint64_t>[]>(slots_);
    for (std::size_t i = 0; i < slots_; ++i)
        state_->quarantineSeq[i].store(kNotQuarantined,
                                       std::memory_order_relaxed);
}

namespace {

/** A geometry-word bound far beyond any real deployment: rejects
 * absurd values before RegionLayout::compute can overflow, even in
 * the (astronomically unlikely) case a flipped copy still checksums. */
constexpr std::uint64_t kMaxGeometryWord = 1ull << 20;

struct Geometry
{
    std::uint64_t version = 0;
    std::uint64_t slots = 0;
    std::uint64_t maxEvents = 0;
    std::uint64_t stride = 0;

    bool plausible() const
    {
        return slots > 0 && slots <= kMaxGeometryWord &&
               maxEvents > 0 && maxEvents <= kMaxGeometryWord &&
               stride <= kMaxGeometryWord * 64;
    }
};

bool
geometryValidates(const Geometry &g, std::uint64_t stored_sum)
{
    return geometryChecksum(g.version, g.slots, g.maxEvents, g.stride) ==
               stored_sum &&
           g.plausible();
}

AttachResult
attachFail(AttachStatus status, const void *mem, std::size_t mapped)
{
    if (mem != nullptr)
        ::munmap(const_cast<void *>(mem), mapped);
    AttachResult result;
    result.status = status;
    return result;
}

} // namespace

AttachResult
SnapshotReader::attach(const std::string &shm_name)
{
    const int fd = ::shm_open(shm_name.c_str(), O_RDONLY, 0);
    if (fd < 0)
        return attachFail(AttachStatus::NoSegment, nullptr, 0);
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(RegionHeader)) {
        ::close(fd);
        // Creator mid-ftruncate (or the segment was truncated under
        // the header itself); either way there is no header to read.
        return attachFail(AttachStatus::NotReady, nullptr, 0);
    }
    const std::size_t mapped = static_cast<std::size_t>(st.st_size);
    void *mem = ::mmap(nullptr, mapped, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED)
        return attachFail(AttachStatus::NotReady, nullptr, 0);

    const auto *base = static_cast<const std::byte *>(mem);
    const auto *header = reinterpret_cast<const RegionHeader *>(base);
    const std::uint64_t magic =
        header->magic.load(std::memory_order_acquire);
    if (magic == 0) {
        // Exists but not initialised yet; caller retries.
        return attachFail(AttachStatus::NotReady, mem, mapped);
    }
    if (magic != kSnapshotMagic)
        return attachFail(AttachStatus::BadMagic, mem, mapped);

    // Geometry: use whichever checksummed copy validates (primary
    // preferred); a slot address is never computed from a word no
    // checksum vouches for.
    const Geometry primary{
        header->layoutVersion.load(std::memory_order_relaxed),
        header->slotCount.load(std::memory_order_relaxed),
        header->maxEvents.load(std::memory_order_relaxed),
        header->slotStride.load(std::memory_order_relaxed)};
    const Geometry dup{
        header->layoutVersionDup.load(std::memory_order_relaxed),
        header->slotCountDup.load(std::memory_order_relaxed),
        header->maxEventsDup.load(std::memory_order_relaxed),
        header->slotStrideDup.load(std::memory_order_relaxed)};
    Geometry geom;
    if (geometryValidates(
            primary,
            header->geometryChecksum.load(std::memory_order_relaxed)))
        geom = primary;
    else if (geometryValidates(dup, header->geometryChecksumDup.load(
                                        std::memory_order_relaxed)))
        geom = dup;
    else
        return attachFail(AttachStatus::GeometryCorrupt, mem, mapped);

    if (geom.version != kSnapshotLayoutVersion)
        return attachFail(AttachStatus::VersionMismatch, mem, mapped);

    const RegionLayout layout = RegionLayout::compute(
        static_cast<std::size_t>(geom.slots),
        static_cast<std::size_t>(geom.maxEvents));
    if (geom.stride != layout.slotStride) {
        // The writer's stride disagrees with the layout this reader
        // computes from the same slot/event counts: a corrupted (yet
        // checksum-surviving) word or an ABI drift no version bump
        // recorded.  Either way, slot addresses cannot be trusted.
        return attachFail(AttachStatus::GeometryCorrupt, mem, mapped);
    }
    if (layout.totalBytes > mapped) {
        // The file is smaller than its own geometry claims (truncated
        // after creation, or ftruncate raced): touching the missing
        // tail would SIGBUS, so the segment is refused up front.
        return attachFail(AttachStatus::TooSmall, mem, mapped);
    }

    SnapshotReader reader;
    reader.base_ = base;
    reader.layout_ = layout;
    reader.slots_ = static_cast<std::size_t>(geom.slots);
    reader.maxEvents_ = static_cast<std::size_t>(geom.maxEvents);
    reader.mappedBytes_ = mapped;
    reader.initState();
    AttachResult result;
    result.status = AttachStatus::Ok;
    result.reader.emplace(std::move(reader));
    return result;
}

SnapshotReader::~SnapshotReader()
{
    if (mappedBytes_ != 0)
        ::munmap(const_cast<std::byte *>(base_), mappedBytes_);
}

SnapshotReader::SnapshotReader(SnapshotReader &&other) noexcept
    : base_(other.base_), layout_(other.layout_), slots_(other.slots_),
      maxEvents_(other.maxEvents_), mappedBytes_(other.mappedBytes_),
      verifyChecksums_(other.verifyChecksums_),
      retryProbe_(std::move(other.retryProbe_)),
      state_(std::move(other.state_))
{
    other.base_ = nullptr;
    other.mappedBytes_ = 0;
}

SnapshotReader &
SnapshotReader::operator=(SnapshotReader &&other) noexcept
{
    if (this != &other) {
        if (mappedBytes_ != 0)
            ::munmap(const_cast<std::byte *>(base_), mappedBytes_);
        base_ = other.base_;
        layout_ = other.layout_;
        slots_ = other.slots_;
        maxEvents_ = other.maxEvents_;
        mappedBytes_ = other.mappedBytes_;
        verifyChecksums_ = other.verifyChecksums_;
        retryProbe_ = std::move(other.retryProbe_);
        state_ = std::move(other.state_);
        other.base_ = nullptr;
        other.mappedBytes_ = 0;
    }
    return *this;
}

std::uint64_t
SnapshotReader::publishes() const
{
    return reinterpret_cast<const RegionHeader *>(base_)->publishes.load(
        std::memory_order_relaxed);
}

std::uint64_t
SnapshotReader::writerHeartbeatNanos() const
{
    return reinterpret_cast<const RegionHeader *>(base_)
        ->heartbeatNanos.load(std::memory_order_relaxed);
}

std::uint64_t
SnapshotReader::writerIdleNanos() const
{
    const std::uint64_t beat = writerHeartbeatNanos();
    const std::uint64_t now = steadyNowNanos();
    return now > beat ? now - beat : 0;
}

std::optional<ReadStatus>
SnapshotReader::checkQuarantine(std::size_t slot,
                                std::uint64_t seq_now) const
{
    std::atomic<std::uint64_t> &entry = state_->quarantineSeq[slot];
    const std::uint64_t qseq = entry.load(std::memory_order_relaxed);
    if (qseq == kNotQuarantined)
        return std::nullopt;
    if (qseq != seq_now) {
        // The sequence moved since the verdict: the writer (or a
        // successor publish) touched the slot, so it gets a fresh
        // poll.
        entry.store(kNotQuarantined, std::memory_order_relaxed);
        return std::nullopt;
    }
    state_->quarantineSkips.fetch_add(1, std::memory_order_relaxed);
    // The verdict is recoverable from the condemned sequence's
    // parity: a slot is quarantined frozen-odd (writer died
    // mid-publish) or stable-even-with-bad-checksum (corrupt).
    return (qseq & 1) ? ReadStatus::WriterDead : ReadStatus::Corrupt;
}

void
SnapshotReader::quarantine(std::size_t slot, std::uint64_t seq) const
{
    state_->quarantineSeq[slot].store(seq, std::memory_order_relaxed);
}

void
SnapshotReader::countRead(ReadStatus status) const
{
    switch (status) {
      case ReadStatus::Ok:
        state_->okReads.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReadStatus::NotFound:
        state_->notFoundReads.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReadStatus::Torn:
        state_->tornReads.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReadStatus::WriterDead:
        state_->deadReads.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReadStatus::Corrupt:
        state_->corruptReads.fetch_add(1, std::memory_order_relaxed);
        break;
    }
}

ReaderStats
SnapshotReader::stats() const
{
    ReaderStats out;
    out.okReads = state_->okReads.load(std::memory_order_relaxed);
    out.notFoundReads =
        state_->notFoundReads.load(std::memory_order_relaxed);
    out.tornReads = state_->tornReads.load(std::memory_order_relaxed);
    out.deadReads = state_->deadReads.load(std::memory_order_relaxed);
    out.corruptReads =
        state_->corruptReads.load(std::memory_order_relaxed);
    out.quarantineSkips =
        state_->quarantineSkips.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < slots_; ++i)
        if (state_->quarantineSeq[i].load(std::memory_order_relaxed) !=
            kNotQuarantined)
            ++out.quarantinedSlots;
    return out;
}

namespace {

/**
 * Frozen-odd bookkeeping shared by peekSlot/readSlotImpl.  Tracks the
 * *latest* odd value seen and how many consecutive attempts re-saw it
 * — any odd value, first observed at any attempt.  (The PR 7 code
 * only armed on the odd value of attempt 0, so a writer that died on
 * an odd value first seen later — or that advanced to a new odd value
 * and then died — was reported Torn forever, recreating the
 * spin-forever loop WriterDead exists to break.)
 */
struct OddStreak
{
    std::uint64_t value = 0;
    std::size_t length = 0;

    void sawOdd(std::uint64_t seq)
    {
        if (length != 0 && seq == value) {
            ++length;
        } else {
            value = seq;
            length = 1;
        }
    }
    void sawEven() { length = 0; }

    /** Dead if the same odd value held for the majority of the retry
     * budget with no movement since: a live seqlock writer closes a
     * publish within a handful of reader iterations, so a majority-
     * of-budget freeze is a writer that will never finish. */
    bool dead(std::size_t max_retries) const
    {
        return length >= max_retries / 2 + 1;
    }
};

} // namespace

ReadStatus
SnapshotReader::peekSlot(std::size_t slot, std::uint64_t &session_id,
                         std::size_t max_retries) const
{
    const SlotHeader *s = slotAt(base_, layout_, slot);
    {
        const std::uint64_t seq_now =
            s->seq.load(std::memory_order_relaxed);
        if (const auto cached = checkQuarantine(slot, seq_now))
            return *cached;
    }
    OddStreak odd;
    for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
        if (retryProbe_)
            retryProbe_(attempt);
        const std::uint64_t s1 = s->seq.load(std::memory_order_acquire);
        if (s1 & 1) {
            odd.sawOdd(s1);
            continue;
        }
        odd.sawEven();
        if (s1 == 0)
            return ReadStatus::NotFound;
        const std::uint64_t active =
            s->active.load(std::memory_order_relaxed);
        const std::uint64_t id =
            s->sessionId.load(std::memory_order_relaxed);
        if (!verifyChecksums_) {
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s->seq.load(std::memory_order_relaxed) != s1)
                continue;
            if (active == 0)
                return ReadStatus::NotFound;
            session_id = id;
            return ReadStatus::Ok;
        }
        // Fold every payload word into the checksum as it is read —
        // nothing beyond {active, id} is stored, so the probe stays
        // allocation-free while still catching a flipped word.  The
        // words must be chained in the writer's order: closing even
        // sequence, the fixed payload words in declaration order,
        // then the SlotEvent words.
        std::uint64_t acc = chainChecksum(kChecksumSeed, s1);
        acc = chainChecksum(acc, active);
        acc = chainChecksum(acc, id);
        acc = chainChecksum(
            acc, s->windowIndex.load(std::memory_order_relaxed));
        acc = chainChecksum(acc,
                            s->endSlice.load(std::memory_order_relaxed));
        const std::uint64_t count =
            s->eventCount.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, count);
        acc = chainChecksum(
            acc, s->publishNanos.load(std::memory_order_relaxed));
        acc = chainChecksum(acc,
                            s->engineId.load(std::memory_order_relaxed));
        acc = chainChecksum(
            acc, s->queueWaitBits.load(std::memory_order_relaxed));
        acc = chainChecksum(
            acc, s->serviceBits.load(std::memory_order_relaxed));
        acc = chainChecksum(
            acc, s->transferBits.load(std::memory_order_relaxed));
        acc = chainChecksum(
            acc, s->modeledBits.load(std::memory_order_relaxed));
        if (count > maxEvents_) {
            // An event count past the slot's capacity would walk the
            // probe off the end of the segment.  If the sequence is
            // stable the word itself is corrupt; if not, it was torn.
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s->seq.load(std::memory_order_relaxed) != s1)
                continue;
            quarantine(slot, s1);
            return ReadStatus::Corrupt;
        }
        const SlotEvent *entries = s->events();
        for (std::uint64_t i = 0; i < count; ++i) {
            acc = chainChecksum(
                acc, entries[i].event.load(std::memory_order_relaxed));
            acc = chainChecksum(
                acc,
                entries[i].meanBits.load(std::memory_order_relaxed));
            acc = chainChecksum(
                acc,
                entries[i].stddevBits.load(std::memory_order_relaxed));
        }
        const std::uint64_t stored =
            s->checksum.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s->seq.load(std::memory_order_relaxed) != s1)
            continue;
        if (acc != stored) {
            quarantine(slot, s1);
            return ReadStatus::Corrupt;
        }
        if (active == 0)
            return ReadStatus::NotFound;
        session_id = id;
        return ReadStatus::Ok;
    }
    if (odd.dead(max_retries)) {
        quarantine(slot, odd.value);
        return ReadStatus::WriterDead;
    }
    return ReadStatus::Torn;
}

ReadStatus
SnapshotReader::readSlotImpl(std::size_t slot, PosteriorSnapshot &out,
                             std::size_t max_retries) const
{
    bp_assert(slot < slots_,
              "snapshot read of slot " << slot << " of " << slots_);
    const SlotHeader *s = slotAt(base_, layout_, slot);
    {
        const std::uint64_t seq_now =
            s->seq.load(std::memory_order_relaxed);
        if (const auto cached = checkQuarantine(slot, seq_now))
            return *cached;
    }

    // Reused across retry attempts, so a contended read does not
    // reallocate its counters vector per attempt.
    PosteriorSnapshot snap;
    OddStreak odd;
    for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
        if (retryProbe_)
            retryProbe_(attempt);
        const std::uint64_t s1 = s->seq.load(std::memory_order_acquire);
        if (s1 & 1) {
            odd.sawOdd(s1);
            continue; // write in flight
        }
        odd.sawEven();
        if (s1 == 0)
            return ReadStatus::NotFound; // never published

        // Copy the payload under the sequence; relaxed atomic loads
        // cannot tear, and the acquire fence below orders them before
        // the validating re-read of the sequence.  Every raw word is
        // folded into the checksum as it is copied, in the writer's
        // order (closing even sequence, fixed words, event words).
        std::uint64_t acc = chainChecksum(kChecksumSeed, s1);
        const std::uint64_t active =
            s->active.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, active);
        const std::uint64_t session =
            s->sessionId.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, session);
        snap.sessionId = session;
        const std::uint64_t window =
            s->windowIndex.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, window);
        snap.windowIndex = window;
        const std::uint64_t end_slice =
            s->endSlice.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, end_slice);
        snap.endSlice = static_cast<std::size_t>(end_slice);
        const std::uint64_t count =
            s->eventCount.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, count);
        const std::uint64_t publish_nanos =
            s->publishNanos.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, publish_nanos);
        snap.publishNanos = publish_nanos;
        const std::uint64_t engine =
            s->engineId.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, engine);
        snap.execution.engineId = static_cast<std::size_t>(engine);
        snap.execution.endSlice = snap.endSlice;
        const std::uint64_t queue_bits =
            s->queueWaitBits.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, queue_bits);
        snap.execution.queueWaitSeconds = bitsDouble(queue_bits);
        const std::uint64_t service_bits =
            s->serviceBits.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, service_bits);
        snap.execution.serviceSeconds = bitsDouble(service_bits);
        const std::uint64_t transfer_bits =
            s->transferBits.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, transfer_bits);
        snap.execution.transferSeconds = bitsDouble(transfer_bits);
        const std::uint64_t modeled_bits =
            s->modeledBits.load(std::memory_order_relaxed);
        acc = chainChecksum(acc, modeled_bits);
        snap.execution.modeledSeconds = bitsDouble(modeled_bits);

        if (count > maxEvents_) {
            // Copying `count` entries would run off the end of the
            // segment.  Stable sequence -> the count word itself is
            // corrupt; moved sequence -> an ordinary torn attempt.
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s->seq.load(std::memory_order_relaxed) != s1)
                continue;
            quarantine(slot, s1);
            return ReadStatus::Corrupt;
        }
        const SlotEvent *entries = s->events();
        snap.counters.resize(static_cast<std::size_t>(count));
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t ev =
                entries[i].event.load(std::memory_order_relaxed);
            const std::uint64_t mean =
                entries[i].meanBits.load(std::memory_order_relaxed);
            const std::uint64_t stddev =
                entries[i].stddevBits.load(std::memory_order_relaxed);
            acc = chainChecksum(acc, ev);
            acc = chainChecksum(acc, mean);
            acc = chainChecksum(acc, stddev);
            snap.counters[i].event = static_cast<sim::EventId>(ev);
            snap.counters[i].posterior.mean = bitsDouble(mean);
            snap.counters[i].posterior.stddev = bitsDouble(stddev);
        }
        const std::uint64_t stored =
            s->checksum.load(std::memory_order_relaxed);

        std::atomic_thread_fence(std::memory_order_acquire);
        if (s->seq.load(std::memory_order_relaxed) != s1)
            continue; // torn: the writer moved under us

        if (verifyChecksums_ && acc != stored) {
            // Stable even sequence, bad checksum: a payload word was
            // corrupted in place.  Detected and withheld — this is
            // the one path that must never fall through to Ok.
            quarantine(slot, s1);
            return ReadStatus::Corrupt;
        }
        if (active == 0)
            return ReadStatus::NotFound; // slot invalidated
        snap.retries = attempt;
        const std::uint64_t now = steadyNowNanos();
        snap.ageNanos =
            now > snap.publishNanos ? now - snap.publishNanos : 0;
        out = std::move(snap);
        return ReadStatus::Ok;
    }
    if (odd.dead(max_retries)) {
        quarantine(slot, odd.value);
        return ReadStatus::WriterDead;
    }
    return ReadStatus::Torn;
}

ReadStatus
SnapshotReader::readSlot(std::size_t slot, PosteriorSnapshot &out,
                         std::size_t max_retries) const
{
    const ReadStatus status = readSlotImpl(slot, out, max_retries);
    countRead(status);
    return status;
}

ReadStatus
SnapshotReader::read(std::uint64_t session_id, PosteriorSnapshot &out,
                     std::size_t max_retries) const
{
    bool torn = false;
    bool writer_dead = false;
    bool corrupt = false;
    ReadStatus result = ReadStatus::NotFound;
    for (std::size_t slot = 0; slot < slots_; ++slot) {
        // Cheap probe first: only the target slot's full payload
        // (and its counters vector) is copied, so the scan stays a
        // bounded run of word reads per non-matching slot.
        std::uint64_t id = 0;
        const ReadStatus peek = peekSlot(slot, id, max_retries);
        if (peek == ReadStatus::Torn) {
            torn = true;
            continue;
        }
        if (peek == ReadStatus::WriterDead) {
            writer_dead = true;
            continue;
        }
        if (peek == ReadStatus::Corrupt) {
            corrupt = true;
            continue;
        }
        if (peek != ReadStatus::Ok || id != session_id)
            continue;
        // Copy into a local first: `out` must not be clobbered with
        // another session's snapshot if the slot was reallocated
        // between probe and copy (a consumer may keep its last-known
        // snapshot across a NotFound poll).
        PosteriorSnapshot snap;
        const ReadStatus status = readSlotImpl(slot, snap, max_retries);
        if (status == ReadStatus::Torn) {
            torn = true;
            continue;
        }
        if (status == ReadStatus::WriterDead) {
            writer_dead = true;
            continue;
        }
        if (status == ReadStatus::Corrupt) {
            corrupt = true;
            continue;
        }
        // The slot may have been invalidated or handed to another
        // session between probe and copy; keep scanning if so.
        if (status == ReadStatus::Ok && snap.sessionId == session_id) {
            out = std::move(snap);
            countRead(ReadStatus::Ok);
            return ReadStatus::Ok;
        }
    }
    // A degraded slot could have been the session's; report the
    // strongest signal so the consumer reacts correctly — WriterDead
    // over Corrupt (a dead writer never resolves; corruption can be
    // overwritten by the next publish), Corrupt over Torn (the
    // payload is provably bad, not merely contended), Torn over
    // NotFound (the consumer should retry instead of concluding the
    // session is gone).
    if (writer_dead)
        result = ReadStatus::WriterDead;
    else if (corrupt)
        result = ReadStatus::Corrupt;
    else if (torn)
        result = ReadStatus::Torn;
    countRead(result);
    return result;
}

std::vector<std::uint64_t>
SnapshotReader::sessions(ScanHealth *health) const
{
    std::vector<std::uint64_t> ids;
    ScanHealth tally;
    for (std::size_t slot = 0; slot < slots_; ++slot) {
        std::uint64_t id = 0;
        switch (peekSlot(slot, id, kDefaultMaxRetries)) {
          case ReadStatus::Ok:
            ++tally.active;
            ids.push_back(id);
            break;
          case ReadStatus::NotFound:
            ++tally.empty;
            break;
          case ReadStatus::Torn:
            ++tally.torn;
            break;
          case ReadStatus::WriterDead:
            ++tally.writerDead;
            break;
          case ReadStatus::Corrupt:
            ++tally.corrupt;
            break;
        }
    }
    if (health != nullptr)
        *health = tally;
    return ids;
}

} // namespace shim
} // namespace bperf
