/**
 * @file
 * Expectation Propagation for BayesPerf factor graphs (paper Alg. 1).
 *
 * Gaussian factors (invariants, random walks, priors) form the exact
 * Gaussian backbone.  Each Student-t measurement factor gets a 1-D
 * Gaussian site approximation; EP iterates:
 *   cavity  = joint marginal / site              (Alg. 1 line 3)
 *   tilted  = likelihood x cavity, moments via   (Alg. 1 line 4)
 *             quadrature or MCMC
 *   site'   = tilted / cavity, damped            (Alg. 1 lines 5-7)
 *
 * Hot-path structure: sites update sequentially against a joint that
 * is kept current by Sherman-Morrison rank-1 updates of the
 * covariance (O(n^2) per site instead of an O(n^3) re-solve), with a
 * periodic full re-factorization for numerical hygiene
 * (EpConfig::refactorInterval).  JointStrategy::DenseResolve replaces
 * every rank-1 update with a full re-solve on the same schedule; the
 * golden-posterior suite pins the two paths to each other within
 * 1e-6.  Callers that run EP repeatedly (windowed inference) pass an
 * EpWorkspace so steady-state runs reuse all buffers and perform no
 * allocations.
 */

#ifndef BPERF_CORE_EP_H
#define BPERF_CORE_EP_H

#include <cstdint>
#include <vector>

#include "graph/exact.h"
#include "graph/factor_graph.h"

namespace bperf {
namespace core {

/** How tilted moments are computed (Alg. 1 line 4). */
enum class MomentMethod {
    /** Deterministic grid quadrature (fast, reproducible). */
    Quadrature,
    /** Metropolis MCMC, as the paper's accelerator does. */
    Mcmc,
};

/** How the joint is kept in sync with site updates. */
enum class JointStrategy {
    /**
     * Sherman-Morrison rank-1 update per site change, full
     * re-factorization every refactorInterval updates or when a
     * downdate is too ill-conditioned.  The fast path.
     */
    Rank1,
    /**
     * Full dense re-solve after every site change.  Same update
     * schedule as Rank1 — the numerical reference the regression
     * suite compares the fast path against.
     */
    DenseResolve,
};

/** EP configuration. */
struct EpConfig
{
    std::size_t maxSweeps = 8;
    /** Convergence threshold on relative site-mean change. */
    double tolerance = 1e-4;
    /** Damping of site updates in natural parameters. */
    double damping = 0.7;
    MomentMethod method = MomentMethod::Quadrature;
    JointStrategy jointStrategy = JointStrategy::Rank1;
    /**
     * Rank-1 updates applied between full re-factorizations of the
     * joint (numerical hygiene for the Sherman-Morrison chain).
     * 0 re-factorizes only when a downdate is refused.
     */
    std::size_t refactorInterval = 256;
    std::size_t quadraturePoints = 129;
    std::size_t mcmcSamples = 400;
    std::size_t mcmcBurnin = 100;
    std::uint64_t seed = 7;
};

/** Result of EP inference. */
struct EpResult
{
    std::vector<double> mean;   // per variable
    std::vector<double> stddev; // per variable
    std::size_t sweeps = 0;
    bool converged = false;
    /** Count of site updates skipped due to improper cavities. */
    std::size_t skippedUpdates = 0;
    /** Total tilted-moment evaluations (accelerator cost model). */
    std::size_t momentEvaluations = 0;
    /** Rank-1 joint updates applied. */
    std::size_t rank1Updates = 0;
    /** Full joint factorizations (initial solve + refactorizations). */
    std::size_t fullSolves = 0;
    /**
     * Workspace buffer-growth events during this run.  0 means the
     * run reused a warm EpWorkspace without allocating — the
     * steady-state invariant the streaming tests assert.
     */
    std::size_t workspaceAllocations = 0;
};

/**
 * Reusable buffers for ExpectationPropagation::run.  One workspace
 * belongs to one caller (one windowed-inference engine); after a
 * warm-up run on a given graph shape, further runs on graphs of the
 * same (or smaller) size allocate nothing.
 */
class EpWorkspace
{
  public:
    /** Buffer-growth events since construction. */
    std::size_t totalAllocations() const;

    /** EP runs served by this workspace. */
    std::size_t runs() const { return runs_; }

  private:
    friend class ExpectationPropagation;

    struct Site
    {
        graph::VarId var;
        double loc, scale, nu;
        graph::Gaussian approx; // natural units
    };

    std::vector<Site> sites_;
    std::vector<graph::Gaussian> siteByVar_;
    graph::GaussianSolver solver_;
    graph::GaussianJoint joint_;
    graph::SolverScratch scratch_;
    std::size_t grows_ = 0;
    std::size_t runs_ = 0;
};

/**
 * Runs EP over a factor graph.
 */
class ExpectationPropagation
{
  public:
    explicit ExpectationPropagation(EpConfig config = {});

    /** One-shot run with a private workspace. */
    EpResult run(const graph::FactorGraph &graph) const;

    /** Run reusing caller-owned buffers (hot path). */
    EpResult run(const graph::FactorGraph &graph, EpWorkspace &ws) const;

  private:
    EpConfig config_;
};

/**
 * Moments of the 1-D tilted density
 *   p(x) ∝ N(x; cavity_mean, cavity_var) * St(x; loc, scale, nu)
 * computed by grid quadrature in a single fused pass (online
 * max-rescaling replaces the separate log-sum-exp passes, and all
 * x-independent density constants are dropped since they cancel in
 * the normalized moments).  Exposed for tests.
 */
void tiltedMomentsQuadrature(double cavity_mean, double cavity_var,
                             double loc, double scale, double nu,
                             std::size_t points, double &mean_out,
                             double &var_out);

/** Same moments estimated by Metropolis MCMC.  Exposed for tests. */
void tiltedMomentsMcmc(double cavity_mean, double cavity_var, double loc,
                       double scale, double nu, std::size_t samples,
                       std::size_t burnin, std::uint64_t seed,
                       double &mean_out, double &var_out);

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_EP_H
