/**
 * @file
 * Expectation Propagation for BayesPerf factor graphs (paper Alg. 1).
 *
 * Gaussian factors (invariants, random walks, priors) form the exact
 * Gaussian backbone.  Each Student-t measurement factor gets a 1-D
 * Gaussian site approximation; EP iterates:
 *   cavity  = joint marginal / site              (Alg. 1 line 3)
 *   tilted  = likelihood x cavity, moments via   (Alg. 1 line 4)
 *             quadrature or MCMC
 *   site'   = tilted / cavity, damped            (Alg. 1 lines 5-7)
 *
 * Hot-path structure: tilted moments run through the SIMD quadrature
 * kernel (quad_kernel.h, AVX2/NEON with a bit-identical scalar
 * fallback); sites update sequentially against a joint that is kept
 * current by blocked Sherman-Morrison downdates of the covariance
 * (BlockedJointUpdater: O(n^2) per site with the triangle sweep
 * amortized over EpConfig::blockSize sites, instead of an O(n^3)
 * re-solve), with a periodic full re-factorization for numerical
 * hygiene (EpConfig::refactorInterval).  JointStrategy::DenseResolve
 * replaces every incremental update with a full re-solve on the same
 * schedule; the golden-posterior suite pins the two paths to each
 * other within 1e-6.
 *
 * With EpConfig::partitions > 1 the engine switches to the paper's
 * synchronous per-engine schedule: the shared partitioning pass
 * (graph/partition.h) splits sites into contiguous variable-id bands,
 * each sweep updates every band against a frozen copy of the joint
 * (optionally on EpConfig::partitionThreads worker threads), and one
 * full solve merges the sweep — the controller sync.  Because bands
 * own disjoint sites and the merge is a deterministic full solve, the
 * posterior is bit-identical for any thread count.
 *
 * Callers that run EP repeatedly (windowed inference) pass an
 * EpWorkspace (and optionally a persistent EpResult) so steady-state
 * runs reuse all buffers and perform no allocations.
 */

#ifndef BPERF_CORE_EP_H
#define BPERF_CORE_EP_H

#include <cstdint>
#include <thread>
#include <vector>

#include "graph/exact.h"
#include "graph/factor_graph.h"
#include "graph/partition.h"

namespace bperf {
namespace core {

/** How tilted moments are computed (Alg. 1 line 4). */
enum class MomentMethod {
    /** Deterministic grid quadrature (fast, reproducible). */
    Quadrature,
    /** Metropolis MCMC, as the paper's accelerator does. */
    Mcmc,
};

/** How the joint is kept in sync with site updates. */
enum class JointStrategy {
    /**
     * Blocked Sherman-Morrison update per site change, full
     * re-factorization every refactorInterval updates or when a
     * downdate is too ill-conditioned.  The fast path.
     */
    Rank1,
    /**
     * Full dense re-solve after every site change.  Same update
     * schedule as Rank1 — the numerical reference the regression
     * suite compares the fast path against.
     */
    DenseResolve,
};

/** EP configuration. */
struct EpConfig
{
    std::size_t maxSweeps = 8;
    /** Convergence threshold on relative site-mean change. */
    double tolerance = 1e-4;
    /** Damping of site updates in natural parameters. */
    double damping = 0.7;
    MomentMethod method = MomentMethod::Quadrature;
    JointStrategy jointStrategy = JointStrategy::Rank1;
    /**
     * Incremental updates applied between full re-factorizations of
     * the joint (numerical hygiene for the Sherman-Morrison chain).
     * 0 re-factorizes only when a downdate is refused.
     */
    std::size_t refactorInterval = 256;
    std::size_t quadraturePoints = 129;
    std::size_t mcmcSamples = 400;
    std::size_t mcmcBurnin = 100;
    std::uint64_t seed = 7;
    /**
     * Sites per covariance-triangle sweep of the blocked joint
     * updater (1 = classic one-at-a-time rank-1 updates; the blocked
     * algebra at any size matches the sequential chain exactly).
     * Clamped to BlockedJointUpdater::kMaxBlockSize.
     */
    std::size_t blockSize = 8;
    /**
     * Gauss grid evaluation via the runtime-dispatched SIMD kernel
     * (true) or the scalar reference kernel (false).  The two are
     * bit-identical by construction; the switch exists for the parity
     * tests and for -DBPERF_SIMD=OFF builds.
     */
    bool simdQuadrature = true;
    /**
     * Number of site partitions (the paper's per-slice EP engines).
     * 1 = sequential sweeps (the classic schedule); > 1 = synchronous
     * partition-parallel sweeps merged by a full solve.  Only the
     * Rank1 strategy partitions; DenseResolve stays sequential.
     */
    std::size_t partitions = 1;
    /** Worker threads for partition-parallel sweeps (clamped to the
     * partition count; results are identical for any value). */
    std::size_t partitionThreads = 1;
};

/** Result of EP inference. */
struct EpResult
{
    std::vector<double> mean;   // per variable
    std::vector<double> stddev; // per variable
    std::size_t sweeps = 0;
    bool converged = false;
    /** Count of site updates skipped due to improper cavities. */
    std::size_t skippedUpdates = 0;
    /** Total tilted-moment evaluations (accelerator cost model). */
    std::size_t momentEvaluations = 0;
    /** Incremental (blocked rank-1) joint updates applied. */
    std::size_t rank1Updates = 0;
    /** Full joint factorizations (initial solve + refactorizations). */
    std::size_t fullSolves = 0;
    /** Covariance-triangle sweeps of the blocked updater. */
    std::size_t blockFlushes = 0;
    /**
     * Partitioned-mode site updates whose lane-local downdate was
     * refused; the site change is carried by the sweep's merge solve
     * instead (sequential mode re-factorizes immediately).
     */
    std::size_t deferredUpdates = 0;
    /**
     * Workspace buffer-growth events during this run.  0 means the
     * run reused a warm EpWorkspace without allocating — the
     * steady-state invariant the streaming tests assert.
     */
    std::size_t workspaceAllocations = 0;
};

/**
 * Reusable buffers for ExpectationPropagation::run.  One workspace
 * belongs to one caller (one windowed-inference engine); after a
 * warm-up run on a given graph shape, further runs on graphs of the
 * same (or smaller) size allocate nothing.
 */
class EpWorkspace
{
  public:
    /** Buffer-growth events since construction. */
    std::size_t totalAllocations() const;

    /** EP runs served by this workspace. */
    std::size_t runs() const { return runs_; }

    /**
     * Partition plan of the most recent partitioned run (empty/1 when
     * every run was sequential).  The windowed engine forwards its
     * critical path (maxPartitionSites) to the execution backend so
     * simulated accelerator engines split the window the same way.
     */
    const graph::PartitionPlan &partitionPlan() const { return plan_; }

  private:
    friend class ExpectationPropagation;

    struct Site
    {
        graph::VarId var;
        double loc, scale, nu;
        graph::Gaussian approx; // natural units
    };

    /** Per-partition engine state (partition-parallel sweeps). */
    struct Lane
    {
        graph::GaussianJoint joint; // frozen sweep-start copy
        graph::SolverScratch scratch;
        // Per-sweep counters, merged serially after the join.
        std::size_t skipped = 0;
        std::size_t moments = 0;
        std::size_t rank1 = 0;
        std::size_t deferred = 0;
        std::size_t flushes = 0;
        double maxRelChange = 0.0;
    };

    std::vector<Site> sites_;
    std::vector<graph::Gaussian> siteByVar_;
    graph::GaussianSolver solver_;
    graph::GaussianJoint joint_;
    graph::SolverScratch scratch_;
    graph::PartitionPlan plan_;
    std::vector<Lane> lanes_;
    std::vector<std::thread> threads_;
    std::size_t grows_ = 0;
    std::size_t runs_ = 0;
};

/**
 * Runs EP over a factor graph.
 */
class ExpectationPropagation
{
  public:
    explicit ExpectationPropagation(EpConfig config = {});

    /** One-shot run with a private workspace. */
    EpResult run(const graph::FactorGraph &graph) const;

    /** Run reusing caller-owned buffers (hot path). */
    EpResult run(const graph::FactorGraph &graph, EpWorkspace &ws) const;

    /**
     * Run reusing caller-owned buffers *and* a caller-owned result:
     * result.mean/stddev are resized in place, so steady-state runs
     * allocate nothing at all.  All result counters are reset.
     */
    void run(const graph::FactorGraph &graph, EpWorkspace &ws,
             EpResult &result) const;

  private:
    void runSweepsSequential(const graph::FactorGraph &graph,
                             EpWorkspace &ws, EpResult &result) const;
    void runSweepsPartitioned(const graph::FactorGraph &graph,
                              EpWorkspace &ws, EpResult &result) const;

    EpConfig config_;
};

/**
 * Moments of the 1-D tilted density
 *   p(x) ∝ N(x; cavity_mean, cavity_var) * St(x; loc, scale, nu)
 * computed on a uniform grid covering both densities' bulk, by the
 * best quadrature kernel for this CPU (quad_kernel.h).  All
 * x-independent density constants are dropped since they cancel in
 * the normalized moments.  Exposed for tests.
 */
void tiltedMomentsQuadrature(double cavity_mean, double cavity_var,
                             double loc, double scale, double nu,
                             std::size_t points, double &mean_out,
                             double &var_out);

/** Same grid through the scalar reference kernel — bit-identical to
 * tiltedMomentsQuadrature by the kernel parity contract.  Exposed for
 * the SIMD-vs-scalar golden tests. */
void tiltedMomentsQuadratureScalar(double cavity_mean, double cavity_var,
                                   double loc, double scale, double nu,
                                   std::size_t points, double &mean_out,
                                   double &var_out);

/** Same moments estimated by Metropolis MCMC.  Exposed for tests. */
void tiltedMomentsMcmc(double cavity_mean, double cavity_var, double loc,
                       double scale, double nu, std::size_t samples,
                       std::size_t burnin, std::uint64_t seed,
                       double &mean_out, double &var_out);

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_EP_H
