/**
 * @file
 * Window-completion subscriptions: the push half of the service's
 * consumer surface (the paper's shim interface — consumers get
 * corrected posteriors as they are produced instead of polling
 * latest()).
 *
 * Workers publish one WindowUpdate per completed window into the
 * hub; a single dispatcher thread delivers them to the registered
 * callbacks.  Each subscriber owns a bounded queue: a consumer that
 * cannot keep up loses the oldest queued updates (drop-and-count,
 * the same backpressure stance as the ingest ring) and never blocks
 * the workers or other subscribers' queues.
 *
 * Teardown ordering (TSan-clean): the service destroys its worker
 * pool first (no more publishes), then the hub joins the dispatcher
 * (no more callbacks), then sessions die.  Callbacks run on the
 * dispatcher thread and must not call back into blocking service
 * teardown paths.
 */

#ifndef BPERF_SERVICE_SUBSCRIPTION_H
#define BPERF_SERVICE_SUBSCRIPTION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/inference.h"
#include "sim/microarch.h"

namespace bperf {
namespace service {

/** Hub-wide identifier of one subscription (never reused). */
using SubscriptionId = std::uint64_t;

/** One completed window, as delivered to subscribers. */
struct WindowUpdate
{
    std::uint64_t sessionId = 0;
    /** Per-session window counter (0-based, in completion order). */
    std::uint64_t windowIndex = 0;
    /** Stable monotone per-session window id (1-based, gap-free):
     * the engine's window ordinal, assigned when the window ran.
     * Always windowIndex + 1 today, but stamped at the source so
     * consumers can rely on it without knowing harvest internals. */
    std::uint64_t windowId = 0;
    /** Slice whose arrival completed the window. */
    std::size_t endSlice = 0;
    /** Monitored events, aligned with `posterior`. */
    std::vector<sim::EventId> events;
    /** Latest posterior of each event after this window. */
    std::vector<core::PosteriorPoint> posterior;
    /** Modeled backend execution of the window. */
    core::WindowExecution execution;
};

/** Subscriber callback: runs serially on the hub's dispatcher
 * thread, one call per delivered WindowUpdate.  Must not re-enter
 * blocking service teardown paths (close(), the service dtor). */
using WindowCallback = std::function<void(const WindowUpdate &)>;

/** Delivery accounting of one subscriber. */
struct SubscriptionStats
{
    /** Updates published for the subscribed session. */
    std::uint64_t published = 0;
    /** Updates the callback actually received. */
    std::uint64_t delivered = 0;
    /** Updates dropped because the subscriber queue was full. */
    std::uint64_t dropped = 0;
};

/**
 * Fan-out of WindowUpdates to per-session subscribers.
 *
 * Thread contract: publish() may be called concurrently from many
 * workers; subscribe/unsubscribe/stats from any thread.  Callbacks
 * are invoked serially on the hub's dispatcher thread.
 */
class SubscriptionHub
{
  public:
    /** `queue_capacity` bounds each subscriber's update queue. */
    explicit SubscriptionHub(std::size_t queue_capacity = 256);

    /** Stops the dispatcher; queued undelivered updates are dropped
     * (and counted) at destruction. */
    ~SubscriptionHub();

    SubscriptionHub(const SubscriptionHub &) = delete;
    SubscriptionHub &operator=(const SubscriptionHub &) = delete;

    /** Register a callback for one session's window completions. */
    SubscriptionId subscribe(std::uint64_t session_id,
                             WindowCallback callback);

    /** Remove a subscriber; returns false for unknown ids.  Queued
     * updates not yet delivered are dropped (and counted). */
    bool unsubscribe(SubscriptionId id);

    /**
     * Queue one update for every subscriber of its session.  Never
     * blocks: a full subscriber queue evicts its oldest update
     * (slow consumers see the freshest windows, like a poller would).
     */
    void publish(const WindowUpdate &update);

    /** Block until every queued update has been delivered. */
    void flush();

    /** Delivery accounting; nullopt for unknown ids (stats stay
     * readable after unsubscribe until the hub dies). */
    std::optional<SubscriptionStats> stats(SubscriptionId id) const;

    /** Subscribers currently registered for a session. */
    std::size_t subscriberCount(std::uint64_t session_id) const;

  private:
    struct Subscriber
    {
        std::uint64_t sessionId = 0;
        WindowCallback callback;
        std::deque<WindowUpdate> queue;
        SubscriptionStats stats;
        bool active = true;
    };

    void dispatchLoop();

    const std::size_t queueCapacity_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_; // queued work / stop
    std::condition_variable idleCv_; // a queue drained
    std::map<SubscriptionId, std::shared_ptr<Subscriber>> subscribers_;
    SubscriptionId nextId_ = 1;
    std::size_t queuedTotal_ = 0;
    bool dispatching_ = false; // a callback is in flight
    bool stopping_ = false;

    std::thread dispatcher_;
};

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_SUBSCRIPTION_H
