#include "mlsched/rl_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bperf {
namespace ml {

std::size_t
TrainingCurve::iterationsToConverge(double threshold) const
{
    // Last crossing from above: converged means it stays below.
    std::size_t first_stable = loss.size();
    for (std::size_t i = loss.size(); i > 0; --i) {
        if (loss[i - 1] >= threshold)
            break;
        first_stable = i - 1;
    }
    return first_stable;
}

RlScheduler::RlScheduler(EnvConfig env_config, RlConfig rl_config)
    : envConfig_(env_config), rlConfig_(rl_config), env_(env_config),
      policy_({kNumFeatures, 16, 16, 2}, Activation::Relu,
              rl_config.seed * 7 + 1),
      value_({kNumFeatures, 16, 1}, Activation::Relu,
             rl_config.seed * 13 + 2),
      rng_(rl_config.seed)
{
}

TrainingCurve
RlScheduler::train()
{
    TrainingCurve curve;
    curve.loss.reserve(rlConfig_.iterations);
    double smoothed = 1.0;
    bool have_smoothed = false;

    for (std::size_t iter = 0; iter < rlConfig_.iterations; ++iter) {
        double batch_loss = 0.0;
        for (std::size_t b = 0; b < rlConfig_.batchSize; ++b) {
            const Episode ep = env_.sample();
            const std::vector<double> logits = policy_.forward(ep.features);
            const std::vector<double> probs = softmax(logits);
            const double sample_p =
                std::clamp(probs[1], rlConfig_.explorationFloor,
                           1.0 - rlConfig_.explorationFloor);
            const int action = rng_.bernoulli(sample_p) ? 1 : 0;

            const double time = env_.completionTime(ep, action);
            const double iso = env_.isolatedTime(ep);
            const double norm_time = time / iso; // >= 1
            // Reward: negative excess completion time.
            const double reward = -(norm_time - 1.0);
            batch_loss += norm_time;

            // Critic baseline.
            const double v = value_.forward(ep.features)[0];
            double advantage = reward - v;
            advantage = std::clamp(advantage, -rlConfig_.advantageClip,
                                   rlConfig_.advantageClip);

            // Policy gradient: d(-logprob * advantage - beta * H)/d
            // logits, with H the policy entropy (dH/dz_a =
            // -p_a (log p_a + H)).
            double entropy = 0.0;
            for (int a = 0; a < 2; ++a)
                if (probs[a] > 0.0)
                    entropy -= probs[a] * std::log(probs[a]);
            std::vector<double> grad_logits(2);
            for (int a = 0; a < 2; ++a) {
                const double onehot = a == action ? 1.0 : 0.0;
                grad_logits[a] = (probs[a] - onehot) * advantage;
                if (probs[a] > 0.0)
                    grad_logits[a] += rlConfig_.entropyBonus * probs[a] *
                                      (std::log(probs[a]) + entropy);
            }
            if (iter >= rlConfig_.criticWarmupIterations)
                policy_.accumulateGradient(ep.features, grad_logits);

            // Critic regression toward the reward.
            value_.accumulateGradient(ep.features, {2.0 * (v - reward)});
        }
        if (iter >= rlConfig_.criticWarmupIterations)
            policy_.adamStep(rlConfig_.policyLearningRate);
        value_.adamStep(rlConfig_.valueLearningRate);

        batch_loss /= static_cast<double>(rlConfig_.batchSize);
        // Map the normalized makespan (1.0..~2.8) onto the paper's
        // loss axis by smoothing; convergence compares like with like.
        if (!have_smoothed) {
            smoothed = batch_loss;
            have_smoothed = true;
        } else {
            smoothed += rlConfig_.lossSmoothing * (batch_loss - smoothed);
        }
        curve.loss.push_back(smoothed);
    }
    return curve;
}

int
RlScheduler::chooseNic(const std::vector<double> &features) const
{
    const std::vector<double> logits = policy_.forward(features);
    return logits[1] > logits[0] ? 1 : 0;
}

double
RlScheduler::evaluate(std::size_t episodes)
{
    bp_assert(episodes > 0, "need at least one evaluation episode");
    double total = 0.0;
    for (std::size_t i = 0; i < episodes; ++i) {
        const Episode ep = env_.sample();
        const int nic = chooseNic(ep.features);
        total += env_.completionTime(ep, nic) / env_.isolatedTime(ep);
    }
    return total / static_cast<double>(episodes);
}

} // namespace ml
} // namespace bperf
