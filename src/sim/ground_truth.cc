#include "sim/ground_truth.h"

#include <cmath>

#include "common/logging.h"
#include "sim/model_constants.h"

namespace bperf {
namespace sim {

TruthTrace::TruthTrace(std::size_t num_slices, std::size_t subticks_per_slice,
                       std::size_t num_events)
    : numSlices_(num_slices), subticks_(subticks_per_slice),
      numEvents_(num_events),
      data_(num_slices * subticks_per_slice * num_events, 0.0)
{
}

std::size_t
TruthTrace::index(std::size_t slice, std::size_t sub, EventId event) const
{
    bp_assert(slice < numSlices_ && sub < subticks_ && event < numEvents_,
              "truth trace index out of range");
    return (slice * subticks_ + sub) * numEvents_ + event;
}

double
TruthTrace::value(std::size_t slice, std::size_t sub, EventId event) const
{
    return data_[index(slice, sub, event)];
}

double &
TruthTrace::value(std::size_t slice, std::size_t sub, EventId event)
{
    return data_[index(slice, sub, event)];
}

double
TruthTrace::sliceTotal(std::size_t slice, EventId event) const
{
    return window(slice, 0, subticks_, event);
}

double
TruthTrace::window(std::size_t slice, std::size_t first, std::size_t count,
                   EventId event) const
{
    bp_assert(first + count <= subticks_, "window out of range");
    double s = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        s += value(slice, first + i, event);
    return s;
}

std::vector<double>
TruthTrace::sliceSeries(EventId event) const
{
    std::vector<double> out(numSlices_);
    for (std::size_t t = 0; t < numSlices_; ++t)
        out[t] = sliceTotal(t, event);
    return out;
}

namespace {

/**
 * Log-scale Ornstein-Uhlenbeck modulator.  exp(x) multiplies a driver
 * rate; x reverts to 0 with correlation time tau and stationary
 * standard deviation sigma.
 */
class OuProcess
{
  public:
    OuProcess(double sigma, double tau_steps, Rng &rng)
        : sigma_(sigma), tau_(std::max(tau_steps, 1e-6))
    {
        // Start at stationarity.
        x_ = sigma_ > 0.0 ? rng.normal(0.0, sigma_) : 0.0;
    }

    double
    step(Rng &rng)
    {
        if (sigma_ <= 0.0)
            return 1.0;
        const double a = std::exp(-1.0 / tau_);
        const double innov = sigma_ * std::sqrt(1.0 - a * a);
        x_ = a * x_ + rng.normal(0.0, innov);
        // Mean-one multiplier for a log-normal modulation.
        return std::exp(x_ - 0.5 * sigma_ * sigma_);
    }

  private:
    double sigma_;
    double tau_;
    double x_ = 0.0;
};

/** Clamp helper keeping fractions physical. */
double
clampFrac(double x, double lo = 0.0, double hi = 1.0)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

/** Linear blend of every numeric phase parameter. */
PhaseParams
blendParams(const PhaseParams &a, const PhaseParams &b, double w)
{
    auto mix = [w](double x, double y) { return x + w * (y - x); };
    PhaseParams out = b;
    out.instPerSlice = mix(a.instPerSlice, b.instPerSlice);
    out.fracLoad = mix(a.fracLoad, b.fracLoad);
    out.fracStore = mix(a.fracStore, b.fracStore);
    out.fracBranch = mix(a.fracBranch, b.fracBranch);
    out.brTakenFrac = mix(a.brTakenFrac, b.brTakenFrac);
    out.brMispRate = mix(a.brMispRate, b.brMispRate);
    out.l1dMissRate = mix(a.l1dMissRate, b.l1dMissRate);
    out.l1iMissRate = mix(a.l1iMissRate, b.l1iMissRate);
    out.l2MissRate = mix(a.l2MissRate, b.l2MissRate);
    out.llcMissRate = mix(a.llcMissRate, b.llcMissRate);
    out.l2PrefetchRatio = mix(a.l2PrefetchRatio, b.l2PrefetchRatio);
    out.dtlbMissRate = mix(a.dtlbMissRate, b.dtlbMissRate);
    out.itlbMissRate = mix(a.itlbMissRate, b.itlbMissRate);
    out.dmaBytesPerSlice = mix(a.dmaBytesPerSlice, b.dmaBytesPerSlice);
    out.pcieReadFrac = mix(a.pcieReadFrac, b.pcieReadFrac);
    out.dramReadFrac = mix(a.dramReadFrac, b.dramReadFrac);
    out.offcoreReadFrac = mix(a.offcoreReadFrac, b.offcoreReadFrac);
    out.fpFrac = mix(a.fpFrac, b.fpFrac);
    out.simdFrac = mix(a.simdFrac, b.simdFrac);
    out.cpiBase = mix(a.cpiBase, b.cpiBase);
    out.stallFePerInst = mix(a.stallFePerInst, b.stallFePerInst);
    out.pageFaultsPerSlice =
        mix(a.pageFaultsPerSlice, b.pageFaultsPerSlice);
    out.ctxSwitchesPerSlice =
        mix(a.ctxSwitchesPerSlice, b.ctxSwitchesPerSlice);
    out.burstiness = mix(a.burstiness, b.burstiness);
    out.fastBurstiness = mix(a.fastBurstiness, b.fastBurstiness);
    return out;
}

/**
 * Phase parameters at a slice, with cosine ramps of `ramp_slices`
 * blending each phase into the next at its start (real job stages
 * spin up and drain rather than stepping).
 */
PhaseParams
phaseAt(const WorkloadProfile &profile, std::size_t slice,
        double ramp_slices)
{
    bp_assert(!profile.phases.empty(), "workload has no phases");
    std::size_t total = 0;
    for (const auto &p : profile.phases)
        total += p.durationSlices;
    bp_assert(total > 0, "workload has zero total duration");
    std::size_t s = profile.loop ? slice % total : std::min(slice, total - 1);

    std::size_t idx = profile.phases.size() - 1;
    std::size_t into = 0;
    for (std::size_t i = 0; i < profile.phases.size(); ++i) {
        if (s < profile.phases[i].durationSlices) {
            idx = i;
            into = s;
            break;
        }
        s -= profile.phases[i].durationSlices;
    }

    const PhaseParams &cur = profile.phases[idx].params;
    if (ramp_slices <= 0.0 || static_cast<double>(into) >= ramp_slices)
        return cur;
    // Ramp from the previous phase (wrapping when looping).
    std::size_t prev_idx;
    if (idx > 0) {
        prev_idx = idx - 1;
    } else if (profile.loop) {
        prev_idx = profile.phases.size() - 1;
    } else {
        return cur;
    }
    const double w =
        0.5 * (1.0 - std::cos(M_PI * (static_cast<double>(into) + 0.5) /
                              ramp_slices));
    return blendParams(profile.phases[prev_idx].params, cur, w);
}

} // namespace

GroundTruthGenerator::GroundTruthGenerator(const MicroarchDescriptor &uarch,
                                           const WorkloadProfile &profile,
                                           GeneratorConfig config)
    : uarch_(uarch), profile_(profile), config_(config)
{
    bp_assert(!profile_.phases.empty(), "workload profile has no phases");
    bp_assert(config_.subticksPerSlice >= 2, "need >= 2 subticks per slice");
}

TruthTrace
GroundTruthGenerator::generate(std::size_t num_slices,
                               std::uint64_t seed) const
{
    Rng rng(seed);
    const std::size_t subs = config_.subticksPerSlice;
    TruthTrace trace(num_slices, subs, uarch_.events().size());

    // Per-run jitter on all phase parameters (run-to-run drift).
    const double run_scale =
        std::exp(rng.normal(0.0, config_.phaseJitter));

    // Reference phase to size the OU processes.
    const PhaseParams &p0 = profile_.phases.front().params;
    const double tau_subs = p0.ouTauSlices * static_cast<double>(subs);

    OuProcess ou_inst(p0.burstiness, tau_subs, rng);
    OuProcess ou_mix(0.4 * p0.burstiness, tau_subs, rng);
    OuProcess ou_miss(0.4 * p0.burstiness, tau_subs, rng);
    OuProcess ou_dma(1.4 * p0.burstiness, 0.6 * tau_subs, rng);
    OuProcess ou_fe(0.5 * p0.burstiness, tau_subs, rng);
    OuProcess ou_fp(0.5 * p0.burstiness, tau_subs, rng);
    // Fast components: sub-slice bursts that make short counting
    // windows unrepresentative of the slice.
    const double fast_tau = p0.fastTauSubticks;
    OuProcess fast_inst(p0.fastBurstiness, fast_tau, rng);
    OuProcess fast_miss(0.5 * p0.fastBurstiness, fast_tau, rng);
    OuProcess fast_dma(1.2 * p0.fastBurstiness, fast_tau, rng);
    OuProcess fast_fe(0.8 * p0.fastBurstiness, fast_tau, rng);
    // Slack modulators for the soft invariants (slowly varying).
    OuProcess ou_uop(0.05, 4.0 * tau_subs, rng);
    OuProcess ou_stall_br(0.08, 4.0 * tau_subs, rng);
    OuProcess ou_stall_mem(0.10, 4.0 * tau_subs, rng);
    OuProcess ou_ref(0.02, 8.0 * tau_subs, rng);

    auto id = [&](Role r) { return uarch_.idForRole(r); };
    const double line = uarch_.cacheLineBytes();

    for (std::size_t t = 0; t < num_slices; ++t) {
        const PhaseParams p = phaseAt(profile_, t, config_.rampSlices);

        for (std::size_t s = 0; s < subs; ++s) {
            const double m_inst = ou_inst.step(rng) * fast_inst.step(rng);
            const double m_mix = ou_mix.step(rng);
            const double m_miss = ou_miss.step(rng) * fast_miss.step(rng);
            const double m_dma = ou_dma.step(rng) * fast_dma.step(rng);
            const double m_fe = ou_fe.step(rng) * fast_fe.step(rng);
            const double m_fp = ou_fp.step(rng);
            const double m_uop = ou_uop.step(rng);
            const double m_sbr = ou_stall_br.step(rng);
            const double m_smem = ou_stall_mem.step(rng);
            const double m_ref = ou_ref.step(rng);

            const double inst =
                p.instPerSlice / static_cast<double>(subs) * m_inst *
                run_scale;

            double frac_load = clampFrac(p.fracLoad * m_mix, 0.0, 0.45);
            double frac_store = clampFrac(p.fracStore * (2.0 - m_mix),
                                          0.0, 0.30);
            double frac_branch = clampFrac(p.fracBranch, 0.0, 0.35);
            const double loads = inst * frac_load;
            const double stores = inst * frac_store;
            const double branches = inst * frac_branch;
            const double other = inst - loads - stores - branches;

            const double br_taken = branches * clampFrac(p.brTakenFrac);
            const double br_not_taken = branches - br_taken;
            const double br_miss =
                branches * clampFrac(p.brMispRate * m_miss, 0.0, 0.5);

            const double l1d_access = loads + stores;
            const double l1d_miss =
                l1d_access * clampFrac(p.l1dMissRate * m_miss, 0.0, 0.9);
            const double l1i_miss =
                inst * clampFrac(p.l1iMissRate * m_miss, 0.0, 0.5);
            const double l2_pref = l1d_miss * p.l2PrefetchRatio;
            const double l2_access = l1d_miss + l1i_miss + l2_pref;
            const double l2_miss =
                l2_access *
                clampFrac(p.l2MissRate * std::sqrt(m_miss), 0.0, 0.95);
            const double llc_access = l2_miss;
            const double llc_miss =
                llc_access *
                clampFrac(p.llcMissRate * std::sqrt(m_miss), 0.0, 0.95);

            const double dtlb_miss = l1d_access * p.dtlbMissRate;
            const double itlb_miss = inst * p.itlbMissRate;

            const double dma_bytes =
                p.dmaBytesPerSlice / static_cast<double>(subs) * m_dma;
            const double pcie_read = dma_bytes * clampFrac(p.pcieReadFrac);
            const double pcie_write = dma_bytes - pcie_read;

            const double dram_bytes = line * llc_miss + dma_bytes;
            const double dram_reads =
                dram_bytes * clampFrac(p.dramReadFrac) / kDramGranuleBytes;
            const double dram_writes =
                dram_bytes * (1.0 - clampFrac(p.dramReadFrac)) /
                kDramGranuleBytes;

            const double offcore_reads =
                llc_miss * clampFrac(p.offcoreReadFrac);
            const double offcore_writes = llc_miss - offcore_reads;

            const double fp_ops = inst * clampFrac(p.fpFrac * m_fp, 0.0, 0.6);
            const double simd_ops =
                inst * clampFrac(p.simdFrac * m_fp, 0.0, 0.4);

            const double uops_issued = kUopPerInst * inst * m_uop;
            const double uops_retired = std::max(
                uops_issued - kUopFlushPerBrMiss * br_miss, 0.2 * inst);

            const double stall_br = kBrMissPenalty * br_miss * m_sbr;
            const double stall_mem =
                (kL2MissPenalty * l2_miss + kLlcMissPenalty * llc_miss) *
                m_smem;
            const double stall_fe = p.stallFePerInst * inst * m_fe;
            const double stall_total = stall_br + stall_mem + stall_fe;
            const double active = p.cpiBase * inst;
            const double cycles = active + stall_total;
            const double ref_cycles = cycles / kRefClockRatio * m_ref;

            const double faults =
                p.pageFaultsPerSlice / static_cast<double>(subs);
            const double ctx =
                p.ctxSwitchesPerSlice / static_cast<double>(subs);

            trace.value(t, s, id(Role::Cycles)) = cycles;
            trace.value(t, s, id(Role::Instructions)) = inst;
            trace.value(t, s, id(Role::RefCycles)) = ref_cycles;
            trace.value(t, s, id(Role::ActiveCycles)) = active;
            trace.value(t, s, id(Role::StallTotal)) = stall_total;
            trace.value(t, s, id(Role::StallMem)) = stall_mem;
            trace.value(t, s, id(Role::StallFrontend)) = stall_fe;
            trace.value(t, s, id(Role::StallBranch)) = stall_br;
            trace.value(t, s, id(Role::UopsIssued)) = uops_issued;
            trace.value(t, s, id(Role::UopsRetired)) = uops_retired;
            trace.value(t, s, id(Role::Loads)) = loads;
            trace.value(t, s, id(Role::Stores)) = stores;
            trace.value(t, s, id(Role::OtherOps)) = other;
            trace.value(t, s, id(Role::Branches)) = branches;
            trace.value(t, s, id(Role::BranchTaken)) = br_taken;
            trace.value(t, s, id(Role::BranchNotTaken)) = br_not_taken;
            trace.value(t, s, id(Role::BranchMisses)) = br_miss;
            trace.value(t, s, id(Role::FpOps)) = fp_ops;
            trace.value(t, s, id(Role::SimdOps)) = simd_ops;
            trace.value(t, s, id(Role::L1DAccess)) = l1d_access;
            trace.value(t, s, id(Role::L1DMiss)) = l1d_miss;
            trace.value(t, s, id(Role::L1IMiss)) = l1i_miss;
            trace.value(t, s, id(Role::L2Access)) = l2_access;
            trace.value(t, s, id(Role::L2Miss)) = l2_miss;
            trace.value(t, s, id(Role::L2Prefetch)) = l2_pref;
            trace.value(t, s, id(Role::LlcAccess)) = llc_access;
            trace.value(t, s, id(Role::LlcMiss)) = llc_miss;
            trace.value(t, s, id(Role::DtlbMiss)) = dtlb_miss;
            trace.value(t, s, id(Role::ItlbMiss)) = itlb_miss;
            trace.value(t, s, id(Role::OffcoreReads)) = offcore_reads;
            trace.value(t, s, id(Role::OffcoreWrites)) = offcore_writes;
            trace.value(t, s, id(Role::DramBytes)) = dram_bytes;
            trace.value(t, s, id(Role::DramReads)) = dram_reads;
            trace.value(t, s, id(Role::DramWrites)) = dram_writes;
            trace.value(t, s, id(Role::DmaBytes)) = dma_bytes;
            trace.value(t, s, id(Role::PcieReadBytes)) = pcie_read;
            trace.value(t, s, id(Role::PcieWriteBytes)) = pcie_write;
            trace.value(t, s, id(Role::PageFaults)) = faults;
            trace.value(t, s, id(Role::ContextSwitches)) = ctx;
        }
    }
    return trace;
}

} // namespace sim
} // namespace bperf
