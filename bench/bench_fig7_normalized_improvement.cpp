/**
 * @file
 * Reproduces Fig. 7: normalized improvement in counter error for
 * BayesPerf over the Linux and CounterMiner baselines, per HiBench
 * workload and architecture.
 *
 * Paper shape: improvements mostly between 2x and 7x, averaging
 * ~4.9x/5.3x vs Linux and ~3.6x/3.7x vs CounterMiner.
 */

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    const auto x86 = sim::makeX86Skylake();
    const auto ppc = sim::makePower9();

    TablePrinter table({"workload", "vs Linux(x86)", "vs Linux(ppc64)",
                        "vs CM(x86)", "vs CM(ppc64)"});
    RunningStats vs_linux_x86, vs_linux_ppc, vs_cm_x86, vs_cm_ppc;

    std::uint64_t seed = 15000;
    for (const auto &name : wl::hibenchNames()) {
        const auto workload = wl::makeHibench(name);
        bench::ComparisonConfig cfg;
        cfg.numSlices = bench::defaultSlices();
        cfg.truthSeed = ++seed;
        cfg.samplingSeed = seed * 13;
        cfg.pollSeed = seed * 57;

        const auto ex = bench::compareEstimators(
            x86, workload, bench::evaluationEventSet(x86), cfg);
        const auto ep = bench::compareEstimators(
            ppc, workload, bench::evaluationEventSet(ppc), cfg);

        const double lx = ana::normalizedImprovement(
            ex[0].derivedErrorPct, ex[2].derivedErrorPct);
        const double lp = ana::normalizedImprovement(
            ep[0].derivedErrorPct, ep[2].derivedErrorPct);
        const double cx = ana::normalizedImprovement(
            ex[1].derivedErrorPct, ex[2].derivedErrorPct);
        const double cp = ana::normalizedImprovement(
            ep[1].derivedErrorPct, ep[2].derivedErrorPct);
        table.addRow(name, {lx, lp, cx, cp}, 2);
        vs_linux_x86.push(lx);
        vs_linux_ppc.push(lp);
        vs_cm_x86.push(cx);
        vs_cm_ppc.push(cp);
    }

    std::cout << "# Fig. 7: normalized improvement in counter error "
                 "(BayesPerf / baseline)\n";
    table.print(std::cout);
    std::cout << "\n# averages: vs Linux "
              << formatDouble(vs_linux_x86.mean(), 2) << "x (x86), "
              << formatDouble(vs_linux_ppc.mean(), 2) << "x (ppc64); vs CM "
              << formatDouble(vs_cm_x86.mean(), 2) << "x (x86), "
              << formatDouble(vs_cm_ppc.mean(), 2) << "x (ppc64)\n";
    return 0;
}
