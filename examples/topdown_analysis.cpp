/**
 * @file
 * Example: top-down microarchitecture analysis under heavy counter
 * multiplexing.
 *
 * Derived metrics like Backend_Bound combine many HPCs (the paper's
 * section 2 example needs 29 distinct counters); multiplexing makes
 * their naive values unreliable.  This example monitors the full
 * evaluation event set on a memory-bound SQL workload and prints the
 * top-down breakdown three ways: ground truth, Linux scaling, and
 * BayesPerf posteriors with uncertainty.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "core/bayesperf.h"
#include "core/derived.h"
#include "workloads/hibench.h"

using namespace bperf;

int
main()
{
    const auto uarch = sim::makeX86Skylake();
    const auto workload = wl::makeHibench("Join");
    const sim::GroundTruthGenerator generator(uarch, workload);
    const std::size_t slices = 96;
    const auto truth = generator.generate(slices, 7);

    // Monitor every event the ten derived metrics and their
    // invariants need.
    std::vector<sim::EventId> events;
    for (const auto &def : uarch.events())
        if (!def.fixed)
            events.push_back(def.id);

    core::BayesPerfSession session(uarch);
    session.open(events);
    core::BayesPerfRun run = session.measure(truth);
    std::printf("multiplexing %zu events over %zu counters "
                "(%zu configurations)\n\n",
                events.size(), uarch.numProgrammableCounters(),
                run.schedule.configs.size());

    TablePrinter table({"metric", "truth", "Linux", "BayesPerf",
                        "posterior +/-"});
    for (const auto &metric : core::standardDerivedMetrics()) {
        auto value_from = [&](auto series_fn) {
            RunningStats s;
            const auto v = core::derivedSeries(metric, uarch, slices,
                                               series_fn);
            for (double x : v)
                s.push(x);
            return s.mean();
        };
        const double v_truth =
            value_from([&](sim::EventId e) { return truth.sliceSeries(e); });
        const double v_linux = value_from([&](sim::EventId e) {
            return run.raw.traceFor(e).estimateSeries();
        });
        const double v_bp =
            value_from([&](sim::EventId e) { return run.estimate(e); });

        // First-order uncertainty of the metric from the posterior.
        RunningStats sd;
        for (std::size_t t = 0; t < slices; ++t) {
            double rel2 = 0.0;
            for (const auto &[role, c] : metric.numerator) {
                const sim::EventId e = uarch.idForRole(role);
                const auto m = run.estimate(e);
                const auto s = run.uncertainty(e);
                if (m[t] != 0.0)
                    rel2 += (s[t] / m[t]) * (s[t] / m[t]);
            }
            sd.push(std::sqrt(rel2));
        }

        table.addRow({metric.name, formatDouble(v_truth, 4),
                      formatDouble(v_linux, 4), formatDouble(v_bp, 4),
                      formatDouble(100.0 * sd.mean(), 1) + "%"});
    }
    table.print(std::cout);
    return 0;
}
