/**
 * @file
 * Reproduces the section 6.3 decision-quality results: average
 * shuffle completion improvement of the ML-based schedulers over a
 * static placement, and the further improvement from feeding them
 * BayesPerf-corrected counters.
 *
 * Paper: ML schedulers improve shuffle time by 15.1±2.2% (CF) and
 * 22.3±7.9% (RL); adding BayesPerf gives a further 8.7±0.9% and
 * 19±3.4% reduction respectively.
 */

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "mlsched/collab_filter.h"
#include "mlsched/rl_scheduler.h"

using namespace bperf;

namespace {

/** Static baseline: always the local NIC of the data's NUMA node. */
double
staticPolicy(ml::ShuffleEnv &env, std::size_t episodes)
{
    double total = 0.0;
    for (std::size_t i = 0; i < episodes; ++i) {
        const ml::Episode ep = env.sample();
        total += env.completionTime(ep, ep.numaNode) /
                 env.isolatedTime(ep);
    }
    return total / static_cast<double>(episodes);
}

} // namespace

int
main()
{
    const std::size_t eval_episodes = bench::quickMode() ? 400 : 1500;
    const std::size_t train_iters = bench::quickMode() ? 2500 : 7000;
    const double linux_noise = 38.0;
    const double bp_noise = 10.0;

    RunningStats cf_gain, rl_gain, cf_bp_gain, rl_bp_gain;

    for (std::uint64_t trial = 0; trial < (bench::quickMode() ? 3u : 5u);
         ++trial) {
        const std::uint64_t seed = 400 + trial * 17;

        ml::EnvConfig env_static;
        env_static.noise.errorPct = linux_noise;
        env_static.seed = seed;
        ml::ShuffleEnv env(env_static);
        const double base = staticPolicy(env, eval_episodes);

        auto run_cf = [&](double noise) {
            ml::EnvConfig cfg;
            cfg.noise.errorPct = noise;
            cfg.seed = seed + 1;
            ml::CfScheduler scheduler(cfg, {});
            scheduler.train(8000);
            return scheduler.evaluate(eval_episodes);
        };
        auto run_rl = [&](double noise) {
            ml::EnvConfig cfg;
            cfg.noise.errorPct = noise;
            cfg.seed = seed + 2;
            ml::RlConfig rl;
            rl.iterations = train_iters;
            rl.seed = seed + 3;
            ml::RlScheduler scheduler(cfg, rl);
            scheduler.train();
            return scheduler.evaluate(eval_episodes);
        };

        const double cf_linux = run_cf(linux_noise);
        const double cf_bp = run_cf(bp_noise);
        const double rl_linux = run_rl(linux_noise);
        const double rl_bp = run_rl(bp_noise);

        cf_gain.push(100.0 * (base - cf_linux) / base);
        rl_gain.push(100.0 * (base - rl_linux) / base);
        cf_bp_gain.push(100.0 * (cf_linux - cf_bp) / cf_linux);
        rl_bp_gain.push(100.0 * (rl_linux - rl_bp) / rl_linux);
    }

    std::cout << "# Section 6.3: decision quality of the PCIe-aware "
                 "schedulers\n";
    TablePrinter t({"comparison", "improvement %", "stddev"});
    t.addRow("CF scheduler vs static", {cf_gain.mean(), cf_gain.stddev()},
             1);
    t.addRow("RL scheduler vs static", {rl_gain.mean(), rl_gain.stddev()},
             1);
    t.addRow("CF + BayesPerf vs CF",
             {cf_bp_gain.mean(), cf_bp_gain.stddev()}, 1);
    t.addRow("RL + BayesPerf vs RL",
             {rl_bp_gain.mean(), rl_bp_gain.stddev()}, 1);
    t.print(std::cout);
    std::cout << "# paper: 15.1±2.2 / 22.3±7.9 (vs static), further "
                 "8.7±0.9 / 19±3.4 with BayesPerf\n";
    return 0;
}
