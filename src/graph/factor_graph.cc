#include "graph/factor_graph.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace bperf {
namespace graph {

VarId
FactorGraph::addVariable(std::string name, double scale_hint)
{
    bp_assert(scale_hint > 0.0, "scale hint must be positive");
    Variable v;
    v.id = static_cast<VarId>(variables_.size());
    v.name = std::move(name);
    v.scaleHint = scale_hint;
    variables_.push_back(std::move(v));
    varFactors_.emplace_back();
    return variables_.back().id;
}

FactorId
FactorGraph::addLinearGaussian(std::string name,
                               std::vector<std::pair<VarId, double>> terms,
                               double offset, double noise_std)
{
    bp_assert(!terms.empty(), "linear factor needs terms");
    bp_assert(noise_std > 0.0, "linear factor needs positive noise");
    Factor f;
    f.id = static_cast<FactorId>(factors_.size());
    f.kind = FactorKind::LinearGaussian;
    f.name = std::move(name);
    for (const auto &[v, c] : terms) {
        bp_assert(v < variables_.size(), "factor references missing var");
        f.vars.push_back(v);
        f.coeffs.push_back(c);
    }
    f.offset = offset;
    f.noiseStd = noise_std;
    factors_.push_back(std::move(f));
    attach(factors_.back().id);
    return factors_.back().id;
}

FactorId
FactorGraph::addStudentT(std::string name, VarId var, double loc,
                         double scale, double nu)
{
    bp_assert(var < variables_.size(), "factor references missing var");
    bp_assert(scale > 0.0 && nu > 0.0, "bad Student-t parameters");
    Factor f;
    f.id = static_cast<FactorId>(factors_.size());
    f.kind = FactorKind::StudentT;
    f.name = std::move(name);
    f.vars = {var};
    f.loc = loc;
    f.scale = scale;
    f.nu = nu;
    factors_.push_back(std::move(f));
    attach(factors_.back().id);
    return factors_.back().id;
}

FactorId
FactorGraph::addGaussianPrior(std::string name, VarId var, double mean,
                              double stddev)
{
    bp_assert(var < variables_.size(), "factor references missing var");
    bp_assert(stddev > 0.0, "bad prior stddev");
    Factor f;
    f.id = static_cast<FactorId>(factors_.size());
    f.kind = FactorKind::GaussianPrior;
    f.name = std::move(name);
    f.vars = {var};
    f.loc = mean;
    f.scale = stddev;
    factors_.push_back(std::move(f));
    attach(factors_.back().id);
    return factors_.back().id;
}

void
FactorGraph::attach(FactorId fid)
{
    for (VarId v : factors_[fid].vars)
        varFactors_[v].push_back(fid);
    kindFactors_[static_cast<std::size_t>(factors_[fid].kind)].push_back(
        fid);
}

const Variable &
FactorGraph::variable(VarId v) const
{
    bp_assert(v < variables_.size(), "variable id out of range");
    return variables_[v];
}

const Factor &
FactorGraph::factor(FactorId f) const
{
    bp_assert(f < factors_.size(), "factor id out of range");
    return factors_[f];
}

const std::vector<FactorId> &
FactorGraph::factorsOf(VarId v) const
{
    bp_assert(v < variables_.size(), "variable id out of range");
    return varFactors_[v];
}

const std::vector<FactorId> &
FactorGraph::factorsOfKind(FactorKind kind) const
{
    return kindFactors_[static_cast<std::size_t>(kind)];
}

std::set<VarId>
FactorGraph::markovBlanket(VarId v) const
{
    std::set<VarId> blanket;
    for (FactorId f : factorsOf(v))
        for (VarId u : factors_[f].vars)
            if (u != v)
                blanket.insert(u);
    return blanket;
}

std::set<VarId>
FactorGraph::markovBlanketOfSet(const std::set<VarId> &vars) const
{
    std::set<VarId> blanket;
    for (VarId v : vars)
        for (VarId u : markovBlanket(v))
            if (!vars.count(u))
                blanket.insert(u);
    return blanket;
}

std::vector<VarId>
FactorGraph::shortestPath(VarId from, VarId to) const
{
    bp_assert(from < variables_.size() && to < variables_.size(),
              "path endpoints out of range");
    if (from == to)
        return {from};

    std::vector<VarId> parent(variables_.size(), kNoVar);
    std::vector<bool> visited(variables_.size(), false);
    std::deque<VarId> queue{from};
    visited[from] = true;

    while (!queue.empty()) {
        const VarId v = queue.front();
        queue.pop_front();
        for (FactorId f : factorsOf(v)) {
            for (VarId u : factors_[f].vars) {
                if (visited[u])
                    continue;
                visited[u] = true;
                parent[u] = v;
                if (u == to) {
                    std::vector<VarId> path{to};
                    for (VarId p = v; p != kNoVar; p = parent[p])
                        path.push_back(p);
                    std::reverse(path.begin(), path.end());
                    return path;
                }
                queue.push_back(u);
            }
        }
    }
    return {};
}

} // namespace graph
} // namespace bperf
