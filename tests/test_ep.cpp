/**
 * @file
 * Tests for Expectation Propagation: tilted-moment computation,
 * agreement with exact Gaussian inference, robustness behaviour.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/ep.h"
#include "common/rng.h"
#include "common/stats.h"
#include "graph/exact.h"

namespace bperf {
namespace core {
namespace {

using graph::FactorGraph;

TEST(TiltedMoments, GaussianLikelihoodIsExact)
{
    // With nu large the Student-t is essentially Gaussian, and the
    // tilted moments have a closed form.
    const double cav_mean = 1.0, cav_var = 4.0;
    const double loc = 3.0, scale = 1.0, nu = 1e6;
    double m, v;
    tiltedMomentsQuadrature(cav_mean, cav_var, loc, scale, nu, 401, m, v);

    const double lam = 1.0 / cav_var + 1.0 / (scale * scale);
    const double expected_mean =
        (cav_mean / cav_var + loc / (scale * scale)) / lam;
    const double expected_var = 1.0 / lam;
    EXPECT_NEAR(m, expected_mean, 1e-3);
    EXPECT_NEAR(v, expected_var, 1e-3);
}

TEST(TiltedMoments, McmcMatchesQuadrature)
{
    const double cav_mean = 2.0, cav_var = 1.0;
    const double loc = 0.0, scale = 0.5, nu = 4.0;
    double mq, vq, mm, vm;
    tiltedMomentsQuadrature(cav_mean, cav_var, loc, scale, nu, 401, mq, vq);
    tiltedMomentsMcmc(cav_mean, cav_var, loc, scale, nu, 20000, 2000, 13,
                      mm, vm);
    EXPECT_NEAR(mm, mq, 0.05 * std::sqrt(vq) * 3.0);
    EXPECT_NEAR(vm, vq, 0.2 * vq);
}

TEST(TiltedMoments, GaussianLimitAcrossScales)
{
    // nu -> infinity: the Student-t degenerates to a Gaussian and the
    // tilted moments have the conjugate closed form.  Sweep scales
    // spanning the five orders of magnitude real counters cover.
    const double nu = 1e8;
    struct Case
    {
        double cm, cv, loc, scale;
    } cases[] = {
        {1.0, 4.0, 3.0, 1.0},
        {1e9, 1e16, 1.2e9, 5e7},
        {-2.0, 0.25, -1.5, 2.0},
        {3e4, 9e6, 2.8e4, 1.5e3},
    };
    for (const Case &c : cases) {
        double m, v;
        tiltedMomentsQuadrature(c.cm, c.cv, c.loc, c.scale, nu, 801, m, v);
        const double lam = 1.0 / c.cv + 1.0 / (c.scale * c.scale);
        const double expected_mean =
            (c.cm / c.cv + c.loc / (c.scale * c.scale)) / lam;
        const double expected_var = 1.0 / lam;
        EXPECT_NEAR(m, expected_mean, 2e-3 * std::sqrt(expected_var));
        EXPECT_NEAR(v, expected_var, 2e-3 * expected_var);
    }
}

/**
 * The pre-rewrite reference: two passes over a materialized
 * log-weight buffer, with the full (constant-carrying) log-densities.
 * The fused single-pass loop must reproduce it.
 */
void
tiltedMomentsTwoPassReference(double cavity_mean, double cavity_var,
                              double loc, double scale, double nu,
                              std::size_t points, double &mean_out,
                              double &var_out)
{
    const double cavity_sd = std::sqrt(cavity_var);
    const double lo =
        std::min(cavity_mean - 8.0 * cavity_sd, loc - 10.0 * scale);
    const double hi =
        std::max(cavity_mean + 8.0 * cavity_sd, loc + 10.0 * scale);
    const double step = (hi - lo) / static_cast<double>(points - 1);

    std::vector<double> logw(points);
    double max_logw = -1e300;
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * static_cast<double>(i);
        logw[i] = normalLogPdf(x, cavity_mean, cavity_sd) +
                  studentTLogPdf(x, nu, loc, scale);
        max_logw = std::max(max_logw, logw[i]);
    }
    double z = 0.0, m1 = 0.0, m2 = 0.0;
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * static_cast<double>(i);
        const double w = std::exp(logw[i] - max_logw);
        z += w;
        m1 += w * x;
        m2 += w * x * x;
    }
    mean_out = m1 / z;
    var_out = std::max(m2 / z - mean_out * mean_out, 1e-30);
}

TEST(TiltedMoments, FusedLoopMatchesTwoPassReference)
{
    struct Case
    {
        double cm, cv, loc, scale, nu;
    } cases[] = {
        {2.0, 1.0, 0.0, 0.5, 4.0},    // overlapping, heavy tail
        {0.0, 1.0, 50.0, 1.0, 3.0},   // far outlier (skip path hot)
        {1e9, 1e16, 9.5e8, 2e7, 30.0},// counter magnitudes
        {5.0, 100.0, 5.0, 0.01, 3.0}, // likelihood much tighter
        {-3.0, 0.04, -2.9, 5.0, 2.0}, // cavity much tighter, nu <= 2
    };
    for (const Case &c : cases) {
        for (std::size_t points : {129u, 257u}) {
            double mf, vf, mr, vr;
            tiltedMomentsQuadrature(c.cm, c.cv, c.loc, c.scale, c.nu,
                                    points, mf, vf);
            tiltedMomentsTwoPassReference(c.cm, c.cv, c.loc, c.scale,
                                          c.nu, points, mr, vr);
            // Dropping the shared density constants must be invisible
            // at double precision.  The variance bound carries an
            // extra eps * mean^2 term: this naive reference computes
            // m2/z - mean^2 in raw coordinates, so *its* result loses
            // up to eps * mean^2 to cancellation — error the centered
            // production kernel no longer makes.
            EXPECT_NEAR(mf, mr, 1e-9 * (std::abs(mr) + std::sqrt(vr)))
                << "points=" << points;
            EXPECT_NEAR(vf, vr, 1e-9 * vr + 1e-14 * mr * mr)
                << "points=" << points;
        }
    }
}

TEST(TiltedMoments, HeavyTailRejectsOutlier)
{
    // A Student-t likelihood far from a tight cavity should barely
    // move the posterior (robustness), unlike a Gaussian would.
    double m, v;
    tiltedMomentsQuadrature(0.0, 1.0, 50.0, 1.0, 3.0, 801, m, v);
    EXPECT_LT(std::abs(m), 1.0);
}

/** Build a small chain graph with Student-t measurements. */
FactorGraph
makeChain(double nu)
{
    FactorGraph g;
    const auto a = g.addVariable("a", 10.0);
    const auto b = g.addVariable("b", 10.0);
    const auto c = g.addVariable("c", 10.0);
    g.addGaussianPrior("pa", a, 10.0, 20.0);
    g.addGaussianPrior("pb", b, 10.0, 20.0);
    g.addGaussianPrior("pc", c, 10.0, 20.0);
    // a + b = c (tight linear invariant).
    g.addLinearGaussian("sum", {{a, 1.0}, {b, 1.0}, {c, -1.0}}, 0.0, 0.01);
    g.addStudentT("ma", a, 4.0, 1.0, nu);
    g.addStudentT("mb", b, 6.0, 1.0, nu);
    g.addStudentT("mc", c, 11.0, 1.0, nu);
    return g;
}

TEST(ExpectationPropagation, MatchesExactGaussianInference)
{
    // With nu large, Student-t factors are Gaussian and EP must agree
    // with the exact information-form solve.
    FactorGraph g = makeChain(1e6);

    EpConfig cfg;
    cfg.maxSweeps = 30;
    cfg.tolerance = 1e-9;
    ExpectationPropagation ep(cfg);
    const EpResult result = ep.run(g);
    EXPECT_TRUE(result.converged);

    // Exact: treat the t factors as Gaussian priors.
    FactorGraph ge;
    const auto a = ge.addVariable("a", 10.0);
    const auto b = ge.addVariable("b", 10.0);
    const auto c = ge.addVariable("c", 10.0);
    ge.addGaussianPrior("pa", a, 10.0, 20.0);
    ge.addGaussianPrior("pb", b, 10.0, 20.0);
    ge.addGaussianPrior("pc", c, 10.0, 20.0);
    ge.addLinearGaussian("sum", {{a, 1.0}, {b, 1.0}, {c, -1.0}}, 0.0, 0.01);
    ge.addGaussianPrior("ma", a, 4.0, 1.0);
    ge.addGaussianPrior("mb", b, 6.0, 1.0);
    ge.addGaussianPrior("mc", c, 11.0, 1.0);
    graph::GaussianSolver solver(ge);
    const graph::GaussianJoint exact = solver.solve();

    for (std::size_t v = 0; v < 3; ++v) {
        EXPECT_NEAR(result.mean[v], exact.mean[v], 5e-3)
            << "variable " << v;
        EXPECT_NEAR(result.stddev[v],
                    std::sqrt(exact.covariance(v, v)), 5e-3)
            << "variable " << v;
    }
}

TEST(ExpectationPropagation, InvariantPullsEstimatesTogether)
{
    // Conflicting measurements + a tight invariant: the posterior
    // must satisfy a + b ≈ c much better than the raw measurements.
    FactorGraph g = makeChain(5.0);
    ExpectationPropagation ep;
    const EpResult r = ep.run(g);
    const double residual = r.mean[0] + r.mean[1] - r.mean[2];
    EXPECT_LT(std::abs(residual), 0.2);
}

TEST(ExpectationPropagation, McmcPathAgreesWithQuadrature)
{
    FactorGraph g = makeChain(5.0);

    EpConfig cq;
    cq.method = MomentMethod::Quadrature;
    const EpResult rq = ExpectationPropagation(cq).run(g);

    EpConfig cm;
    cm.method = MomentMethod::Mcmc;
    cm.mcmcSamples = 4000;
    cm.mcmcBurnin = 500;
    const EpResult rm = ExpectationPropagation(cm).run(g);

    for (std::size_t v = 0; v < 3; ++v)
        EXPECT_NEAR(rm.mean[v], rq.mean[v], 0.25) << "variable " << v;
}

TEST(ExpectationPropagation, WorkspaceReuseIsAllocationFree)
{
    FactorGraph g = makeChain(5.0);
    EpWorkspace ws;
    ExpectationPropagation ep;
    const EpResult first = ep.run(g, ws);
    EXPECT_GT(first.workspaceAllocations, 0u);
    for (int i = 0; i < 3; ++i) {
        // Same graph shape, warm workspace: no buffer growth, and the
        // posterior is bitwise reproducible.
        const EpResult again = ep.run(g, ws);
        EXPECT_EQ(again.workspaceAllocations, 0u);
        for (std::size_t v = 0; v < 3; ++v) {
            EXPECT_DOUBLE_EQ(again.mean[v], first.mean[v]);
            EXPECT_DOUBLE_EQ(again.stddev[v], first.stddev[v]);
        }
    }
    EXPECT_EQ(ws.runs(), 4u);
}

TEST(ExpectationPropagation, Rank1UpdatesMatchDenseResolve)
{
    for (double nu : {3.0, 5.0, 1e6}) {
        FactorGraph g = makeChain(nu);
        EpConfig fast;
        fast.jointStrategy = JointStrategy::Rank1;
        EpConfig dense;
        dense.jointStrategy = JointStrategy::DenseResolve;
        const EpResult rf = ExpectationPropagation(fast).run(g);
        const EpResult rd = ExpectationPropagation(dense).run(g);
        EXPECT_GT(rf.rank1Updates, 0u);
        EXPECT_EQ(rd.rank1Updates, 0u);
        // Sweep counts may differ by one when a sweep's movement sits
        // at the tolerance boundary; the posteriors must still agree.
        EXPECT_NEAR(static_cast<double>(rf.sweeps),
                    static_cast<double>(rd.sweeps), 1.0)
            << "nu=" << nu;
        for (std::size_t v = 0; v < 3; ++v) {
            EXPECT_NEAR(rf.mean[v], rd.mean[v],
                        1e-6 * std::abs(rd.mean[v]) + 1e-9)
                << "nu=" << nu << " var " << v;
            EXPECT_NEAR(rf.stddev[v], rd.stddev[v],
                        1e-6 * rd.stddev[v] + 1e-12)
                << "nu=" << nu << " var " << v;
        }
    }
}

TEST(ExpectationPropagation, UnbiasedUnderSymmetricNoise)
{
    // Repeatedly infer a single variable from noisy measurements:
    // the average posterior mean must track the true value, not sit
    // below it (regression test for multiplicative-noise bias).
    Rng rng(99);
    const double truth = 100.0;
    double sum = 0.0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
        FactorGraph g;
        const auto x = g.addVariable("x", 100.0);
        g.addGaussianPrior("p", x, 100.0, 400.0);
        for (int i = 0; i < 3; ++i) {
            const double m = truth * (1.0 + 0.3 * rng.normal());
            g.addStudentT("m", x, m, 30.0, 3.0);
        }
        const EpResult r = ExpectationPropagation().run(g);
        sum += r.mean[0];
    }
    const double avg = sum / trials;
    EXPECT_NEAR(avg, truth, 8.0);
}

} // namespace
} // namespace core
} // namespace bperf
