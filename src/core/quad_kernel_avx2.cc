/**
 * AVX2+FMA variant of the quadrature moment kernel.  This file is
 * compiled with -mavx2 -mfma (CMake adds them only on x86-64 with
 * BPERF_SIMD=ON) and otherwise compiles to nothing, so the library
 * never carries AVX2 code it could not have dispatched.
 *
 * Bit-identity contract with quadMomentsScalar: every intrinsic below
 * corresponds 1:1 to a scalar operation in quad_kernel.cc /
 * quad_poly.h — same constants, same FMA placement, same four-lane
 * accumulator layout, same reduction order.  Change them together.
 */

#include "core/quad_kernel.h"

#if defined(BPERF_SIMD) && defined(__x86_64__) && defined(__AVX2__) && \
    defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

#include "common/logging.h"
#include "core/quad_poly.h"

namespace bperf {
namespace core {

namespace {

using namespace quadpoly;

inline __m256d
vPolyLog1p(__m256d q)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d a = _mm256_add_pd(one, q);
    const __m256i tmp = _mm256_sub_epi64(
        _mm256_castpd_si256(a),
        _mm256_set1_epi64x(static_cast<long long>(kSqrtHalfBits)));
    // Exponent as a double via the 2^52 magic constant (tmp >> 52 is
    // a small non-negative integer for a >= 1).
    const __m256d magic = _mm256_set1_pd(0x1p52);
    const __m256d e = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(tmp, 52),
                                            _mm256_castpd_si256(magic))),
        magic);
    const __m256d m = _mm256_castsi256_pd(_mm256_add_epi64(
        _mm256_and_si256(
            tmp, _mm256_set1_epi64x(static_cast<long long>(kMantissaMask))),
        _mm256_set1_epi64x(static_cast<long long>(kSqrtHalfBits))));
    const __m256d s =
        _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
    const __m256d t2 = _mm256_mul_pd(s, s);
    __m256d p = _mm256_set1_pd(kLogCoeff[kLogDegree - 1]);
    for (std::size_t j = kLogDegree - 1; j-- > 0;)
        p = _mm256_fmadd_pd(p, t2, _mm256_set1_pd(kLogCoeff[j]));
    const __m256d two_s = _mm256_add_pd(s, s);
    return _mm256_fmadd_pd(
        e, _mm256_set1_pd(kLn2Hi),
        _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Lo),
                        _mm256_mul_pd(two_s, p)));
}

inline __m256d
vPolyExp(__m256d y)
{
    y = _mm256_min_pd(_mm256_max_pd(y, _mm256_set1_pd(kExpLoClamp)),
                      _mm256_set1_pd(kExpHiClamp));
    const __m256d kd = _mm256_round_pd(
        _mm256_mul_pd(y, _mm256_set1_pd(kLog2E)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256d r = _mm256_fmadd_pd(kd, _mm256_set1_pd(-kLn2Hi), y);
    r = _mm256_fmadd_pd(kd, _mm256_set1_pd(-kLn2Lo), r);
    __m256d p = _mm256_set1_pd(kExpCoeff[kExpDegree - 1]);
    for (std::size_t j = kExpDegree - 1; j-- > 0;)
        p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(kExpCoeff[j]));
    const __m256i k64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd));
    const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
        _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52));
    return _mm256_mul_pd(p, scale);
}

} // namespace

void
quadMomentsAvx2(const QuadParams &p, double &mean_out, double &var_out)
{
    bp_assert(p.points >= 2 && p.points <= kMaxQuadPoints,
              "quadrature grid size out of range");
    double *logw = quadLogWeightBuffer();
    const std::size_t n4 = p.points & ~static_cast<std::size_t>(3);

    const __m256d vstep = _mm256_set1_pd(p.step);
    const __m256d vlo = _mm256_set1_pd(p.lo);
    const __m256d vcm = _mm256_set1_pd(p.cavityMean);
    const __m256d vinv_sd = _mm256_set1_pd(p.invSd);
    const __m256d vloc = _mm256_set1_pd(p.loc);
    const __m256d vinv_scale = _mm256_set1_pd(p.invScale);
    const __m256d vneg_half_nup1 = _mm256_set1_pd(-p.halfNup1);
    const __m256d vinv_nu = _mm256_set1_pd(p.invNu);
    const __m256d vneg_half = _mm256_set1_pd(-0.5);
    const __m256d four = _mm256_set1_pd(4.0);

    // Pass 1: log-weights + running max.
    __m256d idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    __m256d vmax = _mm256_set1_pd(-1e300);
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d x = _mm256_fmadd_pd(vstep, idx, vlo);
        const __m256d u =
            _mm256_mul_pd(_mm256_sub_pd(x, vcm), vinv_sd);
        const __m256d g = _mm256_mul_pd(_mm256_mul_pd(u, u), vneg_half);
        const __m256d t =
            _mm256_mul_pd(_mm256_sub_pd(x, vloc), vinv_scale);
        const __m256d q = _mm256_mul_pd(_mm256_mul_pd(t, t), vinv_nu);
        const __m256d lw =
            _mm256_fmadd_pd(vneg_half_nup1, vPolyLog1p(q), g);
        _mm256_storeu_pd(logw + i, lw);
        vmax = _mm256_max_pd(vmax, lw);
        idx = _mm256_add_pd(idx, four);
    }
    double max_lanes[4];
    _mm256_storeu_pd(max_lanes, vmax);
    double max_logw = std::max(std::max(max_lanes[0], max_lanes[1]),
                               std::max(max_lanes[2], max_lanes[3]));
    for (std::size_t i = n4; i < p.points; ++i) {
        const double x =
            std::fma(p.step, static_cast<double>(i), p.lo);
        const double u = (x - p.cavityMean) * p.invSd;
        const double g = (u * u) * -0.5;
        const double t = (x - p.loc) * p.invScale;
        const double q = (t * t) * p.invNu;
        const double lw = std::fma(-p.halfNup1, polyLog1p(q), g);
        logw[i] = lw;
        max_logw = std::max(max_logw, lw);
    }

    // Pass 2: shifted weights into four accumulator lanes, moments
    // centered on the cavity mean (see quad_kernel.cc).
    __m256d vz = _mm256_setzero_pd();
    __m256d vm1 = _mm256_setzero_pd();
    __m256d vm2 = _mm256_setzero_pd();
    const __m256d vshift = _mm256_set1_pd(max_logw);
    idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d x = _mm256_fmadd_pd(vstep, idx, vlo);
        const __m256d dx = _mm256_sub_pd(x, vcm);
        const __m256d w =
            vPolyExp(_mm256_sub_pd(_mm256_loadu_pd(logw + i), vshift));
        vz = _mm256_add_pd(vz, w);
        vm1 = _mm256_fmadd_pd(w, dx, vm1);
        const __m256d wdx = _mm256_mul_pd(w, dx);
        vm2 = _mm256_fmadd_pd(wdx, dx, vm2);
        idx = _mm256_add_pd(idx, four);
    }
    double z[4], m1[4], m2[4];
    _mm256_storeu_pd(z, vz);
    _mm256_storeu_pd(m1, vm1);
    _mm256_storeu_pd(m2, vm2);
    for (std::size_t i = n4; i < p.points; ++i) {
        const std::size_t lane = i & 3;
        const double x =
            std::fma(p.step, static_cast<double>(i), p.lo);
        const double dx = x - p.cavityMean;
        const double w = polyExp(logw[i] - max_logw);
        z[lane] += w;
        m1[lane] = std::fma(w, dx, m1[lane]);
        const double wdx = w * dx;
        m2[lane] = std::fma(wdx, dx, m2[lane]);
    }
    const double zs = (z[0] + z[1]) + (z[2] + z[3]);
    const double m1s = (m1[0] + m1[1]) + (m1[2] + m1[3]);
    const double m2s = (m2[0] + m2[1]) + (m2[2] + m2[3]);

    bp_assert(zs > 0.0, "tilted density vanished on the grid");
    const double mean_off = m1s / zs;
    mean_out = p.cavityMean + mean_off;
    var_out = std::max(m2s / zs - mean_off * mean_off, 1e-30);
}

} // namespace core
} // namespace bperf

#elif defined(BPERF_SIMD) && defined(__x86_64__)

// Built without -mavx2 -mfma (unexpected toolchain): the dispatch
// table still references this symbol, so satisfy it with the scalar
// kernel — bit-identical by the parity contract, just not vectorized.
namespace bperf {
namespace core {

void
quadMomentsAvx2(const QuadParams &p, double &mean_out, double &var_out)
{
    quadMomentsScalar(p, mean_out, var_out);
}

} // namespace core
} // namespace bperf

#endif // BPERF_SIMD && __x86_64__ && __AVX2__ && __FMA__
