/**
 * @file
 * The BayesPerf monitoring daemon end to end: several tenants stream
 * live PMI records into one service, posteriors are polled mid-run,
 * and each session's final posterior is scored against ground truth.
 *
 * Walks through the service API:
 *   1. start a MonitorService (shared worker pool, sharded registry),
 *   2. open one admission-controlled session per tenant workload,
 *   3. subscribe to one tenant's window completions (push updates),
 *   4. stream each tenant's PerfRecords from a producer thread,
 *      slice by slice, through the per-session SPSC ring,
 *   5. poll latest() while inference is still running,
 *   6. close the sessions and read full posterior series + stats.
 *
 * Usage: perf_daemon [host|capi|pcie] [engines]
 *                    [--max-sessions=N] [--records-per-sec=R]
 *                    [--max-inflight-windows=N] [--max-queue-us=X]
 *                    [--shm=/name] [--linger-ms=N] [--tenants=N]
 *                    [--trace-out=FILE] [--metrics-every-ms=N]
 *
 * The first argument selects the execution backend: "host" (windows
 * cost their measured EP wall time) or the simulated FPGA EP-engine
 * pool over the CAPI / PCIe host interface; "engines" sizes that
 * pool (default 4).  Any quota flag enables admission control with
 * that per-tenant limit; --max-queue-us sheds opens and pushes once
 * the pool's modeled queue exceeds the threshold.  --shm exports the
 * posterior snapshot table over POSIX shared memory so a separate
 * process (see examples/shim_reader.cpp) can poll live posteriors;
 * --linger-ms keeps the sessions (and so the table) alive that long
 * after streaming finishes, giving external readers time to attach.
 * Posteriors are identical across backends — the table's
 * modeled-latency columns are what changes.
 *
 * Observability flags: --tenants=N scales the workload (tenant names
 * cycle KMeans/Sort/Bayes/PageRank with -1, -2, ... suffixes);
 * --trace-out=FILE writes every window's phase spans as Chrome
 * trace-event JSON (load in Perfetto or chrome://tracing);
 * --metrics-every-ms=N starts a scraper thread that prints a
 * one-line telemetry digest every N ms and republishes the daemon's
 * self-metrics through the snapshot shim (pseudo-session 0), so a
 * shim_reader in another process watches the monitor itself.
 * Unknown arguments, a zero engine/tenant/period count or a
 * malformed flag value print usage and exit non-zero.
 */

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "example_args.h"
#include "service/monitor_service.h"
#include "service/record_stream.h"
#include "shim/snapshot_reader.h"
#include "sim/ground_truth.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "workloads/hibench.h"

using namespace bperf;
using examples::parseCount;
using examples::parseDouble;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [host|capi|pcie] [engines]\n"
                 "          [--max-sessions=N] [--records-per-sec=R]\n"
                 "          [--max-inflight-windows=N] "
                 "[--max-queue-us=X]\n"
                 "          [--shm=/name] [--linger-ms=N] "
                 "[--tenants=N]\n"
                 "          [--trace-out=FILE] "
                 "[--metrics-every-ms=N]\n",
                 argv0);
}

/** One-line digest of the registry, printed by the scraper thread. */
void
printMetricsDigest(const char *tag)
{
    auto &registry = telemetry::MetricsRegistry::global();
    const telemetry::MetricsSnapshot snap = registry.scrape();
    const telemetry::Histogram::Snapshot ep_window =
        registry.histogramSnapshot("ep.window_ns");
    std::printf("[metrics %s] %zu counters, %zu histograms; "
                "ep.windows=%llu ring.drops=%llu sub.drops=%llu "
                "shim.publishes=%llu log.warn=%llu log.err=%llu "
                "ep.window p99=%.0f us\n",
                tag, snap.counters.size(), snap.histograms.size(),
                static_cast<unsigned long long>(
                    registry.counterValue("ep.windows")),
                static_cast<unsigned long long>(
                    registry.counterValue("ring.drops")),
                static_cast<unsigned long long>(
                    registry.counterValue("subscription.drops")),
                static_cast<unsigned long long>(
                    registry.counterValue("shim.publishes")),
                static_cast<unsigned long long>(
                    registry.counterValue("log.warnings")),
                static_cast<unsigned long long>(
                    registry.counterValue("log.errors")),
                ep_window.count > 0 ? ep_window.percentile(99.0) / 1e3
                                    : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const sim::MicroarchDescriptor uarch = sim::makeX86Skylake();

    // 1. The daemon: 4 inference workers shared by every tenant, the
    // execution backend and admission quotas picked from argv.
    service::MonitorServiceConfig cfg;
    cfg.numWorkers = 4;
    cfg.sessionDefaults.streaming.inference.windowSlices = 6;

    std::string backend_arg = "capi";
    std::size_t linger_ms = 0;
    std::size_t num_tenants = 4;
    std::size_t metrics_every_ms = 0;
    std::string trace_out;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        double dval = 0.0;
        std::size_t nval = 0;
        if (arg.rfind("--shm=", 0) == 0) {
            const std::string name = arg.substr(6);
            // Validate here so a malformed name is a usage error, not
            // an shm_open abort deep in the snapshot region.
            if (!examples::validShmName(name)) {
                std::fprintf(stderr,
                             "%s: bad %s (want \"/name\", no further "
                             "'/', <= 250 chars)\n",
                             argv[0], argv[i]);
                return 2;
            }
            cfg.snapshot.enabled = true;
            cfg.snapshot.shmName = name;
            continue;
        }
        if (arg.rfind("--linger-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 12, &nval)) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            linger_ms = nval;
            continue;
        }
        if (arg.rfind("--tenants=", 0) == 0) {
            if (!parseCount(arg.c_str() + 10, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            num_tenants = nval;
            continue;
        }
        if (arg.rfind("--metrics-every-ms=", 0) == 0) {
            if (!parseCount(arg.c_str() + 19, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            metrics_every_ms = nval;
            continue;
        }
        if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
            if (trace_out.empty()) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            continue;
        }
        if (arg.rfind("--max-sessions=", 0) == 0) {
            if (!parseCount(arg.c_str() + 15, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            cfg.admission.enabled = true;
            cfg.admission.defaultQuota.maxSessions = nval;
        } else if (arg.rfind("--records-per-sec=", 0) == 0) {
            if (!parseDouble(arg.c_str() + 18, &dval) || dval <= 0.0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            cfg.admission.enabled = true;
            cfg.admission.defaultQuota.recordsPerSecond = dval;
        } else if (arg.rfind("--max-inflight-windows=", 0) == 0) {
            if (!parseCount(arg.c_str() + 23, &nval) || nval == 0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            cfg.admission.enabled = true;
            cfg.admission.defaultQuota.maxInFlightWindows = nval;
        } else if (arg.rfind("--max-queue-us=", 0) == 0) {
            if (!parseDouble(arg.c_str() + 15, &dval) || dval <= 0.0) {
                std::fprintf(stderr, "%s: bad %s\n", argv[0], argv[i]);
                return 2;
            }
            cfg.admission.enabled = true;
            cfg.admission.throttleQueueSeconds = dval * 1e-6;
            cfg.admission.shedQueueSeconds = dval * 1e-6;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         argv[i]);
            usage(argv[0]);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }

    if (positional.size() > 2) {
        usage(argv[0]);
        return 2;
    }
    if (!positional.empty())
        backend_arg = positional[0];
    if (backend_arg == "capi" || backend_arg == "pcie") {
        cfg.backend = service::BackendKind::Accel;
        cfg.accel.engine.hostInterface =
            backend_arg == "capi" ? accel::HostInterface::Capi
                                  : accel::HostInterface::PcieDma;
        if (positional.size() > 1) {
            std::size_t engines = 0;
            if (!parseCount(positional[1].c_str(), &engines) ||
                engines == 0) {
                std::fprintf(stderr, "%s: engines must be a positive "
                                     "integer, got \"%s\"\n",
                             argv[0], positional[1].c_str());
                return 2;
            }
            cfg.accel.numEngines = engines;
        }
    } else if (backend_arg == "host") {
        if (positional.size() > 1) {
            std::fprintf(stderr, "%s: the host backend takes no engine "
                                 "count\n",
                         argv[0]);
            usage(argv[0]);
            return 2;
        }
    } else {
        std::fprintf(stderr, "%s: unknown backend \"%s\"\n", argv[0],
                     backend_arg.c_str());
        usage(argv[0]);
        return 2;
    }
    // Window spans flow to the collector from every worker; the file
    // is written once the sessions have closed (tail windows traced).
    telemetry::TraceCollector trace;
    if (!trace_out.empty())
        cfg.trace = &trace;
    service::MonitorService daemon(uarch, cfg);

    // 2. N tenants (default 4), each monitoring 13 events (3 fixed +
    // 10 multiplexed) on its own workload, opened through admission
    // control under their tenant name.
    const std::vector<std::string> tenant_bases = {"KMeans", "Sort",
                                                   "Bayes", "PageRank"};
    std::vector<std::string> tenants;
    for (std::size_t t = 0; t < num_tenants; ++t) {
        std::string name = tenant_bases[t % tenant_bases.size()];
        if (t >= tenant_bases.size())
            name += "-" + std::to_string(t / tenant_bases.size());
        tenants.push_back(name);
    }
    std::vector<sim::EventId> events;
    for (sim::Role r :
         {sim::Role::LlcMiss, sim::Role::L2Miss, sim::Role::L1DMiss,
          sim::Role::Loads, sim::Role::Stores, sim::Role::Branches,
          sim::Role::BranchMisses, sim::Role::StallMem,
          sim::Role::StallTotal, sim::Role::DramBytes})
        events.push_back(uarch.idForRole(r));

    const std::size_t num_slices = 48;
    std::vector<service::SessionId> ids;
    std::vector<std::string> admitted_tenants;
    std::vector<sim::TruthTrace> truths;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        const service::OpenResult result =
            daemon.open(tenants[t], events);
        if (!result.admitted()) {
            std::printf("tenant %s: open rejected (%s)\n",
                        tenants[t].c_str(),
                        service::admissionErrorName(result.error));
            continue;
        }
        ids.push_back(*result.id);
        admitted_tenants.push_back(tenants[t]);
        // Suffixed tenants ("KMeans-1") run the base workload; the
        // suffix only distinguishes the admission/subscription name.
        const sim::GroundTruthGenerator generator(
            uarch,
            wl::makeHibench(tenant_bases[t % tenant_bases.size()]));
        truths.push_back(generator.generate(num_slices, 1000 + t));
    }
    if (ids.empty()) {
        std::fprintf(stderr, "%s: no tenant admitted\n", argv[0]);
        return 1;
    }
    const auto monitored = daemon.monitoredEvents(ids[0]);

    // Periodic self-observation: print a registry digest and mirror
    // the daemon's own health metrics into the snapshot shim, where a
    // cross-process shim_reader sees them as pseudo-session 0.  No
    // early return below until the thread is joined.
    std::mutex metrics_mutex;
    std::condition_variable metrics_cv;
    bool metrics_stop = false;
    std::thread metrics_thread;
    if (metrics_every_ms > 0) {
        metrics_thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(metrics_mutex);
            while (!metrics_cv.wait_for(
                       lock, std::chrono::milliseconds(metrics_every_ms),
                       [&] { return metrics_stop; })) {
                lock.unlock();
                printMetricsDigest("scrape");
                daemon.publishSelfMetrics();
                lock.lock();
            }
        });
    }

    // 3. Subscribe to the first tenant's window completions: the push
    // counterpart of the latest() polling below.
    const sim::EventId llc = uarch.idForRole(sim::Role::LlcMiss);
    std::size_t llc_index = 0;
    for (std::size_t i = 0; i < monitored.size(); ++i) {
        if (monitored[i] == llc)
            llc_index = i;
    }
    const auto subscription = daemon.subscribe(
        ids[0], [&, tenant = admitted_tenants[0]](
                    const service::WindowUpdate &update) {
            if (update.windowIndex >= 3 ||
                update.posterior.size() <= llc_index)
                return; // stay quiet after the first few windows
            std::printf("[subscribed] %s window %llu (end slice %zu): "
                        "LLC misses %.0f +/- %.0f, modeled %.2f ms\n",
                        tenant.c_str(),
                        static_cast<unsigned long long>(
                            update.windowIndex),
                        update.endSlice,
                        update.posterior[llc_index].mean,
                        update.posterior[llc_index].stddev,
                        1e3 * update.execution.modeledSeconds);
        });

    // 4. One producer thread per tenant, replaying the kernel-side
    // record stream slice by slice.
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < ids.size(); ++t) {
        producers.emplace_back([&, t] {
            sim::PerfSessionConfig perf_cfg;
            perf_cfg.seed = 42 + t;
            sim::PerfSession session(uarch, perf_cfg);
            const sim::PerfResult run =
                session.runRoundRobin(truths[t], monitored);
            for (std::size_t s = 0; s < num_slices; ++s)
                daemon.ingestBatch(ids[t], service::sliceRecords(run, s));
        });
    }

    // 5. Poll one tenant's LLC-miss posterior while streaming.
    for (int poll = 0; poll < 3; ++poll) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (const auto p = daemon.latest(ids[0], llc)) {
            std::printf("[poll %d] %s LLC misses: %.0f +/- %.0f\n", poll,
                        admitted_tenants[0].c_str(), p->mean, p->stddev);
        }
    }
    for (auto &p : producers)
        p.join();
    daemon.quiesce();
    daemon.flushSubscriptions();

    // Make the monitor's own metrics visible at least once, even
    // without a scraper thread: a lingering shim_reader sees the
    // final numbers under pseudo-session 0.
    if (cfg.snapshot.enabled)
        daemon.publishSelfMetrics();

    // Keep the snapshot table populated long enough for an external
    // shim_reader to attach and poll before the sessions close and
    // their slots are invalidated.  The linger sleeps in steps,
    // stamping the segment's writer heartbeat each step, so a reader
    // watching writerIdleNanos() sees "alive but idle" — not the
    // growing silence of a dead daemon — even with no metrics thread
    // publishing.
    if (linger_ms > 0) {
        if (cfg.snapshot.enabled)
            std::printf("lingering %zu ms with snapshot table \"%s\" "
                        "live...\n",
                        linger_ms, cfg.snapshot.shmName.c_str());
        const auto linger_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(linger_ms);
        constexpr std::chrono::milliseconds kHeartbeatStep(50);
        while (std::chrono::steady_clock::now() < linger_deadline) {
            daemon.heartbeatSnapshot();
            const auto remaining = linger_deadline -
                                   std::chrono::steady_clock::now();
            std::this_thread::sleep_for(
                remaining < kHeartbeatStep
                    ? std::chrono::duration_cast<
                          std::chrono::milliseconds>(remaining)
                    : kHeartbeatStep);
        }
    }

    if (metrics_thread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(metrics_mutex);
            metrics_stop = true;
        }
        metrics_cv.notify_all();
        metrics_thread.join();
    }

    // Snapshot-shim accounting, taken while the sessions still own
    // their slots (closing invalidates them, which would always show
    // "0 slots live").
    const service::SnapshotPublisherStats snapshot_stats =
        daemon.stats().snapshot;

    // Self-scan: read the daemon's own table the way a consumer
    // would, and report the scan's health verdict — any degraded slot
    // (torn/writer-dead/corrupt) in the daemon's own log is a segment
    // integrity problem worth noticing before a consumer does.
    if (daemon.snapshotRegion() != nullptr) {
        shim::SnapshotReader self_reader(*daemon.snapshotRegion());
        shim::ScanHealth health;
        const auto live = self_reader.sessions(&health);
        std::printf("snapshot self-scan: %zu active slots, %zu empty, "
                    "%zu degraded (torn %zu, writer-dead %zu, "
                    "corrupt %zu)\n",
                    live.size(), health.empty, health.degraded(),
                    health.torn, health.writerDead, health.corrupt);
    }

    // 6. Close everything; score posteriors against ground truth and
    // report the backend's modeled window latency next to the
    // measured host EP time.
    TablePrinter table({"tenant", "slices", "windows", "ms/window",
                        "modeled ms", "queue ms", "post err %"});
    for (std::size_t t = 0; t < ids.size(); ++t) {
        const auto report = daemon.close(ids[t]);
        if (!report)
            continue;
        const auto mean = report->posterior.meanSeries(llc);
        double err = 0.0;
        for (std::size_t s = 0; s < mean.size(); ++s) {
            const double truth_val = truths[t].sliceTotal(s, llc);
            err += std::abs(mean[s] - truth_val) /
                   std::max(truth_val, 1.0);
        }
        table.addRow(admitted_tenants[t],
                     {static_cast<double>(report->stats.slicesAssembled),
                      static_cast<double>(report->stats.windowsRun),
                      1e3 * report->stats.windowSeconds.mean(),
                      1e3 * report->stats.modeledWindowSeconds.mean(),
                      1e3 * report->stats.backendQueueSeconds.mean(),
                      100.0 * err / static_cast<double>(mean.size())});
    }
    table.print(std::cout);

    if (subscription) {
        if (const auto sub_stats =
                daemon.subscriptionStats(*subscription)) {
            std::printf("subscription: %llu windows published, %llu "
                        "delivered, %llu dropped\n",
                        static_cast<unsigned long long>(
                            sub_stats->published),
                        static_cast<unsigned long long>(
                            sub_stats->delivered),
                        static_cast<unsigned long long>(
                            sub_stats->dropped));
        }
    }

    const service::ServiceStats stats = daemon.stats();
    if (snapshot_stats.enabled) {
        std::printf("snapshot shim \"%s\": %llu windows published, "
                    "%llu dropped, %zu/%zu slots live pre-close "
                    "(+%llu tail publishes from close)\n",
                    cfg.snapshot.shmName.empty()
                        ? "(in-process)"
                        : cfg.snapshot.shmName.c_str(),
                    static_cast<unsigned long long>(
                        snapshot_stats.publishes),
                    static_cast<unsigned long long>(
                        snapshot_stats.publishDrops),
                    snapshot_stats.slotsLive,
                    snapshot_stats.slotCapacity,
                    static_cast<unsigned long long>(
                        stats.snapshot.publishes -
                        snapshot_stats.publishes));
    }
    if (!stats.admission.empty()) {
        TablePrinter admission_table({"tenant", "sessions ok",
                                      "sessions rej", "records ok",
                                      "throttled", "shed"});
        for (const auto &row : stats.admission) {
            admission_table.addRow(
                row.tenant.empty() ? "(default)" : row.tenant,
                {static_cast<double>(row.stats.sessionsAdmitted),
                 static_cast<double>(row.stats.sessionsRejected),
                 static_cast<double>(row.stats.recordsAdmitted),
                 static_cast<double>(row.stats.recordsThrottled),
                 static_cast<double>(row.stats.recordsShed)});
        }
        std::printf("admission (modeled queue now %.2f ms):\n",
                    1e3 * stats.backendQueue.queueSeconds);
        admission_table.print(std::cout);
    }

    std::printf("backend %s: %llu windows, mean modeled %.2f ms "
                "(queue %.2f ms)\n",
                stats.backendName.c_str(),
                static_cast<unsigned long long>(
                    stats.backend.windowsExecuted),
                1e3 * stats.backend.modeledSeconds.mean(),
                1e3 * stats.backend.queueWaitSeconds.mean());
    std::printf("sessions: %llu opened, %llu closed; records: %llu "
                "ingested, %llu dropped; windows: %llu (%.1f EP "
                "sweeps/window)\n",
                static_cast<unsigned long long>(stats.sessionsOpened),
                static_cast<unsigned long long>(stats.sessionsClosed),
                static_cast<unsigned long long>(
                    stats.totals.recordsIngested),
                static_cast<unsigned long long>(
                    stats.totals.recordsDropped),
                static_cast<unsigned long long>(stats.totals.windowsRun),
                stats.totals.windowsRun
                    ? static_cast<double>(stats.totals.epSweeps) /
                          static_cast<double>(stats.totals.windowsRun)
                    : 0.0);

    if (metrics_every_ms > 0)
        printMetricsDigest("final");

    // Write the trace last: the close() loop above ran the tail
    // windows, so their spans are in the collector by now.
    if (!trace_out.empty()) {
        if (!trace.writeChromeTrace(trace_out)) {
            std::fprintf(stderr, "%s: cannot write trace to %s\n",
                         argv[0], trace_out.c_str());
            return 1;
        }
        std::printf("trace: %zu phase slices (%llu dropped) -> %s\n",
                    trace.eventCount(),
                    static_cast<unsigned long long>(trace.dropped()),
                    trace_out.c_str());
    }
    return 0;
}
