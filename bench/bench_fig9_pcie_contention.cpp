/**
 * @file
 * Reproduces Fig. 9 (right): GPU-to-GPU exchange bandwidth vs message
 * size, isolated and under contention with a NIC flow sharing the
 * PCIe switch uplink.
 *
 * Paper shape: isolated bandwidth grows from ~0 at 2^8 B messages and
 * saturates near 12 GB/s; contention costs up to ~1.8x at large
 * messages and nothing at tiny ones.
 *
 * Writes BENCH_fig9_pcie_contention.json (schema in docs/BENCH.md):
 * the bandwidth-vs-message-size sweep plus contention summary.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "mlsched/pcie.h"

using namespace bperf;

int
main()
{
    ml::PcieFabric fabric;

    std::vector<double> sizes_log2, isolated, contended, slowdown;
    for (int p = 8; p <= 22; p += 2) {
        const double msg = std::pow(2.0, p);
        const double demand = fabric.effectiveBandwidth(
            fabric.config().peakCopyGBps, msg);

        // Isolated: just the cross-socket GPU exchange.
        std::vector<ml::Flow> alone = {
            {ml::Node::Gpu1, ml::Node::Gpu2, demand}};
        const double iso = fabric.allocate(alone)[0];

        // Contention: a saturating NIC0 shuffle shares the switch-A
        // uplink with the exchange.
        std::vector<ml::Flow> both = {
            {ml::Node::Gpu1, ml::Node::Gpu2, demand},
            {ml::Node::Cpu0, ml::Node::Nic0,
             fabric.config().peakCopyGBps}};
        const double cont = fabric.allocate(both)[0];

        sizes_log2.push_back(p);
        isolated.push_back(iso);
        contended.push_back(cont);
        slowdown.push_back(cont > 0.0 ? iso / cont : 0.0);
    }

    printSeries(std::cout,
                "Fig. 9: GPU-GPU bandwidth vs message size (GB/s)",
                "log2(bytes)", sizes_log2,
                {"isolated", "contention", "slowdown_x"},
                {isolated, contended, slowdown});
    std::cout << "# paper: saturates ~12 GB/s isolated; contention "
                 "costs up to ~1.8x\n";

    // ------------------------------------------------------ JSON output
    bench::JsonWriter json;
    json.beginObject()
        .field("peak_copy_gbps", fabric.config().peakCopyGBps);
    json.beginArray("points");
    for (std::size_t i = 0; i < sizes_log2.size(); ++i) {
        json.beginObject()
            .field("log2_bytes", sizes_log2[i])
            .field("isolated_gbps", isolated[i])
            .field("contended_gbps", contended[i])
            .field("slowdown_x", slowdown[i])
            .endObject();
    }
    json.endArray();
    json.beginObject("contention")
        .field("saturation_gbps", isolated.back())
        .field("max_slowdown_x",
               *std::max_element(slowdown.begin(), slowdown.end()))
        .field("small_message_slowdown_x", slowdown.front())
        .endObject();
    json.endObject();
    if (!json.writeFile("BENCH_fig9_pcie_contention.json")) {
        std::cerr << "failed to write BENCH_fig9_pcie_contention.json\n";
        return 1;
    }
    std::cout << "wrote BENCH_fig9_pcie_contention.json\n";
    return 0;
}
