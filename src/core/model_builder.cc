#include "core/model_builder.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace bperf {
namespace core {

using graph::VarId;

WindowModel::WindowModel(const sim::MicroarchDescriptor &uarch,
                         const std::vector<sim::EventId> &events,
                         std::size_t num_slices, ModelConfig config,
                         const std::vector<double> *levels,
                         const std::vector<double> *normalizer)
    : uarch_(uarch), events_(events), numSlices_(num_slices),
      config_(config)
{
    bp_assert(!events_.empty(), "window needs at least one event");
    if (config_.includeLatent) {
        // Model every catalog event so any posterior can be polled.
        events_.clear();
        for (const auto &def : uarch_.events())
            events_.push_back(def.id);
    }
    rebuild(num_slices, levels, normalizer);
}

void
WindowModel::rebuild(std::size_t num_slices,
                     const std::vector<double> *levels,
                     const std::vector<double> *normalizer)
{
    bp_assert(num_slices >= 1, "window needs at least one slice");
    numSlices_ = num_slices;

    if (normalizer) {
        bp_assert(normalizer->size() == numSlices_,
                  "normalizer must cover the window");
        assignReuse(normalizer_, *normalizer);
        for (double n : normalizer_)
            bp_assert(n > 0.0, "normalizer values must be positive");
    } else {
        normalizer_.clear();
    }

    if (!config_.includeLatent && levels) {
        bp_assert(levels->size() == events_.size(),
                  "level hints must align with events");
        assignReuse(levels_, *levels);
    } else {
        if (levels_.capacity() < events_.size())
            ++grows_;
        levels_.clear();
        for (sim::EventId e : events_)
            levels_.push_back(uarch_.event(e).typicalPerSlice);
    }

    graph_.reset();
    build();
}

std::string_view
WindowModel::fmtName(std::string_view prefix, std::string_view base,
                     std::ptrdiff_t slice)
{
    char digits[24];
    std::string_view suffix;
    if (slice >= 0) {
        const auto [end, ec] =
            std::to_chars(digits, digits + sizeof(digits), slice);
        (void)ec;
        suffix = {digits, static_cast<std::size_t>(end - digits)};
    }
    const std::size_t needed = prefix.size() + base.size() +
                               (slice >= 0 ? 1 + suffix.size() : 0);
    if (nameBuf_.capacity() < needed)
        ++grows_;
    nameBuf_.clear();
    nameBuf_.append(prefix);
    nameBuf_.append(base);
    if (slice >= 0) {
        nameBuf_.push_back('@');
        nameBuf_.append(suffix);
    }
    return nameBuf_;
}

void
WindowModel::build()
{
    if (eventIndex_.capacity() < uarch_.events().size())
        ++grows_;
    eventIndex_.assign(uarch_.events().size(),
                       std::numeric_limits<std::size_t>::max());
    for (std::size_t i = 0; i < events_.size(); ++i)
        eventIndex_[events_[i]] = i;

    // Variables + weak priors centered on the current level.
    if (varOf_.capacity() < numSlices_ * events_.size())
        ++grows_;
    varOf_.assign(numSlices_ * events_.size(), graph::kNoVar);
    for (std::size_t t = 0; t < numSlices_; ++t) {
        for (std::size_t i = 0; i < events_.size(); ++i) {
            const auto &def = uarch_.event(events_[i]);
            const VarId v =
                graph_.addVariable(fmtName("", def.name,
                                           static_cast<std::ptrdiff_t>(t)),
                                   def.typicalPerSlice);
            varOf_[t * events_.size() + i] = v;
            graph_.addGaussianPrior(
                fmtName("prior:", def.name), v, levels_[i],
                config_.priorSigmaRel *
                    std::max(levels_[i], 0.05 * def.typicalPerSlice));
        }
    }

    // Invariant factors, per slice, for invariants fully covered by
    // the modeled event set.  Factor noise scales with the *current*
    // magnitude of the largest term (falling back to a fraction of
    // typical), so soft invariants keep their documented relative
    // slack whether the workload runs hot or cold.
    for (const auto &inv : uarch_.invariants()) {
        bool covered = true;
        double magnitude = 0.0;
        for (const auto &term : inv.terms) {
            const sim::EventId e = uarch_.idForRole(term.role);
            const std::size_t idx = eventIndex_[e];
            if (idx == std::numeric_limits<std::size_t>::max()) {
                covered = false;
                break;
            }
            const double level = std::max(
                levels_[idx], 0.25 * uarch_.event(e).typicalPerSlice);
            magnitude = std::max(magnitude, std::abs(term.coeff) * level);
        }
        if (!covered)
            continue;
        const double noise = std::max(inv.slackRel * magnitude, 1e-9);
        for (std::size_t t = 0; t < numSlices_; ++t) {
            if (termVars_.capacity() < inv.terms.size())
                ++grows_;
            if (termCoeffs_.capacity() < inv.terms.size())
                ++grows_;
            termVars_.clear();
            termCoeffs_.clear();
            for (const auto &term : inv.terms) {
                termVars_.push_back(var(uarch_.idForRole(term.role), t));
                termCoeffs_.push_back(term.coeff);
            }
            graph_.addLinearGaussian(
                fmtName("", inv.name, static_cast<std::ptrdiff_t>(t)),
                termVars_, termCoeffs_, 0.0, noise);
        }
    }

    // Temporal random-walk factors, scaled to the current level so
    // the walk stays informative for workloads far from typical
    // intensity.
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const auto &def = uarch_.event(events_[i]);
        const double level =
            std::max(levels_[i], 0.25 * def.typicalPerSlice);
        const double noise =
            std::max(config_.temporalSigmaRel * level, 1e-9);
        for (std::size_t t = 1; t < numSlices_; ++t) {
            const VarId walk_vars[2] = {var(events_[i], t),
                                        var(events_[i], t - 1)};
            const double walk_coeffs[2] = {1.0, -1.0};
            graph_.addLinearGaussian(
                fmtName("walk:", def.name,
                        static_cast<std::ptrdiff_t>(t)),
                walk_vars, walk_coeffs, 0.0, noise);
        }
    }

    // Ratio-walk factors: per-instruction ratios are more stable than
    // raw counts for instruction-tracking events (the instruction
    // mix), and the normalizer is measured exactly per slice.  Events
    // with their own independent dynamics (cache misses, DMA) are
    // excluded — dividing them by a varying instruction rate would
    // add noise.
    if (config_.ratioWalk && !normalizer_.empty()) {
        auto tracks_instructions = [](sim::Role role) {
            switch (role) {
              case sim::Role::Loads:
              case sim::Role::Stores:
              case sim::Role::Branches:
              case sim::Role::OtherOps:
              case sim::Role::BranchTaken:
              case sim::Role::BranchNotTaken:
              case sim::Role::UopsIssued:
              case sim::Role::UopsRetired:
              case sim::Role::ActiveCycles:
              case sim::Role::L1DAccess:
              case sim::Role::DtlbMiss:
              case sim::Role::ItlbMiss:
                return true;
              default:
                return false;
            }
        };
        for (std::size_t i = 0; i < events_.size(); ++i) {
            const auto &def = uarch_.event(events_[i]);
            if (def.fixed || !tracks_instructions(def.role))
                continue; // fixed counters are their own anchors
            const double level =
                std::max(levels_[i], 0.25 * def.typicalPerSlice);
            for (std::size_t t = 1; t < numSlices_; ++t) {
                const double n_prev = normalizer_[t - 1];
                const double n_cur = normalizer_[t];
                const double n_geo = std::sqrt(n_prev * n_cur);
                const double noise = std::max(
                    config_.ratioSigmaRel * level / n_geo, 1e-15);
                const VarId ratio_vars[2] = {var(events_[i], t),
                                             var(events_[i], t - 1)};
                const double ratio_coeffs[2] = {1.0 / n_cur,
                                                -1.0 / n_prev};
                graph_.addLinearGaussian(
                    fmtName("ratio_walk:", def.name,
                            static_cast<std::ptrdiff_t>(t)),
                    ratio_vars, ratio_coeffs, 0.0, noise);
            }
        }
    }
}

VarId
WindowModel::var(sim::EventId event, std::size_t slice) const
{
    bp_assert(slice < numSlices_, "slice out of window");
    bp_assert(event < eventIndex_.size(), "event out of catalog");
    const std::size_t idx = eventIndex_[event];
    if (idx == std::numeric_limits<std::size_t>::max())
        return graph::kNoVar;
    return varOf_[slice * events_.size() + idx];
}

void
WindowModel::addMeasurement(sim::EventId event, std::size_t slice,
                            const MeasurementModel &m)
{
    const VarId v = var(event, slice);
    bp_assert(v != graph::kNoVar, "measurement for unmodeled event");
    graph_.addStudentT(fmtName("meas:", uarch_.event(event).name,
                               static_cast<std::ptrdiff_t>(slice)),
                       v, m.loc, m.scale, m.nu);
}

void
WindowModel::addCarryPriors(const std::vector<CarryPrior> &priors)
{
    for (const auto &p : priors) {
        const VarId v = var(p.event, 0);
        if (v == graph::kNoVar)
            continue;
        graph_.addGaussianPrior(fmtName("carry:",
                                        uarch_.event(p.event).name),
                                v, p.mean, p.stddev);
    }
}

} // namespace core
} // namespace bperf
