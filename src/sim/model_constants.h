/**
 * @file
 * Performance-model constants shared between the ground-truth
 * generator and the invariant catalog.
 *
 * These play the role of the microarchitecture-manual parameters that
 * tie events together (pipeline widths, miss penalties, clock ratios).
 * Keeping them in one place guarantees the generator and the factor
 * graph agree on the algebra.
 */

#ifndef BPERF_SIM_MODEL_CONSTANTS_H
#define BPERF_SIM_MODEL_CONSTANTS_H

namespace bperf {
namespace sim {

/** Micro-ops issued per retired instruction (front-end cracking). */
constexpr double kUopPerInst = 1.3;

/** Micro-ops flushed per mispredicted branch. */
constexpr double kUopFlushPerBrMiss = 12.0;

/** Recovery cycles charged per mispredicted branch. */
constexpr double kBrMissPenalty = 14.0;

/** Stall cycles charged per L2 miss that hits in LLC. */
constexpr double kL2MissPenalty = 12.0;

/** Stall cycles charged per LLC miss (DRAM access). */
constexpr double kLlcMissPenalty = 90.0;

/** Core-clock to reference-clock ratio. */
constexpr double kRefClockRatio = 1.04;

/** DRAM transaction granule in bytes (CAS burst). */
constexpr double kDramGranuleBytes = 64.0;

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_MODEL_CONSTANTS_H
