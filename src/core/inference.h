/**
 * @file
 * Sliding-window inference orchestration (paper section 4.3).
 *
 * Measurements stream in slice by slice; the engine partitions them
 * into windows of k slices, runs EP on each window's factor graph,
 * and carries the trailing posterior forward as the next window's
 * prior — the compositional chaining of inference across time slices
 * that the paper describes.
 *
 * Two entry points share one window runner:
 *   - WindowedInference consumes slices incrementally (push/finish)
 *     and only ever buffers the last window's worth of measurements —
 *     the streaming form the monitoring service (src/service/) runs on
 *     live sessions;
 *   - InferenceEngine::infer replays a complete measurement run
 *     through the same streaming path, so batch and streaming
 *     posteriors are identical by construction.
 */

#ifndef BPERF_CORE_INFERENCE_H
#define BPERF_CORE_INFERENCE_H

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/ep.h"
#include "core/model_builder.h"
#include "sim/microarch.h"
#include "sim/perf_session.h"

namespace bperf {
namespace core {

/** Engine configuration. */
struct InferenceConfig
{
    /**
     * Slices jointly inferred per window (k of section 4.3).  The
     * default 0 adapts k to the schedule period of the measurement
     * run (clamped to [3, 8]), so every multiplexed event has at
     * least one observation inside each window.
     */
    std::size_t windowSlices = 0;

    EpConfig ep;
    ModelConfig model;

    /**
     * Variance inflation applied to carried posteriors so the prior
     * of a new window does not double-count old data.
     */
    double carryVarInflation = 2.0;

    /**
     * Posterior history retained by the streaming engine, in slices;
     * 0 keeps the full series (batch replay, short sessions).  A
     * bounded value caps a long-lived session's memory: the series
     * then covers only the last retainSlices inferred slices (plus
     * anything a future window may still rewrite), and results carry
     * the index of their first retained slice.
     */
    std::size_t retainSlices = 0;

    /**
     * Execution backend completed windows are accounted against
     * (non-owning, shared across sessions; the service wires it).
     * nullptr stamps host timing without any shared accounting —
     * numerics are identical either way, backends only model where
     * the window would have run and what that costs.
     */
    InferenceBackend *backend = nullptr;

    /** Session key stamped on backend jobs (the service sets this to
     * the session id; 0 outside the service). */
    std::uint64_t backendSessionKey = 0;
};

/** Posterior of one event at one slice. */
struct PosteriorPoint
{
    double mean = 0.0;
    double stddev = 0.0;
};

/** Full posterior time series for a run. */
struct InferenceResult
{
    std::vector<sim::EventId> events;
    /**
     * series[i][t] is the posterior of events[i] at slice
     * firstSlice + t (firstSlice is 0 unless the producing engine ran
     * with bounded retention, InferenceConfig::retainSlices).
     */
    std::vector<std::vector<PosteriorPoint>> series;
    std::size_t firstSlice = 0;

    std::size_t windowsRun = 0;
    std::size_t epSweepsTotal = 0;
    /** Cumulative EP op counts over the run's windows (the bench's
     * per-window cost decomposition; see EpResult). */
    std::size_t epMomentEvaluations = 0;
    std::size_t epRank1Updates = 0;
    std::size_t epFullSolves = 0;
    std::size_t epBlockFlushes = 0;
    std::size_t epDeferredUpdates = 0;
    std::size_t epSkippedUpdates = 0;
    double wallSeconds = 0.0;
    /**
     * Cumulative EpWorkspace buffer growths across the run's windows.
     * After the warm-up window this stops growing: steady-state EP
     * runs reuse the workspace (the O(n^2) solver working set)
     * without allocating.
     */
    std::size_t epWorkspaceAllocations = 0;
    /**
     * Cumulative buffer growths of the window model (factor graph
     * slots, names, term scratch) and engine-side staging (levels,
     * normalizer, EP result vectors).  Like the workspace counter it
     * stops growing after warm-up: the model is rebuilt in place per
     * window without allocating.
     */
    std::size_t modelAllocations = 0;

    /** Backend that executed the run's windows ("host" when none was
     * configured). */
    std::string backendName = "host";
    /**
     * Modeled execution of each window, in run order (capped to the
     * most recent retainSlices entries under bounded retention).  On
     * the host path modeledSeconds is the measured EP wall time; on
     * the accelerator path it is queue wait + transfer + compute of
     * the simulated engine pool.
     */
    std::vector<WindowExecution> windowExecutions;

    /** Posterior-mean series for one event (the paper's MLE output). */
    std::vector<double> meanSeries(sim::EventId event) const;

    /** Posterior-stddev series for one event. */
    std::vector<double> stddevSeries(sim::EventId event) const;
};

/**
 * One slice's measurements for every monitored event, aligned with
 * the engine's event list (samples[i] belongs to events()[i]).
 * Unobserved events carry a default-constructed (observed = false)
 * sample.
 */
using SliceMeasurements = std::vector<sim::SliceSample>;

/**
 * Streaming sliding-window EP over an unbounded slice sequence.
 *
 * Slices are pushed one at a time; whenever a full window of k slices
 * has accumulated past the next window start, EP runs eagerly and the
 * trailing posterior is carried forward as the next window's prior.
 * Only the slices the next window can still reach are retained, so
 * memory for measurements is O(k · events), independent of stream
 * length.  finish() drains the tail with the (possibly truncated)
 * windows a batch run would produce.
 *
 * Not thread-safe: one streaming engine belongs to one session and is
 * driven by one worker at a time (the service layer guarantees this).
 */
class WindowedInference
{
  public:
    /**
     * @param schedule_period  Length of the multiplexing schedule the
     *        measurements rotate over; used to adapt the window size
     *        when config.windowSlices is 0 (see InferenceConfig).
     */
    WindowedInference(const sim::MicroarchDescriptor &uarch,
                      std::vector<sim::EventId> events,
                      InferenceConfig config = {},
                      std::size_t schedule_period = 0);

    /**
     * Append the next slice's measurements and run any window that
     * became ready.  Returns the number of windows run.
     */
    std::size_t push(const SliceMeasurements &slice);

    /**
     * Run EP over the remaining tail (truncated windows).  Call once
     * after the last push; further pushes are rejected.  Returns the
     * number of windows run.
     */
    std::size_t finish();

    const std::vector<sim::EventId> &events() const { return events_; }
    const InferenceConfig &config() const { return config_; }

    /** Window length k in slices (resolved from the config). */
    std::size_t windowSlices() const { return k_; }

    /**
     * Offset between engine-local slice indices and the producer's
     * absolute slice clock; added to backend job release times so a
     * stream that started mid-run keeps absolute release times.
     * Posterior series indexing stays engine-local.
     */
    void setSliceOrigin(std::size_t origin) { sliceOrigin_ = origin; }
    std::size_t sliceOrigin() const { return sliceOrigin_; }

    /**
     * Earliest absolute slice a window completed now may be released
     * at (monotone; lower values are ignored).  A window is dispatched
     * to the backend when the record completing it arrives, so a
     * stream that stalled (backpressure, admission shedding) and then
     * jumped forward releases its catch-up windows at the jump — not
     * retroactively at slice indices whose wall-clock time already
     * passed, which would charge them the whole interim backlog as
     * queue wait.
     */
    void setReleaseFloor(std::size_t absolute_slice)
    {
        releaseFloor_ = std::max(releaseFloor_, absolute_slice);
    }

    /**
     * Phase stamps of the record whose arrival is driving the
     * current push() (telemetry::nowNanos() base; 0 = unobserved).
     * The service's streaming layer sets them before each push so
     * windows completed by that record carry ring-to-EP latency in
     * their WindowSpan; finish()-tail windows keep zero stamps.
     */
    void setRecordStamps(std::uint64_t ingest_nanos,
                         std::uint64_t assemble_nanos)
    {
        recIngestNanos_ = ingest_nanos;
        recAssembleNanos_ = assemble_nanos;
    }

    /** Total slices pushed so far. */
    std::size_t slicesSeen() const { return numSlices_; }

    /** Slices with a posterior (prefix of the stream). */
    std::size_t slicesCovered() const { return coveredEnd_; }

    /** First slice still retained in series() (0 without retention). */
    std::size_t firstRetainedSlice() const { return seriesBase_; }

    /** series()[i][t]: posterior of events()[i] at slice
     * firstRetainedSlice() + t; valid while that index is below
     * slicesCovered(). */
    const std::vector<std::vector<PosteriorPoint>> &series() const
    {
        return series_;
    }

    /** Most recent posterior of events()[event_index]. */
    PosteriorPoint latest(std::size_t event_index) const;

    /**
     * Posterior summary at the most recent inferred slice: resizes
     * `out` to events().size() and fills it with each event's latest
     * posterior, reusing out's storage (the allocation-free summary
     * the service's WindowUpdate publishing and the snapshot shim
     * both consume).  Returns false (out untouched) before the first
     * inferred slice.
     */
    bool latestPosteriors(std::vector<PosteriorPoint> &out) const;

    std::size_t windowsRun() const { return windowsRun_; }
    std::size_t epSweepsTotal() const { return epSweepsTotal_; }

    /**
     * Cumulative buffer-growth events of the reused EP workspace.
     * Constant across steady-state windows (the zero-allocation
     * invariant the service tests assert).
     */
    std::size_t epWorkspaceAllocations() const
    {
        return epWorkspace_.totalAllocations();
    }

    /**
     * Cumulative buffer-growth events of the reused window model and
     * engine staging buffers (see InferenceResult::modelAllocations).
     * Constant across steady-state windows.
     */
    std::size_t modelAllocations() const
    {
        return (model_ ? model_->bufferGrows() : 0) + stagingGrows_;
    }

    /** Cumulative wall time spent inside window EP runs. */
    double inferSeconds() const { return inferSeconds_; }

    /** Wall time of each window run since the last call (latency
     * sampling hook for the service's statistics). */
    std::vector<double> takeWindowSeconds();

    /** Modeled backend execution of each window run since the last
     * call (the service's modeled-latency statistics hook). */
    std::vector<WindowExecution> takeWindowExecutions();

    /** Assemble the run's result (moves the retained posterior
     * series).  Requires finish(); the engine is spent afterwards. */
    InferenceResult takeResult();

  private:
    /** Run one window of w_len slices starting at nextStart_. */
    void runWindow(std::size_t w_len);

    /** Measurements of absolute slice t (t within the live buffer). */
    const SliceMeasurements &slice(std::size_t t) const;

    const sim::MicroarchDescriptor &uarch_;
    std::vector<sim::EventId> events_;
    InferenceConfig config_;
    std::size_t k_ = 0;      // window length, slices
    std::size_t stride_ = 0; // window start spacing

    /** Live measurement buffer: absolute slices
     * [bufferBase_, bufferBase_ + buffer_.size()). */
    std::deque<SliceMeasurements> buffer_;
    std::size_t bufferBase_ = 0;

    std::size_t numSlices_ = 0;  // total pushed
    std::size_t nextStart_ = 0;  // next window's first slice
    std::size_t coveredEnd_ = 0; // posterior exists for [0, coveredEnd_)
    std::size_t sliceOrigin_ = 0;
    std::size_t releaseFloor_ = 0;
    std::uint64_t recIngestNanos_ = 0;
    std::uint64_t recAssembleNanos_ = 0;
    bool finished_ = false;

    /** Reused across windows so steady-state EP runs allocate nothing. */
    EpWorkspace epWorkspace_;
    /** Window model rebuilt in place each window (buffers recycled);
     * constructed lazily on the first window. */
    std::optional<WindowModel> model_;
    /** Reused per-window staging: level hints, normalizer series and
     * the EP result vectors. */
    std::vector<double> levels_;
    std::vector<double> normalizer_;
    EpResult epResult_;
    ExpectationPropagation ep_;
    /** Buffer-growth events of the staging vectors above. */
    std::size_t stagingGrows_ = 0;

    std::vector<CarryPrior> carry_;
    /** Retained posterior rows: absolute slice seriesBase_ + t. */
    std::vector<std::vector<PosteriorPoint>> series_;
    std::size_t seriesBase_ = 0;

    std::size_t windowsRun_ = 0;
    std::size_t epSweepsTotal_ = 0;
    /** Cumulative EP op counters (InferenceResult mirrors). */
    std::size_t epMomentEvaluations_ = 0;
    std::size_t epRank1Updates_ = 0;
    std::size_t epFullSolves_ = 0;
    std::size_t epBlockFlushes_ = 0;
    std::size_t epDeferredUpdates_ = 0;
    std::size_t epSkippedUpdates_ = 0;
    double inferSeconds_ = 0.0;
    std::vector<double> pendingWindowSeconds_;

    /** Per-window backend executions: the full run (for takeResult)
     * and the tail not yet taken by takeWindowExecutions(). */
    std::vector<WindowExecution> executions_;
    std::vector<WindowExecution> pendingExecutions_;
};

/**
 * Runs BayesPerf inference over a complete measurement run by
 * replaying it through the streaming engine.
 */
class InferenceEngine
{
  public:
    InferenceEngine(const sim::MicroarchDescriptor &uarch,
                    InferenceConfig config = {});

    /** Infer posteriors for every monitored event at every slice. */
    InferenceResult infer(const sim::PerfResult &measurements) const;

    const InferenceConfig &config() const { return config_; }

  private:
    const sim::MicroarchDescriptor &uarch_;
    InferenceConfig config_;
};

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_INFERENCE_H
