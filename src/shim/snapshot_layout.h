/**
 * @file
 * Wire layout of the posterior snapshot table — the paper's consumer
 * shim.  One writer (the monitoring daemon) keeps a fixed table of
 * per-session slots fresh inside a shared-memory segment; any number
 * of consumer processes map the segment read-only and poll the latest
 * corrected-counter posteriors without ever taking a lock or making
 * an RPC.
 *
 * Concurrency design: every slot is a seqlock.  The writer bumps the
 * slot's sequence word to odd, stores the payload, and bumps it back
 * to even; a reader snapshots the sequence, copies the payload, and
 * retries if the sequence moved or was odd (a torn read).  All
 * payload cells are lock-free relaxed atomics, so the protocol is
 * simultaneously
 *   - wait-free for the writer (a publish is a bounded store burst),
 *   - obstruction-free for readers (bounded retries, no writer
 *     blocking), and
 *   - data-race-free in the C++ memory model (TSan-clean for the
 *     in-process variant; the cross-process variant is the same code
 *     over an mmap'd segment).
 *
 * Everything in the segment is a 64-bit word: integers directly,
 * doubles as their IEEE-754 bit pattern (bit-preserving, so a reader
 * observes posteriors bit-identical to the in-process subscription
 * stream).  The layout is versioned; readers refuse segments whose
 * magic/version/geometry do not match what they were compiled with.
 *
 * Layout v2 builds integrity into the protocol, in the spirit of
 * SEU-hardening via redundancy (ASPIS): a slot carries a 64-bit
 * checksum over its payload words (written inside the seqlock
 * critical section, verified on every read — a flipped payload word
 * under a stable even sequence is reported, never served), the
 * header's geometry words are duplicated and checksummed (a flipped
 * `slotStride`/`slotCount` is detected — or repaired from the copy —
 * instead of trusted), and the header carries a writer heartbeat
 * stamp so readers can tell a dead daemon from an idle one at region
 * granularity.
 */

#ifndef BPERF_SHIM_SNAPSHOT_LAYOUT_H
#define BPERF_SHIM_SNAPSHOT_LAYOUT_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bperf {
namespace shim {

/** Every cell of the segment: a lock-free 64-bit atomic word. */
using Word = std::atomic<std::uint64_t>;

static_assert(sizeof(Word) == sizeof(std::uint64_t),
              "snapshot layout requires plain 8-byte atomic words");
static_assert(Word::is_always_lock_free,
              "snapshot layout requires lock-free 64-bit atomics");

/** "BPSNPSHM" — identifies an initialised snapshot segment. */
inline constexpr std::uint64_t kSnapshotMagic = 0x4250534e5053484dull;

/** Bumped on any incompatible layout change.  v2: per-slot payload
 * checksums, duplicated-and-checksummed header geometry, writer
 * heartbeat word. */
inline constexpr std::uint64_t kSnapshotLayoutVersion = 2;

/**
 * The shim's 64-bit word mixer (splitmix64 finalizer): full-avalanche,
 * so a single flipped payload bit flips ~half the checksum bits.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Seed of every chained checksum (an empty chain is never 0). */
inline constexpr std::uint64_t kChecksumSeed = 0x8f3a91c2d5e70b64ull;

/**
 * Chain one word into a running checksum.  Order-sensitive (the odd
 * constant breaks xor symmetry), so swapped words are detected too.
 * Writer and reader must fold the exact same word sequence.
 */
inline std::uint64_t
chainChecksum(std::uint64_t acc, std::uint64_t word)
{
    return mix64(acc ^ word) + 0x9e3779b97f4a7c15ull;
}

/** Store a double's bit pattern in a word (bit-preserving). */
inline std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Recover a double from its stored bit pattern. */
inline double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/**
 * The shim's time base: steady_clock (CLOCK_MONOTONIC) nanoseconds.
 * Writers stamp publishes with it and readers subtract their own
 * reading to bound staleness, so BOTH sides must use this one helper
 * — a clock mismatch would silently skew every age computation
 * across the process boundary.
 */
inline std::uint64_t
steadyNowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Segment header (offset 0).  geometry fields are written once at
 * creation and read-only afterwards; `magic` is stored *last* with
 * release ordering, so an attaching reader that observes the magic
 * also observes a fully initialised geometry.
 *
 * The geometry words {layoutVersion, slotCount, maxEvents, slotStride}
 * exist twice, each copy guarded by a chained checksum, so a reader
 * never computes slot addresses from a flipped word: it uses whichever
 * copy validates (primary preferred) and refuses the segment when
 * neither does (AttachStatus::GeometryCorrupt).
 */
struct RegionHeader
{
    Word magic;         ///< kSnapshotMagic once the segment is ready.
    Word layoutVersion; ///< kSnapshotLayoutVersion of the writer.
    Word slotCount;     ///< Session slots in the table.
    Word maxEvents;     ///< Posterior entries per slot.
    Word slotStride;    ///< Bytes between consecutive slots.
    Word publishes;     ///< Total publishes across all slots (live).

    /** Writer liveness: steady-clock stamp of the writer's latest
     * publish or explicit heartbeat() — readers subtract their own
     * clock to tell a dead daemon from an idle one without waiting on
     * any single slot. */
    Word heartbeatNanos;

    /** chainChecksum over {layoutVersion, slotCount, maxEvents,
     * slotStride}, in that order. */
    Word geometryChecksum;

    /** Redundant copy of the geometry words + its own checksum. */
    Word layoutVersionDup;
    Word slotCountDup;
    Word maxEventsDup;
    Word slotStrideDup;
    Word geometryChecksumDup;
};

/** Fold the four geometry words into their guard checksum. */
inline std::uint64_t
geometryChecksum(std::uint64_t version, std::uint64_t slots,
                 std::uint64_t max_events, std::uint64_t stride)
{
    std::uint64_t acc = kChecksumSeed;
    acc = chainChecksum(acc, version);
    acc = chainChecksum(acc, slots);
    acc = chainChecksum(acc, max_events);
    return chainChecksum(acc, stride);
}

/** One posterior entry of one slot: event id + mean/stddev bits. */
struct SlotEvent
{
    Word event;      ///< sim::EventId, widened to 64 bits.
    Word meanBits;   ///< Posterior mean (double bits).
    Word stddevBits; ///< Posterior stddev (double bits).
};

/**
 * Fixed head of one session slot; `maxEvents` SlotEvent entries
 * follow immediately after.  Everything below `seq` is seqlock
 * payload: only valid when read under a stable even sequence.
 */
struct SlotHeader
{
    /** Seqlock sequence: odd while a write is in flight; 0 means the
     * slot has never been published. */
    Word seq;

    /** chainChecksum over the closing (even) sequence value followed
     * by every payload word below, in declaration order, then the
     * `eventCount` trailing SlotEvent words in order.  Written inside
     * the seqlock critical section; a reader that copies a stable
     * even-sequence payload whose checksum does not match reports
     * ReadStatus::Corrupt — a flipped bit is detected, never served. */
    Word checksum;

    Word active;       ///< 1 while a live session owns the slot.
    Word sessionId;    ///< Owning session.
    Word windowIndex;  ///< Per-session window counter (completion order).
    Word endSlice;     ///< Slice whose arrival completed the window.
    Word eventCount;   ///< Valid SlotEvent entries (<= maxEvents).
    Word publishNanos; ///< steady_clock stamp of the publish (staleness).
    Word engineId;     ///< Backend engine that served the window.
    Word queueWaitBits; ///< WindowExecution.queueWaitSeconds (double bits).
    Word serviceBits;   ///< WindowExecution.serviceSeconds (double bits).
    Word transferBits;  ///< WindowExecution.transferSeconds (double bits).
    Word modeledBits;   ///< WindowExecution.modeledSeconds (double bits).

    /** Trailing posterior entries (writer-side view). */
    SlotEvent *events() noexcept
    {
        return reinterpret_cast<SlotEvent *>(this + 1);
    }
    const SlotEvent *events() const noexcept
    {
        return reinterpret_cast<const SlotEvent *>(this + 1);
    }
};

static_assert(sizeof(RegionHeader) % sizeof(Word) == 0, "word layout");
static_assert(sizeof(SlotHeader) % sizeof(Word) == 0, "word layout");
static_assert(sizeof(SlotEvent) % sizeof(Word) == 0, "word layout");

/** Fixed payload words a slot checksum covers (every SlotHeader word
 * below `checksum`, in declaration order). */
inline constexpr std::size_t kSlotFixedPayloadWords = 11;

/**
 * The slot checksum both sides must compute: the closing (even)
 * sequence value, the kSlotFixedPayloadWords fixed payload words,
 * then 3 * event_count trailing SlotEvent words.  Binding the
 * sequence value in means even a flipped sequence word (even -> other
 * even) cannot revalidate a stale payload.
 */
inline std::uint64_t
slotChecksum(std::uint64_t even_seq, const std::uint64_t *fixed_words,
             const std::uint64_t *event_words, std::size_t event_count)
{
    std::uint64_t acc = chainChecksum(kChecksumSeed, even_seq);
    for (std::size_t i = 0; i < kSlotFixedPayloadWords; ++i)
        acc = chainChecksum(acc, fixed_words[i]);
    for (std::size_t i = 0; i < 3 * event_count; ++i)
        acc = chainChecksum(acc, event_words[i]);
    return acc;
}

/** Byte geometry of a segment; identical for writer and readers. */
struct RegionLayout
{
    std::size_t headerBytes = 0; ///< Header, rounded to a cache line.
    std::size_t slotStride = 0;  ///< Per-slot bytes, cache-line rounded.
    std::size_t totalBytes = 0;  ///< Whole segment.

    static RegionLayout compute(std::size_t slots, std::size_t max_events)
    {
        constexpr std::size_t kLine = 64;
        auto round = [](std::size_t n) {
            return (n + kLine - 1) / kLine * kLine;
        };
        RegionLayout layout;
        layout.headerBytes = round(sizeof(RegionHeader));
        layout.slotStride =
            round(sizeof(SlotHeader) + max_events * sizeof(SlotEvent));
        layout.totalBytes =
            layout.headerBytes + slots * layout.slotStride;
        return layout;
    }
};

/** Slot `index` of a mapped segment (writer-side, mutable view). */
inline SlotHeader *
slotAt(std::byte *base, const RegionLayout &layout, std::size_t index)
{
    return reinterpret_cast<SlotHeader *>(
        base + layout.headerBytes + index * layout.slotStride);
}

/** Slot `index` of a mapped segment (reader-side view). */
inline const SlotHeader *
slotAt(const std::byte *base, const RegionLayout &layout,
       std::size_t index)
{
    return reinterpret_cast<const SlotHeader *>(
        base + layout.headerBytes + index * layout.slotStride);
}

} // namespace shim
} // namespace bperf

#endif // BPERF_SHIM_SNAPSHOT_LAYOUT_H
