/**
 * @file
 * Small dense matrix with the linear algebra the library needs:
 * Cholesky and partial-pivot LU solves, matrix products, transpose.
 *
 * Used by exact linear-Gaussian inference (graph/exact), collaborative
 * filtering, and the MLP in mlsched.  Not meant for large matrices.
 */

#ifndef BPERF_COMMON_MATRIX_H
#define BPERF_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

namespace bperf {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix filled with `fill`. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /**
     * Reshape to rows x cols and fill every entry with `fill`.
     * Allocation-free when the existing storage capacity suffices
     * (capacity() never shrinks), which lets hot loops reuse one
     * Matrix across solves of equal size.
     */
    void reset(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Element storage capacity (for allocation accounting). */
    std::size_t capacity() const { return data_.capacity(); }

    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /**
     * Raw row-major storage, element (r, c) at data()[r * cols() + c].
     * No bounds checks — for hot loops where the per-element
     * bp_assert of operator() costs more than the arithmetic.
     */
    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(double scalar) const;

    Matrix transpose() const;

    /** Matrix-vector product. Requires v.size() == cols(). */
    std::vector<double> apply(const std::vector<double> &v) const;

    /**
     * Solve A x = b for symmetric positive-definite A via Cholesky.
     * Dies (panic) if the matrix is not SPD within tolerance.
     */
    std::vector<double> solveCholesky(const std::vector<double> &b) const;

    /**
     * Solve A x = b via LU with partial pivoting.
     * Dies (panic) if the matrix is singular within tolerance.
     */
    std::vector<double> solveLU(const std::vector<double> &b) const;

    /** Inverse via LU; requires a square non-singular matrix. */
    Matrix inverse() const;

    /**
     * Inverse of a symmetric positive-definite matrix via a single
     * Cholesky factorization (O(n^3) total, unlike column-by-column
     * solves).  Dies if the matrix is not SPD within tolerance.
     */
    Matrix choleskyInverse() const;

    /**
     * choleskyInverse() writing into `out`, with the factorization
     * scratch kept in `lscratch` (two n*n buffers).  Allocation-free
     * when out and lscratch already have the capacity for n*n.
     */
    void choleskyInverseInto(Matrix &out, std::vector<double> &lscratch)
        const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace bperf

#endif // BPERF_COMMON_MATRIX_H
