/**
 * @file
 * Kernel-to-userspace sample ring buffer.
 *
 * Models the perf mmap ring: the kernel enqueues sample records, the
 * monitoring process (or the BayesPerf shim/accelerator) dequeues
 * them.  New samples are dropped when the buffer is full, which is
 * exactly perf's backpressure behaviour (section 5 of the paper).
 */

#ifndef BPERF_SIM_RING_BUFFER_H
#define BPERF_SIM_RING_BUFFER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/microarch.h"

namespace bperf {
namespace sim {

/** One sample record, as written by the PMI handler. */
struct PerfRecord
{
    std::uint32_t slice = 0;
    EventId event = kNoEvent;
    double value = 0.0;
    double timeEnabled = 0.0;
    double timeRunning = 0.0;
};

/**
 * Fixed-capacity single-producer single-consumer FIFO of PerfRecords.
 */
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity);

    /** Enqueue; returns false (and counts a drop) when full. */
    bool push(const PerfRecord &rec);

    /** Dequeue the oldest record, if any. */
    std::optional<PerfRecord> pop();

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buffer_.size(); }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == buffer_.size(); }

    /** Number of records dropped due to backpressure. */
    std::uint64_t dropped() const { return dropped_; }

    /** Total records ever enqueued successfully. */
    std::uint64_t pushed() const { return pushed_; }

  private:
    std::vector<PerfRecord> buffer_;
    std::size_t head_ = 0; // next pop
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t pushed_ = 0;
};

} // namespace sim
} // namespace bperf

#endif // BPERF_SIM_RING_BUFFER_H
