# Empty dependencies file for perf_daemon.
# This may be replaced when dependencies are built.
