/**
 * @file
 * Timing model of the BayesPerf FPGA accelerator (paper section 5).
 *
 * The accelerator runs Alg. 1 with two levels of parallelism: k EP
 * engines refresh the sites of k time-slice partitions concurrently,
 * and each tilted-moment estimate is delegated to a pool of
 * AcMC2-generated MCMC sampler IPs over a butterfly NoC.  A global
 * controller applies the synchronous g(theta) update between sweeps.
 * The model accounts for sampler pipeline cycles, NoC round trips,
 * DRAM streaming of measurements, controller synchronization, and the
 * host interface (CAPI cache snooping on ppc64 vs driver-initiated
 * PCIe DMA on x86, which costs the extra latency the paper reports).
 */

#ifndef BPERF_ACCEL_ACCELERATOR_H
#define BPERF_ACCEL_ACCELERATOR_H

#include <cstdint>

#include "accel/noc.h"

namespace bperf {
namespace accel {

/** Host-interface flavour. */
enum class HostInterface {
    Capi,    // coherent, snoops ring-buffer cache lines (ppc64)
    PcieDma, // driver-initiated DMA (x86)
};

/** Static accelerator configuration. */
struct AcceleratorConfig
{
    double clockGhz = 0.25; // 250 MHz
    std::size_t epEngines = 4;
    std::size_t mcmcSamplers = 12;
    NocConfig noc;

    /** Sampler pipeline: cycles until the first sample emerges. */
    std::uint64_t samplerWarmupCycles = 24;
    /** Initiation interval: cycles per additional sample. */
    std::uint64_t samplerCyclesPerSample = 1;

    /** EP-engine cycles to form one cavity / apply one site update. */
    std::uint64_t cavityCycles = 40;
    /** Controller cycles for the synchronous global update per sweep. */
    std::uint64_t controllerSyncCycles = 220;

    /** DRAM: bytes per cycle available to stream inputs / g(theta). */
    double dramBytesPerCycle = 32.0;

    /** Host interface parameters. */
    HostInterface hostInterface = HostInterface::Capi;
    /** CAPI snoop: cycles to observe a ring-buffer cache line. */
    std::uint64_t capiSnoopCycles = 80;
    /** PCIe DMA: cycles for the driver-initiated transfer setup. */
    std::uint64_t pcieDoorbellCycles = 600;
    /** PCIe DMA: payload transfer cycles per KiB. */
    std::uint64_t pcieCyclesPerKiB = 34;
};

/** Shape of one inference workload (a window refresh). */
struct InferenceJob
{
    std::size_t numVariables = 0;
    std::size_t numSites = 0;     // Student-t measurement factors
    std::size_t numSweeps = 4;    // EP sweeps until convergence
    std::size_t samplesPerSite = 400;
    std::size_t inputBytes = 4096; // measurements + g(theta) stream
    /**
     * Critical-path sites of the host's partition plan
     * (graph/partition.h) when the window ran partitioned; the
     * engines follow the same plan, so the per-engine serial work is
     * this instead of an even ceil-division.  0 = unpartitioned.
     */
    std::size_t maxPartitionSites = 0;
};

/** Result of simulating one job. */
struct AcceleratorTiming
{
    std::uint64_t totalCycles = 0;
    double totalSeconds = 0.0;
    std::uint64_t hostTransferCycles = 0;
    double samplerUtilization = 0.0; // busy fraction of sampler pool
    double epEngineUtilization = 0.0;
    std::uint64_t nocMessages = 0;
};

/**
 * Accelerator timing simulator.
 */
class Accelerator
{
  public:
    explicit Accelerator(AcceleratorConfig config = {});

    const AcceleratorConfig &config() const { return config_; }

    /** Simulate one window refresh end to end. */
    AcceleratorTiming simulate(const InferenceJob &job) const;

    /**
     * Latency (host CPU cycles, at `host_clock_ghz`) for the
     * monitoring application to poll one posterior.  The accelerator
     * pre-computes posteriors into host memory, so a poll is a host
     * ring-buffer read plus a small API shim overhead — the paper's
     * <2% over native reads.
     */
    std::uint64_t pollLatencyHostCycles(double host_clock_ghz,
                                        std::uint64_t native_read_cycles)
        const;

  private:
    AcceleratorConfig config_;
};

} // namespace accel
} // namespace bperf

#endif // BPERF_ACCEL_ACCELERATOR_H
