# Empty compiler generated dependencies file for bench_fig9_pcie_contention.
# This may be replaced when dependencies are built.
