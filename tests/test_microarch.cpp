/**
 * @file
 * Tests for the microarchitecture descriptors, parameterized over
 * both architectures.
 */

#include <gtest/gtest.h>

#include "sim/microarch.h"
#include "sim/model_constants.h"

namespace bperf {
namespace sim {
namespace {

class MicroarchTest : public ::testing::TestWithParam<const char *>
{
  protected:
    MicroarchDescriptor
    uarch() const
    {
        return std::string(GetParam()) == "x86" ? makeX86Skylake()
                                                : makePower9();
    }
};

TEST_P(MicroarchTest, EveryRoleRegisteredExactlyOnce)
{
    const auto u = uarch();
    EXPECT_EQ(u.events().size(), kNumRoles);
    for (std::size_t r = 0; r < kNumRoles; ++r) {
        const auto role = static_cast<Role>(r);
        EXPECT_EQ(u.eventForRole(role).role, role);
    }
}

TEST_P(MicroarchTest, FixedCounterSetup)
{
    const auto u = uarch();
    const auto fixed = u.fixedEvents();
    EXPECT_EQ(fixed.size(), u.numFixedCounters());
    EXPECT_EQ(fixed.size(), 3u);
    // Cycles and instructions must be fixed (they anchor the model).
    EXPECT_TRUE(u.eventForRole(Role::Cycles).fixed);
    EXPECT_TRUE(u.eventForRole(Role::Instructions).fixed);
}

TEST_P(MicroarchTest, CounterMasksWithinRange)
{
    const auto u = uarch();
    for (const auto &e : u.events()) {
        if (e.fixed)
            continue;
        EXPECT_NE(e.counterMask, 0u) << e.name;
        EXPECT_EQ(e.counterMask >> u.numProgrammableCounters(), 0u)
            << e.name;
        EXPECT_GT(e.typicalPerSlice, 0.0) << e.name;
    }
}

TEST_P(MicroarchTest, InvariantsReferenceRegisteredRoles)
{
    const auto u = uarch();
    EXPECT_GE(u.invariants().size(), 14u);
    for (const auto &inv : u.invariants()) {
        EXPECT_GE(inv.terms.size(), 2u) << inv.name;
        EXPECT_GT(inv.slackRel, 0.0) << inv.name;
        for (const auto &term : inv.terms) {
            EXPECT_NE(term.coeff, 0.0) << inv.name;
            EXPECT_NO_FATAL_FAILURE((void)u.idForRole(term.role));
        }
    }
}

TEST_P(MicroarchTest, DramInvariantUsesCacheLineSize)
{
    const auto u = uarch();
    for (const auto &inv : u.invariants()) {
        if (inv.name != "dram_bandwidth")
            continue;
        for (const auto &term : inv.terms)
            if (term.role == Role::LlcMiss)
                EXPECT_DOUBLE_EQ(term.coeff, -u.cacheLineBytes());
        return;
    }
    FAIL() << "dram_bandwidth invariant missing";
}

TEST_P(MicroarchTest, FindByNameRoundTrips)
{
    const auto u = uarch();
    for (const auto &e : u.events()) {
        const auto found = u.findByName(e.name);
        ASSERT_TRUE(found.has_value()) << e.name;
        EXPECT_EQ(*found, e.id);
    }
    EXPECT_FALSE(u.findByName("NO_SUCH_EVENT").has_value());
}

TEST_P(MicroarchTest, OffcoreEventsNeedMsrs)
{
    const auto u = uarch();
    EXPECT_TRUE(u.eventForRole(Role::OffcoreReads).needsOffcoreMsr);
    EXPECT_TRUE(u.eventForRole(Role::OffcoreWrites).needsOffcoreMsr);
    EXPECT_GE(u.numOffcoreMsrs(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothArchitectures, MicroarchTest,
                         ::testing::Values("x86", "ppc64"));

TEST(Microarch, ArchitecturesDiffer)
{
    const auto x86 = makeX86Skylake();
    const auto ppc = makePower9();
    EXPECT_NE(x86.cacheLineBytes(), ppc.cacheLineBytes());
    EXPECT_NE(x86.numProgrammableCounters(),
              ppc.numProgrammableCounters());
    EXPECT_NE(x86.eventForRole(Role::Cycles).name,
              ppc.eventForRole(Role::Cycles).name);
}

TEST(MicroarchDeathTest, DuplicateRolePanics)
{
    MicroarchDescriptor u("test", 1.0, 64.0, 1, 4, 1);
    u.addEvent(Role::Cycles, "c", true, 0, false, 1.0);
    EXPECT_DEATH(u.addEvent(Role::Cycles, "c2", true, 0, false, 1.0),
                 "registered twice");
}

} // namespace
} // namespace sim
} // namespace bperf
