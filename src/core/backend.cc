#include "core/backend.h"

namespace bperf {
namespace core {

WindowExecution
HostBackend::execute(const WindowJob &job)
{
    WindowExecution exec;
    exec.engineId = 0;
    exec.endSlice = job.endSlice;
    exec.queueWaitSeconds = 0.0;
    exec.serviceSeconds = job.hostSeconds;
    exec.transferSeconds = 0.0;
    exec.modeledSeconds = job.hostSeconds;

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.windowsExecuted;
    stats_.queueWaitSeconds.push(exec.queueWaitSeconds);
    stats_.serviceSeconds.push(exec.serviceSeconds);
    stats_.modeledSeconds.push(exec.modeledSeconds);
    return exec;
}

BackendStats
HostBackend::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
HostBackend::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = BackendStats{};
}

} // namespace core
} // namespace bperf
