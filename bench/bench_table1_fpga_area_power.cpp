/**
 * @file
 * Reproduces Table 1: FPGA resource utilization and power for the
 * x86-PCIe and ppc64-CAPI builds of the BayesPerf accelerator, plus
 * the CPU-TDP efficiency comparison from section 6.1.
 */

#include <iostream>

#include "accel/power.h"
#include "common/table.h"

using namespace bperf;

namespace {

void
printBuild(const char *name, accel::BoardConfig config)
{
    const auto report = accel::buildAreaPowerReport(config);
    std::cout << "\n## " << name << " component inventory\n";
    TablePrinter parts({"component", "count", "LUT", "FF", "DSP", "BRAM",
                        "URAM", "dyn W"});
    for (const auto &c : report.components) {
        parts.addRow({c.name, std::to_string(c.count),
                      formatDouble(c.each.lut * c.count, 0),
                      formatDouble(c.each.ff * c.count, 0),
                      formatDouble(c.each.dsp * c.count, 0),
                      formatDouble(c.each.bram * c.count, 0),
                      formatDouble(c.each.uram * c.count, 0),
                      formatDouble(c.dynamicWattsEach * c.count, 2)});
    }
    parts.print(std::cout);
}

} // namespace

int
main()
{
    const auto x86 = accel::buildAreaPowerReport(accel::BoardConfig::X86Pcie);
    const auto ppc =
        accel::buildAreaPowerReport(accel::BoardConfig::Ppc64Capi);

    std::cout << "# Table 1: area & power of the BayesPerf FPGA\n";
    TablePrinter t({"config", "BRAM%", "DSP%", "FF%", "LUT%", "URAM%",
                    "Vivado W", "Measured W"});
    t.addRow("x86-PCIe",
             {x86.utilBramPct, x86.utilDspPct, x86.utilFfPct,
              x86.utilLutPct, x86.utilUramPct, x86.vivadoWatts,
              x86.measuredWatts},
             1);
    t.addRow("ppc64-CAPI",
             {ppc.utilBramPct, ppc.utilDspPct, ppc.utilFfPct,
              ppc.utilLutPct, ppc.utilUramPct, ppc.vivadoWatts,
              ppc.measuredWatts},
             1);
    t.print(std::cout);
    std::cout << "# paper: x86 62/78/52/81/58, 11.2/17.2 W; "
                 "ppc64 71/66/49/79/58, 10.5/16.1 W\n";

    std::cout << "\n# power efficiency vs host CPU TDP (paper: 5.8x, "
                 "11.8x)\n";
    TablePrinter eff({"config", "CPU TDP W", "accel W", "ratio"});
    eff.addRow("x86-PCIe",
               {accel::hostTdpWatts(accel::BoardConfig::X86Pcie),
                x86.measuredWatts,
                accel::hostTdpWatts(accel::BoardConfig::X86Pcie) /
                    x86.measuredWatts},
               1);
    eff.addRow("ppc64-CAPI",
               {accel::hostTdpWatts(accel::BoardConfig::Ppc64Capi),
                ppc.measuredWatts,
                accel::hostTdpWatts(accel::BoardConfig::Ppc64Capi) /
                    ppc.measuredWatts},
               1);
    eff.print(std::cout);

    printBuild("x86-PCIe", accel::BoardConfig::X86Pcie);
    printBuild("ppc64-CAPI", accel::BoardConfig::Ppc64Capi);
    return 0;
}
