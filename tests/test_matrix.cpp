/** @file Tests for the dense matrix and linear solves. */

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace bperf {
namespace {

Matrix
randomSpd(std::size_t n, Rng &rng)
{
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.normal();
    Matrix spd = a * a.transpose();
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Matrix, IdentityProperties)
{
    const Matrix eye = Matrix::identity(4);
    Matrix m(4, 4);
    Rng rng(3);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m(r, c) = rng.normal();
    const Matrix prod = eye * m;
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(prod(r, c), m(r, c));
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(5);
    Matrix m(3, 5);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            m(r, c) = rng.normal();
    const Matrix tt = m.transpose().transpose();
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
}

TEST(Matrix, SolveCholeskyRecoversSolution)
{
    Rng rng(7);
    const std::size_t n = 12;
    const Matrix a = randomSpd(n, rng);
    std::vector<double> x_true(n);
    for (double &v : x_true)
        v = rng.normal();
    const std::vector<double> b = a.apply(x_true);
    const std::vector<double> x = a.solveCholesky(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Matrix, SolveLuHandlesNonSymmetric)
{
    Rng rng(9);
    const std::size_t n = 10;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.normal() + (r == c ? 5.0 : 0.0);
    std::vector<double> x_true(n);
    for (double &v : x_true)
        v = rng.normal();
    const std::vector<double> b = a.apply(x_true);
    const std::vector<double> x = a.solveLU(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Matrix, InverseTimesSelfIsIdentity)
{
    Rng rng(11);
    const Matrix a = randomSpd(8, rng);
    const Matrix prod = a * a.inverse();
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-8);
}

TEST(Matrix, CholeskyInverseMatchesLuInverse)
{
    Rng rng(13);
    const Matrix a = randomSpd(15, rng);
    const Matrix inv_lu = a.inverse();
    const Matrix inv_ch = a.choleskyInverse();
    EXPECT_NEAR((inv_lu - inv_ch).frobeniusNorm(), 0.0, 1e-7);
}

TEST(Matrix, CholeskyInverseIsSymmetric)
{
    Rng rng(17);
    const Matrix inv = randomSpd(9, rng).choleskyInverse();
    for (std::size_t r = 0; r < 9; ++r)
        for (std::size_t c = 0; c < 9; ++c)
            EXPECT_DOUBLE_EQ(inv(r, c), inv(c, r));
}

TEST(MatrixDeathTest, NonSpdPanics)
{
    Matrix m(2, 2);
    m(0, 0) = 1.0;
    m(1, 1) = -1.0;
    EXPECT_DEATH((void)m.choleskyInverse(), "positive definite");
}

TEST(Matrix, ApplyMatchesOperator)
{
    Rng rng(19);
    Matrix a(4, 3);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a(r, c) = rng.normal();
    const std::vector<double> v = {1.0, -2.0, 0.5};
    const std::vector<double> av = a.apply(v);
    for (std::size_t r = 0; r < 4; ++r) {
        double expect = 0.0;
        for (std::size_t c = 0; c < 3; ++c)
            expect += a(r, c) * v[c];
        EXPECT_NEAR(av[r], expect, 1e-12);
    }
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix m(2, 2);
    m(0, 0) = 3.0;
    m(1, 1) = 4.0;
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
}

} // namespace
} // namespace bperf
