/**
 * @file
 * The EP moment-matching quadrature kernel, in runtime-dispatched
 * SIMD variants (AVX2 on x86-64, NEON on aarch64) with a scalar
 * fallback.
 *
 * All variants evaluate the same two-pass algorithm over the grid
 *   x_i = lo + step * i,  i = 0 .. points-1:
 *   pass 1: logw_i = -u_i^2/2 - (nu+1)/2 * log(1 + t_i^2/nu) into a
 *           thread-local buffer, tracking the running max;
 *   pass 2: w_i = exp(logw_i - max), accumulating {sum w, sum w x,
 *           sum w x^2} in four interleaved lanes.
 * Both passes use the shared polynomial exp/log of quad_poly.h and
 * the same lane/accumulation order, so scalar and SIMD results are
 * bit-identical — the property the golden suite's SIMD-vs-scalar
 * check rides on.  Outputs are the normalized tilted mean/variance.
 *
 * Dispatch: activeQuadKernel() probes the CPU once (AVX2+FMA via
 * cpuid on x86-64; NEON is baseline on aarch64) and falls back to the
 * scalar kernel when SIMD is unavailable or compiled out
 * (-DBPERF_SIMD=OFF).
 */

#ifndef BPERF_CORE_QUAD_KERNEL_H
#define BPERF_CORE_QUAD_KERNEL_H

#include <cstddef>

namespace bperf {
namespace core {

/** Grid and density parameters of one tilted-moment evaluation. */
struct QuadParams
{
    double lo = 0.0;         ///< first grid point
    double step = 0.0;       ///< grid spacing
    std::size_t points = 0;  ///< grid size (<= kMaxQuadPoints)
    double cavityMean = 0.0;
    double invSd = 0.0;      ///< 1 / cavity stddev
    double loc = 0.0;        ///< Student-t location
    double invScale = 0.0;   ///< 1 / Student-t scale
    double halfNup1 = 0.0;   ///< (nu + 1) / 2
    double invNu = 0.0;      ///< 1 / nu
};

/** Moment kernel: writes the normalized tilted mean and variance. */
using QuadKernelFn = void (*)(const QuadParams &params, double &mean_out,
                              double &var_out);

/** Upper bound on QuadParams::points (sizes the log-weight buffer). */
inline constexpr std::size_t kMaxQuadPoints = 2048;

/** Thread-local log-weight buffer shared by all kernel variants. */
double *quadLogWeightBuffer();

/** Portable scalar kernel (also the SIMD parity reference). */
void quadMomentsScalar(const QuadParams &params, double &mean_out,
                       double &var_out);

/** Best kernel for this CPU (scalar when SIMD is off/absent). */
QuadKernelFn activeQuadKernel();

/** Name of the active kernel: "avx2", "neon" or "scalar". */
const char *activeQuadKernelName();

#if defined(BPERF_SIMD) && defined(__x86_64__)
/** AVX2+FMA kernel (defined in quad_kernel_avx2.cc). */
void quadMomentsAvx2(const QuadParams &params, double &mean_out,
                     double &var_out);
#endif
#if defined(BPERF_SIMD) && defined(__aarch64__)
/** NEON kernel (defined in quad_kernel_neon.cc). */
void quadMomentsNeon(const QuadParams &params, double &mean_out,
                     double &var_out);
#endif

} // namespace core
} // namespace bperf

#endif // BPERF_CORE_QUAD_KERNEL_H
