/**
 * @file
 * Fixed-size worker pool draining ready sessions.
 *
 * Workers block on a shared run queue of session ids; the service
 * enqueues a session exactly once per Idle->Queued transition (see
 * SessionState), so the queue holds each session at most once and a
 * session is never drained by two workers concurrently.
 */

#ifndef BPERF_SERVICE_WORKER_POOL_H
#define BPERF_SERVICE_WORKER_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/session.h"

namespace bperf {
namespace service {

/**
 * N threads popping session ids and handing them to a processing
 * callback (MonitorService::processSession).
 */
class WorkerPool
{
  public:
    /**
     * Starts `num_threads` workers.  `process` is invoked once per
     * dequeued id, from worker threads, possibly concurrently for
     * different ids.
     */
    WorkerPool(std::size_t num_threads,
               std::function<void(SessionId)> process);

    /** Stops and joins all workers (pending queue entries are
     * discarded; the service re-drains on close anyway). */
    ~WorkerPool();

    /** Enqueue a session for processing. */
    void submit(SessionId id);

    /** Block until the run queue is empty and all workers are idle. */
    void quiesce();

    std::size_t numThreads() const { return threads_.size(); }

  private:
    void workerLoop();

    std::function<void(SessionId)> process_;

    /** One run-queue entry, stamped for dispatch-wait telemetry. */
    struct QueuedSession
    {
        SessionId id = 0;
        /** submit() time (telemetry::nowNanos(); 0 when disabled). */
        std::uint64_t submitNanos = 0;
    };

    std::mutex mutex_;
    std::condition_variable cv_;        // queue became non-empty / stop
    std::condition_variable idleCv_;    // a worker went idle
    std::deque<QueuedSession> queue_;
    std::size_t active_ = 0;
    bool stopping_ = false;

    std::vector<std::thread> threads_;
};

} // namespace service
} // namespace bperf

#endif // BPERF_SERVICE_WORKER_POOL_H
