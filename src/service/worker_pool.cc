#include "service/worker_pool.h"

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace bperf {
namespace service {

namespace {

telemetry::Counter &
dispatchesCounter()
{
    static telemetry::Counter &c =
        telemetry::MetricsRegistry::global().counter("worker.dispatches");
    return c;
}

telemetry::Histogram &
dispatchWaitHistogram()
{
    static telemetry::Histogram &h =
        telemetry::MetricsRegistry::global().histogram(
            "worker.dispatch_wait_ns");
    return h;
}

} // namespace

WorkerPool::WorkerPool(std::size_t num_threads,
                       std::function<void(SessionId)> process)
    : process_(std::move(process))
{
    bp_assert(num_threads > 0, "worker pool needs at least one thread");
    bp_assert(process_ != nullptr, "worker pool needs a process callback");
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::submit(SessionId id)
{
    QueuedSession entry;
    entry.id = id;
    if (telemetry::enabled())
        entry.submitNanos = telemetry::nowNanos();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(entry);
    }
    cv_.notify_one();
}

void
WorkerPool::quiesce()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && active_ == 0; });
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_)
            return;
        const QueuedSession entry = queue_.front();
        queue_.pop_front();
        ++active_;
        lock.unlock();
        if (entry.submitNanos != 0 && telemetry::enabled()) {
            const std::uint64_t now = telemetry::nowNanos();
            if (now > entry.submitNanos)
                dispatchWaitHistogram().record(now - entry.submitNanos);
        }
        dispatchesCounter().add();
        process_(entry.id);
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idleCv_.notify_all();
    }
}

} // namespace service
} // namespace bperf
