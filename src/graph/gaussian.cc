#include "graph/gaussian.h"

#include "common/logging.h"

namespace bperf {
namespace graph {

Gaussian
Gaussian::fromMeanVar(double mean, double var)
{
    bp_assert(var > 0.0, "Gaussian variance must be positive");
    const double lambda = 1.0 / var;
    return {lambda, lambda * mean};
}

double
Gaussian::mean() const
{
    bp_assert(isProper(), "mean of improper Gaussian");
    return eta / lambda;
}

double
Gaussian::variance() const
{
    bp_assert(isProper(), "variance of improper Gaussian");
    return 1.0 / lambda;
}

} // namespace graph
} // namespace bperf
