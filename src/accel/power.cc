#include "accel/power.h"

#include "common/logging.h"

namespace bperf {
namespace accel {

Resources
Resources::operator+(const Resources &o) const
{
    return {lut + o.lut, ff + o.ff, dsp + o.dsp, bram + o.bram,
            uram + o.uram};
}

Resources
Resources::operator*(double k) const
{
    return {lut * k, ff * k, dsp * k, bram * k, uram * k};
}

Resources
vu3pCapacity()
{
    // Xilinx Virtex UltraScale+ VU3P-2.
    return {394080.0, 788160.0, 2280.0, 720.0, 320.0};
}

namespace {

/** Design-wide static power (clock trees, leakage) in watts. */
constexpr double kStaticWatts = 3.1;

/** Board measurement / Vivado estimate ratio (regulators, GTY). */
constexpr double kBoardFactor = 1.535;

std::vector<Component>
commonComponents()
{
    return {
        // Four EP engines: cavity datapath, site storage, dispatch.
        {"EP engine", 4, {30000, 36000, 260, 40, 24}, 0.75},
        // Twelve AcMC2-generated MCMC sampler IPs.
        {"MCMC sampler (AcMC2)", 12, {11000, 14000, 36, 12, 6}, 0.20},
        // 16-port CONNECT butterfly NoC.
        {"Butterfly NoC", 1, {18000, 26000, 0, 12, 0}, 0.45},
        // Global EP controller (Alg. 1 line 7).
        {"Global controller", 1, {9000, 12000, 24, 10, 2}, 0.15},
        // Four LPDDR4 channel controllers + replication buffers.
        {"DRAM subsystem", 1, {22000, 30000, 0, 60, 16}, 0.85},
    };
}

} // namespace

double
hostTdpWatts(BoardConfig config)
{
    // Intel Xeon E5-2695 (100 W) and IBM Power9 (190 W) TDPs.
    return config == BoardConfig::X86Pcie ? 100.0 : 190.0;
}

AreaPowerReport
buildAreaPowerReport(BoardConfig config)
{
    AreaPowerReport report;
    report.components = commonComponents();
    if (config == BoardConfig::X86Pcie) {
        // Xilinx XDMA PCIe3 x16 bridge + descriptor engines + the
        // timestamp-scaling units of the x86 shim path.
        report.components.push_back(
            {"XDMA PCIe bridge", 1, {18500, 30000, 282, 60, 0}, 1.25});
    } else {
        // CAPI 2.0 PSL: coherent snoop filter is BRAM-heavy.
        report.components.push_back(
            {"CAPI 2.0 PSL", 1, {10300, 6200, 9, 125, 0}, 0.55});
    }

    Resources total;
    double dynamic_watts = 0.0;
    for (const auto &c : report.components) {
        total = total + c.each * static_cast<double>(c.count);
        dynamic_watts += c.dynamicWattsEach * static_cast<double>(c.count);
    }
    report.total = total;

    const Resources cap = vu3pCapacity();
    report.utilLutPct = 100.0 * total.lut / cap.lut;
    report.utilFfPct = 100.0 * total.ff / cap.ff;
    report.utilDspPct = 100.0 * total.dsp / cap.dsp;
    report.utilBramPct = 100.0 * total.bram / cap.bram;
    report.utilUramPct = 100.0 * total.uram / cap.uram;
    bp_assert(report.utilLutPct <= 100.0 && report.utilFfPct <= 100.0 &&
                  report.utilDspPct <= 100.0 &&
                  report.utilBramPct <= 100.0 &&
                  report.utilUramPct <= 100.0,
              "design does not fit the VU3P");

    report.vivadoWatts = kStaticWatts + dynamic_watts;
    report.measuredWatts = report.vivadoWatts * kBoardFactor;
    return report;
}

} // namespace accel
} // namespace bperf
